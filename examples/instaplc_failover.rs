//! InstaPLC (§4): a primary vPLC crashes mid-production; the
//! programmable switch's digital twin and in-network switchover keep
//! the I/O device controlled — no dedicated sync links, no safe-state
//! stop. Also runs the ablation without a secondary.
//!
//! Run: `cargo run --release --example instaplc_failover`

use steelworks::prelude::*;

fn main() {
    let cfg = ScenarioConfig::default();
    println!(
        "cycle {} us | watchdog x{} | switchover after {} silent cycles | crash at {} ms\n",
        cfg.cycle_time.as_micros_f64(),
        cfg.watchdog_factor,
        cfg.switchover_cycles,
        cfg.crash_at.as_millis_f64()
    );

    let r = run_scenario(&cfg);
    println!("frames to I/O per 50 ms around the crash:");
    let crash_bin = (cfg.crash_at.as_nanos() / 50_000_000) as usize;
    for i in crash_bin.saturating_sub(3)..(crash_bin + 4).min(r.io_series.len()) {
        let marker = if i == crash_bin { "  <- crash bin" } else { "" };
        println!("  t={:>5} ms: {:>3}{marker}", i * 50, r.io_series[i]);
    }
    match r.switchover_at {
        Some(t) => println!(
            "\nswitchover {:.3} ms after the crash; device safe-state entries: {}",
            t.as_millis_f64() - cfg.crash_at.as_millis_f64(),
            r.io_safe_entries
        ),
        None => println!("\nno switchover happened!"),
    }
    assert_eq!(r.io_safe_entries, 0, "production kept running");

    println!("\n-- takeover budget comparison --");
    // The no-secondary ablation lives in the test suite
    // (core::instaplc::tests::without_secondary_device_halts); here we
    // compare the published takeover bands against the watchdog budget.
    let takeover_hw = {
        let mut rng = SimRng::seed_from_u64(1);
        takeover::hardware_pair(&mut rng)
    };
    let takeover_inet = takeover::in_network(
        cfg.cycle_time,
        cfg.switchover_cycles,
        NanoDur::from_micros(4),
    );
    println!("classical hardware pair would take : {takeover_hw}");
    println!("InstaPLC in-network switchover took: {takeover_inet}");
    println!(
        "device watchdog budget             : {}",
        cfg.cycle_time * cfg.watchdog_factor as u64
    );
    assert!(takeover_inet < cfg.cycle_time * cfg.watchdog_factor as u64);
}
