//! GenAI on the factory floor (§5's closing outlook): where can an LLM
//! service live — edge, fog, or cloud — given each application's
//! interactivity budget and the network between? Also shows the
//! bursty-then-streaming traffic shape that will share converged
//! fabrics with deterministic control microflows.
//!
//! Run: `cargo run --release --example genai_placement`

use steelworks::prelude::*;

fn main() {
    // Network RTTs from a production cell to each tier.
    // Network RTTs from a production cell to each tier; the last
    // column is the same cloud behind a congested / degraded WAN.
    let rtts = [
        ("edge", ComputeTier::Edge, NanoDur::from_micros(200)),
        ("fog", ComputeTier::Fog, NanoDur::from_millis(1)),
        ("cloud", ComputeTier::Cloud, NanoDur::from_millis(24)),
        ("bad-wan", ComputeTier::Cloud, NanoDur::from_millis(250)),
    ];

    println!("== placement feasibility (TTFT + network RTT vs budget) ==\n");
    let mut header = format!("{:<18} {:>10}", "application", "budget");
    for (name, _, _) in rtts {
        header += &format!(" {name:>8}");
    }
    println!("{header}");
    let mut misses = 0;
    for app in LlmApp::ALL {
        let p = app.profile();
        let mut row = format!("{:<18} {:>10}", p.name, format!("{}", p.ttft_deadline));
        for (_, tier, rtt) in rtts {
            let ok = placement_feasible(app, tier, rtt);
            misses += !ok as u32;
            row += &format!(" {:>8}", if ok { "ok" } else { "MISS" });
        }
        println!("{row}");
    }
    assert!(misses >= 1, "the degraded WAN must break the tightest app");

    println!("\n== one agentic task's offered load (Cell Config Agent on fog) ==\n");
    let mut rng = SimRng::seed_from_u64(42);
    let t = task_trace(LlmApp::CellConfigAgent, ComputeTier::Fog, &mut rng);
    let upstreams = t
        .events
        .iter()
        .filter(|(_, e)| matches!(e, LlmEvent::Upstream(_)))
        .count();
    let chunks = t.events.len() - upstreams;
    println!("round trips      : {upstreams}");
    println!("token chunks     : {chunks}");
    println!("upstream bytes   : {}", t.up_bytes);
    println!("downstream bytes : {}", t.down_bytes);
    println!("task duration    : {}", t.duration);

    // The §2.3 contrast: this flow vs a vPLC microflow, classified.
    let llm_flow = FlowFeatures {
        bytes: t.up_bytes + t.down_bytes,
        duration: t.duration,
        ongoing: false,
        gap_cv: 1.5, // bursty
        mean_payload: 600,
    };
    let vplc_flow = FlowFeatures {
        bytes: 3_000_000,
        duration: NanoDur::from_secs(86_400),
        ongoing: true,
        gap_cv: 0.01,
        mean_payload: 50,
    };
    println!(
        "\nclassifier sees the LLM task as : {:?}",
        classify(&llm_flow)
    );
    println!(
        "classifier sees vPLC traffic as : {:?}",
        classify(&vplc_flow)
    );
    assert_eq!(classify(&vplc_flow), FlowClass::DeterministicMicroflow);
}
