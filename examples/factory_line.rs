//! A complete production cell (the paper's Fig. 2 "present factory"):
//! conveyor, photoeye-driven counting logic, TSN-scheduled traffic and
//! a misbehaving IT flow sharing the wire — the RT traffic survives
//! thanks to the time-aware shaper.
//!
//! Run: `cargo run --release --example factory_line`

use steelworks::prelude::*;

fn main() {
    let mut sim = Simulator::new(7);
    let plc_mac = MacAddr::local(1);
    let io_mac = MacAddr::local(2);
    let it_src_mac = MacAddr::local(3);
    let it_dst_mac = MacAddr::local(4);

    // PLC logic: run the motor until 5 items passed, then stop.
    // I0.0 = photoeye; count rising edges with CTU, stop at 5.
    let program = PlcProgram::new(vec![
        IlInsn::Ld(Operand::I(0, 0)),
        IlInsn::Ctu { idx: 0, preset: 5 },
        IlInsn::StN(Operand::Q(0, 0)), // motor on while count < 5
    ]);
    let params = CrParams {
        cycle_time: NanoDur::from_millis(2),
        watchdog_factor: 3,
        output_len: 4,
        input_len: 4,
    };
    let plc = sim.add_node(VplcDevice::new(
        "vplc",
        plc_mac,
        io_mac,
        FrameId(0x8001),
        params,
        program,
    ));
    let io = sim.add_node(IoDevice::new(
        "conveyor",
        io_mac,
        (4, 4),
        Box::new(ConveyorProcess::new()),
    ));

    // A TSN switch: the first 300 us of every 2 ms cycle are exclusive
    // to RT traffic.
    let gcl = GateControlList::rt_window(
        Nanos::ZERO,
        NanoDur::from_millis(2),
        NanoDur::from_micros(300),
    );
    let sw = sim.add_node({
        let mut s = TsnSwitch::new("tsn", 4, gcl);
        s.learn_static(plc_mac, PortId(0));
        s.learn_static(io_mac, PortId(1));
        s.learn_static(it_dst_mac, PortId(3));
        s
    });

    // A greedy IT flow hammering the same fabric with 1400-byte frames.
    let it_src = sim.add_node(PeriodicSource::new(
        "it-bulk",
        it_src_mac,
        it_dst_mac,
        1400,
        NanoDur::from_micros(15),
    ));
    let it_dst = sim.add_node(CounterSink::new("it-sink"));

    sim.connect(plc, PortId(0), sw, PortId(0), LinkSpec::gigabit());
    sim.connect(io, PortId(0), sw, PortId(1), LinkSpec::gigabit());
    sim.connect(it_src, PortId(0), sw, PortId(2), LinkSpec::gigabit());
    sim.connect(it_dst, PortId(0), sw, PortId(3), LinkSpec::gigabit());

    sim.run_until(Nanos::from_secs(12));

    let plc_ref = sim.node_ref::<VplcDevice>(plc);
    let io_ref = sim.node_ref::<IoDevice>(io);
    let delivered = io_ref.process_ref::<ConveyorProcess>().delivered();
    // Note: the PLC stops the motor at the 5th photoeye edge, so the
    // 5th item halts *at* the eye — "delivered" counts items past it.
    println!("items delivered        : {delivered} (5th item stops at the photoeye)");
    println!(
        "vPLC watchdog events   : {}",
        plc_ref.stats().watchdog_expirations
    );
    println!(
        "I/O safe-state entries : {}",
        io_ref.stats().safe_state_entries
    );
    println!(
        "IT frames delivered    : {}",
        sim.node_ref::<CounterSink>(it_dst).count()
    );
    println!(
        "TSN guard deferrals    : {}",
        sim.node_ref::<TsnSwitch>(sw).guard_deferrals()
    );
    assert!(delivered >= 4, "the line produced");
    assert_eq!(
        io_ref.stats().safe_state_entries,
        0,
        "RT survived the IT load"
    );
    println!("\nproduction cell OK — deterministic traffic co-existed with bulk IT");
}
