//! Traffic Reflection (§3): measure the hidden timing cost of eBPF/XDP
//! code variants with a single-clock network tap, then compare the
//! tap's measurement error against a two-clock PTP setup.
//!
//! Run: `cargo run --release --example traffic_reflection`

use steelworks::prelude::*;

fn main() {
    println!("== Traffic Reflection: six eBPF program variants ==\n");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12}",
        "variant", "median us", "p99 us", "worst us", "p99 jit ns"
    );
    for variant in ReflectVariant::ALL {
        let mut out = run_reflection(&ReflectionConfig {
            variant,
            cycles: 2_000,
            ..ReflectionConfig::default()
        });
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>10.2} {:>12.0}",
            variant.name(),
            out.median_delay_us(),
            out.delays.quantile(0.99).unwrap_or(0.0) / 1000.0,
            out.worst_delay_us(),
            out.p99_jitter_ns(),
        );
    }

    println!("\n== Scaling: concurrent real-time flows ==\n");
    println!("{:>6} {:>14}", "flows", "p99 jitter ns");
    for flows in [1u32, 5, 10, 25] {
        let mut out = run_reflection(&ReflectionConfig {
            variant: ReflectVariant::Ts,
            flows,
            cycles: 1_000,
            ..ReflectionConfig::default()
        });
        println!("{flows:>6} {:>14.0}", out.p99_jitter_ns());
    }

    println!("\n== Why a tap? one clock vs PTP-synced clocks ==\n");
    let mut a = PtpClient::new(PtpConfig::default());
    let mut b = PtpClient::new(PtpConfig {
        path_asymmetry: NanoDur(320),
        ..PtpConfig::default()
    });
    let mut rng = SimRng::seed_from_u64(7);
    let (tap_err, ptp_err) =
        measurement_errors(NanoDur(8), &mut a, &mut b, Nanos::from_secs(10), &mut rng);
    println!("tap measurement error : ~{tap_err:.0} ns (quantization only)");
    println!("two-clock PTP error   : ~{ptp_err:.0} ns (asymmetry survives sync)");
    assert!(ptp_err > tap_err);
}
