//! ML-aware topologies (§5): sweep clients over the ring, leaf-spine
//! and traffic-aware designs for both industrial ML applications and
//! print the latency / achievable-accuracy / cost triangle.
//!
//! Run: `cargo run --release --example ml_topology`

use steelworks::prelude::*;

fn main() {
    let cfg = StudyConfig::default();
    for app in MlApp::ALL {
        let profile = app.profile();
        println!("== {} (deadline {}) ==", profile.name, profile.deadline);
        println!(
            "{:>8} {:>12} {:>8} {:>10} {:>10} {:>10}",
            "clients", "topology", "lat ms", "net ms", "infer ms", "accuracy"
        );
        for &n in &cfg.client_counts {
            for kind in TopologyKind::ALL {
                let p = evaluate_point(kind, app, n, &cfg);
                println!(
                    "{n:>8} {:>12} {:>8.2} {:>10.2} {:>10.2} {:>10.3}",
                    kind.name(),
                    p.latency_ms,
                    p.network_ms,
                    p.inference_ms,
                    p.achieved_accuracy,
                );
            }
        }
        println!();
    }

    // The designer itself, standalone: give it the measured demand and
    // a cost book, get a dimensioned topology.
    let (bps, pkt) = traffic_for_accuracy(MlApp::DefectDetection, 0.9).expect("reachable");
    let d = design(
        128,
        ClientProfile {
            bps_per_client: bps,
            mean_packet: pkt,
        },
        &DesignConfig::default(),
    );
    println!(
        "designer: 128 defect-detection clients @ {:.1} Mbit/s -> {} clusters of {} (cost {:.0})",
        bps / 1e6,
        d.built.compute.len() - 1,
        d.cluster_size,
        infrastructure_cost(&d.built.graph, &PriceBook::default()),
    );

    // Render the compared topologies as Graphviz DOT for inspection.
    let dir = std::env::temp_dir();
    let ring = industrial_ring(16, EdgeAttr::gigabit_local());
    let ls = leaf_spine(2, 2, 8, EdgeAttr::gigabit_local());
    let small = design(
        16,
        ClientProfile {
            bps_per_client: bps,
            mean_packet: pkt,
        },
        &DesignConfig::default(),
    );
    for (name, graph) in [
        ("ring", &ring.graph),
        ("leaf-spine", &ls.graph),
        ("ml-aware", &small.built.graph),
    ] {
        let path = dir.join(format!("steelworks-topology-{name}.dot"));
        std::fs::write(&path, graph.to_dot(name)).expect("writable temp dir");
        println!("DOT written: {}", path.display());
    }
}
