//! Quickstart: build a small converged IT/OT world and watch a vPLC
//! control an I/O device through a switch while measuring the cyclic
//! traffic with a passive tap.
//!
//! Run: `cargo run --example quickstart`

use steelworks::prelude::*;

fn main() {
    // A deterministic world: same seed, same output, every platform.
    let mut sim = Simulator::new(42);

    // --- nodes -----------------------------------------------------
    let plc_mac = MacAddr::local(1);
    let io_mac = MacAddr::local(2);
    let params = CrParams {
        cycle_time: NanoDur::from_millis(2),
        watchdog_factor: 3,
        output_len: 4,
        input_len: 4,
    };
    // A vPLC that latches its first output bit on (motor start).
    let program = PlcProgram::new(vec![
        IlInsn::Ld(Operand::Const(true)),
        IlInsn::St(Operand::Q(0, 0)),
    ]);
    let plc = sim.add_node(VplcDevice::new(
        "vplc",
        plc_mac,
        io_mac,
        FrameId(0x8001),
        params,
        program,
    ));
    let io = sim.add_node(IoDevice::new(
        "conveyor-io",
        io_mac,
        (4, 4),
        Box::new(ConveyorProcess::new()),
    ));
    let sw = sim.add_node(LearningSwitch::eight_port("cell-switch"));

    // --- wiring (with a tap on the PLC's access link) ---------------
    let plc_link = sim.connect(plc, PortId(0), sw, PortId(0), LinkSpec::gigabit());
    sim.connect(io, PortId(0), sw, PortId(1), LinkSpec::industrial_100m());
    let tap = sim.attach_tap(plc_link, Tap::hardware_default().with_payload_capture());

    // --- run ---------------------------------------------------------
    sim.run_until(Nanos::from_secs(5));

    // --- inspect ------------------------------------------------------
    let plc_ref = sim.node_ref::<VplcDevice>(plc);
    let io_ref = sim.node_ref::<IoDevice>(io);
    println!("vPLC state      : {:?}", plc_ref.cr_state());
    println!("cyclic sent     : {}", plc_ref.stats().cyclic_sent);
    println!("cyclic received : {}", plc_ref.stats().cyclic_received);
    println!(
        "items delivered : {}",
        io_ref.process_ref::<ConveyorProcess>().delivered()
    );
    println!("tap records     : {}", sim.tap(tap).records().len());
    println!("frames dropped  : {}", sim.trace().counters().dropped);
    assert!(io_ref.process_ref::<ConveyorProcess>().delivered() > 0);

    // Dump the tap's capture for Wireshark (PROFINET-compatible
    // ethertype, so the cyclic frames dissect).
    let pcap_path = std::env::temp_dir().join("steelworks-quickstart.pcap");
    std::fs::write(&pcap_path, sim.tap(tap).to_pcap().expect("capture on"))
        .expect("writable temp dir");
    println!("pcap written to : {}", pcap_path.display());
    println!("\nthe conveyor ran — quickstart OK");
}
