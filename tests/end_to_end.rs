//! Cross-crate integration tests: each experiment pipeline end to end,
//! at reduced scale so the suite stays fast.

use steelworks::prelude::*;

#[test]
fn reflection_pipeline_end_to_end() {
    // Full §3 pipeline: TSN sender → tap → verifier → VM → cost/noise
    // models → CDF, for every program variant.
    for variant in ReflectVariant::ALL {
        let mut out = run_reflection(&ReflectionConfig {
            variant,
            cycles: 200,
            seed: 99,
            ..ReflectionConfig::default()
        });
        assert_eq!(out.stats.tx, 200, "{}", variant.name());
        assert_eq!(out.stats.aborted, 0, "{}", variant.name());
        let med = out.median_delay_us();
        assert!(med > 3.0 && med < 30.0, "{}: {med}", variant.name());
    }
}

#[test]
fn reflection_reproducible_across_invocations() {
    let run = || {
        let mut o = run_reflection(&ReflectionConfig {
            cycles: 150,
            seed: 1234,
            ..ReflectionConfig::default()
        });
        (o.delays.raw().to_vec(), o.p99_jitter_ns())
    };
    assert_eq!(run(), run());
}

#[test]
fn instaplc_pipeline_end_to_end() {
    // Full §4 pipeline: vPLCs + I/O device + programmable switch +
    // controller + crash injection, through the protocol stack.
    let r = run_scenario(&ScenarioConfig {
        crash_at: Nanos::from_millis(300),
        duration: Nanos::from_millis(900),
        ..ScenarioConfig::default()
    });
    assert!(r.switchover_at.is_some());
    assert_eq!(r.io_safe_entries, 0);
    assert_eq!(r.twin_accepts, 1);
    // The device missed at most a handful of the ~600 cycles.
    assert!(r.io_received > 560, "{}", r.io_received);
}

#[test]
fn instaplc_switchover_beats_every_published_takeover() {
    let cfg = ScenarioConfig {
        crash_at: Nanos::from_millis(300),
        duration: Nanos::from_millis(900),
        ..ScenarioConfig::default()
    };
    let r = run_scenario(&cfg);
    let gap = r.switchover_at.expect("fired") - cfg.crash_at;
    let mut rng = SimRng::seed_from_u64(5);
    for _ in 0..200 {
        assert!(gap < takeover::hardware_pair(&mut rng));
        assert!(gap < takeover::kubernetes(&mut rng));
    }
}

#[test]
fn mlaware_pipeline_end_to_end() {
    // Full §5 pipeline: degradation model → demand → topology builders
    // → routing → queueing + inference → figure points.
    let cfg = StudyConfig {
        client_counts: vec![32, 256],
        ..StudyConfig::default()
    };
    let points = fig6(&cfg);
    assert_eq!(points.len(), 2 * 3 * 2);
    for p in &points {
        assert!(p.latency_ms.is_finite() && p.latency_ms > 0.0);
        assert!(p.achieved_accuracy > 0.3 && p.achieved_accuracy <= 1.0);
        assert!(p.cost > 0.0);
    }
}

#[test]
fn corpus_pipeline_end_to_end() {
    let corpus = generate(60, 2024);
    let texts: Vec<&str> = corpus.iter().map(|p| p.text.as_str()).collect();
    let counts = analyze(texts.iter().copied());
    for c in &counts {
        assert_eq!(c.measured, c.published, "{}", c.label);
    }
}

#[test]
fn availability_numbers_consistent_with_scenario() {
    // The simulated InstaPLC switchover time must be consistent with
    // the analytic estimate used in the availability math.
    let cfg = ScenarioConfig {
        crash_at: Nanos::from_millis(300),
        duration: Nanos::from_millis(900),
        ..ScenarioConfig::default()
    };
    let r = run_scenario(&cfg);
    let simulated = r.switchover_at.expect("fired") - cfg.crash_at;
    let analytic = takeover::in_network(
        cfg.cycle_time,
        cfg.switchover_cycles,
        NanoDur::from_micros(4),
    );
    // The analytic figure counts from the primary's LAST frame; the
    // crash lands up to one cycle after that frame, and the liveness
    // scan adds up to one scan interval (250 µs) of granularity.
    let lo = analytic.saturating_sub(cfg.cycle_time);
    let hi = analytic + NanoDur::from_micros(300);
    assert!(
        simulated >= lo && simulated <= hi,
        "simulated {simulated} outside [{lo}, {hi}]"
    );
}

#[test]
fn tsn_protects_cyclic_traffic_under_it_load() {
    // rtnet TSN switch + vplc endpoints + hostile background traffic:
    // the RT exchange must never trip a watchdog.
    let mut sim = Simulator::new(11);
    let plc_mac = MacAddr::local(1);
    let io_mac = MacAddr::local(2);
    let params = CrParams {
        cycle_time: NanoDur::from_millis(2),
        watchdog_factor: 3,
        output_len: 4,
        input_len: 4,
    };
    let plc = sim.add_node(VplcDevice::new(
        "plc",
        plc_mac,
        io_mac,
        FrameId(0x8001),
        params,
        PlcProgram::passthrough(4),
    ));
    let io = sim.add_node(IoDevice::new(
        "io",
        io_mac,
        (4, 4),
        Box::new(LoopbackProcess),
    ));
    let gcl = GateControlList::rt_window(
        Nanos::ZERO,
        NanoDur::from_millis(2),
        NanoDur::from_micros(200),
    );
    let sw = sim.add_node({
        let mut s = TsnSwitch::new("tsn", 4, gcl);
        s.learn_static(plc_mac, PortId(0));
        s.learn_static(io_mac, PortId(1));
        s.learn_static(MacAddr::local(4), PortId(3));
        s
    });
    let it = sim.add_node(PeriodicSource::new(
        "bulk",
        MacAddr::local(3),
        MacAddr::local(4),
        1400,
        NanoDur::from_micros(12),
    ));
    let sink = sim.add_node(CounterSink::new("sink"));
    sim.connect(plc, PortId(0), sw, PortId(0), LinkSpec::gigabit());
    sim.connect(io, PortId(0), sw, PortId(1), LinkSpec::gigabit());
    sim.connect(it, PortId(0), sw, PortId(2), LinkSpec::gigabit());
    sim.connect(sink, PortId(0), sw, PortId(3), LinkSpec::gigabit());
    sim.run_until(Nanos::from_secs(2));
    assert_eq!(
        sim.node_ref::<IoDevice>(io).stats().safe_state_entries,
        0,
        "RT window protected the control loop"
    );
    assert_eq!(
        sim.node_ref::<VplcDevice>(plc).stats().watchdog_expirations,
        0
    );
    assert!(sim.node_ref::<CounterSink>(sink).count() > 100_000);
}

#[test]
fn xdp_host_in_a_switched_network() {
    // xdpsim + netsim switch: reflection still works across a switch.
    let mut sim = Simulator::new(3);
    let (maps, rb) = standard_maps();
    let prog = reflect_variant(ReflectVariant::Base, rb);
    let host =
        sim.add_node(XdpHost::new("xdp", prog, maps, HostProfile::preempt_rt()).expect("verifies"));
    let src = sim.add_node(
        PeriodicSource::new(
            "src",
            MacAddr::local(1),
            MacAddr::local(2),
            50,
            NanoDur::from_millis(1),
        )
        .with_limit(100),
    );
    let sw = sim.add_node(LearningSwitch::eight_port("sw"));
    sim.connect(src, PortId(0), sw, PortId(0), LinkSpec::gigabit());
    sim.connect(host, PortId(0), sw, PortId(1), LinkSpec::gigabit());
    sim.run_until(Nanos::from_millis(200));
    let stats = sim.node_ref::<XdpHost>(host).stats();
    assert_eq!(stats.tx, 100);
    // Reflections reached the source back through the switch.
    assert!(sim.trace().counters().delivered >= 300);
}

#[test]
fn flow_classifier_sees_simulated_vplc_traffic_as_microflow() {
    // Classify the actual traffic produced by a simulated vPLC.
    let mut sim = Simulator::new(13);
    let plc_mac = MacAddr::local(1);
    let io_mac = MacAddr::local(2);
    let params = CrParams {
        cycle_time: NanoDur::from_millis(2),
        watchdog_factor: 3,
        output_len: 32,
        input_len: 32,
    };
    let plc = sim.add_node(VplcDevice::new(
        "plc",
        plc_mac,
        io_mac,
        FrameId(1),
        params,
        PlcProgram::passthrough(32),
    ));
    let io = sim.add_node(IoDevice::new(
        "io",
        io_mac,
        (32, 32),
        Box::new(LoopbackProcess),
    ));
    let link = sim.connect(plc, PortId(0), io, PortId(0), LinkSpec::gigabit());
    let tap = sim.attach_tap(link, Tap::hardware_default());
    sim.run_until(Nanos::from_secs(2));

    // Build flow features from the tap's view of PLC→IO traffic.
    let records: Vec<_> = sim.tap(tap).records_from(plc_mac).collect();
    assert!(records.len() > 900);
    let bytes: u64 = records.iter().map(|r| r.len as u64).sum();
    let gaps: Vec<f64> = records
        .windows(2)
        .map(|w| (w[1].ts.as_nanos() - w[0].ts.as_nanos()) as f64)
        .collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
    let features = FlowFeatures {
        bytes,
        duration: Nanos::from_secs(2) - Nanos::ZERO,
        ongoing: true,
        gap_cv: var.sqrt() / mean,
        mean_payload: (bytes / records.len() as u64) as u32,
    };
    assert_eq!(classify(&features), FlowClass::DeterministicMicroflow);
}
