//! The black-channel principle, end to end: safety PDUs ride inside
//! ordinary cyclic frames across a deliberately hostile simulated
//! network (drops, corruption, duplication, reordering), and the
//! safety layer catches every violation while letting healthy data
//! through — exactly why PROFIsafe-class protocols survive converged
//! IT/OT fabrics (§1.1).

use steelworks::netsim::bytes::Bytes;
use steelworks::prelude::*;

/// Sends one safety PDU per cycle inside an RT frame.
struct SafetySender {
    producer: SafetyProducer,
    value: u8,
    sent: u64,
    limit: u64,
    cycle: NanoDur,
    dst: MacAddr,
    src: MacAddr,
}

impl Device for SafetySender {
    fn name(&self) -> &str {
        "safety-sender"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.timer_in(NanoDur::ZERO, 0);
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _p: PortId, _f: EthFrame) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.sent >= self.limit {
            return;
        }
        self.sent += 1;
        self.value = self.value.wrapping_add(1);
        let pdu = self.producer.emit(&[self.value, !self.value]);
        let frame = EthFrame::new(
            self.dst,
            self.src,
            ethertype::INDUSTRIAL_RT,
            Bytes::from(pdu),
        )
        .with_vlan(VlanTag::RT);
        ctx.send(PortId(0), frame);
        ctx.timer_in(self.cycle, 0);
    }
}

/// Validates incoming safety PDUs and logs outcomes.
struct SafetyReceiver {
    consumer: SafetyConsumer,
    valid: u64,
    substituted: u64,
    cycle: NanoDur,
}

impl Device for SafetyReceiver {
    fn name(&self) -> &str {
        "safety-receiver"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.timer_in(self.cycle, 1);
    }
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _p: PortId, f: EthFrame) {
        let out = self.consumer.accept(ctx.now(), &f.payload);
        if self.consumer.is_failsafe() {
            self.substituted += 1;
            assert!(out.iter().all(|&b| b == 0), "substitution is all-zero");
        } else {
            self.valid += 1;
            assert_eq!(out[0], !out[1], "payload invariant held");
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.consumer.check(ctx.now());
        ctx.timer_in(self.cycle, 1);
    }
}

fn world(faults: FaultSpec, frames: u64, seed: u64) -> (Simulator, NodeId) {
    let mut sim = Simulator::new(seed);
    let cycle = NanoDur::from_millis(2);
    let tx = sim.add_node(SafetySender {
        producer: SafetyProducer::new(),
        value: 0,
        sent: 0,
        limit: frames,
        cycle,
        dst: MacAddr::local(2),
        src: MacAddr::local(1),
    });
    let rx = sim.add_node(SafetyReceiver {
        // Safety watchdog: 4 cycles.
        consumer: SafetyConsumer::new(2, NanoDur::from_millis(8)),
        valid: 0,
        substituted: 0,
        cycle,
    });
    sim.connect(
        tx,
        PortId(0),
        rx,
        PortId(0),
        LinkSpec::industrial_100m().with_faults(faults),
    );
    (sim, rx)
}

#[test]
fn clean_channel_all_valid() {
    let (mut sim, rx) = world(FaultSpec::none(), 500, 1);
    // Stop just after the last frame: a silent channel after the
    // stream ends would (correctly) trip the safety watchdog.
    sim.run_until(Nanos::from_millis(999));
    let r = sim.node_ref::<SafetyReceiver>(rx);
    assert_eq!(r.valid, 500);
    assert_eq!(r.substituted, 0);
    assert!(r.consumer.faults.is_empty());
}

#[test]
fn silence_after_stream_trips_watchdog() {
    let (mut sim, rx) = world(FaultSpec::none(), 500, 1);
    sim.run_until(Nanos::from_secs(2));
    let r = sim.node_ref::<SafetyReceiver>(rx);
    assert_eq!(r.valid, 500);
    assert_eq!(
        r.consumer.faults.len(),
        1,
        "exactly the end-of-stream watchdog"
    );
    assert_eq!(r.consumer.faults[0].1, SafetyFault::WatchdogExpired);
}

#[test]
fn corruption_caught_and_recovered() {
    let (mut sim, rx) = world(
        FaultSpec {
            corrupt_prob: 0.1,
            ..FaultSpec::none()
        },
        1000,
        2,
    );
    sim.run_until(Nanos::from_secs(3));
    let r = sim.node_ref::<SafetyReceiver>(rx);
    // Every corrupted PDU was caught by the CRC (none slipped through
    // as valid — the payload invariant assert in on_frame proves it),
    // and the consumer recovered on the next healthy PDU.
    let crc_faults = r
        .consumer
        .faults
        .iter()
        .filter(|(_, f)| *f == SafetyFault::Crc)
        .count() as u64;
    assert!(crc_faults > 50, "{crc_faults} corruptions caught");
    assert_eq!(crc_faults, r.substituted);
    assert_eq!(r.valid + r.substituted, 1000);
}

#[test]
fn duplication_caught_as_replay() {
    let (mut sim, rx) = world(
        FaultSpec {
            duplicate_prob: 0.1,
            ..FaultSpec::none()
        },
        1000,
        3,
    );
    sim.run_until(Nanos::from_secs(3));
    let r = sim.node_ref::<SafetyReceiver>(rx);
    let replays = r
        .consumer
        .faults
        .iter()
        .filter(|(_, f)| *f == SafetyFault::SignOfLife)
        .count();
    assert!(replays > 50, "{replays} replays caught");
}

#[test]
fn loss_burst_trips_safety_watchdog() {
    // Heavy loss: bursts longer than the 4-cycle safety watchdog will
    // occur; the consumer must go fail-safe and recover.
    let (mut sim, rx) = world(FaultSpec::lossy(0.5), 2000, 4);
    sim.run_until(Nanos::from_secs(5));
    let r = sim.node_ref::<SafetyReceiver>(rx);
    let wd = r
        .consumer
        .faults
        .iter()
        .filter(|(_, f)| *f == SafetyFault::WatchdogExpired)
        .count();
    assert!(wd >= 1, "at least one loss burst tripped the watchdog");
    assert!(r.valid > 500, "but plenty of healthy PDUs still flowed");
}

#[test]
fn reordering_detected_by_sign_of_life() {
    let (mut sim, rx) = world(
        FaultSpec {
            reorder_prob: 0.05,
            reorder_max_delay: NanoDur::from_millis(5),
            ..FaultSpec::none()
        },
        1000,
        5,
    );
    sim.run_until(Nanos::from_secs(3));
    let r = sim.node_ref::<SafetyReceiver>(rx);
    // A delayed-then-delivered PDU arrives with an older counter: the
    // backward step is rejected.
    let sol = r
        .consumer
        .faults
        .iter()
        .filter(|(_, f)| *f == SafetyFault::SignOfLife)
        .count();
    assert!(sol > 5, "{sol} stale deliveries rejected");
}
