//! Property-based tests over the workspace's core invariants.

use bytes::Bytes;
use proptest::prelude::*;
use steelworks::prelude::*;

// ---------------------------------------------------------------------
// netsim: conservation, determinism, stats invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every frame sent over a lossy link is either delivered or
    /// dropped — never duplicated into the void or lost untracked.
    #[test]
    fn frames_conserved_under_loss(
        seed in 0u64..1_000,
        drop_prob in 0.0f64..0.9,
        frames in 1u64..200,
        payload in 0usize..1400,
    ) {
        let mut sim = Simulator::new(seed);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                payload,
                NanoDur::from_micros(50),
            )
            .with_limit(frames),
        );
        let dst = sim.add_node(CounterSink::new("dst"));
        sim.connect(
            src,
            PortId(0),
            dst,
            PortId(0),
            LinkSpec::gigabit().with_faults(FaultSpec::lossy(drop_prob)),
        );
        sim.run_to_quiescence();
        let c = sim.trace().counters();
        prop_assert_eq!(c.sent, frames);
        prop_assert_eq!(c.delivered + c.dropped, frames);
        prop_assert_eq!(sim.node_ref::<CounterSink>(dst).count(), c.delivered);
    }

    /// Same seed ⇒ bit-identical counters; different seeds may differ.
    #[test]
    fn simulation_deterministic(seed in 0u64..10_000) {
        let run = |s| {
            let mut sim = Simulator::new(s);
            let src = sim.add_node(
                PeriodicSource::new(
                    "src",
                    MacAddr::local(1),
                    MacAddr::local(2),
                    100,
                    NanoDur::from_micros(80),
                )
                .with_limit(64)
                .with_jitter(NanoDur::from_micros(30)),
            );
            let dst = sim.add_node(CounterSink::new("dst"));
            sim.connect(
                src,
                PortId(0),
                dst,
                PortId(0),
                LinkSpec::gigabit().with_faults(FaultSpec::lossy(0.2)),
            );
            sim.run_to_quiescence();
            (
                sim.trace().counters(),
                sim.node_ref::<CounterSink>(dst).arrivals().to_vec(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Quantiles stay within [min, max] and are monotone in q.
    #[test]
    fn sample_set_quantiles_sane(xs in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
        let mut s = SampleSet::new();
        for &x in &xs {
            s.push(x);
        }
        let min = s.min().unwrap();
        let max = s.max().unwrap();
        let mut last = min;
        for i in 0..=10 {
            let q = s.quantile(i as f64 / 10.0).unwrap();
            prop_assert!(q >= min && q <= max);
            prop_assert!(q >= last);
            last = q;
        }
        let cdf = s.cdf(50);
        for w in cdf.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    /// Time arithmetic: quantization floors and never exceeds input.
    #[test]
    fn quantize_floors(t in 0u64..u64::MAX / 2, step in 1u64..1_000_000) {
        let q = Nanos(t).quantize(NanoDur(step));
        prop_assert!(q.as_nanos() <= t);
        prop_assert_eq!(q.as_nanos() % step, 0);
        prop_assert!(t - q.as_nanos() < step);
    }
}

// ---------------------------------------------------------------------
// rtnet: wire-format totality and roundtrips
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Parsing arbitrary bytes never panics.
    #[test]
    fn rt_parse_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = RtPayload::parse(&bytes);
    }

    /// Cyclic frames roundtrip for arbitrary field values.
    #[test]
    fn rt_cyclic_roundtrip(
        fid in any::<u16>(),
        cycle in any::<u16>(),
        run in any::<bool>(),
        problem in any::<bool>(),
        primary in any::<bool>(),
        data in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let p = RtPayload::CyclicData {
            frame_id: FrameId(fid),
            cycle,
            status: DataStatus { run, problem, primary },
            data: Bytes::from(data),
        };
        prop_assert_eq!(RtPayload::parse(&p.to_bytes()).unwrap(), p);
    }

    /// Connect requests roundtrip for arbitrary parameters.
    #[test]
    fn rt_connect_roundtrip(
        fid in any::<u16>(),
        cycle_us in 1u32..1_000_000,
        factor in 1u8..=255,
        out_len in any::<u16>(),
        in_len in any::<u16>(),
    ) {
        let p = RtPayload::ConnectReq {
            frame_id: FrameId(fid),
            params: CrParams {
                cycle_time: NanoDur::from_micros(cycle_us as u64),
                watchdog_factor: factor,
                output_len: out_len,
                input_len: in_len,
            },
        };
        prop_assert_eq!(RtPayload::parse(&p.to_bytes()).unwrap(), p);
    }

    /// A watchdog fed at least every (factor × cycle) never expires.
    #[test]
    fn watchdog_never_expires_when_fed(
        cycle_us in 100u64..10_000,
        factor in 1u8..10,
        feeds in 2usize..50,
    ) {
        let cycle = NanoDur::from_micros(cycle_us);
        let mut wd = Watchdog::new(cycle, factor);
        let mut now = Nanos::ZERO;
        wd.feed(now);
        for _ in 0..feeds {
            now += cycle * factor as u64; // exactly at the bound
            prop_assert!(!wd.check(now), "gap equal to timeout must not expire");
            wd.feed(now);
        }
        prop_assert_eq!(wd.expirations(), 0);
    }
}

// ---------------------------------------------------------------------
// xdpsim: verifier totality and runtime safety
// ---------------------------------------------------------------------

fn arb_insn() -> impl Strategy<Value = Insn> {
    let reg = prop_oneof![
        Just(Reg::R0),
        Just(Reg::R1),
        Just(Reg::R2),
        Just(Reg::R5),
        Just(Reg::R6),
        Just(Reg::R10),
    ];
    let size = prop_oneof![Just(Size::B), Just(Size::H), Just(Size::W), Just(Size::DW)];
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::And),
        Just(AluOp::Rsh),
    ];
    let cmp = prop_oneof![Just(CmpOp::Eq), Just(CmpOp::Gt), Just(CmpOp::SLt)];
    let helper = prop_oneof![
        Just(Helper::KtimeGetNs),
        Just(Helper::MapLookup),
        Just(Helper::RingbufReserve),
        Just(Helper::RingbufSubmit),
        Just(Helper::GetSmpProcessorId),
    ];
    prop_oneof![
        (reg.clone(), any::<i32>()).prop_map(|(r, v)| Insn::MovImm(r, v as i64)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Insn::MovReg(a, b)),
        (alu, reg.clone(), any::<i32>()).prop_map(|(op, r, v)| Insn::AluImm(op, r, v as i64)),
        (size.clone(), reg.clone(), reg.clone(), -64i16..64)
            .prop_map(|(s, d, b, o)| Insn::Load(s, d, b, o)),
        (size, reg.clone(), -64i16..64, reg.clone())
            .prop_map(|(s, b, o, v)| Insn::Store(s, b, o, v)),
        (cmp, reg.clone(), any::<i32>(), 0i16..8)
            .prop_map(|(c, r, v, o)| Insn::JmpImm(c, r, v as i64, o)),
        (0i16..8).prop_map(Insn::Ja),
        helper.prop_map(Insn::Call),
        Just(Insn::Exit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The verifier never panics, whatever the instruction stream.
    #[test]
    fn verifier_total(insns in proptest::collection::vec(arb_insn(), 0..40)) {
        let prog = Program { name: "fuzz".into(), insns };
        let (maps, _) = standard_maps();
        let _ = verify(&prog, &maps);
    }

    /// The interpreter never panics either — worst case it traps to
    /// XDP_ABORTED (run without verification, belt and braces).
    #[test]
    fn vm_total(
        insns in proptest::collection::vec(arb_insn(), 1..40),
        packet in proptest::collection::vec(any::<u8>(), 14..256),
        seed in any::<u64>(),
    ) {
        let prog = Program { name: "fuzz".into(), insns };
        let (mut maps, _) = standard_maps();
        let mut pkt = packet;
        let cm = CostModel::default();
        let mut rng = SimRng::seed_from_u64(seed);
        let r = steelworks::xdpsim::vm::run(
            &prog,
            &mut pkt,
            XdpContext::default(),
            &mut maps,
            &cm,
            0,
            0,
            &mut rng,
        );
        prop_assert!(r.cost.ns.is_finite());
    }

    /// Programs that pass the verifier never trap at runtime. This is
    /// the verifier's entire contract; it must hold for any accepted
    /// program and any packet.
    #[test]
    fn verified_programs_never_trap(
        insns in proptest::collection::vec(arb_insn(), 1..40),
        packet in proptest::collection::vec(any::<u8>(), 14..256),
        seed in any::<u64>(),
    ) {
        let prog = Program { name: "fuzz".into(), insns };
        let (mut maps, _) = standard_maps();
        if verify(&prog, &maps).is_ok() {
            let mut pkt = packet;
            let cm = CostModel::default();
            let mut rng = SimRng::seed_from_u64(seed);
            let r = steelworks::xdpsim::vm::run(
                &prog,
                &mut pkt,
                XdpContext::default(),
                &mut maps,
                &cm,
                0,
                0,
                &mut rng,
            );
            prop_assert!(r.trap.is_none(), "verified program trapped: {:?}", r.trap);
        }
    }
}

// ---------------------------------------------------------------------
// topo: builders, routing, scheduling
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every builder yields a connected graph and valid shortest paths
    /// between arbitrary client pairs.
    #[test]
    fn builders_connected_and_routable(
        n in 2usize..40,
        a in 0usize..40,
        b in 0usize..40,
    ) {
        for built in [
            line(n, EdgeAttr::gigabit_local()),
            industrial_ring(n, EdgeAttr::gigabit_local()),
            star(n, EdgeAttr::gigabit_local()),
        ] {
            prop_assert!(built.graph.is_connected());
            let ca = built.clients[a % built.clients.len()];
            let cb = built.clients[b % built.clients.len()];
            let p = shortest_path(&built.graph, ca, cb, &HopWeight).unwrap();
            prop_assert_eq!(p.nodes.first(), Some(&ca));
            prop_assert_eq!(p.nodes.last(), Some(&cb));
            // Path edges must connect consecutive nodes.
            for (i, e) in p.edges.iter().enumerate() {
                let (x, y, _) = built.graph.edge(*e);
                let (u, v) = (p.nodes[i], p.nodes[i + 1]);
                prop_assert!((x == u && y == v) || (x == v && y == u));
            }
        }
    }

    /// Whenever the TSN scheduler returns a schedule, the independent
    /// validator accepts it.
    #[test]
    fn schedules_always_validate(
        flow_specs in proptest::collection::vec(
            (1u64..5, 1u64..80, 0u32..4), 1..8
        ),
    ) {
        let flows: Vec<FlowSpec> = flow_specs
            .iter()
            .enumerate()
            .map(|(i, &(period_ms, tx_us, port))| FlowSpec {
                name: format!("f{i}"),
                period: NanoDur::from_millis(period_ms),
                tx_time: NanoDur::from_micros(tx_us),
                path: vec![(EgressId(port), NanoDur::ZERO)],
            })
            .collect();
        if let Ok(sched) = schedule(&flows, NanoDur::from_micros(10)) {
            prop_assert!(validate(&flows, &sched));
            for (f, off) in flows.iter().zip(&sched.offsets) {
                prop_assert!(*off + f.tx_time <= f.period);
            }
        }
    }

    /// The ML-aware designer covers every client exactly once and
    /// respects its cluster bounds.
    #[test]
    fn designer_covers_clients(n in 1usize..300, mbps in 1.0f64..200.0) {
        let cfg = DesignConfig::default();
        let d = design(
            n,
            ClientProfile {
                bps_per_client: mbps * 1e6,
                mean_packet: 1200,
            },
            &cfg,
        );
        prop_assert_eq!(d.built.clients.len(), n);
        prop_assert_eq!(d.assignment.len(), n);
        prop_assert!(d.built.graph.is_connected());
        prop_assert!(d.cluster_size >= 1);
        prop_assert!(d.cluster_size <= cfg.cluster_bounds.1);
    }
}

// ---------------------------------------------------------------------
// corpus: matcher totality and injection consistency
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tokenizer/matcher never panic on arbitrary text.
    #[test]
    fn matcher_total(text in "\\PC{0,200}") {
        let toks = tokenize(&text);
        for g in GROUPS {
            let _ = count_group(g.terms, &text);
        }
        let _ = toks;
    }

    /// Counting a term in text built from `k` copies yields exactly k.
    #[test]
    fn exact_injection_count(k in 0usize..20) {
        let text = vec!["industrial network"; k].join(" filler word ");
        let n = count_group(&["industrial network"], &text);
        prop_assert_eq!(n as usize, k);
    }
}

// ---------------------------------------------------------------------
// mlnet / availability: model monotonicity
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Accuracy is monotone non-decreasing in quality and
    /// non-increasing in loss, for both applications.
    #[test]
    fn accuracy_monotone(
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
        l1 in 0.0f64..1.0,
        l2 in 0.0f64..1.0,
    ) {
        for app in MlApp::ALL {
            let p = app.profile();
            let acc = |q, l| accuracy(&p, &InputDegradation {
                quality: q,
                frame_loss: l,
                jitter: NanoDur::ZERO,
            });
            let (qlo, qhi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(acc(qlo, 0.0) <= acc(qhi, 0.0) + 1e-12);
            let (llo, lhi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
            prop_assert!(acc(1.0, lhi) <= acc(1.0, llo) + 1e-12);
        }
    }

    /// Availability composition laws: parallel ≥ max, series ≤ min.
    #[test]
    fn availability_composition(
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let s = series(&[a, b]);
        let p = parallel(&[a, b]);
        prop_assert!(s <= a.min(b) + 1e-12);
        prop_assert!(p + 1e-12 >= a.max(b));
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!(p <= 1.0 + 1e-12);
    }

    /// Downtime/availability conversions are inverse of each other.
    #[test]
    fn downtime_roundtrip(a in 0.0f64..1.0) {
        let d = downtime_per_year(a);
        let a2 = availability_for_downtime(d);
        prop_assert!((a - a2).abs() < 1e-6);
    }
}


// ---------------------------------------------------------------------
// rtnet TSN + safety: gating consistency and PDU totality
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `next_open` agrees with `is_open`: the instant it returns is
    /// open for the class, and nothing between `t` and that instant is.
    #[test]
    fn gcl_next_open_consistent(
        cycle_us in 100u64..5_000,
        window_us in 1u64..99,
        t_us in 0u64..20_000,
        tc in 0u8..8,
    ) {
        let cycle = NanoDur::from_micros(cycle_us);
        let window = NanoDur::from_micros(cycle_us * window_us / 100).max(NanoDur(1));
        prop_assume!(window < cycle);
        let gcl = GateControlList::rt_window(Nanos::ZERO, cycle, window);
        let t = Nanos::from_micros(t_us);
        let (open_at, remaining) = gcl.next_open(t, tc);
        prop_assert!(open_at >= t);
        prop_assert!(gcl.is_open(open_at, tc), "returned instant must be open");
        prop_assert!(remaining.as_nanos() > 0);
        // The window it reports stays open to its end (sample a point).
        let mid = open_at + NanoDur(remaining.as_nanos() / 2);
        prop_assert!(gcl.is_open(mid, tc));
        // And if t itself was open, next_open must not move.
        if gcl.is_open(t, tc) {
            prop_assert_eq!(open_at, t);
        }
    }

    /// Safety PDUs: parsing arbitrary bytes never panics, and every
    /// single-bit corruption of a valid PDU is rejected.
    #[test]
    fn safety_pdu_bit_flip_always_detected(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        sol in any::<u16>(),
        flip_bit in 0usize..512,
    ) {
        let pdu = SafetyPdu {
            sign_of_life: sol,
            payload,
        };
        let mut bytes = pdu.to_bytes();
        prop_assert_eq!(SafetyPdu::parse(&bytes), Some(pdu.clone()));
        let bit = flip_bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert_eq!(
            SafetyPdu::parse(&bytes),
            None,
            "flipped bit {} must break the CRC", bit
        );
    }

    /// The TSN switch + GCL end to end: under a random RT window and
    /// random frame sizes, RT frames are only ever *sent* inside the
    /// window (checked in unit tests) and never lost.
    #[test]
    fn tas_never_loses_rt_frames(
        window_frac in 10u64..90,
        payload in 20usize..250,
        frames in 5u64..40,
        seed in 0u64..500,
    ) {
        let mut sim = Simulator::new(seed);
        let cycle = NanoDur::from_millis(1);
        let window = NanoDur(cycle.as_nanos() * window_frac / 100);
        let gcl = GateControlList::rt_window(Nanos::ZERO, cycle, window);
        let src_mac = MacAddr::local(1);
        let dst_mac = MacAddr::local(2);
        let src = sim.add_node(
            PeriodicSource::new("rt", src_mac, dst_mac, payload, cycle)
                .with_vlan(VlanTag::RT)
                .with_limit(frames),
        );
        let sink = sim.add_node(CounterSink::new("sink"));
        let sw = sim.add_node({
            let mut s = TsnSwitch::new("tsn", 4, gcl);
            s.learn_static(dst_mac, PortId(1));
            s
        });
        sim.connect(src, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(sink, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(frames + 100));
        prop_assert_eq!(sim.node_ref::<CounterSink>(sink).count(), frames);
    }
}

// ---------------------------------------------------------------------
// dataplane: LPM agrees with a brute-force reference
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lpm_matches_reference(
        prefixes in proptest::collection::vec((any::<u32>(), 0u32..=32), 1..12),
        probe in any::<u32>(),
    ) {
        use steelworks::dataplane::prelude::*;
        let mut table = Table::new(
            "lpm",
            vec![Field::EthDst],
            MatchKind::Lpm,
            ActionSpec::drop(),
        );
        for (i, &(value, len)) in prefixes.iter().enumerate() {
            table.insert(Entry {
                keys: vec![TernaryKey::prefix(value as u64, len, 32)],
                priority: 0,
                action: ActionSpec::forward(PortId(i)),
            });
        }
        let mut fs = FieldSet::default();
        fs.set(Field::EthDst, probe as u64);
        let got = table.lookup(&fs).clone();

        // Reference: best (longest) matching prefix, first-inserted
        // wins ties (stable sort in the table).
        let mut best: Option<(u32, usize)> = None;
        for (i, &(value, len)) in prefixes.iter().enumerate() {
            let mask = if len == 0 { 0u32 } else { !0u32 << (32 - len) };
            if probe & mask == value & mask {
                let better = match best {
                    None => true,
                    Some((blen, _)) => len > blen,
                };
                if better {
                    best = Some((len, i));
                }
            }
        }
        match best {
            None => prop_assert!(got.is_drop()),
            Some((len, _)) => {
                // The chosen entry must have that prefix length and match.
                prop_assert!(!got.is_drop());
                let port = match got.primitives()[0] {
                    Primitive::Forward(p) => p.0,
                    _ => unreachable!(),
                };
                let (v, l) = prefixes[port];
                prop_assert_eq!(l, len, "must pick a longest prefix");
                let mask = if l == 0 { 0u32 } else { !0u32 << (32 - l) };
                prop_assert_eq!(probe & mask, v & mask);
            }
        }
    }
}
