//! Property-based tests over the workspace's core invariants.
//!
//! Formerly driven by `proptest`; now driven by seeded [`SimRng`] case
//! loops so the whole workspace builds offline with zero external
//! crates. Each test keeps its original invariant and case count, and
//! every assertion carries the case index — the generators are fully
//! deterministic, so a failing case replays by construction.

use steelworks::netsim::bytes::Bytes;
use steelworks::prelude::*;

// ---------------------------------------------------------------------
// Deterministic case generators (proptest strategy stand-ins)
// ---------------------------------------------------------------------

/// Uniform f64 in `[lo, hi)`.
fn f64_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    lo + rng.f64() * (hi - lo)
}

/// Vec of arbitrary bytes with length in `[min_len, max_len)`.
fn bytes_vec(rng: &mut SimRng, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = rng.range(min_len as u64, max_len as u64) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Arbitrary printable text of up to `max_chars` chars — the stand-in
/// for proptest's `\PC{0,n}` (any non-control char) strategy: mixes
/// ASCII, Latin-1 supplement and arbitrary BMP scalars.
fn printable_text(rng: &mut SimRng, max_chars: usize) -> String {
    let n = rng.below(max_chars as u64 + 1) as usize;
    let mut s = String::new();
    for _ in 0..n {
        let c = match rng.below(4) {
            // ASCII printable.
            0 | 1 => (0x20 + rng.below(0x5f) as u32) as u8 as char,
            // Latin-1 supplement.
            2 => char::from_u32(0xA1 + rng.below(0xFF) as u32).unwrap_or('ß'),
            // Arbitrary BMP scalar, skipping controls and surrogates.
            _ => match char::from_u32(rng.below(0xFFFF) as u32) {
                Some(c) if !c.is_control() => c,
                _ => '网',
            },
        };
        if !c.is_control() {
            s.push(c);
        }
    }
    s
}

// ---------------------------------------------------------------------
// netsim: conservation, determinism, stats invariants
// ---------------------------------------------------------------------

/// Every frame sent over a lossy link is either delivered or
/// dropped — never duplicated into the void or lost untracked.
#[test]
fn frames_conserved_under_loss() {
    let mut rng = SimRng::seed_from_u64(0x01);
    for case in 0..64 {
        let seed = rng.below(1_000);
        let drop_prob = f64_in(&mut rng, 0.0, 0.9);
        let frames = rng.range(1, 200);
        let payload = rng.below(1400) as usize;
        let mut sim = Simulator::new(seed);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                payload,
                NanoDur::from_micros(50),
            )
            .with_limit(frames),
        );
        let dst = sim.add_node(CounterSink::new("dst"));
        sim.connect(
            src,
            PortId(0),
            dst,
            PortId(0),
            LinkSpec::gigabit().with_faults(FaultSpec::lossy(drop_prob)),
        );
        sim.run_to_quiescence();
        let c = sim.trace().counters();
        assert_eq!(c.sent, frames, "case {case}");
        assert_eq!(c.delivered + c.dropped, frames, "case {case}");
        assert_eq!(
            sim.node_ref::<CounterSink>(dst).count(),
            c.delivered,
            "case {case}"
        );
    }
}

/// Same seed ⇒ bit-identical counters; different seeds may differ.
#[test]
fn simulation_deterministic() {
    let mut rng = SimRng::seed_from_u64(0x02);
    for case in 0..64 {
        let seed = rng.below(10_000);
        let run = |s| {
            let mut sim = Simulator::new(s);
            let src = sim.add_node(
                PeriodicSource::new(
                    "src",
                    MacAddr::local(1),
                    MacAddr::local(2),
                    100,
                    NanoDur::from_micros(80),
                )
                .with_limit(64)
                .with_jitter(NanoDur::from_micros(30)),
            );
            let dst = sim.add_node(CounterSink::new("dst"));
            sim.connect(
                src,
                PortId(0),
                dst,
                PortId(0),
                LinkSpec::gigabit().with_faults(FaultSpec::lossy(0.2)),
            );
            sim.run_to_quiescence();
            (
                sim.trace().counters(),
                sim.node_ref::<CounterSink>(dst).arrivals().to_vec(),
            )
        };
        assert_eq!(run(seed), run(seed), "case {case}");
    }
}

/// Quantiles stay within [min, max] and are monotone in q.
#[test]
fn sample_set_quantiles_sane() {
    let mut rng = SimRng::seed_from_u64(0x03);
    for case in 0..64 {
        let n = rng.range(1, 200);
        let xs: Vec<f64> = (0..n).map(|_| f64_in(&mut rng, -1e9, 1e9)).collect();
        let mut s = SampleSet::new();
        for &x in &xs {
            s.push(x);
        }
        let min = s.min().unwrap();
        let max = s.max().unwrap();
        let mut last = min;
        for i in 0..=10 {
            let q = s.quantile(i as f64 / 10.0).unwrap();
            assert!(q >= min && q <= max, "case {case}");
            assert!(q >= last, "case {case}");
            last = q;
        }
        let cdf = s.cdf(50);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1, "case {case}");
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9, "case {case}");
    }
}

/// Time arithmetic: quantization floors and never exceeds input.
#[test]
fn quantize_floors() {
    let mut rng = SimRng::seed_from_u64(0x04);
    for case in 0..64 {
        let t = rng.below(u64::MAX / 2);
        let step = rng.range(1, 1_000_000);
        let q = Nanos(t).quantize(NanoDur(step));
        assert!(q.as_nanos() <= t, "case {case}");
        assert_eq!(q.as_nanos() % step, 0, "case {case}");
        assert!(t - q.as_nanos() < step, "case {case}");
    }
}

// ---------------------------------------------------------------------
// rtnet: wire-format totality and roundtrips
// ---------------------------------------------------------------------

/// Parsing arbitrary bytes never panics.
#[test]
fn rt_parse_total() {
    let mut rng = SimRng::seed_from_u64(0x05);
    for _case in 0..256 {
        let bytes = bytes_vec(&mut rng, 0, 64);
        let _ = RtPayload::parse(&bytes);
    }
}

/// Cyclic frames roundtrip for arbitrary field values.
#[test]
fn rt_cyclic_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x06);
    for case in 0..256 {
        let p = RtPayload::CyclicData {
            frame_id: FrameId(rng.next_u32() as u16),
            cycle: rng.next_u32() as u16,
            status: DataStatus {
                run: rng.chance(0.5),
                problem: rng.chance(0.5),
                primary: rng.chance(0.5),
            },
            data: Bytes::from(bytes_vec(&mut rng, 0, 64)),
        };
        assert_eq!(RtPayload::parse(&p.to_bytes()).unwrap(), p, "case {case}");
    }
}

/// Connect requests roundtrip for arbitrary parameters.
#[test]
fn rt_connect_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x07);
    for case in 0..256 {
        let p = RtPayload::ConnectReq {
            frame_id: FrameId(rng.next_u32() as u16),
            params: CrParams {
                cycle_time: NanoDur::from_micros(rng.range(1, 1_000_000)),
                watchdog_factor: rng.range(1, 256) as u8,
                output_len: rng.next_u32() as u16,
                input_len: rng.next_u32() as u16,
            },
        };
        assert_eq!(RtPayload::parse(&p.to_bytes()).unwrap(), p, "case {case}");
    }
}

/// A watchdog fed at least every (factor × cycle) never expires.
#[test]
fn watchdog_never_expires_when_fed() {
    let mut rng = SimRng::seed_from_u64(0x08);
    for case in 0..256 {
        let cycle = NanoDur::from_micros(rng.range(100, 10_000));
        let factor = rng.range(1, 10) as u8;
        let feeds = rng.range(2, 50) as usize;
        let mut wd = Watchdog::new(cycle, factor);
        let mut now = Nanos::ZERO;
        wd.feed(now);
        for _ in 0..feeds {
            now += cycle * factor as u64; // exactly at the bound
            assert!(
                !wd.check(now),
                "case {case}: gap equal to timeout must not expire"
            );
            wd.feed(now);
        }
        assert_eq!(wd.expirations(), 0, "case {case}");
    }
}

// ---------------------------------------------------------------------
// xdpsim: verifier totality and runtime safety
// ---------------------------------------------------------------------

fn arb_insn(rng: &mut SimRng) -> Insn {
    const REGS: [Reg; 6] = [Reg::R0, Reg::R1, Reg::R2, Reg::R5, Reg::R6, Reg::R10];
    const SIZES: [Size; 4] = [Size::B, Size::H, Size::W, Size::DW];
    const ALUS: [AluOp; 6] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::And,
        AluOp::Rsh,
    ];
    const CMPS: [CmpOp; 3] = [CmpOp::Eq, CmpOp::Gt, CmpOp::SLt];
    const HELPERS: [Helper; 5] = [
        Helper::KtimeGetNs,
        Helper::MapLookup,
        Helper::RingbufReserve,
        Helper::RingbufSubmit,
        Helper::GetSmpProcessorId,
    ];
    let reg = |rng: &mut SimRng| *rng.pick(&REGS);
    let imm = |rng: &mut SimRng| rng.next_u32() as i32 as i64;
    let off = |rng: &mut SimRng| rng.range(0, 128) as i16 - 64;
    match rng.below(9) {
        0 => Insn::MovImm(reg(rng), imm(rng)),
        1 => Insn::MovReg(reg(rng), reg(rng)),
        2 => Insn::AluImm(*rng.pick(&ALUS), reg(rng), imm(rng)),
        3 => Insn::Load(*rng.pick(&SIZES), reg(rng), reg(rng), off(rng)),
        4 => Insn::Store(*rng.pick(&SIZES), reg(rng), off(rng), reg(rng)),
        5 => Insn::JmpImm(*rng.pick(&CMPS), reg(rng), imm(rng), rng.below(8) as i16),
        6 => Insn::Ja(rng.below(8) as i16),
        7 => Insn::Call(*rng.pick(&HELPERS)),
        _ => Insn::Exit,
    }
}

fn arb_program(rng: &mut SimRng, min_len: usize, max_len: usize) -> Program {
    let n = rng.range(min_len as u64, max_len as u64) as usize;
    Program {
        name: "fuzz".into(),
        insns: (0..n).map(|_| arb_insn(rng)).collect(),
    }
}

/// The verifier never panics, whatever the instruction stream.
#[test]
fn verifier_total() {
    let mut rng = SimRng::seed_from_u64(0x09);
    for _case in 0..512 {
        let prog = arb_program(&mut rng, 0, 40);
        let (maps, _) = standard_maps();
        let _ = verify(&prog, &maps);
    }
}

/// The interpreter never panics either — worst case it traps to
/// XDP_ABORTED (run without verification, belt and braces).
#[test]
fn vm_total() {
    let mut rng = SimRng::seed_from_u64(0x0A);
    for case in 0..512 {
        let prog = arb_program(&mut rng, 1, 40);
        let mut pkt = bytes_vec(&mut rng, 14, 256);
        let seed = rng.next_u64();
        let (mut maps, _) = standard_maps();
        let cm = CostModel::default();
        let mut vm_rng = SimRng::seed_from_u64(seed);
        let r = steelworks::xdpsim::vm::run(
            &prog,
            &mut pkt,
            XdpContext::default(),
            &mut maps,
            &cm,
            0,
            0,
            &mut vm_rng,
        );
        assert!(r.cost.ns.is_finite(), "case {case}");
    }
}

/// Programs that pass the verifier never trap at runtime. This is
/// the verifier's entire contract; it must hold for any accepted
/// program and any packet.
#[test]
fn verified_programs_never_trap() {
    let mut rng = SimRng::seed_from_u64(0x0B);
    for case in 0..512 {
        let prog = arb_program(&mut rng, 1, 40);
        let mut pkt = bytes_vec(&mut rng, 14, 256);
        let seed = rng.next_u64();
        let (mut maps, _) = standard_maps();
        if verify(&prog, &maps).is_ok() {
            let cm = CostModel::default();
            let mut vm_rng = SimRng::seed_from_u64(seed);
            let r = steelworks::xdpsim::vm::run(
                &prog,
                &mut pkt,
                XdpContext::default(),
                &mut maps,
                &cm,
                0,
                0,
                &mut vm_rng,
            );
            assert!(
                r.trap.is_none(),
                "case {case}: verified program trapped: {:?}",
                r.trap
            );
        }
    }
}

// ---------------------------------------------------------------------
// topo: builders, routing, scheduling
// ---------------------------------------------------------------------

/// Every builder yields a connected graph and valid shortest paths
/// between arbitrary client pairs.
#[test]
fn builders_connected_and_routable() {
    let mut rng = SimRng::seed_from_u64(0x0C);
    for case in 0..64 {
        let n = rng.range(2, 40) as usize;
        let a = rng.below(40) as usize;
        let b = rng.below(40) as usize;
        for built in [
            line(n, EdgeAttr::gigabit_local()),
            industrial_ring(n, EdgeAttr::gigabit_local()),
            star(n, EdgeAttr::gigabit_local()),
        ] {
            assert!(built.graph.is_connected(), "case {case}");
            let ca = built.clients[a % built.clients.len()];
            let cb = built.clients[b % built.clients.len()];
            let p = shortest_path(&built.graph, ca, cb, &HopWeight).unwrap();
            assert_eq!(p.nodes.first(), Some(&ca), "case {case}");
            assert_eq!(p.nodes.last(), Some(&cb), "case {case}");
            // Path edges must connect consecutive nodes.
            for (i, e) in p.edges.iter().enumerate() {
                let (x, y, _) = built.graph.edge(*e);
                let (u, v) = (p.nodes[i], p.nodes[i + 1]);
                assert!((x == u && y == v) || (x == v && y == u), "case {case}");
            }
        }
    }
}

/// Whenever the TSN scheduler returns a schedule, the independent
/// validator accepts it.
#[test]
fn schedules_always_validate() {
    let mut rng = SimRng::seed_from_u64(0x0D);
    for case in 0..64 {
        let nflows = rng.range(1, 8) as usize;
        let flows: Vec<FlowSpec> = (0..nflows)
            .map(|i| FlowSpec {
                name: format!("f{i}"),
                period: NanoDur::from_millis(rng.range(1, 5)),
                tx_time: NanoDur::from_micros(rng.range(1, 80)),
                path: vec![(EgressId(rng.below(4) as u32), NanoDur::ZERO)],
            })
            .collect();
        if let Ok(sched) = schedule(&flows, NanoDur::from_micros(10)) {
            assert!(validate(&flows, &sched), "case {case}");
            for (f, off) in flows.iter().zip(&sched.offsets) {
                assert!(*off + f.tx_time <= f.period, "case {case}");
            }
        }
    }
}

/// The ML-aware designer covers every client exactly once and
/// respects its cluster bounds.
#[test]
fn designer_covers_clients() {
    let mut rng = SimRng::seed_from_u64(0x0E);
    for case in 0..64 {
        let n = rng.range(1, 300) as usize;
        let mbps = f64_in(&mut rng, 1.0, 200.0);
        let cfg = DesignConfig::default();
        let d = design(
            n,
            ClientProfile {
                bps_per_client: mbps * 1e6,
                mean_packet: 1200,
            },
            &cfg,
        );
        assert_eq!(d.built.clients.len(), n, "case {case}");
        assert_eq!(d.assignment.len(), n, "case {case}");
        assert!(d.built.graph.is_connected(), "case {case}");
        assert!(d.cluster_size >= 1, "case {case}");
        assert!(d.cluster_size <= cfg.cluster_bounds.1, "case {case}");
    }
}

// ---------------------------------------------------------------------
// corpus: matcher totality and injection consistency
// ---------------------------------------------------------------------

/// The tokenizer/matcher never panic on arbitrary text.
#[test]
fn matcher_total() {
    let mut rng = SimRng::seed_from_u64(0x0F);
    for _case in 0..128 {
        let text = printable_text(&mut rng, 200);
        let toks = tokenize(&text);
        for g in GROUPS {
            let _ = count_group(g.terms, &text);
        }
        let _ = toks;
    }
}

/// Counting a term in text built from `k` copies yields exactly k.
#[test]
fn exact_injection_count() {
    let mut rng = SimRng::seed_from_u64(0x10);
    for case in 0..128 {
        let k = rng.below(20) as usize;
        let text = vec!["industrial network"; k].join(" filler word ");
        let n = count_group(&["industrial network"], &text);
        assert_eq!(n as usize, k, "case {case}");
    }
}

// ---------------------------------------------------------------------
// mlnet / availability: model monotonicity
// ---------------------------------------------------------------------

/// Accuracy is monotone non-decreasing in quality and
/// non-increasing in loss, for both applications.
#[test]
fn accuracy_monotone() {
    let mut rng = SimRng::seed_from_u64(0x11);
    for case in 0..64 {
        let q1 = rng.f64();
        let q2 = rng.f64();
        let l1 = rng.f64();
        let l2 = rng.f64();
        for app in MlApp::ALL {
            let p = app.profile();
            let acc = |q, l| {
                accuracy(
                    &p,
                    &InputDegradation {
                        quality: q,
                        frame_loss: l,
                        jitter: NanoDur::ZERO,
                    },
                )
            };
            let (qlo, qhi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            assert!(acc(qlo, 0.0) <= acc(qhi, 0.0) + 1e-12, "case {case}");
            let (llo, lhi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
            assert!(acc(1.0, lhi) <= acc(1.0, llo) + 1e-12, "case {case}");
        }
    }
}

/// Availability composition laws: parallel ≥ max, series ≤ min.
#[test]
fn availability_composition() {
    let mut rng = SimRng::seed_from_u64(0x12);
    for case in 0..64 {
        let a = rng.f64();
        let b = rng.f64();
        let s = series(&[a, b]);
        let p = parallel(&[a, b]);
        assert!(s <= a.min(b) + 1e-12, "case {case}");
        assert!(p + 1e-12 >= a.max(b), "case {case}");
        assert!((0.0..=1.0).contains(&s), "case {case}");
        assert!(p <= 1.0 + 1e-12, "case {case}");
    }
}

/// Downtime/availability conversions are inverse of each other.
#[test]
fn downtime_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x13);
    for case in 0..64 {
        let a = rng.f64();
        let d = downtime_per_year(a);
        let a2 = availability_for_downtime(d);
        assert!((a - a2).abs() < 1e-6, "case {case}");
    }
}

// ---------------------------------------------------------------------
// rtnet TSN + safety: gating consistency and PDU totality
// ---------------------------------------------------------------------

/// `next_open` agrees with `is_open`: the instant it returns is
/// open for the class, and nothing between `t` and that instant is.
#[test]
fn gcl_next_open_consistent() {
    let mut rng = SimRng::seed_from_u64(0x14);
    let mut cases = 0;
    while cases < 128 {
        let cycle_us = rng.range(100, 5_000);
        let window_us = rng.range(1, 99);
        let t_us = rng.below(20_000);
        let tc = rng.below(8) as u8;
        let cycle = NanoDur::from_micros(cycle_us);
        let window = NanoDur::from_micros(cycle_us * window_us / 100).max(NanoDur(1));
        if window >= cycle {
            continue; // was prop_assume!(window < cycle)
        }
        cases += 1;
        let gcl = GateControlList::rt_window(Nanos::ZERO, cycle, window);
        let t = Nanos::from_micros(t_us);
        let (open_at, remaining) = gcl.next_open(t, tc);
        assert!(open_at >= t, "case {cases}");
        assert!(
            gcl.is_open(open_at, tc),
            "case {cases}: returned instant must be open"
        );
        assert!(remaining.as_nanos() > 0, "case {cases}");
        // The window it reports stays open to its end (sample a point).
        let mid = open_at + NanoDur(remaining.as_nanos() / 2);
        assert!(gcl.is_open(mid, tc), "case {cases}");
        // And if t itself was open, next_open must not move.
        if gcl.is_open(t, tc) {
            assert_eq!(open_at, t, "case {cases}");
        }
    }
}

/// Safety PDUs: parsing arbitrary bytes never panics, and every
/// single-bit corruption of a valid PDU is rejected.
#[test]
fn safety_pdu_bit_flip_always_detected() {
    let mut rng = SimRng::seed_from_u64(0x15);
    for case in 0..128 {
        let payload = bytes_vec(&mut rng, 0, 32);
        let sol = rng.next_u32() as u16;
        let flip_bit = rng.below(512) as usize;
        let pdu = SafetyPdu {
            sign_of_life: sol,
            payload,
        };
        let mut bytes = pdu.to_bytes();
        assert_eq!(SafetyPdu::parse(&bytes), Some(pdu.clone()), "case {case}");
        let bit = flip_bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        assert_eq!(
            SafetyPdu::parse(&bytes),
            None,
            "case {case}: flipped bit {bit} must break the CRC"
        );
    }
}

/// The TSN switch + GCL end to end: under a random RT window and
/// random frame sizes, RT frames are only ever *sent* inside the
/// window (checked in unit tests) and never lost.
#[test]
fn tas_never_loses_rt_frames() {
    let mut rng = SimRng::seed_from_u64(0x16);
    for case in 0..128 {
        let window_frac = rng.range(10, 90);
        let payload = rng.range(20, 250) as usize;
        let frames = rng.range(5, 40);
        let seed = rng.below(500);
        let mut sim = Simulator::new(seed);
        let cycle = NanoDur::from_millis(1);
        let window = NanoDur(cycle.as_nanos() * window_frac / 100);
        let gcl = GateControlList::rt_window(Nanos::ZERO, cycle, window);
        let src_mac = MacAddr::local(1);
        let dst_mac = MacAddr::local(2);
        let src = sim.add_node(
            PeriodicSource::new("rt", src_mac, dst_mac, payload, cycle)
                .with_vlan(VlanTag::RT)
                .with_limit(frames),
        );
        let sink = sim.add_node(CounterSink::new("sink"));
        let sw = sim.add_node({
            let mut s = TsnSwitch::new("tsn", 4, gcl);
            s.learn_static(dst_mac, PortId(1));
            s
        });
        sim.connect(src, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(sink, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(frames + 100));
        assert_eq!(
            sim.node_ref::<CounterSink>(sink).count(),
            frames,
            "case {case}"
        );
    }
}

// ---------------------------------------------------------------------
// dataplane: LPM agrees with a brute-force reference
// ---------------------------------------------------------------------

#[test]
fn lpm_matches_reference() {
    let mut rng = SimRng::seed_from_u64(0x17);
    for case in 0..128 {
        use steelworks::dataplane::prelude::*;
        let nprefixes = rng.range(1, 12) as usize;
        let prefixes: Vec<(u32, u32)> = (0..nprefixes)
            .map(|_| (rng.next_u32(), rng.below(33) as u32))
            .collect();
        let probe = rng.next_u32();
        let mut table = Table::new(
            "lpm",
            vec![Field::EthDst],
            MatchKind::Lpm,
            ActionSpec::drop(),
        );
        for (i, &(value, len)) in prefixes.iter().enumerate() {
            table.insert(Entry {
                keys: vec![TernaryKey::prefix(value as u64, len, 32)],
                priority: 0,
                action: ActionSpec::forward(PortId(i)),
            });
        }
        let mut fs = FieldSet::default();
        fs.set(Field::EthDst, probe as u64);
        let got = table.lookup(&fs).clone();

        // Reference: best (longest) matching prefix, first-inserted
        // wins ties (stable sort in the table).
        let mut best: Option<(u32, usize)> = None;
        for (i, &(value, len)) in prefixes.iter().enumerate() {
            let mask = if len == 0 { 0u32 } else { !0u32 << (32 - len) };
            if probe & mask == value & mask {
                let better = match best {
                    None => true,
                    Some((blen, _)) => len > blen,
                };
                if better {
                    best = Some((len, i));
                }
            }
        }
        match best {
            None => assert!(got.is_drop(), "case {case}"),
            Some((len, _)) => {
                // The chosen entry must have that prefix length and match.
                assert!(!got.is_drop(), "case {case}");
                let port = match got.primitives()[0] {
                    Primitive::Forward(p) => p.0,
                    _ => unreachable!(),
                };
                let (v, l) = prefixes[port];
                assert_eq!(l, len, "case {case}: must pick a longest prefix");
                let mask = if l == 0 { 0u32 } else { !0u32 << (32 - l) };
                assert_eq!(probe & mask, v & mask, "case {case}");
            }
        }
    }
}
