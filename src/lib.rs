//! # steelworks
//!
//! *Data centers manufacturing steel*: a Rust reproduction of the
//! HotNets '25 paper of that name — tooling for studying IT/OT
//! convergence through deterministic simulation.
//!
//! This facade re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`netsim`] | deterministic discrete-event network simulator |
//! | [`xdpsim`] | eBPF/XDP ISA, verifier, interpreter, timing models |
//! | [`rtnet`] | PROFINET-like cyclic RT protocol, watchdogs, TSN, PTP |
//! | [`dataplane`] | P4/DPDK-SWX-style programmable match-action pipeline |
//! | [`vplc`] | virtual PLC runtime, I/O devices, redundancy baselines |
//! | [`topo`] | topology graphs, builders, routing, queueing, optimizer |
//! | [`mlnet`] | industrial ML workload and degradation models |
//! | [`corpus`] | the Fig. 1 proceedings-corpus analysis |
//! | [`core`] | the paper's contributions: Traffic Reflection, InstaPLC, ML-aware topologies |
//!
//! ## Quickstart
//!
//! ```
//! use steelworks::prelude::*;
//!
//! // Measure an XDP reflection program's delay distribution (§3).
//! let mut outcome = run_reflection(&ReflectionConfig {
//!     cycles: 100,
//!     ..ReflectionConfig::default()
//! });
//! assert!(outcome.median_delay_us() > 1.0);
//! ```

#![forbid(unsafe_code)]

pub use steelworks_core as core;
pub use steelworks_corpus as corpus;
pub use steelworks_dataplane as dataplane;
pub use steelworks_mlnet as mlnet;
pub use steelworks_netsim as netsim;
pub use steelworks_rtnet as rtnet;
pub use steelworks_topo as topo;
pub use steelworks_vplc as vplc;
pub use steelworks_xdpsim as xdpsim;

/// One import for everything the examples and experiments use.
pub mod prelude {
    pub use steelworks_core::prelude::*;
    pub use steelworks_corpus::prelude::*;
    pub use steelworks_dataplane::prelude::*;
    pub use steelworks_mlnet::prelude::*;
    pub use steelworks_netsim::prelude::*;
    pub use steelworks_rtnet::prelude::*;
    pub use steelworks_topo::prelude::*;
    pub use steelworks_vplc::prelude::*;
    pub use steelworks_xdpsim::prelude::*;
}
