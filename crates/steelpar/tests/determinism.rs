//! Regression tests for the determinism contract: running the
//! figure-shaped sweeps through the worker pool must produce output
//! byte-identical to the sequential path, at any job count.
//!
//! Results are compared as *formatted strings* — the same rendering the
//! figure binaries print — so any divergence that could reach
//! `results/*.txt` fails here first.

use steelworks_core::prelude::*;
use steelworks_mlnet::prelude::MlApp;
use steelworks_xdpsim::prelude::ReflectVariant;

/// The fig6-shaped sweep: every (app, topology, client-count) point,
/// rendered exactly as the figure table cells are.
fn fig6_shaped(jobs: usize) -> Vec<String> {
    let cfg = StudyConfig::default();
    let mut grid = Vec::new();
    for app in MlApp::ALL {
        for kind in TopologyKind::ALL {
            for &n in &cfg.client_counts {
                grid.push((app, kind, n));
            }
        }
    }
    steelpar::run(jobs, grid, |(app, kind, n)| {
        let p = evaluate_point(kind, app, n, &cfg);
        format!(
            "{:?}/{:?}/{n}: {:.2} ms acc {:.3} util {:.2} cost {:.0}",
            app, kind, p.latency_ms, p.achieved_accuracy, p.max_utilization, p.cost
        )
    })
}

#[test]
fn fig6_sweep_identical_at_any_job_count() {
    let sequential = fig6_shaped(1);
    assert_eq!(sequential.len(), MlApp::ALL.len() * TopologyKind::ALL.len() * 4);
    for jobs in [2, 4] {
        assert_eq!(sequential, fig6_shaped(jobs), "jobs={jobs}");
    }
}

/// The fig4-shaped sweep at reduced cycle count: six variants plus the
/// two flow regimes, rendered as the binary's summary lines are.
fn fig4_shaped(jobs: usize) -> Vec<String> {
    enum Scenario {
        Left(ReflectVariant),
        Flows(u32),
    }
    let cycles = 300;
    let seed = 0x57EE1;
    let scenarios: Vec<Scenario> = ReflectVariant::ALL
        .iter()
        .map(|&v| Scenario::Left(v))
        .chain([1u32, 25].iter().map(|&f| Scenario::Flows(f)))
        .collect();
    steelpar::run(jobs, scenarios, |s| match s {
        Scenario::Left(v) => {
            let (name, cdf) = fig4_left_one(v, seed, cycles);
            let median = cdf
                .iter()
                .find(|(_, p)| *p >= 0.5)
                .map(|(x, _)| *x)
                .unwrap_or(0.0);
            format!("{name}: median {median:.2} us over {} points", cdf.len())
        }
        Scenario::Flows(f) => {
            let mut out = fig4_right_one(f, seed, cycles);
            format!(
                "{f} flows: worst {:.2} us, burst {}, over {:.3} %",
                out.worst_delay_us(),
                out.max_jitter_burst,
                out.over_threshold_fraction * 100.0
            )
        }
    })
}

#[test]
fn fig4_sweep_identical_at_any_job_count() {
    let sequential = fig4_shaped(1);
    assert_eq!(sequential.len(), ReflectVariant::ALL.len() + 2);
    for jobs in [2, 4] {
        assert_eq!(sequential, fig4_shaped(jobs), "jobs={jobs}");
    }
}
