//! # steelpar
//!
//! Deterministic parallel execution of independent simulation
//! scenarios. Every figure in the reproduction is an embarrassingly
//! parallel sweep — variants × flow regimes, seeds × fault grids,
//! topologies × client counts — where each scenario owns its own
//! `Simulator` and forked `SimRng`, so no shared mutable state crosses
//! scenario boundaries. This crate is the one place in the workspace
//! allowed to spawn threads (enforced by steelcheck's
//! `thread-outside-exec` rule): a fixed worker pool over
//! [`std::thread::scope`], **static** work assignment, and
//! **order-preserving** result collection.
//!
//! ## Why the output cannot depend on the job count
//!
//! Three properties, each independently sufficient to keep
//! `results/*.txt` byte-identical between `jobs = 1` and `jobs = N`:
//!
//! 1. **Parallel across scenarios, serial within a simulation.** A
//!    worker runs one scenario at a time, single-threaded, exactly as
//!    the sequential path would. Nothing inside `netsim` or the crates
//!    above it spawns threads, so a scenario's event order, RNG stream
//!    and trace are untouched by the pool.
//! 2. **Static assignment.** Worker `w` of `n` takes jobs
//!    `w, w + n, w + 2n, …` — decided before any thread starts, never
//!    by racing on a shared queue. Which worker runs a job is a pure
//!    function of `(index, n)`.
//! 3. **Order-preserving collection.** Each result is stored at its
//!    input index; [`run`] returns `Vec<R>` in input order regardless
//!    of completion order. Callers format results exactly as the
//!    sequential loop did.
//!
//! `jobs = 1` (or a single job) bypasses the pool entirely and runs the
//! closure in the caller's thread — the old sequential path, bit for
//! bit, with zero thread overhead.
//!
//! ## Job-count resolution
//!
//! Figure binaries resolve their worker count with
//! [`take_jobs_arg`] + [`resolve_jobs`]: an explicit `--jobs N` flag
//! wins, then the `STEELWORKS_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

/// Environment variable consulted by [`resolve_jobs`] when no explicit
/// job count is given.
pub const JOBS_ENV: &str = "STEELWORKS_JOBS";

/// Run `f` over `items` on a fixed pool of at most `jobs` workers and
/// return the results **in input order**.
///
/// Work is assigned statically: worker `w` of `n` processes items
/// `w, w + n, w + 2n, …`. With `jobs <= 1` or fewer than two items the
/// pool is bypassed and everything runs sequentially in the caller's
/// thread. A panic in any job propagates to the caller, as it would
/// sequentially.
pub fn run<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n_items = items.len();
    let workers = jobs.max(1).min(n_items);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Static stride assignment: bucket w owns items w, w+n, w+2n, ...
    let mut buckets: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % workers].push((i, item));
    }

    let f = &f;
    let mut slots: Vec<Option<R>> = (0..n_items).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(pairs) => {
                    for (i, r) in pairs {
                        slots[i] = Some(r);
                    }
                }
                // Re-raise the worker's panic in the caller, matching
                // the sequential path's behaviour.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(r) => r,
            // steelcheck: allow(panic-reachable): every slot is filled before the workers join
            None => unreachable!("job {i} produced no result"),
        })
        .collect()
}

/// Extract a `--jobs N` (or `--jobs=N`) flag from a CLI argument list,
/// removing the consumed tokens so positional parsing is unaffected.
///
/// Returns `None` when the flag is absent; a malformed value is
/// reported on stderr and treated as absent rather than aborting a
/// figure run.
pub fn take_jobs_arg(args: &mut Vec<String>) -> Option<usize> {
    let mut found = None;
    let mut i = 0;
    while i < args.len() {
        let (hit, extra) = if args[i] == "--jobs" {
            (args.get(i + 1).cloned(), true)
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            (Some(v.to_string()), false)
        } else {
            i += 1;
            continue;
        };
        let end = (i + 1 + usize::from(extra)).min(args.len());
        args.drain(i..end);
        match hit.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) if n >= 1 => found = Some(n),
            _ => eprintln!(
                "steelpar: ignoring malformed --jobs value {:?} (want an integer >= 1)",
                hit.unwrap_or_default()
            ),
        }
    }
    found
}

/// Resolve the worker count: an explicit value (e.g. from
/// [`take_jobs_arg`]) wins, then the `STEELWORKS_JOBS` environment
/// variable, then the machine's available parallelism.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(v) = std::env::var(JOBS_ENV) {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("steelpar: ignoring malformed {JOBS_ENV}={v:?} (want an integer >= 1)"),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn preserves_input_order_sequentially() {
        let out = run(1, (0..17).collect(), |x: u64| x * x);
        assert_eq!(out, (0..17).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn preserves_input_order_in_parallel() {
        for jobs in [2, 3, 4, 7, 32] {
            let out = run(jobs, (0..23).collect(), |x: u64| x * 10);
            assert_eq!(out, (0..23).map(|x| x * 10).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn order_survives_adversarial_completion_times() {
        // Early jobs sleep the longest, so completion order is the
        // exact reverse of input order — results must still come back
        // in input order.
        let out = run(4, (0..12).collect(), |i: u64| {
            std::thread::sleep(Duration::from_millis((12 - i) * 3));
            i
        });
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<u32> = run(8, Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
        let out = run(8, vec![41], |x: u32| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = run(64, (0..3).collect(), |x: u64| x + 100);
        assert_eq!(out, vec![100, 101, 102]);
    }

    #[test]
    fn borrows_from_caller_scope() {
        // Non-'static captures must work (scoped threads).
        let base = vec![10u64, 20, 30];
        let out = run(2, (0..3).collect(), |i: usize| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    #[should_panic(expected = "job says no")]
    fn worker_panic_propagates() {
        let _ = run(3, (0..6).collect(), |x: u64| {
            if x == 4 {
                panic!("job says no");
            }
            x
        });
    }

    #[test]
    fn take_jobs_arg_variants() {
        let mut a: Vec<String> = ["10000", "--jobs", "4"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_jobs_arg(&mut a), Some(4));
        assert_eq!(a, vec!["10000"]);

        let mut a: Vec<String> = ["--jobs=2", "dir"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_jobs_arg(&mut a), Some(2));
        assert_eq!(a, vec!["dir"]);

        let mut a: Vec<String> = ["--jobs", "zero"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_jobs_arg(&mut a), None);
        assert!(a.is_empty(), "malformed value is still consumed: {a:?}");

        let mut a: Vec<String> = vec!["--jobs".to_string()];
        assert_eq!(take_jobs_arg(&mut a), None, "trailing flag with no value");
        assert!(a.is_empty());

        let mut a: Vec<String> = vec!["plain".to_string()];
        assert_eq!(take_jobs_arg(&mut a), None);
        assert_eq!(a, vec!["plain"]);
    }

    #[test]
    fn resolve_jobs_precedence() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1, "explicit 0 clamps to 1");
        // Env / auto paths exercised without asserting machine-specific
        // values: the result is always at least one worker.
        assert!(resolve_jobs(None) >= 1);
    }
}
