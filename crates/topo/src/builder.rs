//! Topology builders: the classic OT shapes (line, ring, star, tree)
//! and the IT shapes (leaf-spine, fat-tree-lite) that Fig. 6 compares.

use crate::graph::{EdgeAttr, GNode, Graph, NodeKind};

/// A built topology plus the handles experiments need.
#[derive(Clone, Debug)]
pub struct Built {
    /// The graph.
    pub graph: Graph,
    /// Client/endpoint nodes in creation order.
    pub clients: Vec<GNode>,
    /// Compute nodes (edge/fog/cloud) in creation order.
    pub compute: Vec<GNode>,
    /// Switch nodes.
    pub switches: Vec<GNode>,
}

/// A line of `n` switches, one client each — the conveyor-belt shape.
pub fn line(n: usize, link: EdgeAttr) -> Built {
    assert!(n >= 2);
    let mut g = Graph::new();
    let mut switches = Vec::new();
    let mut clients = Vec::new();
    for i in 0..n {
        let s = g.add_node(NodeKind::Switch, format!("sw{i}"));
        let c = g.add_node(NodeKind::Client, format!("client{i}"));
        g.connect(s, c, link);
        if i > 0 {
            g.connect(switches[i - 1], s, link);
        }
        switches.push(s);
        clients.push(c);
    }
    Built {
        graph: g,
        clients,
        compute: Vec::new(),
        switches,
    }
}

/// The classic industrial ring: `n` switches in a ring, one client
/// each, plus a single uplink switch holding the (fog) compute — the
/// topology §5 calls "a classic industrial ring".
pub fn industrial_ring(n_clients: usize, link: EdgeAttr) -> Built {
    assert!(n_clients >= 2);
    let mut g = Graph::new();
    let mut switches = Vec::new();
    let mut clients = Vec::new();
    for i in 0..n_clients {
        let s = g.add_node(NodeKind::Switch, format!("ring{i}"));
        let c = g.add_node(NodeKind::Client, format!("client{i}"));
        g.connect(s, c, link);
        if i > 0 {
            g.connect(switches[i - 1], s, link);
        }
        switches.push(s);
        clients.push(c);
    }
    // Close the ring.
    g.connect(switches[n_clients - 1], switches[0], link);
    // One fog server hangs off ring switch 0.
    let fog = g.add_node(NodeKind::FogCompute, "fog0");
    g.connect(switches[0], fog, EdgeAttr::ten_gig_agg());
    Built {
        graph: g,
        clients,
        compute: vec![fog],
        switches,
    }
}

/// A star: one central switch, all clients attached.
pub fn star(n_clients: usize, link: EdgeAttr) -> Built {
    let mut g = Graph::new();
    let hub = g.add_node(NodeKind::Switch, "hub");
    let mut clients = Vec::new();
    for i in 0..n_clients {
        let c = g.add_node(NodeKind::Client, format!("client{i}"));
        g.connect(hub, c, link);
        clients.push(c);
    }
    Built {
        graph: g,
        clients,
        compute: Vec::new(),
        switches: vec![hub],
    }
}

/// A balanced tree of switches with clients at the leaves.
pub fn tree(depth: usize, fanout: usize, link: EdgeAttr) -> Built {
    assert!(depth >= 1 && fanout >= 2);
    let mut g = Graph::new();
    let root = g.add_node(NodeKind::Switch, "root");
    let mut switches = vec![root];
    let mut frontier = vec![root];
    for d in 1..depth {
        let mut next = Vec::new();
        for (pi, &p) in frontier.iter().enumerate() {
            for f in 0..fanout {
                let s = g.add_node(NodeKind::Switch, format!("sw{d}_{pi}_{f}"));
                g.connect(p, s, link);
                switches.push(s);
                next.push(s);
            }
        }
        frontier = next;
    }
    let mut clients = Vec::new();
    for (pi, &p) in frontier.iter().enumerate() {
        for f in 0..fanout {
            let c = g.add_node(NodeKind::Client, format!("client{pi}_{f}"));
            g.connect(p, c, link);
            clients.push(c);
        }
    }
    Built {
        graph: g,
        clients,
        compute: Vec::new(),
        switches,
    }
}

/// A leaf-spine fabric: `spines` spine switches, `leaves` leaf switches
/// (full bipartite 10G), `clients_per_leaf` gigabit clients per leaf,
/// with one fog compute node per spine — the "modern IT derivative" of
/// Fig. 6.
pub fn leaf_spine(
    spines: usize,
    leaves: usize,
    clients_per_leaf: usize,
    access: EdgeAttr,
) -> Built {
    assert!(spines >= 1 && leaves >= 1);
    let mut g = Graph::new();
    let spine_nodes: Vec<GNode> = (0..spines)
        .map(|i| g.add_node(NodeKind::Switch, format!("spine{i}")))
        .collect();
    let leaf_nodes: Vec<GNode> = (0..leaves)
        .map(|i| g.add_node(NodeKind::Switch, format!("leaf{i}")))
        .collect();
    for &s in &spine_nodes {
        for &l in &leaf_nodes {
            g.connect(s, l, EdgeAttr::ten_gig_agg());
        }
    }
    let mut clients = Vec::new();
    for (li, &l) in leaf_nodes.iter().enumerate() {
        for c in 0..clients_per_leaf {
            let cn = g.add_node(NodeKind::Client, format!("client{li}_{c}"));
            g.connect(l, cn, access);
            clients.push(cn);
        }
    }
    let mut compute = Vec::new();
    for (si, &s) in spine_nodes.iter().enumerate() {
        let f = g.add_node(NodeKind::FogCompute, format!("fog{si}"));
        g.connect(s, f, EdgeAttr::ten_gig_agg());
        compute.push(f);
    }
    let mut switches = spine_nodes;
    switches.extend(leaf_nodes);
    Built {
        graph: g,
        clients,
        compute,
        switches,
    }
}

/// A k-ary fat tree (k even): (k/2)² core switches, k pods of k/2
/// aggregation + k/2 edge switches, k/2 clients per edge switch — the
/// canonical data-center topology §5 contrasts industrial networks
/// against. Fabric links are 10G, access links use `access`.
pub fn fat_tree(k: usize, access: EdgeAttr) -> Built {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat tree requires even k >= 2"
    );
    let h = k / 2;
    let mut g = Graph::new();
    let cores: Vec<GNode> = (0..h * h)
        .map(|i| g.add_node(NodeKind::Switch, format!("core{i}")))
        .collect();
    let mut switches = cores.clone();
    let mut clients = Vec::new();
    for pod in 0..k {
        let aggs: Vec<GNode> = (0..h)
            .map(|i| g.add_node(NodeKind::Switch, format!("agg{pod}_{i}")))
            .collect();
        let edges: Vec<GNode> = (0..h)
            .map(|i| g.add_node(NodeKind::Switch, format!("edge{pod}_{i}")))
            .collect();
        // Aggregation i connects to core group i (h cores each).
        for (i, &a) in aggs.iter().enumerate() {
            for j in 0..h {
                g.connect(a, cores[i * h + j], EdgeAttr::ten_gig_agg());
            }
            for &e in &edges {
                g.connect(a, e, EdgeAttr::ten_gig_agg());
            }
        }
        for (ei, &e) in edges.iter().enumerate() {
            for c in 0..h {
                let cn = g.add_node(NodeKind::Client, format!("client{pod}_{ei}_{c}"));
                g.connect(e, cn, access);
                clients.push(cn);
            }
        }
        switches.extend(aggs);
        switches.extend(edges);
    }
    Built {
        graph: g,
        clients,
        compute: Vec::new(),
        switches,
    }
}

/// BCube(n, 1): a server-centric two-level topology — n² servers, each
/// with two NICs, connected to one level-0 and one level-1 n-port
/// switch (the recursive construction cut at k = 1, which is what the
/// original paper evaluates for modular data centers).
pub fn bcube1(n: usize, link: EdgeAttr) -> Built {
    assert!(n >= 2);
    let mut g = Graph::new();
    // Servers are "clients" carrying compute in BCube's model.
    let servers: Vec<GNode> = (0..n * n)
        .map(|i| g.add_node(NodeKind::Client, format!("srv{i}")))
        .collect();
    let mut switches = Vec::new();
    // Level 0: switch j connects servers j*n .. j*n+n-1.
    for j in 0..n {
        let sw = g.add_node(NodeKind::Switch, format!("l0_{j}"));
        for i in 0..n {
            g.connect(sw, servers[j * n + i], link);
        }
        switches.push(sw);
    }
    // Level 1: switch i connects servers i, n+i, 2n+i, ...
    for i in 0..n {
        let sw = g.add_node(NodeKind::Switch, format!("l1_{i}"));
        for j in 0..n {
            g.connect(sw, servers[j * n + i], link);
        }
        switches.push(sw);
    }
    Built {
        graph: g,
        clients: servers,
        compute: Vec::new(),
        switches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape() {
        let b = line(5, EdgeAttr::gigabit_local());
        assert_eq!(b.switches.len(), 5);
        assert_eq!(b.clients.len(), 5);
        // 5 access + 4 trunk edges.
        assert_eq!(b.graph.edge_count(), 9);
        assert!(b.graph.is_connected());
        // Ends have degree 2 (client + one trunk).
        assert_eq!(b.graph.degree(b.switches[0]), 2);
        assert_eq!(b.graph.degree(b.switches[2]), 3);
    }

    #[test]
    fn ring_closes() {
        let b = industrial_ring(8, EdgeAttr::gigabit_local());
        assert!(b.graph.is_connected());
        // Every ring switch has degree 3 except switch 0 (ring x2 +
        // client + fog = 4).
        assert_eq!(b.graph.degree(b.switches[0]), 4);
        for &s in &b.switches[1..] {
            assert_eq!(b.graph.degree(s), 3);
        }
        assert_eq!(b.compute.len(), 1);
    }

    #[test]
    fn star_shape() {
        let b = star(10, EdgeAttr::gigabit_local());
        assert_eq!(b.graph.degree(b.switches[0]), 10);
        assert!(b.graph.is_connected());
    }

    #[test]
    fn tree_counts() {
        let b = tree(3, 2, EdgeAttr::gigabit_local());
        // Switches: 1 + 2 + 4 = 7; clients: 4 leaves * 2 = 8.
        assert_eq!(b.switches.len(), 7);
        assert_eq!(b.clients.len(), 8);
        assert!(b.graph.is_connected());
    }

    #[test]
    fn fat_tree_k4() {
        let b = fat_tree(4, EdgeAttr::gigabit_local());
        // k=4: 4 cores, 4 pods x (2 agg + 2 edge) = 20 switches,
        // 4 pods x 2 edges x 2 clients = 16 clients.
        assert_eq!(b.switches.len(), 20);
        assert_eq!(b.clients.len(), 16);
        assert!(b.graph.is_connected());
        // Canonical edge count: 16 access + 16 edge-agg + 16 agg-core.
        assert_eq!(b.graph.edge_count(), 48);
        // Full bisection: ECMP width between distant pods is k²/4 = 4.
        use crate::routing::{ecmp_width, HopWeight};
        assert_eq!(
            ecmp_width(&b.graph, b.clients[0], b.clients[15], &HopWeight),
            4
        );
    }

    #[test]
    fn bcube_two_disjoint_levels() {
        let b = bcube1(4, EdgeAttr::gigabit_local());
        assert_eq!(b.clients.len(), 16);
        assert_eq!(b.switches.len(), 8);
        assert!(b.graph.is_connected());
        // Every server has exactly 2 NICs (degree 2).
        for &s in &b.clients {
            assert_eq!(b.graph.degree(s), 2);
        }
        // Server-centric: same-row servers reach each other in 2 hops,
        // and there are 2 paths (one per level) between most pairs.
        use crate::routing::{shortest_path, HopWeight};
        let p = shortest_path(&b.graph, b.clients[0], b.clients[1], &HopWeight).unwrap();
        assert_eq!(p.hops(), 2);
    }

    #[test]
    fn leaf_spine_bipartite() {
        let b = leaf_spine(2, 4, 8, EdgeAttr::gigabit_local());
        assert_eq!(b.clients.len(), 32);
        assert_eq!(b.compute.len(), 2);
        assert!(b.graph.is_connected());
        // Edges: 2*4 fabric + 32 access + 2 fog = 42.
        assert_eq!(b.graph.edge_count(), 42);
        // Leaves have 2 spines + 8 clients = 10.
        assert_eq!(b.graph.degree(b.switches[2]), 10);
    }
}
