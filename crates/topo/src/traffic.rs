//! Traffic description: flow classes (including the paper's new one)
//! and traffic matrices with link-load accounting.

use crate::graph::{GEdge, GNode, Graph};
use crate::routing::{shortest_path, EdgeWeight, Path};
use steelworks_netsim::time::NanoDur;

/// Flow classes. §2.3: data-center practice distinguishes mice /
/// medium / elephant flows; vPLCs add a class that fits none of them —
/// latency-critical like mice, never-ending like elephants, tiny,
/// cyclic and deterministic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FlowClass {
    /// ≲10 KB, short, latency-sensitive.
    Mice,
    /// ≈0.5 MB transfers.
    Medium,
    /// >1 GB bulk.
    Elephant,
    /// The vPLC class: cyclic small frames, strict deadlines, endless.
    DeterministicMicroflow,
}

/// Observable features of a flow, as a classifier sees them.
#[derive(Clone, Copy, Debug)]
pub struct FlowFeatures {
    /// Bytes transferred so far (or total, if finished).
    pub bytes: u64,
    /// Flow age / duration.
    pub duration: NanoDur,
    /// Is the flow still active?
    pub ongoing: bool,
    /// Coefficient of variation of inter-packet gaps (≈0 ⇒ periodic).
    pub gap_cv: f64,
    /// Mean packet payload size.
    pub mean_payload: u32,
}

/// Classify a flow per §2.3's taxonomy.
pub fn classify(f: &FlowFeatures) -> FlowClass {
    // The new class first: periodic (low gap variation), tiny payloads,
    // long-lived and still running.
    if f.ongoing && f.gap_cv < 0.1 && f.mean_payload <= 250 && f.duration >= NanoDur::from_secs(1) {
        return FlowClass::DeterministicMicroflow;
    }
    if f.bytes <= 10_000 {
        FlowClass::Mice
    } else if f.bytes <= 10_000_000 {
        FlowClass::Medium
    } else {
        FlowClass::Elephant
    }
}

/// One demand in a traffic matrix.
#[derive(Clone, Debug)]
pub struct Demand {
    /// Source node.
    pub src: GNode,
    /// Destination node.
    pub dst: GNode,
    /// Offered load in bits per second.
    pub bps: f64,
    /// Mean packet size on the wire (bytes), for queueing models.
    pub mean_packet: u32,
    /// Class, for reporting.
    pub class: FlowClass,
}

/// A set of demands plus the routes they take.
#[derive(Clone, Debug)]
pub struct RoutedMatrix {
    /// The demands.
    pub demands: Vec<Demand>,
    /// Route per demand (same order).
    pub paths: Vec<Path>,
}

/// Route every demand over shortest paths; fails if any demand is
/// disconnected.
pub fn route_all<W: EdgeWeight>(g: &Graph, demands: Vec<Demand>, w: &W) -> Option<RoutedMatrix> {
    let mut paths = Vec::with_capacity(demands.len());
    for d in &demands {
        paths.push(shortest_path(g, d.src, d.dst, w)?);
    }
    Some(RoutedMatrix { demands, paths })
}

impl RoutedMatrix {
    /// Offered bits/s per edge.
    pub fn link_loads(&self, g: &Graph) -> Vec<f64> {
        let mut loads = vec![0.0; g.edge_count()];
        for (d, p) in self.demands.iter().zip(&self.paths) {
            for e in &p.edges {
                loads[e.0] += d.bps;
            }
        }
        loads
    }

    /// Utilization (load / capacity) per edge.
    pub fn utilizations(&self, g: &Graph) -> Vec<f64> {
        self.link_loads(g)
            .iter()
            .enumerate()
            .map(|(i, &l)| l / g.edge_attr(GEdge(i)).bandwidth_bps as f64)
            .collect()
    }

    /// The most loaded edge's utilization.
    pub fn max_utilization(&self, g: &Graph) -> f64 {
        self.utilizations(g).into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::graph::EdgeAttr;
    use crate::routing::HopWeight;

    #[test]
    fn vplc_flow_classified_as_microflow() {
        let f = FlowFeatures {
            bytes: 5_000_000, // a day of 50 B frames is a lot of bytes
            duration: NanoDur::from_secs(3600),
            ongoing: true,
            gap_cv: 0.01,
            mean_payload: 50,
        };
        assert_eq!(classify(&f), FlowClass::DeterministicMicroflow);
    }

    #[test]
    fn classic_classes_by_size() {
        let mk = |bytes| FlowFeatures {
            bytes,
            duration: NanoDur::from_millis(20),
            ongoing: false,
            gap_cv: 1.0,
            mean_payload: 1400,
        };
        assert_eq!(classify(&mk(5_000)), FlowClass::Mice);
        assert_eq!(classify(&mk(500_000)), FlowClass::Medium);
        assert_eq!(classify(&mk(2_000_000_000)), FlowClass::Elephant);
    }

    #[test]
    fn short_periodic_flow_not_yet_microflow() {
        // A flow must live ≥1 s before the classifier commits.
        let f = FlowFeatures {
            bytes: 500,
            duration: NanoDur::from_millis(100),
            ongoing: true,
            gap_cv: 0.0,
            mean_payload: 50,
        };
        assert_eq!(classify(&f), FlowClass::Mice);
    }

    #[test]
    fn link_loads_accumulate_on_shared_trunk() {
        let b = builder::line(3, EdgeAttr::gigabit_local());
        let demands = vec![
            Demand {
                src: b.clients[0],
                dst: b.clients[2],
                bps: 100e6,
                mean_packet: 1000,
                class: FlowClass::Medium,
            },
            Demand {
                src: b.clients[1],
                dst: b.clients[2],
                bps: 200e6,
                mean_packet: 1000,
                class: FlowClass::Medium,
            },
        ];
        let routed = route_all(&b.graph, demands, &HopWeight).unwrap();
        let loads = routed.link_loads(&b.graph);
        // The sw1-sw2 trunk carries both demands.
        let max = loads.iter().cloned().fold(0.0, f64::max);
        assert_eq!(max, 300e6);
        assert!(routed.max_utilization(&b.graph) > 0.29);
        assert!(routed.max_utilization(&b.graph) < 0.31);
    }
}
