//! Analytic queueing evaluation of a routed traffic matrix.
//!
//! Each link is an M/D/1 queue (deterministic service = serialization
//! of the mean packet): per-link sojourn = serialization + propagation
//! plus `ρ/(2(1−ρ))` of one serialization. Per-demand latency sums its
//! path. The Fig. 6 study uses this evaluator for all three topologies,
//! so any systematic model error cancels in the comparison — exactly
//! the argument for shape-level (not absolute) reproduction.

use crate::graph::Graph;
use crate::traffic::RoutedMatrix;
use steelworks_netsim::time::NanoDur;

/// Per-demand latency breakdown.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyBreakdown {
    /// Propagation total (ns).
    pub propagation_ns: f64,
    /// Serialization total (ns).
    pub serialization_ns: f64,
    /// Queueing total (ns).
    pub queueing_ns: f64,
}

impl LatencyBreakdown {
    /// Total one-way network latency.
    pub fn total(&self) -> NanoDur {
        NanoDur((self.propagation_ns + self.serialization_ns + self.queueing_ns).round() as u64)
    }
}

/// Evaluation result for a matrix.
#[derive(Clone, Debug)]
pub struct QnetResult {
    /// Per-demand breakdowns (same order as the matrix).
    pub per_demand: Vec<LatencyBreakdown>,
    /// Largest link utilization observed.
    pub max_utilization: f64,
    /// Whether any link was overloaded (ρ ≥ 1): latencies for demands
    /// crossing it are reported with the saturation cap below.
    pub overloaded: bool,
}

/// Queueing delay is capped at this multiple of the service time when a
/// link saturates (the analytic formula diverges; reality drops/queues).
const SATURATION_CAP: f64 = 200.0;

/// Evaluate one-way latency per demand.
pub fn evaluate(g: &Graph, routed: &RoutedMatrix) -> QnetResult {
    let loads = routed.link_loads(g);
    let mut per_demand = Vec::with_capacity(routed.demands.len());
    let mut max_util = 0.0f64;
    let mut overloaded = false;

    // Per-edge mean packet size, weighted by load share.
    let mut edge_bytes = vec![0.0f64; g.edge_count()];
    let mut edge_weight = vec![0.0f64; g.edge_count()];
    for (d, p) in routed.demands.iter().zip(&routed.paths) {
        for e in &p.edges {
            edge_bytes[e.0] += d.bps * d.mean_packet as f64;
            edge_weight[e.0] += d.bps;
        }
    }

    for (d, p) in routed.demands.iter().zip(&routed.paths) {
        let mut acc = LatencyBreakdown::default();
        for e in &p.edges {
            let attr = g.edge_attr(*e);
            let cap = attr.bandwidth_bps as f64;
            let rho = (loads[e.0] / cap).min(1.0);
            max_util = max_util.max(loads[e.0] / cap);
            let mean_pkt = if edge_weight[e.0] > 0.0 {
                edge_bytes[e.0] / edge_weight[e.0]
            } else {
                d.mean_packet as f64
            };
            let service_ns = mean_pkt * 8.0 / cap * 1e9;
            // Serialization of *this* demand's packet.
            acc.serialization_ns += d.mean_packet as f64 * 8.0 / cap * 1e9;
            acc.propagation_ns += attr.latency_ns as f64;
            let q = if rho >= 0.999 {
                overloaded = true;
                SATURATION_CAP * service_ns
            } else {
                rho / (2.0 * (1.0 - rho)) * service_ns
            };
            acc.queueing_ns += q;
        }
        per_demand.push(acc);
    }
    QnetResult {
        per_demand,
        max_utilization: max_util,
        overloaded,
    }
}

/// Mean total latency across demands.
pub fn mean_latency(result: &QnetResult) -> NanoDur {
    if result.per_demand.is_empty() {
        return NanoDur::ZERO;
    }
    let sum: f64 = result
        .per_demand
        .iter()
        // steelcheck: allow(float-hygiene): queueing-model input: per-demand totals aggregated for the report
        .map(|b| b.total().as_nanos() as f64)
        .sum();
    NanoDur((sum / result.per_demand.len() as f64).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::graph::EdgeAttr;
    use crate::routing::HopWeight;
    use crate::traffic::{route_all, Demand, FlowClass};

    fn demand(src: crate::graph::GNode, dst: crate::graph::GNode, bps: f64) -> Demand {
        Demand {
            src,
            dst,
            bps,
            mean_packet: 1000,
            class: FlowClass::Medium,
        }
    }

    #[test]
    fn idle_network_latency_is_prop_plus_ser() {
        let b = builder::line(2, EdgeAttr::gigabit_local());
        let routed = route_all(
            &b.graph,
            vec![demand(b.clients[0], b.clients[1], 1.0)],
            &HopWeight,
        )
        .unwrap();
        let r = evaluate(&b.graph, &routed);
        let bd = r.per_demand[0];
        // 3 hops × 500 ns prop; 3 × 8 µs serialization of 1000 B @1G.
        assert!((bd.propagation_ns - 1_500.0).abs() < 1.0);
        assert!((bd.serialization_ns - 24_000.0).abs() < 10.0);
        assert!(bd.queueing_ns < 1.0);
    }

    #[test]
    fn queueing_grows_with_load() {
        let b = builder::line(2, EdgeAttr::gigabit_local());
        let lat_at = |bps: f64| {
            let routed = route_all(
                &b.graph,
                vec![demand(b.clients[0], b.clients[1], bps)],
                &HopWeight,
            )
            .unwrap();
            evaluate(&b.graph, &routed).per_demand[0].queueing_ns
        };
        let q10 = lat_at(100e6);
        let q50 = lat_at(500e6);
        let q90 = lat_at(900e6);
        assert!(q10 < q50 && q50 < q90);
        // M/D/1 at ρ=0.5 per edge: q = 0.5·service = 4 µs; 3 edges on
        // the client-sw-sw-client path → 12 µs.
        assert!((q50 - 12_000.0).abs() < 300.0, "q50={q50}");
    }

    #[test]
    fn saturation_capped_and_flagged() {
        let b = builder::line(2, EdgeAttr::gigabit_local());
        let routed = route_all(
            &b.graph,
            vec![demand(b.clients[0], b.clients[1], 2e9)],
            &HopWeight,
        )
        .unwrap();
        let r = evaluate(&b.graph, &routed);
        assert!(r.overloaded);
        assert!(r.max_utilization >= 1.0);
        assert!(r.per_demand[0].queueing_ns.is_finite());
    }

    #[test]
    fn mean_latency_averages() {
        let b = builder::star(4, EdgeAttr::gigabit_local());
        let demands = vec![
            demand(b.clients[0], b.clients[1], 1e6),
            demand(b.clients[2], b.clients[3], 1e6),
        ];
        let routed = route_all(&b.graph, demands, &HopWeight).unwrap();
        let r = evaluate(&b.graph, &routed);
        let m = mean_latency(&r);
        assert!(m > NanoDur::ZERO);
        assert_eq!(r.per_demand.len(), 2);
    }
}
