//! Shortest-path routing with ECMP awareness.

use crate::graph::{GEdge, GNode, Graph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A route: the node sequence and the edges taken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// Nodes from source to destination inclusive.
    pub nodes: Vec<GNode>,
    /// Edges, one fewer than nodes.
    pub edges: Vec<GEdge>,
}

impl Path {
    /// Hop count.
    pub fn hops(&self) -> usize {
        self.edges.len()
    }
}

/// Edge weight functions.
pub trait EdgeWeight {
    /// Cost of traversing `e`.
    fn weight(&self, g: &Graph, e: GEdge) -> u64;
}

/// Weight = 1 per hop.
#[derive(Debug)]
pub struct HopWeight;

impl EdgeWeight for HopWeight {
    fn weight(&self, _g: &Graph, _e: GEdge) -> u64 {
        1
    }
}

/// Weight = propagation latency (ns).
#[derive(Debug)]
pub struct LatencyWeight;

impl EdgeWeight for LatencyWeight {
    fn weight(&self, g: &Graph, e: GEdge) -> u64 {
        g.edge_attr(e).latency_ns.max(1)
    }
}

/// Dijkstra from `src` to `dst`. Ties are broken deterministically by
/// node index, so routing is stable run to run.
pub fn shortest_path<W: EdgeWeight>(g: &Graph, src: GNode, dst: GNode, w: &W) -> Option<Path> {
    let n = g.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<(GNode, GEdge)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0] = 0;
    heap.push(Reverse((0u64, src.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        if u == dst.0 {
            break;
        }
        for &(v, e) in g.neighbors(GNode(u)) {
            let nd = d.saturating_add(w.weight(g, e));
            if nd < dist[v.0]
                || (nd == dist[v.0] && prev[v.0].map(|(p, _)| p.0 > u).unwrap_or(false))
            {
                dist[v.0] = nd;
                prev[v.0] = Some((GNode(u), e));
                heap.push(Reverse((nd, v.0)));
            }
        }
    }
    if dist[dst.0] == u64::MAX {
        return None;
    }
    let mut nodes = vec![dst];
    let mut edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        // steelcheck: allow(unwrap-in-lib): dst was reached, so every hop back to src has a predecessor
        let (p, e) = prev[cur.0].expect("path reconstruction");
        edges.push(e);
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    Some(Path { nodes, edges })
}

/// Count the equal-cost shortest paths between two nodes (ECMP width).
pub fn ecmp_width<W: EdgeWeight>(g: &Graph, src: GNode, dst: GNode, w: &W) -> u64 {
    // Dijkstra computing path counts.
    let n = g.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut count = vec![0u64; n];
    let mut heap = BinaryHeap::new();
    dist[src.0] = 0;
    count[src.0] = 1;
    heap.push(Reverse((0u64, src.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, e) in g.neighbors(GNode(u)) {
            let nd = d.saturating_add(w.weight(g, e));
            match nd.cmp(&dist[v.0]) {
                std::cmp::Ordering::Less => {
                    dist[v.0] = nd;
                    count[v.0] = count[u];
                    heap.push(Reverse((nd, v.0)));
                }
                std::cmp::Ordering::Equal => {
                    count[v.0] += count[u];
                }
                std::cmp::Ordering::Greater => {}
            }
        }
    }
    count[dst.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::graph::EdgeAttr;

    #[test]
    fn line_path_is_direct() {
        let b = builder::line(5, EdgeAttr::gigabit_local());
        let p = shortest_path(&b.graph, b.clients[0], b.clients[4], &HopWeight).unwrap();
        // client0 - sw0 - sw1 - sw2 - sw3 - sw4 - client4 = 6 hops.
        assert_eq!(p.hops(), 6);
        assert_eq!(p.nodes.first(), Some(&b.clients[0]));
        assert_eq!(p.nodes.last(), Some(&b.clients[4]));
    }

    #[test]
    fn ring_takes_shorter_arc() {
        let b = builder::industrial_ring(8, EdgeAttr::gigabit_local());
        // From client0 to client1: one trunk hop, not seven.
        let p = shortest_path(&b.graph, b.clients[0], b.clients[1], &HopWeight).unwrap();
        assert_eq!(p.hops(), 3);
        // From client0 to client7: around the back, also 3.
        let p = shortest_path(&b.graph, b.clients[0], b.clients[7], &HopWeight).unwrap();
        assert_eq!(p.hops(), 3);
        // Opposite side of an 8-ring: 4 trunk hops + 2 access = 6.
        let p = shortest_path(&b.graph, b.clients[0], b.clients[4], &HopWeight).unwrap();
        assert_eq!(p.hops(), 6);
    }

    #[test]
    fn leaf_spine_ecmp() {
        let b = builder::leaf_spine(4, 4, 2, EdgeAttr::gigabit_local());
        // Client on leaf0 to client on leaf1: 4 equal-cost paths via
        // the 4 spines.
        let c0 = b.clients[0];
        let c_other = b.clients[2]; // first client of leaf1
        assert_eq!(ecmp_width(&b.graph, c0, c_other, &HopWeight), 4);
        let p = shortest_path(&b.graph, c0, c_other, &HopWeight).unwrap();
        assert_eq!(p.hops(), 4); // client-leaf-spine-leaf-client
    }

    #[test]
    fn latency_weight_prefers_fast_links() {
        let mut g = crate::graph::Graph::new();
        use crate::graph::NodeKind::*;
        let a = g.add_node(Switch, "a");
        let b = g.add_node(Switch, "b");
        let c = g.add_node(Switch, "c");
        // Direct a-b is slow; a-c-b is fast.
        g.connect(
            a,
            b,
            EdgeAttr {
                bandwidth_bps: 1_000_000_000,
                latency_ns: 100_000,
            },
        );
        g.connect(
            a,
            c,
            EdgeAttr {
                bandwidth_bps: 1_000_000_000,
                latency_ns: 10_000,
            },
        );
        g.connect(
            c,
            b,
            EdgeAttr {
                bandwidth_bps: 1_000_000_000,
                latency_ns: 10_000,
            },
        );
        let hop = shortest_path(&g, a, b, &HopWeight).unwrap();
        assert_eq!(hop.hops(), 1);
        let lat = shortest_path(&g, a, b, &LatencyWeight).unwrap();
        assert_eq!(lat.hops(), 2);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = crate::graph::Graph::new();
        use crate::graph::NodeKind::*;
        let a = g.add_node(Switch, "a");
        let b = g.add_node(Switch, "b");
        assert!(shortest_path(&g, a, b, &HopWeight).is_none());
    }

    #[test]
    fn deterministic_paths() {
        let b = builder::leaf_spine(4, 4, 4, EdgeAttr::gigabit_local());
        let p1 = shortest_path(&b.graph, b.clients[0], b.clients[15], &HopWeight).unwrap();
        let p2 = shortest_path(&b.graph, b.clients[0], b.clients[15], &HopWeight).unwrap();
        assert_eq!(p1, p2);
    }
}
