//! Infrastructure cost model.
//!
//! Fig. 6's discussion: the ML-aware design "aligns inference accuracy
//! with infrastructure cost and network dimensioning". This module
//! prices a topology so designs can be compared at equal budget.

use crate::graph::{GEdge, Graph, NodeKind};

/// Unit prices (arbitrary currency; only ratios matter).
#[derive(Clone, Debug)]
pub struct PriceBook {
    /// Per switch.
    pub switch: f64,
    /// Per Gbps of link capacity.
    pub link_per_gbps: f64,
    /// Per edge-compute server.
    pub edge_compute: f64,
    /// Per fog server.
    pub fog_compute: f64,
    /// Per cloud attachment (WAN + egress commitments).
    pub cloud_attach: f64,
}

impl Default for PriceBook {
    fn default() -> Self {
        PriceBook {
            switch: 1_000.0,
            link_per_gbps: 80.0,
            edge_compute: 2_500.0,
            fog_compute: 6_000.0,
            cloud_attach: 4_000.0,
        }
    }
}

/// Total price of a topology.
pub fn infrastructure_cost(g: &Graph, prices: &PriceBook) -> f64 {
    let mut total = 0.0;
    for i in 0..g.node_count() {
        total += match g.node(crate::graph::GNode(i)).kind {
            NodeKind::Switch => prices.switch,
            NodeKind::EdgeCompute => prices.edge_compute,
            NodeKind::FogCompute => prices.fog_compute,
            NodeKind::CloudCompute => prices.cloud_attach,
            _ => 0.0,
        };
    }
    for e in 0..g.edge_count() {
        let attr = g.edge_attr(GEdge(e));
        total += prices.link_per_gbps * attr.bandwidth_bps as f64 / 1e9;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::graph::EdgeAttr;

    #[test]
    fn bigger_fabric_costs_more() {
        let prices = PriceBook::default();
        let small = builder::leaf_spine(2, 2, 4, EdgeAttr::gigabit_local());
        let big = builder::leaf_spine(4, 8, 4, EdgeAttr::gigabit_local());
        let cs = infrastructure_cost(&small.graph, &prices);
        let cb = infrastructure_cost(&big.graph, &prices);
        assert!(cb > 2.0 * cs, "{cb} vs {cs}");
    }

    #[test]
    fn clients_are_free_infrastructure() {
        let prices = PriceBook::default();
        let a = builder::star(4, EdgeAttr::gigabit_local());
        let b = builder::star(8, EdgeAttr::gigabit_local());
        // Only access links differ (4 extra Gbps), not node costs.
        let diff = infrastructure_cost(&b.graph, &prices) - infrastructure_cost(&a.graph, &prices);
        assert!((diff - 4.0 * prices.link_per_gbps).abs() < 1e-6);
    }
}
