//! ML-traffic-aware topology design (§5, the "ML-aware" series of
//! Fig. 6).
//!
//! The design principle the paper sketches: take the *measured* demand
//! of ML inference clients (which itself depends on the input quality
//! the accuracy target tolerates) and dimension the network around it —
//! clustered edge compute close to the clients, uplinks capacity-planned
//! to a target utilization, aggregation only for overflow. The result
//! trades a little infrastructure (extra edge servers) for large
//! latency wins over both the legacy ring and a generic leaf-spine.

use crate::builder::Built;
use crate::graph::{EdgeAttr, GNode, Graph, NodeKind};
use crate::traffic::{Demand, RoutedMatrix};

/// Per-client demand profile driving the design.
#[derive(Clone, Copy, Debug)]
pub struct ClientProfile {
    /// Offered bits/s per client (from the ML degradation analysis).
    pub bps_per_client: f64,
    /// Mean packet size (bytes).
    pub mean_packet: u32,
}

/// Designer knobs.
#[derive(Clone, Debug)]
pub struct DesignConfig {
    /// Target max utilization on any planned link.
    pub target_utilization: f64,
    /// Access link spec.
    pub access: EdgeAttr,
    /// Uplink (access switch → edge compute / aggregation).
    pub uplink: EdgeAttr,
    /// Smallest / largest cluster sizes considered.
    pub cluster_bounds: (usize, usize),
}

impl Default for DesignConfig {
    fn default() -> Self {
        DesignConfig {
            target_utilization: 0.4,
            access: EdgeAttr::gigabit_local(),
            uplink: EdgeAttr::ten_gig_agg(),
            cluster_bounds: (4, 32),
        }
    }
}

/// The produced design: topology + client→compute assignment.
#[derive(Clone, Debug)]
pub struct MlAwareDesign {
    /// The topology.
    pub built: Built,
    /// For each client (index into `built.clients`), its serving
    /// compute node.
    pub assignment: Vec<GNode>,
    /// Chosen cluster size.
    pub cluster_size: usize,
}

/// Design a traffic-aware topology for `n_clients` with `profile`.
pub fn design(n_clients: usize, profile: ClientProfile, cfg: &DesignConfig) -> MlAwareDesign {
    assert!(n_clients >= 1);
    // Cluster size: keep the shared access-switch→edge-server hop under
    // the target utilization.
    let per_client = profile.bps_per_client;
    let budget = cfg.target_utilization * cfg.uplink.bandwidth_bps as f64;
    let k = ((budget / per_client) as usize)
        .clamp(cfg.cluster_bounds.0, cfg.cluster_bounds.1)
        .min(n_clients.max(1));
    let clusters = n_clients.div_ceil(k);

    let mut g = Graph::new();
    let agg = g.add_node(NodeKind::Switch, "agg");
    let fog = g.add_node(NodeKind::FogCompute, "fog0");
    g.connect(agg, fog, cfg.uplink);

    let mut clients = Vec::with_capacity(n_clients);
    let mut compute = vec![fog];
    let mut switches = vec![agg];
    let mut assignment = Vec::with_capacity(n_clients);

    let mut remaining = n_clients;
    for ci in 0..clusters {
        let in_cluster = remaining.min(k);
        remaining -= in_cluster;
        let sw = g.add_node(NodeKind::Switch, format!("acc{ci}"));
        let edge = g.add_node(NodeKind::EdgeCompute, format!("edge{ci}"));
        g.connect(sw, edge, cfg.uplink);
        g.connect(sw, agg, cfg.uplink);
        switches.push(sw);
        compute.push(edge);
        for c in 0..in_cluster {
            let cn = g.add_node(NodeKind::Client, format!("client{ci}_{c}"));
            g.connect(sw, cn, cfg.access);
            clients.push(cn);
            assignment.push(edge);
        }
    }

    MlAwareDesign {
        built: Built {
            graph: g,
            clients,
            compute,
            switches,
        },
        assignment,
        cluster_size: k,
    }
}

/// Build the demand set for a design (client → assigned compute).
pub fn demands_for(design: &MlAwareDesign, profile: ClientProfile) -> Vec<Demand> {
    design
        .built
        .clients
        .iter()
        .zip(&design.assignment)
        .map(|(&c, &s)| Demand {
            src: c,
            dst: s,
            bps: profile.bps_per_client,
            mean_packet: profile.mean_packet,
            class: crate::traffic::FlowClass::Medium,
        })
        .collect()
}

/// Greedy augmentation: add up to `budget_links` shortcut links between
/// the switch pairs whose routed demands suffer the highest
/// latency×load, reusing `uplink` specs. Returns the number added.
/// (Used by the ablation bench to show the ring can be rescued only
/// partially without a redesign.)
pub fn augment(
    g: &mut Graph,
    routed: &RoutedMatrix,
    uplink: EdgeAttr,
    budget_links: usize,
) -> usize {
    let mut added = 0;
    for _ in 0..budget_links {
        // Score demand paths by propagation length.
        let mut worst: Option<(f64, GNode, GNode)> = None;
        for (d, p) in routed.demands.iter().zip(&routed.paths) {
            // endpoints' attachment switches (second and second-to-last
            // nodes, when present).
            if p.nodes.len() < 4 {
                continue;
            }
            let a = p.nodes[1];
            let b = p.nodes[p.nodes.len() - 2];
            if a == b {
                continue;
            }
            // Skip if directly connected already.
            if g.neighbors(a).iter().any(|&(n, _)| n == b) {
                continue;
            }
            let lat: u64 = p.edges.iter().map(|e| g.edge_attr(*e).latency_ns).sum();
            let score = lat as f64 * d.bps;
            if worst.map(|(s, _, _)| score > s).unwrap_or(true) {
                worst = Some((score, a, b));
            }
        }
        let Some((_, a, b)) = worst else {
            break;
        };
        g.connect(a, b, uplink);
        added += 1;
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qnet;
    use crate::routing::{shortest_path, HopWeight, LatencyWeight};
    use crate::traffic::route_all;

    fn profile() -> ClientProfile {
        ClientProfile {
            bps_per_client: 40e6, // ~40 Mbit/s video per inspection cam
            mean_packet: 1200,
        }
    }

    #[test]
    fn design_covers_all_clients() {
        for n in [1, 7, 32, 256] {
            let d = design(n, profile(), &DesignConfig::default());
            assert_eq!(d.built.clients.len(), n);
            assert_eq!(d.assignment.len(), n);
            assert!(d.built.graph.is_connected());
        }
    }

    #[test]
    fn cluster_size_respects_utilization_target() {
        let cfg = DesignConfig::default();
        let d = design(128, profile(), &cfg);
        // k clients at 40 Mb/s over a 10G uplink at 40% target → k ≤ 100,
        // clamped to 32.
        assert_eq!(d.cluster_size, 32);
        let demands = demands_for(&d, profile());
        let routed = route_all(&d.built.graph, demands, &HopWeight).unwrap();
        assert!(
            routed.max_utilization(&d.built.graph) <= cfg.target_utilization + 0.05,
            "util = {}",
            routed.max_utilization(&d.built.graph)
        );
    }

    #[test]
    fn heavier_clients_get_smaller_clusters() {
        let cfg = DesignConfig::default();
        let heavy = ClientProfile {
            bps_per_client: 400e6,
            mean_packet: 1200,
        };
        let d = design(64, heavy, &cfg);
        assert_eq!(d.cluster_size, 10, "4000/400 = 10 clients per uplink");
    }

    #[test]
    fn ml_aware_beats_ring_at_scale() {
        let n = 128;
        let p = profile();
        // Ring.
        let ring = crate::builder::industrial_ring(n, EdgeAttr::gigabit_local());
        let fog = ring.compute[0];
        let ring_demands: Vec<Demand> = ring
            .clients
            .iter()
            .map(|&c| Demand {
                src: c,
                dst: fog,
                bps: p.bps_per_client,
                mean_packet: p.mean_packet,
                class: crate::traffic::FlowClass::Medium,
            })
            .collect();
        let ring_routed = route_all(&ring.graph, ring_demands, &HopWeight).unwrap();
        let ring_lat = qnet::mean_latency(&qnet::evaluate(&ring.graph, &ring_routed));

        // ML-aware.
        let d = design(n, p, &DesignConfig::default());
        let routed = route_all(&d.built.graph, demands_for(&d, p), &HopWeight).unwrap();
        let ml_lat = qnet::mean_latency(&qnet::evaluate(&d.built.graph, &routed));

        assert!(
            ml_lat.as_nanos() * 2 < ring_lat.as_nanos(),
            "ml {ml_lat} vs ring {ring_lat}"
        );
    }

    #[test]
    fn augment_adds_useful_links() {
        let b = crate::builder::line(8, EdgeAttr::gigabit_local());
        let demands = vec![Demand {
            src: b.clients[0],
            dst: b.clients[7],
            bps: 100e6,
            mean_packet: 1000,
            class: crate::traffic::FlowClass::Medium,
        }];
        let routed = route_all(&b.graph, demands.clone(), &HopWeight).unwrap();
        let before = shortest_path(&b.graph, b.clients[0], b.clients[7], &LatencyWeight)
            .unwrap()
            .hops();
        let mut g = b.graph.clone();
        let added = augment(&mut g, &routed, EdgeAttr::ten_gig_agg(), 1);
        assert_eq!(added, 1);
        let after = shortest_path(&g, b.clients[0], b.clients[7], &LatencyWeight)
            .unwrap()
            .hops();
        assert!(after < before, "{after} < {before}");
    }
}
