//! # steelworks-topo
//!
//! Topology substrate: a planning graph with typed nodes, builders for
//! the classic OT shapes (line / ring / star / tree) and IT fabrics
//! (leaf-spine), deterministic shortest-path routing with ECMP
//! accounting, traffic matrices with §2.3's flow taxonomy (including
//! the vPLC "deterministic never-ending microflow" class), an M/D/1
//! queueing-network evaluator, an infrastructure cost model, and the
//! ML-traffic-aware topology designer behind Fig. 6's winning series.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod cost;
pub mod graph;
pub mod optimize;
pub mod qnet;
pub mod routing;
pub mod traffic;

/// Convenient glob import.
pub mod prelude {
    pub use crate::builder::{
        bcube1, fat_tree, industrial_ring, leaf_spine, line, star, tree, Built,
    };
    pub use crate::cost::{infrastructure_cost, PriceBook};
    pub use crate::graph::{EdgeAttr, GEdge, GNode, Graph, NodeKind};
    pub use crate::optimize::{
        augment, demands_for, design, ClientProfile, DesignConfig, MlAwareDesign,
    };
    pub use crate::qnet::{evaluate, mean_latency, LatencyBreakdown, QnetResult};
    pub use crate::routing::{ecmp_width, shortest_path, HopWeight, LatencyWeight, Path};
    pub use crate::traffic::{classify, route_all, Demand, FlowClass, FlowFeatures, RoutedMatrix};
}
