//! The topology graph.
//!
//! An undirected multigraph with typed nodes (switches, compute tiers,
//! industrial endpoints) and attributed edges (bandwidth, latency).
//! This is the *planning* representation used by builders, routing and
//! the optimizer; packet-level execution uses `steelworks-netsim`.

/// What a node is.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum NodeKind {
    /// A switch (any tier).
    Switch,
    /// An ML inference server at the edge (in-cell).
    EdgeCompute,
    /// A fog/on-prem aggregation server.
    FogCompute,
    /// A remote cloud region.
    CloudCompute,
    /// An ML client (camera / inspection station).
    Client,
    /// A PLC or vPLC endpoint.
    Plc,
    /// An I/O device.
    Io,
}

/// Node attributes.
#[derive(Clone, Debug)]
pub struct NodeInfo {
    /// Kind.
    pub kind: NodeKind,
    /// Name for reports.
    pub name: String,
}

/// Edge attributes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeAttr {
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation latency in nanoseconds.
    pub latency_ns: u64,
}

impl EdgeAttr {
    /// Gigabit in-building link.
    pub fn gigabit_local() -> Self {
        EdgeAttr {
            bandwidth_bps: 1_000_000_000,
            latency_ns: 500,
        }
    }

    /// 10G aggregation link.
    pub fn ten_gig_agg() -> Self {
        EdgeAttr {
            bandwidth_bps: 10_000_000_000,
            latency_ns: 1_000,
        }
    }

    /// A WAN link to a cloud region (10 Gbps, 10 ms one way).
    pub fn cloud_wan() -> Self {
        EdgeAttr {
            bandwidth_bps: 10_000_000_000,
            latency_ns: 10_000_000,
        }
    }
}

/// Node handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GNode(pub usize);

/// Edge handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GEdge(pub usize);

/// The graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<NodeInfo>,
    /// Flat edge store: (a, b, attr).
    edges: Vec<(GNode, GNode, EdgeAttr)>,
    /// Adjacency: node → (neighbor, edge id).
    adj: Vec<Vec<(GNode, GEdge)>>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Add a node.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> GNode {
        let id = GNode(self.nodes.len());
        self.nodes.push(NodeInfo {
            kind,
            name: name.into(),
        });
        self.adj.push(Vec::new());
        id
    }

    /// Add an undirected edge.
    pub fn connect(&mut self, a: GNode, b: GNode, attr: EdgeAttr) -> GEdge {
        assert!(a != b, "self loops are not meaningful here");
        let id = GEdge(self.edges.len());
        self.edges.push((a, b, attr));
        self.adj[a.0].push((b, id));
        self.adj[b.0].push((a, id));
        id
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node info.
    pub fn node(&self, n: GNode) -> &NodeInfo {
        &self.nodes[n.0]
    }

    /// Edge endpoints + attributes.
    pub fn edge(&self, e: GEdge) -> (GNode, GNode, EdgeAttr) {
        self.edges[e.0]
    }

    /// Edge attributes only.
    pub fn edge_attr(&self, e: GEdge) -> EdgeAttr {
        self.edges[e.0].2
    }

    /// Neighbors of a node with the connecting edges.
    pub fn neighbors(&self, n: GNode) -> &[(GNode, GEdge)] {
        &self.adj[n.0]
    }

    /// Degree.
    pub fn degree(&self, n: GNode) -> usize {
        self.adj[n.0].len()
    }

    /// All nodes of a kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<GNode> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].kind == kind)
            .map(GNode)
            .collect()
    }

    /// Is the graph connected (ignoring isolated-node-free trivia)?
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![GNode(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &(m, _) in self.neighbors(n) {
                if !seen[m.0] {
                    seen[m.0] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Total infrastructure metric helpers: sum of link capacities.
    pub fn total_capacity_bps(&self) -> u64 {
        self.edges.iter().map(|(_, _, a)| a.bandwidth_bps).sum()
    }

    /// Render the topology as Graphviz DOT (node shapes by kind, edge
    /// labels with capacity) — paste into any DOT viewer.
    pub fn to_dot(&self, title: &str) -> String {
        let mut out = format!("graph \"{title}\" {{\n  layout=neato;\n");
        for (i, info) in self.nodes.iter().enumerate() {
            let (shape, color) = match info.kind {
                NodeKind::Switch => ("box", "lightblue"),
                NodeKind::EdgeCompute => ("hexagon", "palegreen"),
                NodeKind::FogCompute => ("hexagon", "green"),
                NodeKind::CloudCompute => ("hexagon", "darkseagreen"),
                NodeKind::Client => ("ellipse", "white"),
                NodeKind::Plc => ("component", "orange"),
                NodeKind::Io => ("cds", "gold"),
            };
            out.push_str(&format!(
                "  n{i} [label=\"{}\", shape={shape}, style=filled, fillcolor={color}];\n",
                info.name
            ));
        }
        for (a, b, attr) in &self.edges {
            out.push_str(&format!(
                "  n{} -- n{} [label=\"{}G\"];\n",
                a.0,
                b.0,
                attr.bandwidth_bps / 1_000_000_000
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::Switch, "s0");
        let b = g.add_node(NodeKind::Client, "c0");
        let c = g.add_node(NodeKind::EdgeCompute, "e0");
        g.connect(a, b, EdgeAttr::gigabit_local());
        g.connect(a, c, EdgeAttr::ten_gig_agg());
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.degree(b), 1);
        assert_eq!(g.nodes_of_kind(NodeKind::Client), vec![b]);
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_detected() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::Switch, "s0");
        let b = g.add_node(NodeKind::Switch, "s1");
        let _c = g.add_node(NodeKind::Switch, "s2");
        g.connect(a, b, EdgeAttr::gigabit_local());
        assert!(!g.is_connected());
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loop_panics() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::Switch, "s0");
        g.connect(a, a, EdgeAttr::gigabit_local());
    }

    #[test]
    fn empty_graph_connected() {
        assert!(Graph::new().is_connected());
    }

    #[test]
    fn dot_export_well_formed() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::Switch, "sw0");
        let b = g.add_node(NodeKind::Plc, "plc0");
        g.connect(a, b, EdgeAttr::gigabit_local());
        let dot = g.to_dot("cell");
        assert!(dot.starts_with("graph \"cell\""));
        assert!(dot.contains("n0 [label=\"sw0\", shape=box"));
        assert!(dot.contains("n1 [label=\"plc0\", shape=component"));
        assert!(dot.contains("n0 -- n1 [label=\"1G\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
