//! Wire format of the industrial cyclic real-time protocol.
//!
//! A PROFINET-RT-inspired layer-2 protocol carried in Ethernet frames
//! with ethertype [`steelworks_netsim::frame::ethertype::INDUSTRIAL_RT`].
//! The format keeps PROFINET's *observable structure* — that is what
//! InstaPLC's digital twin relies on — without reproducing the (very
//! large) real standard:
//!
//! ```text
//! [0..2]  frame_id        u16 BE — identifies the communication relationship
//! [2]     frame_type      u8     — connect req/resp, cyclic, alarm, release
//! [3]     data_status     u8     — RUN flag, provider role, problem indicator
//! [4..6]  cycle_counter   u16 BE — increments every provider cycle
//! [6..]   type-specific body
//! ```

use steelworks_netsim::bytes::Bytes;
use std::fmt;
use steelworks_netsim::time::NanoDur;

/// Identifies one communication relationship (CR) on the wire.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FrameId(pub u16);

/// Data status flags carried in every cyclic frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DataStatus {
    /// Provider is in RUN (true) or STOP (false).
    pub run: bool,
    /// Provider signals a station problem.
    pub problem: bool,
    /// Provider acts as primary (true) or backup (false) — the bit a
    /// redundant PLC pair flips at takeover.
    pub primary: bool,
}

impl DataStatus {
    /// A healthy primary in RUN.
    pub fn running_primary() -> Self {
        DataStatus {
            run: true,
            problem: false,
            primary: true,
        }
    }

    fn to_byte(self) -> u8 {
        (self.run as u8) | ((self.problem as u8) << 1) | ((self.primary as u8) << 2)
    }

    fn from_byte(b: u8) -> Self {
        DataStatus {
            run: b & 1 != 0,
            problem: b & 2 != 0,
            primary: b & 4 != 0,
        }
    }
}

/// Alarm conditions (acyclic, high priority).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AlarmKind {
    /// The consumer watchdog expired: no data for `watchdog_factor`
    /// consecutive cycles. The device enters its safe state.
    WatchdogExpired,
    /// Device-side diagnosis (sensor fault etc.).
    Diagnosis,
    /// Connection released by peer.
    Released,
}

impl AlarmKind {
    fn to_byte(self) -> u8 {
        match self {
            AlarmKind::WatchdogExpired => 1,
            AlarmKind::Diagnosis => 2,
            AlarmKind::Released => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(AlarmKind::WatchdogExpired),
            2 => Some(AlarmKind::Diagnosis),
            3 => Some(AlarmKind::Released),
            _ => None,
        }
    }
}

/// Parameters a controller proposes when establishing a CR.
///
/// Mirrors the PROFINET "connect + parameterization" phase that
/// InstaPLC eavesdrops to build its digital twin: everything the twin
/// must know travels in this one message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CrParams {
    /// Provider cycle time.
    pub cycle_time: NanoDur,
    /// Watchdog expires after this many missed cycles.
    pub watchdog_factor: u8,
    /// Bytes of output data (controller → device) per cycle.
    pub output_len: u16,
    /// Bytes of input data (device → controller) per cycle.
    pub input_len: u16,
}

impl CrParams {
    /// The watchdog timeout this parameterization implies.
    pub fn watchdog_timeout(&self) -> NanoDur {
        self.cycle_time * self.watchdog_factor as u64
    }
}

/// A parsed RT protocol message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RtPayload {
    /// Controller → device: establish a CR with these parameters.
    ConnectReq {
        /// CR identity.
        frame_id: FrameId,
        /// Proposed parameters.
        params: CrParams,
    },
    /// Device → controller: accept/reject.
    ConnectResp {
        /// CR identity.
        frame_id: FrameId,
        /// Whether the device accepted.
        accepted: bool,
    },
    /// Cyclic process data (either direction).
    CyclicData {
        /// CR identity.
        frame_id: FrameId,
        /// Provider cycle counter.
        cycle: u16,
        /// Provider status.
        status: DataStatus,
        /// Process image bytes.
        data: Bytes,
    },
    /// Acyclic alarm.
    Alarm {
        /// CR identity.
        frame_id: FrameId,
        /// What happened.
        kind: AlarmKind,
    },
    /// Orderly release of the CR.
    Release {
        /// CR identity.
        frame_id: FrameId,
    },
}

/// Parse failure reasons.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// Shorter than the fixed header.
    Truncated,
    /// Unknown frame type byte.
    BadType(u8),
    /// Body inconsistent with type.
    BadBody,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "frame truncated"),
            ParseError::BadType(t) => write!(f, "unknown frame type {t}"),
            ParseError::BadBody => write!(f, "malformed body"),
        }
    }
}

impl std::error::Error for ParseError {}

const T_CONNECT_REQ: u8 = 0;
const T_CONNECT_RESP: u8 = 1;
const T_CYCLIC: u8 = 2;
const T_ALARM: u8 = 3;
const T_RELEASE: u8 = 4;

impl RtPayload {
    /// The CR this message belongs to.
    pub fn frame_id(&self) -> FrameId {
        match self {
            RtPayload::ConnectReq { frame_id, .. }
            | RtPayload::ConnectResp { frame_id, .. }
            | RtPayload::CyclicData { frame_id, .. }
            | RtPayload::Alarm { frame_id, .. }
            | RtPayload::Release { frame_id } => *frame_id,
        }
    }

    /// Serialize to wire bytes.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = Vec::with_capacity(16);
        let fid = self.frame_id().0;
        out.extend_from_slice(&fid.to_be_bytes());
        match self {
            RtPayload::ConnectReq { params, .. } => {
                out.push(T_CONNECT_REQ);
                out.push(0);
                out.extend_from_slice(&0u16.to_be_bytes());
                out.extend_from_slice(&(params.cycle_time.as_nanos() as u32).to_be_bytes());
                out.push(params.watchdog_factor);
                out.extend_from_slice(&params.output_len.to_be_bytes());
                out.extend_from_slice(&params.input_len.to_be_bytes());
            }
            RtPayload::ConnectResp { accepted, .. } => {
                out.push(T_CONNECT_RESP);
                out.push(*accepted as u8);
                out.extend_from_slice(&0u16.to_be_bytes());
            }
            RtPayload::CyclicData {
                cycle,
                status,
                data,
                ..
            } => {
                out.push(T_CYCLIC);
                out.push(status.to_byte());
                out.extend_from_slice(&cycle.to_be_bytes());
                out.extend_from_slice(data);
            }
            RtPayload::Alarm { kind, .. } => {
                out.push(T_ALARM);
                out.push(kind.to_byte());
                out.extend_from_slice(&0u16.to_be_bytes());
            }
            RtPayload::Release { .. } => {
                out.push(T_RELEASE);
                out.push(0);
                out.extend_from_slice(&0u16.to_be_bytes());
            }
        }
        Bytes::from(out)
    }

    /// Parse from wire bytes.
    pub fn parse(bytes: &[u8]) -> Result<RtPayload, ParseError> {
        if bytes.len() < 6 {
            return Err(ParseError::Truncated);
        }
        let frame_id = FrameId(u16::from_be_bytes([bytes[0], bytes[1]]));
        let ty = bytes[2];
        let flags = bytes[3];
        let counter = u16::from_be_bytes([bytes[4], bytes[5]]);
        match ty {
            T_CONNECT_REQ => {
                if bytes.len() < 6 + 4 + 1 + 2 + 2 {
                    return Err(ParseError::BadBody);
                }
                // steelcheck: allow(unwrap-in-lib): slice is exactly 4 bytes after the BadBody length check above
                let cycle_ns = u32::from_be_bytes(bytes[6..10].try_into().expect("len 4"));
                let watchdog_factor = bytes[10];
                let output_len = u16::from_be_bytes([bytes[11], bytes[12]]);
                let input_len = u16::from_be_bytes([bytes[13], bytes[14]]);
                if cycle_ns == 0 || watchdog_factor == 0 {
                    return Err(ParseError::BadBody);
                }
                Ok(RtPayload::ConnectReq {
                    frame_id,
                    params: CrParams {
                        cycle_time: NanoDur(cycle_ns as u64),
                        watchdog_factor,
                        output_len,
                        input_len,
                    },
                })
            }
            T_CONNECT_RESP => Ok(RtPayload::ConnectResp {
                frame_id,
                accepted: flags != 0,
            }),
            T_CYCLIC => Ok(RtPayload::CyclicData {
                frame_id,
                cycle: counter,
                status: DataStatus::from_byte(flags),
                data: Bytes::from(bytes[6..].to_vec()),
            }),
            T_ALARM => Ok(RtPayload::Alarm {
                frame_id,
                kind: AlarmKind::from_byte(flags).ok_or(ParseError::BadBody)?,
            }),
            T_RELEASE => Ok(RtPayload::Release { frame_id }),
            other => Err(ParseError::BadType(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: RtPayload) {
        let bytes = p.to_bytes();
        let q = RtPayload::parse(&bytes).expect("parses");
        assert_eq!(p, q);
    }

    #[test]
    fn connect_req_roundtrip() {
        roundtrip(RtPayload::ConnectReq {
            frame_id: FrameId(0x8001),
            params: CrParams {
                cycle_time: NanoDur::from_millis(2),
                watchdog_factor: 3,
                output_len: 20,
                input_len: 36,
            },
        });
    }

    #[test]
    fn connect_resp_roundtrip() {
        roundtrip(RtPayload::ConnectResp {
            frame_id: FrameId(7),
            accepted: true,
        });
        roundtrip(RtPayload::ConnectResp {
            frame_id: FrameId(7),
            accepted: false,
        });
    }

    #[test]
    fn cyclic_roundtrip_with_data() {
        roundtrip(RtPayload::CyclicData {
            frame_id: FrameId(0x8001),
            cycle: 41234,
            status: DataStatus {
                run: true,
                problem: false,
                primary: true,
            },
            data: Bytes::from_static(&[1, 2, 3, 4, 5]),
        });
    }

    #[test]
    fn alarm_roundtrip() {
        for kind in [
            AlarmKind::WatchdogExpired,
            AlarmKind::Diagnosis,
            AlarmKind::Released,
        ] {
            roundtrip(RtPayload::Alarm {
                frame_id: FrameId(3),
                kind,
            });
        }
    }

    #[test]
    fn release_roundtrip() {
        roundtrip(RtPayload::Release {
            frame_id: FrameId(9),
        });
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(RtPayload::parse(&[0, 1, 2]), Err(ParseError::Truncated));
    }

    #[test]
    fn bad_type_rejected() {
        assert_eq!(
            RtPayload::parse(&[0, 1, 99, 0, 0, 0]),
            Err(ParseError::BadType(99))
        );
    }

    #[test]
    fn zero_cycle_time_rejected() {
        let mut bytes = RtPayload::ConnectReq {
            frame_id: FrameId(1),
            params: CrParams {
                cycle_time: NanoDur::from_millis(1),
                watchdog_factor: 3,
                output_len: 0,
                input_len: 0,
            },
        }
        .to_bytes()
        .to_vec();
        bytes[6..10].copy_from_slice(&0u32.to_be_bytes());
        assert_eq!(RtPayload::parse(&bytes), Err(ParseError::BadBody));
    }

    #[test]
    fn data_status_bits() {
        let s = DataStatus {
            run: true,
            problem: true,
            primary: false,
        };
        assert_eq!(DataStatus::from_byte(s.to_byte()), s);
    }

    #[test]
    fn watchdog_timeout_product() {
        let p = CrParams {
            cycle_time: NanoDur::from_millis(2),
            watchdog_factor: 3,
            output_len: 0,
            input_len: 0,
        };
        assert_eq!(p.watchdog_timeout(), NanoDur::from_millis(6));
    }

    #[test]
    fn corrupted_cyclic_still_parses_or_fails_cleanly() {
        // Any 6+ byte buffer with a valid type parses; garbage types fail.
        let p = RtPayload::CyclicData {
            frame_id: FrameId(1),
            cycle: 5,
            status: DataStatus::running_primary(),
            data: Bytes::from_static(&[0xFF; 20]),
        };
        let mut b = p.to_bytes().to_vec();
        b[7] ^= 0xFF; // flip a data byte: parses, data differs
        let q = RtPayload::parse(&b).unwrap();
        assert_ne!(p, q);
    }
}
