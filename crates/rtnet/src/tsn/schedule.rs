//! TSN schedule synthesis.
//!
//! Given a set of periodic RT flows and the egress ports they traverse,
//! compute per-flow release offsets such that no two scheduled frames
//! contend for the same port at the same time within the hyperperiod —
//! the "arbitrary scheduling algorithms computing pre-computed
//! transmission schedules for pre-defined flows" the paper describes as
//! TSN's new configuration freedom (§1.1). The algorithm is greedy
//! first-fit over the hyperperiod timeline; it is intentionally simple
//! and returns a structured infeasibility error rather than guessing.

use steelworks_netsim::time::NanoDur;

/// Identifier of an egress port in the scheduling problem (switch-id,
/// port-id pairs flattened by the caller).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EgressId(pub u32);

/// One periodic flow to schedule.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Flow name for reports.
    pub name: String,
    /// Transmission period.
    pub period: NanoDur,
    /// Time the frame occupies each egress port (serialization).
    pub tx_time: NanoDur,
    /// Egress ports along the path, in order, with the accumulated
    /// offset (propagation + switch latency) from the flow's release to
    /// reaching that port.
    pub path: Vec<(EgressId, NanoDur)>,
}

/// Result: per-flow release offset within its period.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Offsets, parallel to the input flow slice.
    pub offsets: Vec<NanoDur>,
    /// The hyperperiod the schedule repeats over.
    pub hyperperiod: NanoDur,
}

/// Why scheduling failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// No flows given.
    Empty,
    /// A flow has a zero period or zero tx time.
    DegenerateFlow(usize),
    /// No feasible offset exists for this flow given earlier placements.
    Infeasible {
        /// Index of the flow that could not be placed.
        flow: usize,
    },
    /// Hyperperiod overflow (periods too co-prime / too long).
    HyperperiodTooLong(u64),
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> Option<u64> {
    (a / gcd(a, b)).checked_mul(b)
}

/// Maximum hyperperiod we are willing to enumerate (1 s).
const MAX_HYPERPERIOD_NS: u64 = 1_000_000_000;

/// Greedy first-fit scheduler.
///
/// Flows are placed in the given order (callers sort by priority /
/// period). For each candidate offset (stepped at `granularity`), every
/// occurrence of the flow within the hyperperiod is checked against
/// already-reserved intervals on every port it crosses.
pub fn schedule(flows: &[FlowSpec], granularity: NanoDur) -> Result<Schedule, ScheduleError> {
    if flows.is_empty() {
        return Err(ScheduleError::Empty);
    }
    let mut hyper: u64 = 1;
    for (i, f) in flows.iter().enumerate() {
        if f.period.as_nanos() == 0 || f.tx_time.as_nanos() == 0 {
            return Err(ScheduleError::DegenerateFlow(i));
        }
        hyper = lcm(hyper, f.period.as_nanos())
            .filter(|&h| h <= MAX_HYPERPERIOD_NS)
            .ok_or(ScheduleError::HyperperiodTooLong(hyper))?;
    }

    // Reserved intervals per egress port: (start, end) within hyperperiod.
    let mut reserved: std::collections::BTreeMap<EgressId, Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    let mut offsets = Vec::with_capacity(flows.len());
    let step = granularity.as_nanos().max(1);

    for (fi, f) in flows.iter().enumerate() {
        let period = f.period.as_nanos();
        let reps = hyper / period;
        let mut placed = None;
        let mut offset = 0u64;
        'search: while offset + f.tx_time.as_nanos() <= period {
            let mut ok = true;
            'check: for rep in 0..reps {
                let release = rep * period + offset;
                for (port, hop_off) in &f.path {
                    let start = (release + hop_off.as_nanos()) % hyper;
                    let end = start + f.tx_time.as_nanos();
                    if let Some(iv) = reserved.get(port) {
                        for &(s, e) in iv {
                            if start < e && s < end {
                                ok = false;
                                break 'check;
                            }
                        }
                    }
                }
            }
            if ok {
                placed = Some(offset);
                break 'search;
            }
            offset += step;
        }
        let Some(offset) = placed else {
            return Err(ScheduleError::Infeasible { flow: fi });
        };
        for rep in 0..reps {
            let release = rep * period + offset;
            for (port, hop_off) in &f.path {
                let start = (release + hop_off.as_nanos()) % hyper;
                reserved
                    .entry(*port)
                    .or_default()
                    .push((start, start + f.tx_time.as_nanos()));
            }
        }
        offsets.push(NanoDur(offset));
    }

    Ok(Schedule {
        offsets,
        hyperperiod: NanoDur(hyper),
    })
}

/// Verify a schedule: recompute all port occupations and assert no
/// overlap. Used by tests and as a post-condition in release builds of
/// commissioning tools.
pub fn validate(flows: &[FlowSpec], sched: &Schedule) -> bool {
    let hyper = sched.hyperperiod.as_nanos();
    let mut by_port: std::collections::BTreeMap<EgressId, Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    for (f, off) in flows.iter().zip(&sched.offsets) {
        let reps = hyper / f.period.as_nanos();
        for rep in 0..reps {
            let release = rep * f.period.as_nanos() + off.as_nanos();
            for (port, hop_off) in &f.path {
                let start = (release + hop_off.as_nanos()) % hyper;
                by_port
                    .entry(*port)
                    .or_default()
                    .push((start, start + f.tx_time.as_nanos()));
            }
        }
    }
    for intervals in by_port.values_mut() {
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            if w[1].0 < w[0].1 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(name: &str, period_us: u64, tx_us: u64, ports: &[u32]) -> FlowSpec {
        FlowSpec {
            name: name.into(),
            period: NanoDur::from_micros(period_us),
            tx_time: NanoDur::from_micros(tx_us),
            path: ports
                .iter()
                .enumerate()
                .map(|(i, &p)| (EgressId(p), NanoDur::from_micros(5 * i as u64)))
                .collect(),
        }
    }

    #[test]
    fn single_flow_at_zero() {
        let flows = vec![flow("a", 1000, 10, &[0])];
        let s = schedule(&flows, NanoDur::from_micros(1)).unwrap();
        assert_eq!(s.offsets, vec![NanoDur::ZERO]);
        assert!(validate(&flows, &s));
    }

    #[test]
    fn two_flows_same_port_disjoint() {
        let flows = vec![flow("a", 1000, 100, &[0]), flow("b", 1000, 100, &[0])];
        let s = schedule(&flows, NanoDur::from_micros(10)).unwrap();
        assert_ne!(s.offsets[0], s.offsets[1]);
        assert!(validate(&flows, &s));
    }

    #[test]
    fn different_ports_can_overlap() {
        let flows = vec![flow("a", 1000, 100, &[0]), flow("b", 1000, 100, &[1])];
        let s = schedule(&flows, NanoDur::from_micros(10)).unwrap();
        // Both fit at offset 0 on disjoint ports.
        assert_eq!(s.offsets, vec![NanoDur::ZERO, NanoDur::ZERO]);
        assert!(validate(&flows, &s));
    }

    #[test]
    fn harmonic_periods_hyperperiod() {
        let flows = vec![flow("a", 500, 10, &[0]), flow("b", 1000, 10, &[0])];
        let s = schedule(&flows, NanoDur::from_micros(5)).unwrap();
        assert_eq!(s.hyperperiod, NanoDur::from_micros(1000));
        assert!(validate(&flows, &s));
    }

    #[test]
    fn saturated_port_infeasible() {
        // Ten flows of 150 µs tx each on one port with a 1 ms period:
        // 1.5 ms demand into 1 ms — cannot fit.
        let flows: Vec<FlowSpec> = (0..10)
            .map(|i| flow(&format!("f{i}"), 1000, 150, &[0]))
            .collect();
        match schedule(&flows, NanoDur::from_micros(10)) {
            Err(ScheduleError::Infeasible { flow }) => assert!(flow >= 6),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn multi_hop_paths_respected() {
        // Two flows share the second hop; validator must hold.
        let flows = vec![flow("a", 1000, 50, &[0, 2]), flow("b", 1000, 50, &[1, 2])];
        let s = schedule(&flows, NanoDur::from_micros(10)).unwrap();
        assert!(validate(&flows, &s));
    }

    #[test]
    fn degenerate_flow_rejected() {
        let flows = vec![flow("a", 0, 10, &[0])];
        assert_eq!(
            schedule(&flows, NanoDur::from_micros(1)),
            Err(ScheduleError::DegenerateFlow(0))
        );
    }

    #[test]
    fn coprime_long_periods_rejected() {
        let flows = vec![
            flow("a", 999_983, 1, &[0]), // large primes → huge LCM
            flow("b", 999_979, 1, &[0]),
        ];
        assert!(matches!(
            schedule(&flows, NanoDur::from_micros(1)),
            Err(ScheduleError::HyperperiodTooLong(_))
        ));
    }

    #[test]
    fn validate_detects_bad_schedule() {
        let flows = vec![flow("a", 1000, 100, &[0]), flow("b", 1000, 100, &[0])];
        let bad = Schedule {
            offsets: vec![NanoDur::ZERO, NanoDur::from_micros(50)],
            hyperperiod: NanoDur::from_micros(1000),
        };
        assert!(!validate(&flows, &bad));
    }
}
