//! A time-aware shaper switch (802.1Qbv egress).
//!
//! Extends the learning-switch idea with per-port gate control lists: a
//! frame may only start transmission when its traffic class's gate is
//! open *and* it fits in the remaining window (the guard-band rule that
//! keeps scheduled windows clean).

use crate::tsn::gcl::GateControlList;
use std::collections::{BTreeMap, VecDeque};
use steelworks_netsim::frame::{EthFrame, MacAddr};
use steelworks_netsim::node::{Ctx, Device, PortId};
use steelworks_netsim::time::{NanoDur, Nanos};

/// Per-egress-port shaper state.
#[derive(Debug)]
struct TasEgress {
    queues: [VecDeque<EthFrame>; 8],
    gcl: GateControlList,
    busy_until: Nanos,
    guard_drops: u64,
}

impl TasEgress {
    fn depth(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

/// A TSN switch with time-aware shaping on every port.
#[derive(Debug)]
pub struct TsnSwitch {
    name: String,
    ports: usize,
    forwarding_latency: NanoDur,
    queue_capacity: usize,
    fdb: BTreeMap<MacAddr, PortId>,
    egress: Vec<TasEgress>,
    staged: Vec<(Nanos, PortId, EthFrame)>,
    tail_drops: u64,
    forwarded: u64,
}

const TOKEN_STAGE: u64 = 1;
const TOKEN_DRAIN_BASE: u64 = 1 << 32;

impl TsnSwitch {
    /// A TSN switch where every port runs the same GCL.
    pub fn new(name: impl Into<String>, ports: usize, gcl: GateControlList) -> Self {
        TsnSwitch {
            name: name.into(),
            ports,
            forwarding_latency: NanoDur(1_200),
            queue_capacity: 256,
            fdb: BTreeMap::new(),
            egress: (0..ports)
                .map(|_| TasEgress {
                    queues: Default::default(),
                    gcl: gcl.clone(),
                    busy_until: Nanos::ZERO,
                    guard_drops: 0,
                })
                .collect(),
            staged: Vec::new(),
            tail_drops: 0,
            forwarded: 0,
        }
    }

    /// Replace one port's GCL (per-port schedules from the synthesizer).
    pub fn set_port_gcl(&mut self, port: PortId, gcl: GateControlList) {
        self.egress[port.0].gcl = gcl;
    }

    /// Pin a MAC to a port (static commissioning).
    pub fn learn_static(&mut self, mac: MacAddr, port: PortId) {
        self.fdb.insert(mac, port);
    }

    /// Frames forwarded (unicast, known port).
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Frames dropped on full queues.
    pub fn tail_drops(&self) -> u64 {
        self.tail_drops
    }

    /// Frames whose transmission was deferred by the guard band, summed
    /// over ports. (They are delayed, not lost; the name counts events.)
    pub fn guard_deferrals(&self) -> u64 {
        self.egress.iter().map(|e| e.guard_drops).sum()
    }

    fn enqueue(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: EthFrame) {
        if port.0 >= self.egress.len() {
            return;
        }
        if self.egress[port.0].depth() >= self.queue_capacity {
            self.tail_drops += 1;
            return;
        }
        let pcp = frame.priority().min(7) as usize;
        self.egress[port.0].queues[pcp].push_back(frame);
        self.drain(ctx, port);
    }

    /// Try to start transmitting the highest-priority frame whose gate
    /// is open and whose serialization fits the remaining window.
    fn drain(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        let now = ctx.now();
        let Some(rate) = ctx.link_rate(port) else {
            return;
        };
        let eg = &mut self.egress[port.0];
        if eg.busy_until > now {
            return;
        }
        let mut next_wakeup: Option<Nanos> = None;
        for tc in (0..8usize).rev() {
            let Some(frame) = eg.queues[tc].front() else {
                continue;
            };
            let ser = NanoDur::for_bits(frame.wire_bits(), rate);
            if eg.gcl.is_open(now, tc as u8) {
                let (_, remaining) = eg.gcl.next_open(now, tc as u8);
                if ser <= remaining {
                    let Some(frame) = eg.queues[tc].pop_front() else {
                        continue;
                    };
                    eg.busy_until = now + ser;
                    ctx.send(port, frame);
                    if eg.depth() > 0 {
                        ctx.timer_at(eg.busy_until, TOKEN_DRAIN_BASE + port.0 as u64);
                    }
                    return;
                }
                // Guard band: does not fit the remaining window.
                eg.guard_drops += 1;
            }
            let (open_at, _) = eg.gcl.next_open(now + NanoDur(1), tc as u8);
            next_wakeup = Some(match next_wakeup {
                Some(t) => t.min(open_at),
                None => open_at,
            });
        }
        if let Some(at) = next_wakeup {
            ctx.timer_at(at, TOKEN_DRAIN_BASE + port.0 as u64);
        }
    }
}

impl Device for TsnSwitch {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, ingress: PortId, frame: EthFrame) {
        if !frame.src.is_multicast() {
            self.fdb.insert(frame.src, ingress);
        }
        let at = ctx.now() + self.forwarding_latency;
        match self.fdb.get(&frame.dst).copied() {
            Some(out) if !frame.dst.is_multicast() => {
                if out != ingress {
                    self.forwarded += 1;
                    self.staged.push((at, out, frame));
                    ctx.timer_at(at, TOKEN_STAGE);
                }
            }
            _ => {
                for p in 0..self.ports {
                    if p != ingress.0 {
                        // steelcheck: allow(hot-path-alloc): flood fan-out needs one frame per port; payload clones by Arc refcount
                        self.staged.push((at, PortId(p), frame.clone()));
                    }
                }
                ctx.timer_at(at, TOKEN_STAGE);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_STAGE {
            let now = ctx.now();
            let mut ready = Vec::new();
            let mut waiting = Vec::new();
            for e in self.staged.drain(..) {
                if e.0 <= now {
                    ready.push(e);
                } else {
                    waiting.push(e);
                }
            }
            self.staged = waiting;
            for (_, port, frame) in ready {
                self.enqueue(ctx, port, frame);
            }
        } else if token >= TOKEN_DRAIN_BASE {
            self.drain(ctx, PortId((token - TOKEN_DRAIN_BASE) as usize));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steelworks_netsim::prelude::*;

    /// RT frames only depart inside the RT window of the GCL.
    #[test]
    fn rt_frames_held_until_window() {
        let mut sim = Simulator::new(1);
        let rt_src = MacAddr::local(1);
        let dst_mac = MacAddr::local(2);
        // Cycle 1 ms, RT window = first 200 µs of each cycle.
        let gcl = crate::tsn::gcl::GateControlList::rt_window(
            Nanos::ZERO,
            NanoDur::from_millis(1),
            NanoDur::from_micros(200),
        );
        let src = sim.add_node(
            PeriodicSource::new("rt", rt_src, dst_mac, 46, NanoDur::from_micros(300))
                .with_vlan(VlanTag::RT)
                .with_limit(20),
        );
        let sink = sim.add_node(CounterSink::new("sink"));
        let sw = sim.add_node({
            let mut s = TsnSwitch::new("tsn0", 4, gcl);
            s.learn_static(dst_mac, PortId(1));
            s
        });
        sim.connect(src, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(sink, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(30));
        let sink_ref = sim.node_ref::<CounterSink>(sink);
        assert_eq!(sink_ref.count(), 20);
        // Every arrival must fall within (window + serialization+prop+
        // forwarding slack) of a cycle start.
        for t in sink_ref.arrivals() {
            let phase = t.as_nanos() % 1_000_000;
            assert!(
                phase < 205_000,
                "frame departed outside RT window: phase={phase}ns"
            );
        }
    }

    /// Best-effort frames never transmit inside the exclusive RT window.
    #[test]
    fn best_effort_excluded_from_rt_window() {
        let mut sim = Simulator::new(2);
        let be_src = MacAddr::local(1);
        let dst_mac = MacAddr::local(2);
        let gcl = crate::tsn::gcl::GateControlList::rt_window(
            Nanos::ZERO,
            NanoDur::from_millis(1),
            NanoDur::from_micros(200),
        );
        let src = sim.add_node(
            PeriodicSource::new("be", be_src, dst_mac, 46, NanoDur::from_micros(100))
                .with_limit(50),
        );
        let sink = sim.add_node(CounterSink::new("sink"));
        let sw = sim.add_node({
            let mut s = TsnSwitch::new("tsn0", 4, gcl);
            s.learn_static(dst_mac, PortId(1));
            s
        });
        sim.connect(src, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(sink, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(30));
        let sink_ref = sim.node_ref::<CounterSink>(sink);
        assert_eq!(sink_ref.count(), 50);
        for t in sink_ref.arrivals() {
            // Arrival = departure + ser(672) + prop(25). Departure phase
            // must be ≥ 200 µs into the cycle.
            let depart_phase = (t.as_nanos() - 697) % 1_000_000;
            assert!(
                depart_phase >= 200_000,
                "BE frame transmitted in RT window: phase={depart_phase}"
            );
        }
    }

    #[test]
    fn guard_band_defers_but_delivers() {
        // A BE window too small for a big frame: it waits; counter
        // records deferrals.
        let mut sim = Simulator::new(3);
        let be_src = MacAddr::local(1);
        let dst_mac = MacAddr::local(2);
        // 100 µs cycle: 90 µs RT, 10 µs BE. 1500 B frame needs ~12 µs
        // at 1G — it never fits a 10 µs BE window... it would starve.
        // Use 20 µs BE window instead: fits (12 µs), but only barely —
        // a frame arriving mid-window defers to the next cycle.
        let gcl = crate::tsn::gcl::GateControlList::rt_window(
            Nanos::ZERO,
            NanoDur::from_micros(100),
            NanoDur::from_micros(80),
        );
        let src = sim.add_node(
            PeriodicSource::new("be", be_src, dst_mac, 1400, NanoDur::from_micros(95))
                .with_limit(10),
        );
        let sink = sim.add_node(CounterSink::new("sink"));
        let sw = sim.add_node({
            let mut s = TsnSwitch::new("tsn0", 4, gcl);
            s.learn_static(dst_mac, PortId(1));
            s
        });
        sim.connect(src, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(sink, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(10));
        assert_eq!(sim.node_ref::<CounterSink>(sink).count(), 10);
        assert!(sim.node_ref::<TsnSwitch>(sw).guard_deferrals() > 0);
    }
}
