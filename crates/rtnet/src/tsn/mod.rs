//! Time-Sensitive Networking: gate control lists, a time-aware shaper
//! switch, and offline schedule synthesis.

pub mod gcl;
pub mod schedule;
pub mod tas;
