//! Gate control lists (IEEE 802.1Qbv).
//!
//! A GCL divides a repeating cycle into windows; each window opens a
//! subset of the eight traffic-class gates. Scheduled (RT) traffic gets
//! exclusive windows, best-effort traffic the rest — the mechanism TSN
//! uses to give cyclic industrial flows their deterministic slots.

use steelworks_netsim::time::{NanoDur, Nanos};

/// One GCL entry: keep `gates` open for `duration`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GclEntry {
    /// Bitmask of open traffic classes (bit 7 = PCP 7).
    pub gates: u8,
    /// Window length.
    pub duration: NanoDur,
}

/// A repeating gate control list.
#[derive(Clone, Debug)]
pub struct GateControlList {
    entries: Vec<GclEntry>,
    cycle: NanoDur,
    base_time: Nanos,
}

impl GateControlList {
    /// Build a GCL; the cycle time is the sum of entry durations.
    pub fn new(base_time: Nanos, entries: Vec<GclEntry>) -> Self {
        assert!(!entries.is_empty(), "GCL needs at least one entry");
        let cycle = entries
            .iter()
            .fold(NanoDur::ZERO, |acc, e| acc + e.duration);
        assert!(cycle.as_nanos() > 0, "GCL cycle must be positive");
        GateControlList {
            entries,
            cycle,
            base_time,
        }
    }

    /// An always-open list (TAS disabled).
    pub fn always_open() -> Self {
        GateControlList::new(
            Nanos::ZERO,
            vec![GclEntry {
                gates: 0xFF,
                duration: NanoDur::from_millis(1),
            }],
        )
    }

    /// The classic industrial split: an exclusive window for PCP ≥ 6 at
    /// the start of each cycle, the remainder open for everything else.
    pub fn rt_window(base_time: Nanos, cycle: NanoDur, rt_window: NanoDur) -> Self {
        assert!(rt_window < cycle, "RT window must fit in the cycle");
        GateControlList::new(
            base_time,
            vec![
                GclEntry {
                    gates: 0b1100_0000,
                    duration: rt_window,
                },
                GclEntry {
                    gates: 0b0011_1111,
                    duration: cycle - rt_window,
                },
            ],
        )
    }

    /// Cycle length.
    pub fn cycle(&self) -> NanoDur {
        self.cycle
    }

    /// Gate mask active at instant `t`.
    pub fn gates_at(&self, t: Nanos) -> u8 {
        let mut into = (t.saturating_since(self.base_time)) % self.cycle;
        // `%` on NanoDur: position within the cycle.
        for e in &self.entries {
            if into < e.duration {
                return e.gates;
            }
            into -= e.duration;
        }
        // steelcheck: allow(unwrap-in-lib): GCLs are non-empty by construction (new() rejects empty entry lists)
        self.entries.last().expect("non-empty").gates
    }

    /// Is traffic class `tc`'s gate open at `t`?
    pub fn is_open(&self, t: Nanos, tc: u8) -> bool {
        self.gates_at(t) & (1 << tc) != 0
    }

    /// The next instant ≥ `t` at which `tc`'s gate is open, together
    /// with how long it then stays open (within that entry).
    pub fn next_open(&self, t: Nanos, tc: u8) -> (Nanos, NanoDur) {
        let mask = 1u8 << tc;
        // Scan at most two cycles (a gate that never opens would loop;
        // guard with an assert).
        assert!(
            self.entries.iter().any(|e| e.gates & mask != 0),
            "traffic class {tc} never opens in this GCL"
        );
        let since_base = t.saturating_since(self.base_time);
        let cycles_done = since_base.as_nanos() / self.cycle.as_nanos();
        let mut window_start = self.base_time + self.cycle * cycles_done;
        loop {
            for e in &self.entries {
                let window_end = window_start + e.duration;
                if e.gates & mask != 0 && window_end > t {
                    let open_from = window_start.max(t);
                    return (open_from, window_end - open_from);
                }
                window_start = window_end;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_window() -> GateControlList {
        // 0–100 µs: RT only; 100–1000 µs: best effort.
        GateControlList::rt_window(
            Nanos::ZERO,
            NanoDur::from_micros(1000),
            NanoDur::from_micros(100),
        )
    }

    #[test]
    fn gates_by_phase() {
        let gcl = two_window();
        assert!(gcl.is_open(Nanos::from_micros(50), 6));
        assert!(!gcl.is_open(Nanos::from_micros(50), 0));
        assert!(!gcl.is_open(Nanos::from_micros(500), 6));
        assert!(gcl.is_open(Nanos::from_micros(500), 0));
    }

    #[test]
    fn wraps_across_cycles() {
        let gcl = two_window();
        // Same phase, 5 cycles later.
        assert!(gcl.is_open(Nanos::from_micros(5_050), 6));
        assert!(!gcl.is_open(Nanos::from_micros(5_500), 6));
    }

    #[test]
    fn next_open_within_current_window() {
        let gcl = two_window();
        let (at, remaining) = gcl.next_open(Nanos::from_micros(30), 6);
        assert_eq!(at, Nanos::from_micros(30));
        assert_eq!(remaining, NanoDur::from_micros(70));
    }

    #[test]
    fn next_open_waits_for_next_cycle() {
        let gcl = two_window();
        let (at, remaining) = gcl.next_open(Nanos::from_micros(200), 6);
        assert_eq!(at, Nanos::from_micros(1000));
        assert_eq!(remaining, NanoDur::from_micros(100));
    }

    #[test]
    fn best_effort_next_open() {
        let gcl = two_window();
        let (at, _) = gcl.next_open(Nanos::from_micros(20), 0);
        assert_eq!(at, Nanos::from_micros(100));
    }

    #[test]
    fn base_time_shifts_phase() {
        let gcl = GateControlList::rt_window(
            Nanos::from_micros(250),
            NanoDur::from_micros(1000),
            NanoDur::from_micros(100),
        );
        assert!(gcl.is_open(Nanos::from_micros(300), 6));
        assert!(!gcl.is_open(Nanos::from_micros(400), 6));
    }

    #[test]
    fn always_open_is_always_open() {
        let gcl = GateControlList::always_open();
        for tc in 0..8 {
            assert!(gcl.is_open(Nanos::from_micros(123), tc));
        }
    }

    #[test]
    #[should_panic(expected = "never opens")]
    fn never_open_class_panics() {
        let gcl = GateControlList::new(
            Nanos::ZERO,
            vec![GclEntry {
                gates: 0b0000_0001,
                duration: NanoDur::from_micros(10),
            }],
        );
        gcl.next_open(Nanos::ZERO, 7);
    }
}
