//! Communication-relationship (CR) state machines.
//!
//! A CR is PROFINET's application relationship: the controller proposes
//! parameters (cycle time, watchdog factor, data lengths), the device
//! accepts, and both sides then exchange cyclic data forever. These
//! state machines are pure protocol logic — the `vplc` crate wraps them
//! in simulator devices and drives them from timers.

use crate::frame::{AlarmKind, CrParams, DataStatus, FrameId, RtPayload};
use crate::watchdog::{Watchdog, WatchdogState};
use steelworks_netsim::bytes::Bytes;
use steelworks_netsim::time::{NanoDur, Nanos};

/// Events a CR surfaces to its owner.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CrEvent {
    /// Connection established.
    Connected,
    /// The peer rejected the connect request.
    Rejected,
    /// Cyclic data arrived.
    Data {
        /// Provider cycle counter.
        cycle: u16,
        /// Provider status flags.
        status: DataStatus,
        /// Process data.
        data: Bytes,
    },
    /// Our consumer watchdog expired — peer went silent.
    WatchdogExpired,
    /// Peer raised an alarm.
    Alarm(AlarmKind),
    /// Peer released the CR.
    Released,
}

/// Controller-side CR states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ControllerState {
    /// Nothing sent yet.
    Idle,
    /// Connect request sent, awaiting response.
    Connecting,
    /// Cyclic exchange running.
    Running,
    /// Terminated.
    Released,
}

/// Controller (provider of outputs, consumer of inputs) side of a CR.
#[derive(Clone, Debug)]
pub struct ControllerCr {
    /// CR identity on the wire.
    pub frame_id: FrameId,
    /// Negotiated parameters.
    pub params: CrParams,
    state: ControllerState,
    cycle: u16,
    watchdog: Watchdog,
    connect_sent_at: Option<Nanos>,
    /// Retransmit the connect request after this long without response.
    pub connect_timeout: NanoDur,
}

impl ControllerCr {
    /// New controller CR (idle).
    pub fn new(frame_id: FrameId, params: CrParams) -> Self {
        ControllerCr {
            frame_id,
            params,
            state: ControllerState::Idle,
            cycle: 0,
            watchdog: Watchdog::new(params.cycle_time, params.watchdog_factor),
            connect_sent_at: None,
            connect_timeout: NanoDur::from_millis(100),
        }
    }

    /// Current state.
    pub fn state(&self) -> ControllerState {
        self.state
    }

    /// Begin establishment: returns the connect request to transmit.
    pub fn start(&mut self, now: Nanos) -> RtPayload {
        self.state = ControllerState::Connecting;
        self.connect_sent_at = Some(now);
        RtPayload::ConnectReq {
            frame_id: self.frame_id,
            params: self.params,
        }
    }

    /// Handle an incoming payload for this CR.
    pub fn on_payload(&mut self, now: Nanos, payload: &RtPayload) -> Vec<CrEvent> {
        if payload.frame_id() != self.frame_id {
            return Vec::new();
        }
        match (self.state, payload) {
            (ControllerState::Connecting, RtPayload::ConnectResp { accepted: true, .. }) => {
                self.state = ControllerState::Running;
                self.watchdog.feed(now);
                vec![CrEvent::Connected]
            }
            (
                ControllerState::Connecting,
                RtPayload::ConnectResp {
                    accepted: false, ..
                },
            ) => {
                self.state = ControllerState::Released;
                vec![CrEvent::Rejected]
            }
            (
                ControllerState::Running,
                RtPayload::CyclicData {
                    cycle,
                    status,
                    data,
                    ..
                },
            ) => {
                self.watchdog.feed(now);
                vec![CrEvent::Data {
                    cycle: *cycle,
                    status: *status,
                    data: data.clone(),
                }]
            }
            (_, RtPayload::Alarm { kind, .. }) => vec![CrEvent::Alarm(*kind)],
            (_, RtPayload::Release { .. }) => {
                self.state = ControllerState::Released;
                vec![CrEvent::Released]
            }
            _ => Vec::new(),
        }
    }

    /// Periodic tick, called once per cycle by the owner. Returns the
    /// payload(s) to transmit plus any surfaced events.
    pub fn tick(
        &mut self,
        now: Nanos,
        output_data: &[u8],
        status: DataStatus,
    ) -> (Vec<RtPayload>, Vec<CrEvent>) {
        match self.state {
            ControllerState::Connecting => {
                let resend = self
                    .connect_sent_at
                    .map(|t| now.saturating_since(t) >= self.connect_timeout)
                    .unwrap_or(true);
                if resend {
                    self.connect_sent_at = Some(now);
                    (
                        vec![RtPayload::ConnectReq {
                            frame_id: self.frame_id,
                            params: self.params,
                        }],
                        Vec::new(),
                    )
                } else {
                    (Vec::new(), Vec::new())
                }
            }
            ControllerState::Running => {
                let mut events = Vec::new();
                if self.watchdog.check(now) {
                    events.push(CrEvent::WatchdogExpired);
                }
                self.cycle = self.cycle.wrapping_add(1);
                let data = if output_data.len() == self.params.output_len as usize {
                    Bytes::from(output_data.to_vec())
                } else {
                    // Pad/trim to the parameterized length — the wire
                    // format is fixed-size per CR.
                    let mut v = output_data.to_vec();
                    v.resize(self.params.output_len as usize, 0);
                    Bytes::from(v)
                };
                (
                    vec![RtPayload::CyclicData {
                        frame_id: self.frame_id,
                        cycle: self.cycle,
                        status,
                        data,
                    }],
                    events,
                )
            }
            _ => (Vec::new(), Vec::new()),
        }
    }

    /// Orderly shutdown; returns the release message.
    pub fn release(&mut self) -> RtPayload {
        self.state = ControllerState::Released;
        RtPayload::Release {
            frame_id: self.frame_id,
        }
    }

    /// Consumer watchdog state.
    pub fn watchdog_state(&self) -> WatchdogState {
        self.watchdog.state()
    }
}

/// Device-side CR states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceState {
    /// Waiting for a controller.
    Listening,
    /// Cyclic exchange running.
    Running,
    /// Watchdog expired — outputs forced to the safe state.
    SafeState,
    /// Terminated.
    Released,
}

/// Device (I/O) side of a CR.
#[derive(Clone, Debug)]
pub struct DeviceCr {
    /// CR identity (filled at connect).
    pub frame_id: Option<FrameId>,
    /// Accepted parameters.
    pub params: Option<CrParams>,
    state: DeviceState,
    cycle: u16,
    watchdog: Option<Watchdog>,
    /// Accept only this many connections (a physical device has one
    /// controller; rejecting the second connect is what forces the
    /// secondary vPLC onto InstaPLC's digital twin).
    accept_connects: bool,
}

impl DeviceCr {
    /// New listening device endpoint.
    pub fn new() -> Self {
        DeviceCr {
            frame_id: None,
            params: None,
            state: DeviceState::Listening,
            cycle: 0,
            watchdog: None,
            accept_connects: true,
        }
    }

    /// Current state.
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// Negotiated cycle time (once running).
    pub fn cycle_time(&self) -> Option<NanoDur> {
        self.params.map(|p| p.cycle_time)
    }

    /// Handle an incoming payload; returns (reply, events).
    pub fn on_payload(
        &mut self,
        now: Nanos,
        payload: &RtPayload,
    ) -> (Option<RtPayload>, Vec<CrEvent>) {
        match payload {
            RtPayload::ConnectReq { frame_id, params } => {
                if self.state == DeviceState::Listening && self.accept_connects {
                    self.frame_id = Some(*frame_id);
                    self.params = Some(*params);
                    self.state = DeviceState::Running;
                    let mut wd = Watchdog::new(params.cycle_time, params.watchdog_factor);
                    wd.feed(now);
                    self.watchdog = Some(wd);
                    (
                        Some(RtPayload::ConnectResp {
                            frame_id: *frame_id,
                            accepted: true,
                        }),
                        vec![CrEvent::Connected],
                    )
                } else if self.frame_id == Some(*frame_id) {
                    // Duplicate connect from our controller: re-ack.
                    (
                        Some(RtPayload::ConnectResp {
                            frame_id: *frame_id,
                            accepted: true,
                        }),
                        Vec::new(),
                    )
                } else {
                    // Second controller: reject.
                    (
                        Some(RtPayload::ConnectResp {
                            frame_id: *frame_id,
                            accepted: false,
                        }),
                        Vec::new(),
                    )
                }
            }
            RtPayload::CyclicData {
                frame_id,
                cycle,
                status,
                data,
            } if Some(*frame_id) == self.frame_id => {
                if let Some(wd) = &mut self.watchdog {
                    wd.feed(now);
                }
                if self.state == DeviceState::SafeState {
                    // Controller is back: resume.
                    self.state = DeviceState::Running;
                }
                (
                    None,
                    vec![CrEvent::Data {
                        cycle: *cycle,
                        status: *status,
                        data: data.clone(),
                    }],
                )
            }
            RtPayload::Release { frame_id } if Some(*frame_id) == self.frame_id => {
                self.state = DeviceState::Released;
                (None, vec![CrEvent::Released])
            }
            _ => (None, Vec::new()),
        }
    }

    /// Periodic tick: checks the watchdog and produces the device's
    /// cyclic input-data frame.
    pub fn tick(&mut self, now: Nanos, input_data: &[u8]) -> (Vec<RtPayload>, Vec<CrEvent>) {
        let mut events = Vec::new();
        let mut out = Vec::new();
        if self.state == DeviceState::Running {
            if let Some(wd) = &mut self.watchdog {
                if wd.check(now) {
                    self.state = DeviceState::SafeState;
                    events.push(CrEvent::WatchdogExpired);
                    if let Some(fid) = self.frame_id {
                        out.push(RtPayload::Alarm {
                            frame_id: fid,
                            kind: AlarmKind::WatchdogExpired,
                        });
                    }
                }
            }
        }
        if self.state == DeviceState::Running {
            if let (Some(fid), Some(params)) = (self.frame_id, self.params) {
                self.cycle = self.cycle.wrapping_add(1);
                let mut v = input_data.to_vec();
                v.resize(params.input_len as usize, 0);
                out.push(RtPayload::CyclicData {
                    frame_id: fid,
                    cycle: self.cycle,
                    status: DataStatus::running_primary(),
                    data: Bytes::from(v),
                });
            }
        }
        (out, events)
    }
}

impl Default for DeviceCr {
    fn default() -> Self {
        DeviceCr::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CrParams {
        CrParams {
            cycle_time: NanoDur::from_millis(2),
            watchdog_factor: 3,
            output_len: 8,
            input_len: 8,
        }
    }

    #[test]
    fn connect_handshake() {
        let mut ctrl = ControllerCr::new(FrameId(0x8001), params());
        let mut dev = DeviceCr::new();
        let t0 = Nanos::ZERO;
        let req = ctrl.start(t0);
        let (resp, dev_ev) = dev.on_payload(t0, &req);
        assert_eq!(dev_ev, vec![CrEvent::Connected]);
        assert_eq!(dev.state(), DeviceState::Running);
        let ev = ctrl.on_payload(t0, &resp.unwrap());
        assert_eq!(ev, vec![CrEvent::Connected]);
        assert_eq!(ctrl.state(), ControllerState::Running);
    }

    #[test]
    fn second_controller_rejected() {
        let mut dev = DeviceCr::new();
        let mut c1 = ControllerCr::new(FrameId(1), params());
        let mut c2 = ControllerCr::new(FrameId(2), params());
        let t0 = Nanos::ZERO;
        let (r1, _) = dev.on_payload(t0, &c1.start(t0));
        c1.on_payload(t0, &r1.unwrap());
        let (r2, ev2) = dev.on_payload(t0, &c2.start(t0));
        assert!(ev2.is_empty());
        let ev = c2.on_payload(t0, &r2.unwrap());
        assert_eq!(ev, vec![CrEvent::Rejected]);
        assert_eq!(c2.state(), ControllerState::Released);
    }

    #[test]
    fn cyclic_exchange_feeds_watchdogs() {
        let mut ctrl = ControllerCr::new(FrameId(1), params());
        let mut dev = DeviceCr::new();
        let mut now = Nanos::ZERO;
        let (resp, _) = dev.on_payload(now, &ctrl.start(now));
        ctrl.on_payload(now, &resp.unwrap());
        for _ in 0..20 {
            now += NanoDur::from_millis(2);
            let (ctrl_out, ctrl_ev) = ctrl.tick(now, &[1; 8], DataStatus::running_primary());
            assert!(ctrl_ev.is_empty(), "no controller watchdog events");
            for p in &ctrl_out {
                dev.on_payload(now, p);
            }
            let (dev_out, dev_ev) = dev.tick(now, &[2; 8]);
            assert!(dev_ev.is_empty(), "no device watchdog events");
            for p in &dev_out {
                let evs = ctrl.on_payload(now, p);
                assert!(matches!(evs[0], CrEvent::Data { .. }));
            }
        }
        assert_eq!(dev.state(), DeviceState::Running);
        assert_eq!(ctrl.watchdog_state(), WatchdogState::Ok);
    }

    #[test]
    fn silent_controller_trips_device_watchdog() {
        let mut ctrl = ControllerCr::new(FrameId(1), params());
        let mut dev = DeviceCr::new();
        let mut now = Nanos::ZERO;
        let (resp, _) = dev.on_payload(now, &ctrl.start(now));
        ctrl.on_payload(now, &resp.unwrap());
        // Controller goes silent; device ticks on.
        let mut expired_at = None;
        for i in 0..10 {
            now += NanoDur::from_millis(2);
            let (out, ev) = dev.tick(now, &[0; 8]);
            if ev.contains(&CrEvent::WatchdogExpired) {
                expired_at = Some(i);
                // An alarm frame is emitted on expiry.
                assert!(out.iter().any(|p| matches!(
                    p,
                    RtPayload::Alarm {
                        kind: AlarmKind::WatchdogExpired,
                        ..
                    }
                )));
                break;
            }
        }
        // watchdog_factor = 3 → expiry strictly after 6 ms ⇒ tick 3 (t=8ms).
        assert_eq!(expired_at, Some(3));
        assert_eq!(dev.state(), DeviceState::SafeState);
    }

    #[test]
    fn device_recovers_when_data_returns() {
        let mut ctrl = ControllerCr::new(FrameId(1), params());
        let mut dev = DeviceCr::new();
        let mut now = Nanos::ZERO;
        let (resp, _) = dev.on_payload(now, &ctrl.start(now));
        ctrl.on_payload(now, &resp.unwrap());
        for _ in 0..5 {
            now += NanoDur::from_millis(2);
            dev.tick(now, &[0; 8]);
        }
        assert_eq!(dev.state(), DeviceState::SafeState);
        // Controller resumes.
        now += NanoDur::from_millis(2);
        let (out, _) = ctrl.tick(now, &[1; 8], DataStatus::running_primary());
        dev.on_payload(now, &out[0]);
        assert_eq!(dev.state(), DeviceState::Running);
    }

    #[test]
    fn controller_retransmits_connect() {
        let mut ctrl = ControllerCr::new(FrameId(1), params());
        let mut now = Nanos::ZERO;
        ctrl.start(now);
        now += NanoDur::from_millis(150);
        let (out, _) = ctrl.tick(now, &[], DataStatus::running_primary());
        assert!(
            matches!(out.as_slice(), [RtPayload::ConnectReq { .. }]),
            "expected retransmit, got {out:?}"
        );
    }

    #[test]
    fn release_tears_down_both_sides() {
        let mut ctrl = ControllerCr::new(FrameId(1), params());
        let mut dev = DeviceCr::new();
        let t0 = Nanos::ZERO;
        let (resp, _) = dev.on_payload(t0, &ctrl.start(t0));
        ctrl.on_payload(t0, &resp.unwrap());
        let rel = ctrl.release();
        let (_, ev) = dev.on_payload(t0, &rel);
        assert_eq!(ev, vec![CrEvent::Released]);
        assert_eq!(dev.state(), DeviceState::Released);
    }

    #[test]
    fn output_data_padded_to_parameterized_len() {
        let mut ctrl = ControllerCr::new(FrameId(1), params());
        let mut dev = DeviceCr::new();
        let t0 = Nanos::ZERO;
        let (resp, _) = dev.on_payload(t0, &ctrl.start(t0));
        ctrl.on_payload(t0, &resp.unwrap());
        let (out, _) = ctrl.tick(
            Nanos::from_millis(2),
            &[1, 2, 3],
            DataStatus::running_primary(),
        );
        match &out[0] {
            RtPayload::CyclicData { data, .. } => assert_eq!(data.len(), 8),
            other => panic!("unexpected {other:?}"),
        }
    }
}
