//! A Precision Time Protocol (IEEE 1588) synchronization-error model.
//!
//! PTP can synchronize clocks to well under a microsecond, but §3 of
//! the paper notes its accuracy is undermined by *asymmetric* path
//! delays and network inconsistencies — which is why Traffic Reflection
//! measures with a single tap clock instead. This model produces the
//! residual offset of a PTP-disciplined clock so experiments can
//! compare tap-based and two-clock measurements quantitatively.

use steelworks_netsim::rng::SimRng;
use steelworks_netsim::time::{NanoDur, Nanos};

/// Parameters of a PTP session between a grandmaster and a client.
#[derive(Clone, Debug)]
pub struct PtpConfig {
    /// Interval between sync exchanges.
    pub sync_interval: NanoDur,
    /// Constant path asymmetry (forward − reverse)/2: PTP cannot
    /// observe this and absorbs it fully as offset error.
    pub path_asymmetry: NanoDur,
    /// Standard deviation of per-exchange timestamp noise (PHY
    /// timestamping + queueing variation), ns.
    pub timestamp_noise_ns: f64,
    /// Client oscillator drift, ppm (corrected at each sync, drifts
    /// between syncs).
    pub drift_ppm: f64,
    /// Servo smoothing factor in (0, 1]: 1 = jump to each measurement.
    pub servo_gain: f64,
}

impl Default for PtpConfig {
    fn default() -> Self {
        PtpConfig {
            sync_interval: NanoDur::from_millis(125), // 8 syncs/s, common profile
            path_asymmetry: NanoDur(120),
            timestamp_noise_ns: 25.0,
            drift_ppm: 2.0,
            servo_gain: 0.3,
        }
    }
}

/// A simulated PTP client clock: tracks the estimated offset over time.
#[derive(Clone, Debug)]
pub struct PtpClient {
    cfg: PtpConfig,
    /// Current offset estimate error (true offset − estimate), ns.
    offset_error_ns: f64,
    last_sync: Nanos,
    syncs: u64,
}

impl PtpClient {
    /// A client that has just completed its first sync.
    pub fn new(cfg: PtpConfig) -> Self {
        let initial = cfg.path_asymmetry.as_nanos() as f64;
        PtpClient {
            cfg,
            offset_error_ns: initial,
            last_sync: Nanos::ZERO,
            syncs: 0,
        }
    }

    /// Advance to time `now`, performing any due sync exchanges, and
    /// return the clock's current offset error in ns (signed).
    pub fn offset_error_at(&mut self, now: Nanos, rng: &mut SimRng) -> f64 {
        // Run all syncs due between last_sync and now.
        while self.last_sync + self.cfg.sync_interval <= now {
            self.last_sync += self.cfg.sync_interval;
            self.syncs += 1;
            // The measured offset always contains the asymmetry bias
            // plus fresh timestamp noise; the servo converges toward it.
            let measured_error = self.cfg.path_asymmetry.as_nanos() as f64
                + rng.normal(0.0, self.cfg.timestamp_noise_ns);
            self.offset_error_ns += self.cfg.servo_gain * (measured_error - self.offset_error_ns);
        }
        // Between syncs the oscillator drifts away.
        let since = now.saturating_since(self.last_sync).as_nanos() as f64;
        self.offset_error_ns + since * self.cfg.drift_ppm / 1e6
    }

    /// Number of completed sync exchanges.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

/// Compare one-clock (tap) and two-clock (PTP) measurement error for an
/// interval measurement: returns (tap_error_ns, ptp_error_ns) for a
/// single measured interval at time `now`.
///
/// The tap's only error is quantization; the PTP measurement inherits
/// the *difference* of two clocks' offset errors.
pub fn measurement_errors(
    tap_precision: NanoDur,
    client_a: &mut PtpClient,
    client_b: &mut PtpClient,
    now: Nanos,
    rng: &mut SimRng,
) -> (f64, f64) {
    let tap_err = tap_precision.as_nanos() as f64 / 2.0; // expected |quantization|
    let ea = client_a.offset_error_at(now, rng);
    let eb = client_b.offset_error_at(now, rng);
    (tap_err, (ea - eb).abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetry_is_never_corrected() {
        let mut c = PtpClient::new(PtpConfig {
            timestamp_noise_ns: 0.0,
            drift_ppm: 0.0,
            ..PtpConfig::default()
        });
        let mut rng = SimRng::seed_from_u64(1);
        let err = c.offset_error_at(Nanos::from_secs(10), &mut rng);
        // With zero noise the servo converges exactly to the asymmetry.
        assert!((err - 120.0).abs() < 1.0, "err={err}");
        assert!(c.syncs() >= 79);
    }

    #[test]
    fn drift_grows_between_syncs() {
        let cfg = PtpConfig {
            sync_interval: NanoDur::from_secs(1),
            timestamp_noise_ns: 0.0,
            drift_ppm: 10.0,
            ..PtpConfig::default()
        };
        let mut c = PtpClient::new(cfg);
        let mut rng = SimRng::seed_from_u64(2);
        let just_synced = c.offset_error_at(Nanos::from_secs(1), &mut rng);
        let half_later =
            c.offset_error_at(Nanos::from_secs(1) + NanoDur::from_millis(500), &mut rng);
        // 10 ppm over 0.5 s = 5 µs extra error.
        assert!((half_later - just_synced - 5_000.0).abs() < 1.0);
    }

    #[test]
    fn tap_beats_two_clock_ptp() {
        let mut a = PtpClient::new(PtpConfig::default());
        let mut b = PtpClient::new(PtpConfig {
            // The two paths differ in asymmetry — the realistic case.
            path_asymmetry: NanoDur(320),
            ..PtpConfig::default()
        });
        let mut rng = SimRng::seed_from_u64(3);
        let (tap_err, ptp_err) =
            measurement_errors(NanoDur(8), &mut a, &mut b, Nanos::from_secs(5), &mut rng);
        assert!(tap_err < 8.0);
        assert!(
            ptp_err > 10.0 * tap_err,
            "ptp {ptp_err} should dwarf tap {tap_err}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut c = PtpClient::new(PtpConfig::default());
            let mut rng = SimRng::seed_from_u64(9);
            (0..10)
                .map(|i| c.offset_error_at(Nanos::from_millis(200 * i), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
