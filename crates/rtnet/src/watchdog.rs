//! Consumer watchdogs and jitter-burst tracking.
//!
//! PROFINET devices halt (enter their safe state) when no cyclic data
//! arrives for `watchdog_factor` consecutive cycles — the paper calls
//! out that evaluations which ignore *consecutive* jitter events miss
//! exactly the failure mode that stops production lines.

use steelworks_netsim::time::{NanoDur, Nanos};

/// Watchdog states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WatchdogState {
    /// Not yet fed (CR being established).
    Armed,
    /// Receiving data in time.
    Ok,
    /// Timeout elapsed; device is in its safe state.
    Expired,
}

/// A consumer watchdog with PROFINET semantics: expires when the gap
/// since the last accepted frame exceeds `cycle_time * factor`.
#[derive(Clone, Debug)]
pub struct Watchdog {
    timeout: NanoDur,
    last_fed: Option<Nanos>,
    state: WatchdogState,
    expirations: u64,
}

impl Watchdog {
    /// Watchdog for the given cycle time and factor.
    pub fn new(cycle_time: NanoDur, factor: u8) -> Self {
        assert!(factor > 0, "watchdog factor must be positive");
        Watchdog {
            timeout: cycle_time * factor as u64,
            last_fed: None,
            state: WatchdogState::Armed,
            expirations: 0,
        }
    }

    /// The configured timeout.
    pub fn timeout(&self) -> NanoDur {
        self.timeout
    }

    /// Record an accepted frame at `now`. Re-feeding an expired
    /// watchdog recovers it (device returns from safe state once the
    /// controller is back).
    pub fn feed(&mut self, now: Nanos) {
        self.last_fed = Some(now);
        self.state = WatchdogState::Ok;
    }

    /// Evaluate the watchdog at `now`; returns true exactly when this
    /// call *transitions* it into the expired state.
    pub fn check(&mut self, now: Nanos) -> bool {
        match (self.state, self.last_fed) {
            (WatchdogState::Ok, Some(last)) if now.saturating_since(last) > self.timeout => {
                self.state = WatchdogState::Expired;
                self.expirations += 1;
                true
            }
            _ => false,
        }
    }

    /// Current state.
    pub fn state(&self) -> WatchdogState {
        self.state
    }

    /// Total expirations observed.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }
}

/// Tracks *consecutive* over-threshold jitter events — the metric the
/// paper complains existing evaluations omit. A burst of length ≥ the
/// watchdog factor is what actually halts a device.
#[derive(Clone, Debug)]
pub struct JitterBurstTracker {
    threshold: NanoDur,
    expected_gap: NanoDur,
    last_arrival: Option<Nanos>,
    current_burst: u32,
    /// Histogram of completed burst lengths: `bursts[k]` = number of
    /// maximal runs of exactly `k+1` consecutive over-threshold cycles.
    bursts: Vec<u64>,
    max_burst: u32,
    total_cycles: u64,
    over_threshold_cycles: u64,
}

impl JitterBurstTracker {
    /// Track deviations of inter-arrival gaps from `expected_gap`
    /// larger than `threshold`.
    pub fn new(expected_gap: NanoDur, threshold: NanoDur) -> Self {
        JitterBurstTracker {
            threshold,
            expected_gap,
            last_arrival: None,
            current_burst: 0,
            bursts: Vec::new(),
            max_burst: 0,
            total_cycles: 0,
            over_threshold_cycles: 0,
        }
    }

    /// Record a frame arrival.
    pub fn record(&mut self, now: Nanos) {
        if let Some(last) = self.last_arrival {
            self.total_cycles += 1;
            let gap = now.saturating_since(last);
            let dev = if gap >= self.expected_gap {
                gap - self.expected_gap
            } else {
                self.expected_gap - gap
            };
            if dev > self.threshold {
                self.over_threshold_cycles += 1;
                self.current_burst += 1;
                self.max_burst = self.max_burst.max(self.current_burst);
            } else {
                self.close_burst();
            }
        }
        self.last_arrival = Some(now);
    }

    fn close_burst(&mut self) {
        if self.current_burst > 0 {
            let idx = self.current_burst as usize - 1;
            if self.bursts.len() <= idx {
                self.bursts.resize(idx + 1, 0);
            }
            self.bursts[idx] += 1;
            self.current_burst = 0;
        }
    }

    /// Finish tracking (closes a trailing burst).
    pub fn finish(&mut self) {
        self.close_burst();
    }

    /// Longest observed run of consecutive over-threshold cycles.
    pub fn max_burst(&self) -> u32 {
        self.max_burst
    }

    /// Completed-burst length histogram (index k = length k+1).
    pub fn burst_histogram(&self) -> &[u64] {
        &self.bursts
    }

    /// Fraction of cycles whose jitter exceeded the threshold.
    pub fn over_threshold_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.over_threshold_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Would a watchdog with this factor have expired? (i.e. did any
    /// burst reach the factor?)
    pub fn would_expire(&self, watchdog_factor: u8) -> bool {
        self.max_burst >= watchdog_factor as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expires_after_timeout() {
        let mut wd = Watchdog::new(NanoDur::from_millis(2), 3);
        wd.feed(Nanos::from_millis(0));
        assert!(!wd.check(Nanos::from_millis(6)));
        assert!(wd.check(Nanos::from_millis(7)));
        assert_eq!(wd.state(), WatchdogState::Expired);
        assert_eq!(wd.expirations(), 1);
        // Only transitions count.
        assert!(!wd.check(Nanos::from_millis(8)));
    }

    #[test]
    fn feeding_recovers() {
        let mut wd = Watchdog::new(NanoDur::from_millis(1), 3);
        wd.feed(Nanos::from_millis(0));
        assert!(wd.check(Nanos::from_millis(10)));
        wd.feed(Nanos::from_millis(10));
        assert_eq!(wd.state(), WatchdogState::Ok);
        assert!(!wd.check(Nanos::from_millis(12)));
    }

    #[test]
    fn armed_never_expires() {
        let mut wd = Watchdog::new(NanoDur::from_millis(1), 3);
        assert!(!wd.check(Nanos::from_secs(100)));
        assert_eq!(wd.state(), WatchdogState::Armed);
    }

    #[test]
    fn burst_tracker_counts_runs() {
        let gap = NanoDur::from_millis(1);
        let mut t = JitterBurstTracker::new(gap, NanoDur::from_micros(10));
        let mut now = Nanos::ZERO;
        // 5 clean cycles.
        for _ in 0..5 {
            t.record(now);
            now += gap;
        }
        // 3 jittered cycles (+50 µs each).
        for _ in 0..3 {
            now += NanoDur::from_micros(50);
            t.record(now);
            now += gap;
        }
        // 2 clean, then 1 jittered at the end.
        for _ in 0..2 {
            t.record(now);
            now += gap;
        }
        now += NanoDur::from_micros(50);
        t.record(now);
        t.finish();
        assert_eq!(t.max_burst(), 3);
        // Bursts: one of length 3... the return-to-clean cycle after a
        // +50µs late frame is 50µs early, so it also counts as jitter.
        assert!(t.burst_histogram().iter().sum::<u64>() >= 2);
        assert!(t.would_expire(3));
        assert!(!t.would_expire(5));
    }

    #[test]
    fn clean_stream_has_no_bursts() {
        let gap = NanoDur::from_millis(1);
        let mut t = JitterBurstTracker::new(gap, NanoDur::from_micros(1));
        let mut now = Nanos::ZERO;
        for _ in 0..100 {
            t.record(now);
            now += gap;
        }
        t.finish();
        assert_eq!(t.max_burst(), 0);
        assert_eq!(t.over_threshold_fraction(), 0.0);
        assert!(!t.would_expire(1));
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn zero_factor_panics() {
        Watchdog::new(NanoDur::from_millis(1), 0);
    }
}
