//! A PROFIsafe-style functional-safety layer.
//!
//! §1.1: "often, separate dedicated safety networks and special safety
//! protocols, such as PROFIsafe, are used". The black-channel principle
//! — the safety layer assumes *nothing* about the network below it —
//! is what makes safety traffic viable over converged IT/OT fabrics,
//! so the reproduction carries it: safety PDUs ride inside ordinary
//! cyclic process data and detect corruption, loss, repetition and
//! stall entirely end-to-end.
//!
//! The layer implements the classic mechanisms:
//! - a CRC-32 over payload + sequence (corruption, insertion),
//! - a monotone sign-of-life counter (loss, repetition, reordering),
//! - a watchdog on counter progress (stall),
//! - fail-safe substitution: on any violation the consumer presents
//!   safe values (all zeros) until a fresh, valid PDU arrives.

use crate::watchdog::{Watchdog, WatchdogState};
use steelworks_netsim::time::{NanoDur, Nanos};

/// CRC-32 (IEEE 802.3 polynomial, bitwise; table-free for clarity).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A safety PDU: sign-of-life + payload + CRC, serialized into the
/// cyclic frame's data area.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafetyPdu {
    /// Monotone sign-of-life counter (wraps at 2^16).
    pub sign_of_life: u16,
    /// Safety process values.
    pub payload: Vec<u8>,
}

impl SafetyPdu {
    /// Serialize: `[sol u16 BE][payload][crc32 BE]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 6);
        out.extend_from_slice(&self.sign_of_life.to_be_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Parse and CRC-check.
    pub fn parse(bytes: &[u8]) -> Option<SafetyPdu> {
        if bytes.len() < 6 {
            return None;
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let expect = u32::from_be_bytes(crc_bytes.try_into().ok()?);
        if crc32(body) != expect {
            return None;
        }
        Some(SafetyPdu {
            sign_of_life: u16::from_be_bytes([body[0], body[1]]),
            payload: body[2..].to_vec(),
        })
    }
}

/// Producer side: stamps outgoing safety data.
#[derive(Clone, Debug, Default)]
pub struct SafetyProducer {
    sol: u16,
}

impl SafetyProducer {
    /// New producer starting at sign-of-life 1.
    pub fn new() -> Self {
        SafetyProducer { sol: 0 }
    }

    /// Wrap one payload into a serialized safety PDU.
    pub fn emit(&mut self, payload: &[u8]) -> Vec<u8> {
        self.sol = self.sol.wrapping_add(1);
        SafetyPdu {
            sign_of_life: self.sol,
            payload: payload.to_vec(),
        }
        .to_bytes()
    }
}

/// Why the consumer went fail-safe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SafetyFault {
    /// CRC mismatch (corruption or truncation).
    Crc,
    /// Sign-of-life did not advance (repetition / rollback).
    SignOfLife,
    /// No valid PDU within the safety watchdog time.
    WatchdogExpired,
}

/// Consumer side: validates PDUs and substitutes safe values on fault.
#[derive(Clone, Debug)]
pub struct SafetyConsumer {
    expected_len: usize,
    last_sol: Option<u16>,
    watchdog: Watchdog,
    failsafe: bool,
    /// Fault log: (when, what).
    pub faults: Vec<(Nanos, SafetyFault)>,
}

impl SafetyConsumer {
    /// A consumer for `expected_len`-byte safety payloads with the
    /// given safety watchdog time.
    pub fn new(expected_len: usize, watchdog_time: NanoDur) -> Self {
        SafetyConsumer {
            expected_len,
            last_sol: None,
            // Factor folded into watchdog_time by the caller.
            watchdog: Watchdog::new(watchdog_time, 1),
            failsafe: true, // fail-safe until the first valid PDU
            faults: Vec::new(),
        }
    }

    /// Is the consumer presenting substituted safe values?
    pub fn is_failsafe(&self) -> bool {
        self.failsafe
    }

    /// Process a received (possibly damaged) safety PDU at time `now`;
    /// returns the safety payload to present to the application — the
    /// real values when valid, zeros when fail-safe.
    pub fn accept(&mut self, now: Nanos, bytes: &[u8]) -> Vec<u8> {
        match SafetyPdu::parse(bytes) {
            None => {
                self.trip(now, SafetyFault::Crc);
            }
            Some(pdu) => {
                let advanced = match self.last_sol {
                    None => true,
                    // Accept any forward step (tolerates lost PDUs —
                    // loss is caught by the watchdog, not the counter).
                    Some(last) => {
                        pdu.sign_of_life != last && pdu.sign_of_life.wrapping_sub(last) < 0x8000
                    }
                };
                if !advanced {
                    self.trip(now, SafetyFault::SignOfLife);
                } else {
                    self.last_sol = Some(pdu.sign_of_life);
                    self.watchdog.feed(now);
                    self.failsafe = false;
                    let mut v = pdu.payload;
                    v.resize(self.expected_len, 0);
                    return v;
                }
            }
        }
        vec![0; self.expected_len]
    }

    /// Periodic check; trips fail-safe when no valid PDU arrived in
    /// time. Returns the (possibly substituted) payload validity.
    pub fn check(&mut self, now: Nanos) -> bool {
        if self.watchdog.check(now) {
            self.trip(now, SafetyFault::WatchdogExpired);
        }
        !self.failsafe
    }

    fn trip(&mut self, now: Nanos, fault: SafetyFault) {
        self.faults.push((now, fault));
        self.failsafe = true;
    }

    /// Watchdog state (exposed for diagnostics).
    pub fn watchdog_state(&self) -> WatchdogState {
        self.watchdog.state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn pdu_roundtrip() {
        let pdu = SafetyPdu {
            sign_of_life: 0xABCD,
            payload: vec![1, 2, 3, 4],
        };
        assert_eq!(SafetyPdu::parse(&pdu.to_bytes()), Some(pdu));
    }

    #[test]
    fn corruption_detected() {
        let mut p = SafetyProducer::new();
        let mut bytes = p.emit(&[9, 9]);
        bytes[2] ^= 0x01;
        assert_eq!(SafetyPdu::parse(&bytes), None);
    }

    #[test]
    fn truncation_detected() {
        let mut p = SafetyProducer::new();
        let bytes = p.emit(&[9, 9, 9, 9]);
        assert_eq!(SafetyPdu::parse(&bytes[..bytes.len() - 1]), None);
        assert_eq!(SafetyPdu::parse(&[1, 2, 3]), None);
    }

    #[test]
    fn happy_path_end_to_end() {
        let mut prod = SafetyProducer::new();
        let mut cons = SafetyConsumer::new(2, NanoDur::from_millis(10));
        let mut now = Nanos::ZERO;
        assert!(cons.is_failsafe(), "fail-safe before first PDU");
        for i in 0..50u8 {
            now += NanoDur::from_millis(2);
            let out = cons.accept(now, &prod.emit(&[i, i]));
            assert_eq!(out, vec![i, i]);
            assert!(cons.check(now));
        }
        assert!(cons.faults.is_empty());
    }

    #[test]
    fn corrupted_pdu_substitutes_safe_values() {
        let mut prod = SafetyProducer::new();
        let mut cons = SafetyConsumer::new(2, NanoDur::from_millis(10));
        let t = Nanos::from_millis(1);
        cons.accept(t, &prod.emit(&[7, 7]));
        let mut bad = prod.emit(&[8, 8]);
        bad[3] ^= 0xFF;
        let out = cons.accept(Nanos::from_millis(2), &bad);
        assert_eq!(out, vec![0, 0], "substituted");
        assert!(cons.is_failsafe());
        assert_eq!(cons.faults[0].1, SafetyFault::Crc);
        // A fresh valid PDU recovers.
        let out = cons.accept(Nanos::from_millis(3), &prod.emit(&[9, 9]));
        assert_eq!(out, vec![9, 9]);
        assert!(!cons.is_failsafe());
    }

    #[test]
    fn replay_detected() {
        let mut prod = SafetyProducer::new();
        let mut cons = SafetyConsumer::new(1, NanoDur::from_millis(10));
        let pdu = prod.emit(&[5]);
        cons.accept(Nanos::from_millis(1), &pdu);
        let out = cons.accept(Nanos::from_millis(2), &pdu); // replayed
        assert_eq!(out, vec![0]);
        assert_eq!(cons.faults[0].1, SafetyFault::SignOfLife);
    }

    #[test]
    fn lost_pdus_tolerated_by_counter_caught_by_watchdog() {
        let mut prod = SafetyProducer::new();
        let mut cons = SafetyConsumer::new(1, NanoDur::from_millis(10));
        cons.accept(Nanos::from_millis(1), &prod.emit(&[1]));
        // Two PDUs lost in transit:
        let _ = prod.emit(&[2]);
        let _ = prod.emit(&[3]);
        // The next one is still accepted (counter moved forward).
        let out = cons.accept(Nanos::from_millis(7), &prod.emit(&[4]));
        assert_eq!(out, vec![4]);
        // But a long silence trips the safety watchdog.
        assert!(!cons.check(Nanos::from_millis(30)));
        assert!(cons.is_failsafe());
        assert_eq!(cons.faults[0].1, SafetyFault::WatchdogExpired);
    }

    #[test]
    fn sol_wraparound_accepted() {
        let mut cons = SafetyConsumer::new(1, NanoDur::from_millis(10));
        let near_wrap = SafetyPdu {
            sign_of_life: 0xFFFF,
            payload: vec![1],
        };
        let wrapped = SafetyPdu {
            sign_of_life: 0x0001,
            payload: vec![2],
        };
        cons.accept(Nanos::from_millis(1), &near_wrap.to_bytes());
        let out = cons.accept(Nanos::from_millis(2), &wrapped.to_bytes());
        assert_eq!(out, vec![2], "wraparound is forward progress");
        assert!(cons.faults.is_empty());
    }
}
