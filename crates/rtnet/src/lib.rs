//! # steelworks-rtnet
//!
//! The industrial real-time protocol substrate: a PROFINET-inspired
//! cyclic layer-2 protocol (communication relationships, cyclic data
//! with counters and status, watchdog expiration, alarms), TSN
//! mechanisms (802.1Qbv gate control lists, a time-aware-shaper switch,
//! offline schedule synthesis), and a PTP synchronization-error model.
//!
//! Together these provide the OT-side behaviour the paper's three case
//! studies depend on: cyclic deterministic microflows (§2.3), watchdog
//! semantics that turn jitter bursts into production stops (§2.1), the
//! connect/parameterize observables InstaPLC's digital twin consumes
//! (§4), and the clock-synchronization error that motivates tap-based
//! measurement (§3).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod connection;
pub mod frame;
pub mod ptp;
pub mod safety;
pub mod tsn;
pub mod watchdog;

/// Convenient glob import.
pub mod prelude {
    pub use crate::connection::{ControllerCr, ControllerState, CrEvent, DeviceCr, DeviceState};
    pub use crate::frame::{AlarmKind, CrParams, DataStatus, FrameId, ParseError, RtPayload};
    pub use crate::ptp::{measurement_errors, PtpClient, PtpConfig};
    pub use crate::safety::{crc32, SafetyConsumer, SafetyFault, SafetyPdu, SafetyProducer};
    pub use crate::tsn::gcl::{GateControlList, GclEntry};
    pub use crate::tsn::schedule::{
        schedule, validate, EgressId, FlowSpec, Schedule, ScheduleError,
    };
    pub use crate::tsn::tas::TsnSwitch;
    pub use crate::watchdog::{JitterBurstTracker, Watchdog, WatchdogState};
}
