//! Regenerate **Fig. 6**: ML inference latency vs number of clients for
//! the three topologies × two applications, plus the accuracy/cost view
//! the paper's discussion calls out.
//!
//! Every (app, topology, client-count) point builds its own scenario, so
//! the sweep fans out over a `steelpar` worker pool (`--jobs N` /
//! `STEELWORKS_JOBS`); the grid order matches `fig6`'s sequential
//! loops and results come back in input order, so the output is
//! byte-identical at any job count.

use steelworks_bench::check;
use steelworks_core::prelude::*;
use steelworks_mlnet::prelude::MlApp;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));
    let cfg = StudyConfig::default();
    println!(
        "# Fig. 6 — ML-aware topologies (accuracy target {:.2})\n",
        cfg.accuracy_target
    );
    let mut grid = Vec::new();
    for app in MlApp::ALL {
        for kind in TopologyKind::ALL {
            for &n in &cfg.client_counts {
                grid.push((app, kind, n));
            }
        }
    }
    let points = steelpar::run(jobs, grid, |(app, kind, n)| evaluate_point(kind, app, n, &cfg));

    for app in MlApp::ALL {
        let name = app.profile().name;
        println!("## {name}");
        let mut rows = Vec::new();
        for &n in &cfg.client_counts {
            let mut row = vec![n.to_string()];
            for kind in TopologyKind::ALL {
                let p = points
                    .iter()
                    .find(|p| p.app == app && p.topology == kind && p.clients == n)
                    // steelcheck: allow(panic-reachable): sweep emits every (app, kind, n) combination
                    .expect("point exists");
                row.push(format!("{:.2}", p.latency_ms));
            }
            rows.push(row);
        }
        println!(
            "{}",
            format_table(
                &format!("{name}: mean latency (ms) per topology"),
                &["clients", "Leaf Spine", "Ring", "ML-aware"],
                &rows
            )
        );

        // The accuracy/cost companion view.
        let mut rows = Vec::new();
        for kind in TopologyKind::ALL {
            let p = points
                .iter()
                .find(|p| p.app == app && p.topology == kind && p.clients == 256)
                // steelcheck: allow(panic-reachable): sweep always includes the 256-client point
                .expect("point exists");
            rows.push(vec![
                kind.name().to_string(),
                format!("{:.3}", p.achieved_accuracy),
                format!("{:.2}", p.max_utilization),
                format!("{:.0}", p.cost),
            ]);
        }
        println!(
            "{}",
            format_table(
                &format!("{name} @256 clients: achievable accuracy / utilization / cost"),
                &["topology", "accuracy", "max util", "cost"],
                &rows
            )
        );
    }

    // Shape checks against the paper.
    for app in MlApp::ALL {
        let name = app.profile().name;
        let get = |kind: TopologyKind, n: usize| {
            points
                .iter()
                .find(|p| p.app == app && p.topology == kind && p.clients == n)
                // steelcheck: allow(panic-reachable): sweep emits every (app, kind, n) combination
                .expect("point")
                .latency_ms
        };
        check(
            &format!("{name}: ML-aware lowest at every client count"),
            cfg.client_counts.iter().all(|&n| {
                get(TopologyKind::MlAware, n) < get(TopologyKind::LeafSpine, n)
                    && get(TopologyKind::MlAware, n) < get(TopologyKind::Ring, n)
            }),
        );
        check(
            &format!("{name}: ring worst (leaf-spine only slightly improves)"),
            cfg.client_counts
                .iter()
                .all(|&n| get(TopologyKind::LeafSpine, n) <= get(TopologyKind::Ring, n) * 1.05),
        );
        check(
            &format!("{name}: ring degrades with scale"),
            get(TopologyKind::Ring, 256) > get(TopologyKind::Ring, 32),
        );
        check(
            &format!("{name}: latencies within the figure's ~2-6 ms band (×2 envelope)"),
            cfg.client_counts.iter().all(|&n| {
                TopologyKind::ALL
                    .iter()
                    .all(|&k| (0.5..12.0).contains(&get(k, n)))
            }),
        );
    }
}
