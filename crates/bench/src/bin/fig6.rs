//! Regenerate **Fig. 6**: ML inference latency vs number of clients for
//! the three topologies × two applications, plus the accuracy/cost view
//! the paper's discussion calls out.
//!
//! The study parameters (accuracy target, client-count sweep) come from
//! the committed `specs/fig6.json` scenario spec; pass a different spec
//! path as the first argument. The pipeline lives in
//! `steelserve::figures`, where every (app, topology, client-count)
//! point fans out over a `steelpar` worker pool (`--jobs N` /
//! `STEELWORKS_JOBS`) and comes back in input order, so the output is
//! byte-identical at any job count.

use steelserve::figures::run_spec;

/// The committed default spec (regenerates `results/fig6.txt`).
const DEFAULT_SPEC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig6.json");

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));
    let path = args.first().map(String::as_str).unwrap_or(DEFAULT_SPEC);
    let spec = steelworks_bench::load_spec(path, "fig6");
    print!("{}", run_spec(&spec, jobs));
}
