//! Regenerate **fig_campus**: the campus-scale scaling study.
//!
//! Three scale points of the same ring-of-leaf-spine campus — 40,
//! ~10k, and >100k nodes — each fully delivering three deterministic
//! flow classes (local / cell / ring) over statically commissioned
//! switch FDBs. The output is pure simulation state: counts, simulated
//! times and per-class latencies; no wall-clock values, so the file is
//! byte-identical on every run, platform and `--jobs` count.

use steelworks_bench::check;
use steelworks_core::prelude::*;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));

    let scales = vec![
        ("small", CampusConfig::small()),
        ("mid", CampusConfig::mid()),
        ("campus", CampusConfig::large()),
    ];
    println!("# fig_campus — ring-of-leaf-spine campus scaling study");
    println!(
        "# scales: {}",
        scales
            .iter()
            .map(|(name, cfg)| format!(
                "{} ({}c x {}l x {}e = {} nodes)",
                name,
                cfg.cells,
                cfg.leaves_per_cell,
                cfg.endpoints_per_leaf,
                cfg.node_count()
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!();

    // The three scale points are independent worlds: run them on the
    // worker pool (`--jobs` / `STEELWORKS_JOBS`) and print in order.
    let results = steelpar::run(jobs, scales.clone(), |(_, cfg)| run_campus(&cfg));

    println!(
        "# {:<8} {:>8} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "scale", "nodes", "links", "sent", "received", "events", "sim-end-ms"
    );
    for ((name, _), r) in scales.iter().zip(&results) {
        println!(
            "  {:<8} {:>8} {:>8} {:>10} {:>10} {:>12} {:>10.3}",
            name,
            r.nodes,
            r.links,
            r.frames_sent,
            r.frames_received,
            r.events_processed,
            r.sim_end_ns as f64 / 1e6,
        );
    }

    println!();
    println!(
        "# per-class latency (ns): {:<8} {:>8} {:>10} {:>10} {:>10}",
        "scale", "class", "flows", "min", "max"
    );
    for ((name, _), r) in scales.iter().zip(&results) {
        for (class, cs) in [PathClass::Local, PathClass::Cell, PathClass::Ring]
            .iter()
            .zip(&r.classes)
        {
            println!(
                "  {:<24} {:>8} {:>10} {:>10} {:>10}",
                name,
                class.label(),
                cs.flows,
                cs.min_latency_ns,
                cs.max_latency_ns
            );
        }
    }

    println!();
    for ((name, _), r) in scales.iter().zip(&results) {
        println!(
            "# {}: switches forwarded {} / flooded {} / filtered {} / tail-dropped {}, link drops {}, peak queue {}",
            name,
            r.switch_forwarded,
            r.switch_flooded,
            r.switch_filtered,
            r.switch_tail_drops,
            r.link_drops,
            r.peak_queue_depth
        );
    }

    println!();
    for ((name, _), r) in scales.iter().zip(&results) {
        check(
            &format!("{name}: every emitted frame is delivered"),
            r.frames_sent > 0 && r.frames_received == r.frames_sent,
        );
        check(
            &format!("{name}: static FDB complete (zero flooding on the ring)"),
            r.switch_flooded == 0,
        );
        check(
            &format!("{name}: no tail drops at commissioned load"),
            r.switch_tail_drops == 0,
        );
        let [local, cell, ring] = r.classes;
        check(
            &format!("{name}: latency classes ordered local < cell < ring"),
            local.max_latency_ns < cell.min_latency_ns
                && cell.max_latency_ns < ring.min_latency_ns,
        );
    }
    let campus = &results[2];
    check(
        "campus scale exceeds 100k nodes",
        campus.nodes > 100_000,
    );
}
