//! Regenerate **fig_campus**: the campus-scale scaling study.
//!
//! Three scale points of the same ring-of-leaf-spine campus — 40,
//! ~10k, and >100k nodes — each fully delivering three deterministic
//! flow classes (local / cell / ring) over statically commissioned
//! switch FDBs. The output is pure simulation state: counts, simulated
//! times and per-class latencies; no wall-clock values, so the file is
//! byte-identical on every run, platform and `--jobs` count.
//!
//! The scale points come from the committed `specs/fig_campus.json`
//! scenario spec; pass a different spec path as the first argument.

use steelserve::figures::run_spec;

/// The committed default spec (regenerates `results/fig_campus.txt`).
const DEFAULT_SPEC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig_campus.json");

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));
    let path = args.first().map(String::as_str).unwrap_or(DEFAULT_SPEC);
    let spec = steelworks_bench::load_spec(path, "fig_campus");
    print!("{}", run_spec(&spec, jobs));
}
