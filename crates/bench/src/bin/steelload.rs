//! steelload — the closed-loop load generator for `steelserve`.
//!
//! Spawns a `steelserve` instance in-process (or targets a running one
//! via `--addr`), then drives it through two phases over real loopback
//! TCP with keep-alive HTTP clients:
//!
//! 1. **cold-miss** — every distinct spec of a seeded [`sample_mix`]
//!    posted once against an empty cache: each request executes its
//!    scenario on the server's steelpar pool.
//! 2. **cache-hit** — a closed loop of `--requests` total requests
//!    (default 10⁵) from `--clients` concurrent clients, each picking
//!    specs from the now-warm mix with a forked deterministic RNG:
//!    every request is answered from the content-addressed cache.
//!
//! The spec *mix* is a pure function of `--seed`, so a load run asks
//! for exactly the same scenarios request-for-request on every
//! machine; only the measured latencies differ. Results print as
//! aligned [`QuantileRow`]s and publish to `results/BENCH_serve.json`
//! (override with `$BENCH_JSON`) in the workspace's flat-JSON
//! trajectory format: requests, requests/sec, and p50/p90/p99
//! latencies per phase.

use std::collections::BTreeSet;
use std::time::Instant;
use steelserve::http::{header, Client};
use steelserve::server::{bind, ServerConfig};
use steelserve::spec::{sample_mix, Spec};
use steelworks_netsim::rng::SimRng;
use steelworks_netsim::stats::QuantileRow;

/// Default total requests in the cache-hit phase.
const DEFAULT_REQUESTS: usize = 100_000;
/// Default concurrent closed-loop clients.
const DEFAULT_CLIENTS: usize = 8;
/// Default size of the sampled spec mix (pre-dedup).
const DEFAULT_SPECS: usize = 64;
/// Default mix seed (same draw as the spec-layer unit tests).
const DEFAULT_SEED: u64 = 0x10AD;
/// Default hit-path determinism cross-check cadence.
const DEFAULT_CROSSCHECK_EVERY: u64 = 4_096;

/// One phase's published measurements.
struct PhaseReport {
    row: QuantileRow,
    rps: f64,
}

impl PhaseReport {
    /// Flat JSON object in the `BENCH_*.json` trajectory style.
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"requests\":{},\"rps\":{:.1},\"p50_ns\":{:.1},\"p90_ns\":{:.1},\"p99_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1}}}",
            self.row.name,
            self.row.count,
            self.rps,
            self.row.p50_ns,
            self.row.p90_ns,
            self.row.p99_ns,
            self.row.mean_ns,
            self.row.min_ns,
            self.row.max_ns
        )
    }
}

fn take_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let at = args.iter().position(|a| a == name)?;
    if at + 1 >= args.len() {
        return None;
    }
    let value = args.remove(at + 1);
    args.remove(at);
    Some(value)
}

fn parse_flag<T: std::str::FromStr>(args: &mut Vec<String>, name: &str, default: T) -> T {
    match take_flag(args, name) {
        None => default,
        Some(raw) => raw
            .parse()
            // steelcheck: allow(panic-reachable): dies on a malformed flag before any load starts
            .unwrap_or_else(|_| panic!("{name} expects a number, got {raw:?}")),
    }
}

/// POST one spec and return its round-trip latency in nanoseconds plus
/// the server's cache disposition (`miss` / `hit` / `wait`).
fn post_spec(client: &mut Client, body: &str) -> (f64, String) {
    let start = Instant::now();
    let resp = client
        .request("POST", "/run", body.as_bytes())
        // steelcheck: allow(panic-reachable): a dead server invalidates the whole load run
        .unwrap_or_else(|e| panic!("POST /run: {e}"));
    let nanos = start.elapsed().as_nanos() as f64;
    if resp.status != 200 {
        // steelcheck: allow(panic-reachable): a rejected spec invalidates the whole load run
        panic!(
            "POST /run returned {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body).trim_end()
        );
    }
    let disposition = header(&resp.headers, "X-Steelserve-Cache")
        .unwrap_or("?")
        .to_string();
    (nanos, disposition)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));
    let requests: usize = parse_flag(&mut args, "--requests", DEFAULT_REQUESTS).max(1);
    let clients: usize = parse_flag(&mut args, "--clients", DEFAULT_CLIENTS).max(1);
    let mix_size: usize = parse_flag(&mut args, "--specs", DEFAULT_SPECS).max(1);
    let seed: u64 = parse_flag(&mut args, "--seed", DEFAULT_SEED);
    let crosscheck_every: u64 =
        parse_flag(&mut args, "--crosscheck-every", DEFAULT_CROSSCHECK_EVERY);
    let external = take_flag(&mut args, "--addr");
    if !args.is_empty() {
        // steelcheck: allow(panic-reachable): dies on unknown flags before any load starts
        panic!("unexpected arguments: {args:?}");
    }

    // A scratch cache, so a load run never pollutes `results/cache/`.
    let scratch = std::env::temp_dir().join(format!("steelload-cache-{}", std::process::id()));
    let (addr, server_thread) = match external {
        Some(addr) => (addr, None),
        None => {
            let cfg = ServerConfig {
                jobs,
                crosscheck_every,
                cache_dir: scratch.clone(),
                ..ServerConfig::default()
            };
            // steelcheck: allow(panic-reachable): cannot load-test without a listening socket
            let server = bind(&cfg).unwrap_or_else(|e| panic!("bind: {e}"));
            let addr = server.local_addr().to_string();
            (addr, Some(std::thread::spawn(move || server.serve_forever())))
        }
    };
    println!("# steelload against {addr} (jobs {jobs}, seed {seed:#x})");

    // The request mix: a seeded draw, deduplicated by content address.
    let mut seen = BTreeSet::new();
    let specs: Vec<Spec> = sample_mix(mix_size, seed)
        .into_iter()
        .filter(|s| seen.insert(s.key()))
        .collect();
    let bodies: Vec<String> = specs.iter().map(Spec::canonical).collect();
    println!(
        "# mix: {} distinct specs from {mix_size} draws; {requests} hit requests over {clients} clients",
        specs.len()
    );

    // Phase 1 — cold misses: every distinct spec once, empty cache.
    let mut client = Client::connect(&addr);
    let cold_start = Instant::now();
    let mut cold_ns = Vec::with_capacity(bodies.len());
    let mut cold_misses = 0usize;
    for body in &bodies {
        let (nanos, disposition) = post_spec(&mut client, body);
        cold_ns.push(nanos);
        cold_misses += usize::from(disposition == "miss");
    }
    let cold_elapsed = cold_start.elapsed().as_nanos() as f64;
    steelworks_bench::check(
        "cold phase executed every distinct spec",
        cold_misses == bodies.len(),
    );

    // Phase 2 — cache hits: closed loop, `clients` concurrent
    // keep-alive connections, deterministic per-client spec picks.
    let hit_start = Instant::now();
    let mut workers = Vec::with_capacity(clients);
    let mut mix_rng = SimRng::seed_from_u64(seed);
    for worker in 0..clients {
        let share = requests / clients + usize::from(worker < requests % clients);
        let addr = addr.clone();
        let bodies = bodies.clone();
        let mut rng = mix_rng.fork(worker as u64);
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr);
            let mut lat_ns = Vec::with_capacity(share);
            let mut hits = 0usize;
            for _ in 0..share {
                let body = &bodies[rng.below(bodies.len() as u64) as usize];
                let (nanos, disposition) = post_spec(&mut client, body);
                lat_ns.push(nanos);
                hits += usize::from(disposition == "hit");
            }
            (lat_ns, hits)
        }));
    }
    let mut hit_ns = Vec::with_capacity(requests);
    let mut hits = 0usize;
    for worker in workers {
        // steelcheck: allow(panic-reachable): a crashed load client invalidates the whole run
        let (lat, h) = worker.join().unwrap_or_else(|_| panic!("load client panicked"));
        hit_ns.extend(lat);
        hits += h;
    }
    let hit_elapsed = hit_start.elapsed().as_nanos() as f64;
    steelworks_bench::check("warm phase served every request from cache", hits == requests);

    // Report.
    let reports: Vec<PhaseReport> = [("serve/cold-miss", cold_ns, cold_elapsed), ("serve/cache-hit", hit_ns, hit_elapsed)]
        .into_iter()
        .filter_map(|(name, ns, elapsed)| {
            let count = ns.len();
            QuantileRow::from_unsorted(name, ns).map(|row| PhaseReport {
                row,
                rps: count as f64 / (elapsed / 1e9),
            })
        })
        .collect();
    println!("{}", QuantileRow::header());
    for report in &reports {
        println!("{}  {:>12.0} req/s", report.row.render(), report.rps);
    }
    let json = format!(
        "[{}]",
        reports
            .iter()
            .map(PhaseReport::to_json)
            .collect::<Vec<_>>()
            .join(",")
    );
    println!("# BENCH_JSON {json}");
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "results/BENCH_serve.json".to_string());
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("# steelload: cannot write {path}: {e}");
    }

    // Shut the in-process server down and drop its scratch cache.
    if let Some(thread) = server_thread {
        let _ = client.request("POST", "/shutdown", b"");
        // steelcheck: allow(panic-reachable): surfacing a server crash is the right exit here
        thread.join().unwrap_or_else(|_| panic!("server thread panicked")).ok();
        let _ = std::fs::remove_dir_all(&scratch);
    }
}
