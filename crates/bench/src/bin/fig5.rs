//! Regenerate **Fig. 5**: InstaPLC switchover.
//!
//! (a) Cyclic frames per 50 ms sent by vPLC1 and vPLC2; vPLC1 crashes
//! at t ≈ 1.2 s. (b) Cyclic frames per 50 ms arriving at the I/O
//! device: control continues across the switchover.

use steelworks_bench::check;
use steelworks_core::prelude::*;
use steelworks_netsim::time::Nanos;

enum Job {
    Crash,
    Migration,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));
    let cfg = ScenarioConfig::default();
    println!(
        "# Fig. 5 — InstaPLC switchover (cycle {} µs, watchdog ×{}, crash at {} ms)\n",
        cfg.cycle_time.as_micros_f64(),
        cfg.watchdog_factor,
        cfg.crash_at.as_millis_f64()
    );
    // The crash scenario and the planned-migration companion are
    // independent simulations; run both on the worker pool (`--jobs` /
    // `STEELWORKS_JOBS`) and print in the original order.
    let mut results = steelpar::run(jobs, vec![Job::Crash, Job::Migration], |j| match j {
        Job::Crash => run_scenario(&cfg),
        Job::Migration => run_migration_scenario(
            &ScenarioConfig {
                crash_at: Nanos::from_secs(100), // never
                ..cfg.clone()
            },
            Nanos::from_millis(1_000),
            Some(Nanos::from_millis(2_000)),
        ),
    })
    .into_iter();
    let (r, m) = match (results.next(), results.next()) {
        (Some(r), Some(m)) => (r, m),
        // steelcheck: allow(panic-reachable): steelpar::run returns exactly one result per job
        _ => unreachable!("steelpar returns one result per job"),
    };

    println!(
        "{}",
        format_series("Fig. 5a — from vPLC1 (pkts / 50 ms)", 50.0, &r.vplc1_series)
    );
    println!(
        "{}",
        format_series("Fig. 5a — from vPLC2 (pkts / 50 ms)", 50.0, &r.vplc2_series)
    );
    println!(
        "{}",
        format_series("Fig. 5b — to I/O (pkts / 50 ms)", 50.0, &r.io_series)
    );

    match r.switchover_at {
        Some(t) => println!(
            "# switchover completed at t = {:.3} ms ({:.3} ms after the crash)",
            t.as_millis_f64(),
            t.as_millis_f64() - cfg.crash_at.as_millis_f64()
        ),
        None => println!("# switchover: none"),
    }
    println!("# I/O safe-state entries: {}", r.io_safe_entries);
    println!("# twin connects answered: {}", r.twin_accepts);

    // Shape checks against the paper.
    let crash_bin = (cfg.crash_at.as_nanos() / 50_000_000) as usize;
    check(
        "steady ~33 pkts/50ms before the crash (paper: 20-50 band)",
        r.vplc1_series[5..crash_bin - 1]
            .iter()
            .all(|&c| (25..=40).contains(&c)),
    );
    check(
        "vPLC1 stops at the crash",
        r.vplc1_series[crash_bin + 1..].iter().all(|&c| c == 0),
    );
    check(
        "vPLC2 transmits continuously (twin, then device)",
        r.vplc2_series[3..].iter().all(|&c| c >= 25),
    );
    check(
        "I/O stays controlled in every bin after warm-up",
        r.io_series[1..].iter().all(|&c| c >= 25),
    );
    check(
        "switchover within a few cycles of the crash",
        r.switchover_at
            .map(|t| t - cfg.crash_at < steelworks_netsim::time::NanoDur::from_millis(5))
            .unwrap_or(false),
    );
    check("no watchdog expiry at the device", r.io_safe_entries == 0);

    // Companion experiment: planned (hitless) migration instead of a
    // crash — the P4PLC capability the paper cites.
    println!("\n## Planned migration (no crash: control moves and moves back)");
    println!(
        "# migration at 1.0 s, failback at 2.0 s; I/O received {} frames, safe-state entries {}",
        m.io_received, m.io_safe_entries
    );
    check("planned migration is hitless", m.io_safe_entries == 0);
    check(
        "both vPLCs alive throughout (demoted primary keeps running)",
        m.vplc1_series[5..].iter().all(|&c| c >= 25)
            && m.vplc2_series[5..].iter().all(|&c| c >= 25),
    );
}
