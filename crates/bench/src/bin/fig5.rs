//! Regenerate **Fig. 5**: InstaPLC switchover.
//!
//! (a) Cyclic frames per 50 ms sent by vPLC1 and vPLC2; vPLC1 crashes
//! at t ≈ 1.2 s. (b) Cyclic frames per 50 ms arriving at the I/O
//! device: control continues across the switchover.
//!
//! The scenario (seed, crash/migration/failback instants) comes from
//! the committed `specs/fig5.json` scenario spec; pass a different
//! spec path as the first argument. The pipeline lives in
//! `steelserve::figures`.

use steelserve::figures::run_spec;

/// The committed default spec (regenerates `results/fig5.txt`).
const DEFAULT_SPEC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig5.json");

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));
    let path = args.first().map(String::as_str).unwrap_or(DEFAULT_SPEC);
    let spec = steelworks_bench::load_spec(path, "fig5");
    print!("{}", run_spec(&spec, jobs));
}
