//! `xdpverify` — the xdpsim verifier as a CLI: verify the shipped
//! program corpus and explain rejection codes, steelcheck-style.
//!
//! ```text
//! cargo run --release -p steelworks-bench --bin xdpverify            # verify the corpus
//! cargo run --release -p steelworks-bench --bin xdpverify -- --list-codes
//! cargo run --release -p steelworks-bench --bin xdpverify -- --explain unbounded-loop
//! cargo run --release -p steelworks-bench --bin xdpverify -- --dump-lowered L-SCAN
//! ```
//!
//! `--dump-lowered NAME` compiles one corpus program through the
//! verifier-informed lowering pass and prints its basic blocks:
//! resolved ops, every elided check with the proof fact that licensed
//! it, and per-block fuel.
//!
//! Exit status: 0 when every shipped program verifies (or a query mode
//! ran), 1 on an unexpected rejection, 2 on usage errors.

use std::process::ExitCode;
use steelworks_xdpsim::prelude::{
    loop_variant, lower, reflect_variant, reject_info, standard_maps, verify, verify_with_proof,
    LoopVariant, Program, ReflectVariant, REJECT_CODES,
};

/// The nine shipped programs, by display name.
fn corpus() -> (steelworks_xdpsim::maps::MapSet, Vec<(&'static str, Program)>) {
    let (maps, rb) = standard_maps();
    let programs: Vec<(&'static str, Program)> = ReflectVariant::ALL
        .iter()
        .map(|&v| (v.name(), reflect_variant(v, rb)))
        .chain(LoopVariant::ALL.iter().map(|&v| (v.name(), loop_variant(v))))
        .collect();
    (maps, programs)
}

fn dump_lowered(name: &str) -> ExitCode {
    let (maps, programs) = corpus();
    let Some((_, prog)) = programs.iter().find(|(n, _)| *n == name) else {
        let names: Vec<&str> = programs.iter().map(|(n, _)| *n).collect();
        eprintln!(
            "xdpverify: unknown program `{name}` (corpus: {})",
            names.join(", ")
        );
        return ExitCode::from(2);
    };
    let (_, proof) = match verify_with_proof(prog, &maps) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xdpverify: `{name}` failed verification: {e}");
            return ExitCode::FAILURE;
        }
    };
    match lower(prog, &proof) {
        Ok(lp) => {
            print!("{}", lp.dump());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xdpverify: `{name}` failed to lower: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list-codes" => {
                for r in REJECT_CODES {
                    println!("{:<24} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => match args.next() {
                Some(code) => match reject_info(&code) {
                    Some(r) => {
                        println!("{}", r.id);
                        println!("  {}", r.summary);
                        println!();
                        println!("  {}", r.detail);
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!("xdpverify: unknown code `{code}` (see --list-codes)");
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("xdpverify: --explain requires a rejection code");
                    return ExitCode::from(2);
                }
            },
            "--dump-lowered" => match args.next() {
                Some(name) => return dump_lowered(&name),
                None => {
                    eprintln!("xdpverify: --dump-lowered requires a program name");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: xdpverify [--list-codes] [--explain CODE] [--dump-lowered NAME]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xdpverify: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    // Default mode: verify the shipped corpus — the six straight-line
    // reflection variants plus the three bounded-loop programs — and
    // print what the verifier proved about each.
    let (maps, programs) = corpus();
    let mut failed = 0usize;
    println!("# {:<8} {:>5} {:>5} {:>8}  status", "program", "insns", "loops", "fuel");
    for (name, prog) in &programs {
        match verify(prog, &maps) {
            Ok(s) => println!(
                "  {:<8} {:>5} {:>5} {:>8}  ok",
                name, s.insns, s.loops, s.max_insns
            ),
            Err(e) => {
                failed += 1;
                println!("  {:<8} REJECTED [{}]: {e}", name, e.kind.code());
            }
        }
    }
    steelworks_bench::check("every shipped program verifies", failed == 0);
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
