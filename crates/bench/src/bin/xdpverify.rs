//! `xdpverify` — the xdpsim verifier as a CLI: verify the shipped
//! program corpus and explain rejection codes, steelcheck-style.
//!
//! ```text
//! cargo run --release -p steelworks-bench --bin xdpverify            # verify the corpus
//! cargo run --release -p steelworks-bench --bin xdpverify -- --list-codes
//! cargo run --release -p steelworks-bench --bin xdpverify -- --explain unbounded-loop
//! ```
//!
//! Exit status: 0 when every shipped program verifies (or a query mode
//! ran), 1 on an unexpected rejection, 2 on usage errors.

use std::process::ExitCode;
use steelworks_xdpsim::prelude::{
    loop_variant, reflect_variant, reject_info, standard_maps, verify, LoopVariant, Program,
    ReflectVariant, REJECT_CODES,
};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list-codes" => {
                for r in REJECT_CODES {
                    println!("{:<24} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => match args.next() {
                Some(code) => match reject_info(&code) {
                    Some(r) => {
                        println!("{}", r.id);
                        println!("  {}", r.summary);
                        println!();
                        println!("  {}", r.detail);
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!("xdpverify: unknown code `{code}` (see --list-codes)");
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("xdpverify: --explain requires a rejection code");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: xdpverify [--list-codes] [--explain CODE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xdpverify: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    // Default mode: verify the shipped corpus — the six straight-line
    // reflection variants plus the three bounded-loop programs — and
    // print what the verifier proved about each.
    let (maps, rb) = standard_maps();
    let programs: Vec<(&'static str, Program)> = ReflectVariant::ALL
        .iter()
        .map(|&v| (v.name(), reflect_variant(v, rb)))
        .chain(LoopVariant::ALL.iter().map(|&v| (v.name(), loop_variant(v))))
        .collect();
    let mut failed = 0usize;
    println!("# {:<8} {:>5} {:>5} {:>8}  status", "program", "insns", "loops", "fuel");
    for (name, prog) in &programs {
        match verify(prog, &maps) {
            Ok(s) => println!(
                "  {:<8} {:>5} {:>5} {:>8}  ok",
                name, s.insns, s.loops, s.max_insns
            ),
            Err(e) => {
                failed += 1;
                println!("  {:<8} REJECTED [{}]: {e}", name, e.kind.code());
            }
        }
    }
    steelworks_bench::check("every shipped program verifies", failed == 0);
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
