//! Regenerate **Fig. 4**: Traffic Reflection results.
//!
//! Left panel: delay CDFs of the six eBPF/XDP reflection program
//! variants. Right panel: jitter CDFs for 1 vs 25 concurrent RT flows.
//!
//! The scenario itself (seed, cycles per flow) comes from the committed
//! `specs/fig4.json` scenario spec; pass a different spec path as the
//! first argument. The pipeline lives in `steelserve::figures`, where
//! all eight simulations fan out over a `steelpar` worker pool
//! (`--jobs N` / `STEELWORKS_JOBS`) and come back in input order, so
//! the output is byte-identical at any job count.

use steelserve::figures::run_spec;

/// The committed default spec (regenerates `results/fig4.txt`).
const DEFAULT_SPEC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig4.json");

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));
    let path = args.first().map(String::as_str).unwrap_or(DEFAULT_SPEC);
    let spec = steelworks_bench::load_spec(path, "fig4");
    print!("{}", run_spec(&spec, jobs));
}
