//! Regenerate **Fig. 4**: Traffic Reflection results.
//!
//! Left panel: delay CDFs of the six eBPF/XDP reflection program
//! variants. Right panel: jitter CDFs for 1 vs 25 concurrent RT flows.
//!
//! All eight simulations (six variants + two flow regimes) are
//! independent scenarios, fanned out over a `steelpar` worker pool
//! (`--jobs N` / `STEELWORKS_JOBS`). Results come back in input order,
//! so the output is byte-identical at any job count. The two flow-regime
//! outcomes feed both the worst-case section and the right panel: the
//! sequential version ran identical configurations twice.

use steelworks_bench::{check, FIGURE_SEED};
use steelworks_core::prelude::*;
use steelworks_xdpsim::prelude::ReflectVariant;

enum Scenario {
    Left(ReflectVariant),
    Flows(u32),
}

enum Outcome {
    Left((&'static str, Vec<(f64, f64)>)),
    Flows(u32, ReflectionOutcome),
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));
    let cycles: u64 = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    println!("# Fig. 4 — Traffic Reflection (seed {FIGURE_SEED:#x}, {cycles} cycles/flow)\n");

    let scenarios: Vec<Scenario> = ReflectVariant::ALL
        .iter()
        .map(|&v| Scenario::Left(v))
        .chain([1u32, 25].iter().map(|&f| Scenario::Flows(f)))
        .collect();
    let outcomes = steelpar::run(jobs, scenarios, |s| match s {
        Scenario::Left(v) => Outcome::Left(fig4_left_one(v, FIGURE_SEED, cycles)),
        Scenario::Flows(f) => Outcome::Flows(f, fig4_right_one(f, FIGURE_SEED, cycles)),
    });
    let mut left = Vec::new();
    let mut flow_outs = Vec::new();
    for o in outcomes {
        match o {
            Outcome::Left(l) => left.push(l),
            Outcome::Flows(f, out) => flow_outs.push((f, out)),
        }
    }

    // Left panel.
    println!("## Left: delay CDFs per eBPF program variant (1 flow)");
    let mut medians = std::collections::HashMap::new();
    for (name, cdf) in &left {
        println!("{}", format_cdf(&format!("delay, {name}"), "us", cdf, 20));
        let median = cdf
            .iter()
            .find(|(_, p)| *p >= 0.5)
            .map(|(v, _)| *v)
            .unwrap_or(0.0);
        medians.insert(*name, median);
    }
    println!("# medians (µs):");
    for v in ReflectVariant::ALL {
        println!("#   {:8} {:6.2}", v.name(), medians[v.name()]);
    }

    // §2.1's missing metrics: worst case and consecutive jitter bursts.
    println!("\n## Worst-case & burst metrics (the numbers §2.1 says evaluations omit)");
    for (flows, out) in &mut flow_outs {
        let flows = *flows;
        println!(
            "# {flows:>2} flow(s): worst delay {:.2} µs | >1 µs-jitter cycles {:.3} % | longest burst {} | trips watchdog x3: {}",
            out.worst_delay_us(),
            out.over_threshold_fraction * 100.0,
            out.max_jitter_burst,
            out.would_trip_watchdog(3),
        );
        if flows == 1 {
            check(
                "one quiet flow never halts a watchdog-3 device",
                !out.would_trip_watchdog(3),
            );
        }
    }

    // Right panel.
    println!("\n## Right: jitter CDFs, 1 vs 25 flows (TS variant)");
    let right: Vec<(u32, Vec<(f64, f64)>)> = flow_outs
        .iter_mut()
        .map(|(flows, out)| (*flows, out.jitters.cdf(200)))
        .collect();
    let mut p99 = Vec::new();
    for (flows, cdf) in &right {
        println!(
            "{}",
            format_cdf(&format!("jitter, {flows} flow(s)"), "ns", cdf, 20)
        );
        let v99 = cdf
            .iter()
            .find(|(_, p)| *p >= 0.99)
            .map(|(v, _)| *v)
            .unwrap_or(0.0);
        p99.push((*flows, v99));
        println!("#   {flows} flow(s): p99 jitter = {v99:.0} ns");
    }

    // Shape checks against the paper.
    let base = medians["Base"];
    let ts_rb = medians["TS-RB"];
    let ts_d_rb = medians["TS-D-RB"];
    check(
        "delay medians in the ~5-25 µs band",
        medians.values().all(|&m| m > 4.0 && m < 25.0),
    );
    check(
        "ring-buffer variants separate from the rest (paper: left vs right cluster)",
        ts_rb > base + 2.0 && ts_d_rb > base + 2.0,
    );
    check(
        "small code changes shift the CDF (TS > Base)",
        medians["TS"] >= base,
    );
    check(
        "25 flows inflate jitter vs 1 flow (paper: right panel)",
        p99[1].1 > 1.5 * p99[0].1,
    );
    check(
        "jitter in the sub-microsecond-to-µs band",
        p99[1].1 < 5_000.0,
    );
}
