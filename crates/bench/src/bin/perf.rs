//! `perf` — the hot-path performance trajectory.
//!
//! Micro- and macro-benchmarks of the code the optimization passes
//! target: the transmit/deliver event loop, the event queue under
//! shallow and deep backlogs, tap observation, the fig4-shaped
//! end-to-end reflection scenario, and the `steelpar` scenario fan-out
//! at one worker vs the machine's parallelism. Run with
//! `BENCH_JSON=results/BENCH_perf.json cargo run --release -p
//! steelworks-bench --bin perf` to record a trajectory point;
//! `--samples N` adjusts the per-bench sample count and
//! `--filter <substr>` runs only the rows whose name contains the
//! substring (e.g. `--filter xdpsim` re-runs the VM rows in
//! isolation).

use steelworks_bench::harness::Harness;
use steelworks_core::prelude::*;
use steelworks_netsim::bytes::Bytes;
use steelworks_netsim::event::{EventKind, EventQueue};
use steelworks_netsim::frame::{ethertype, EthFrame, MacAddr};
use steelworks_netsim::node::NodeId;
use steelworks_netsim::prelude::*;
use steelworks_netsim::tap::{Tap, TapDir};
use steelworks_netsim::time::Nanos;
use steelworks_xdpsim::cost::{BlockPlan, CostModel};
use steelworks_xdpsim::prelude::{
    loop_variant, lower, reflect_variant, run_lowered, standard_maps, verify, verify_with_proof,
    LoopVariant, ReflectVariant, XdpContext,
};

fn bench_transmit_deliver(h: &mut Harness) {
    // The loop the netsim hot-path pass targets: frames serialized over
    // a direct link, boxed arrival events, per-frame dispatch.
    h.bench("perf/transmit_deliver/10k_direct", || {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                46,
                NanoDur::from_micros(1),
            )
            .with_limit(10_000),
        );
        let dst = sim.add_node(CounterSink::new("dst"));
        sim.connect(src, PortId(0), dst, PortId(0), LinkSpec::gigabit());
        sim.run_to_quiescence();
        assert_eq!(sim.trace().counters().delivered, 10_000);
    });
    // Same loop with a tap on the link and a lossy/corrupting fault
    // model: exercises the indexed tap pass and in-place corruption.
    h.bench("perf/transmit_deliver/10k_tapped_faulty", || {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                200,
                NanoDur::from_micros(1),
            )
            .with_limit(10_000),
        );
        let dst = sim.add_node(CounterSink::new("dst"));
        let link = sim.connect(
            src,
            PortId(0),
            dst,
            PortId(0),
            LinkSpec::gigabit().with_faults(FaultSpec {
                drop_prob: 0.01,
                corrupt_prob: 0.05,
                ..FaultSpec::default()
            }),
        );
        sim.attach_tap(link, Tap::hardware_default());
        sim.run_to_quiescence();
    });
}

fn bench_event_queue(h: &mut Harness) {
    // Steady-state push/pop against a shallow, a deep, and a
    // campus-deep backlog. The calendar queue's O(1) claim is only
    // honest if the 1M row stays in the same decade as the 1k row
    // instead of growing with log(pending) like the old binary heap.
    for &pending in &[1_000usize, 100_000, 1_000_000] {
        let mut q = EventQueue::new();
        q.reserve(pending + 1);
        for i in 0..pending {
            q.push(
                Nanos(i as u64),
                EventKind::Timer {
                    node: NodeId(0),
                    token: i as u64,
                },
            );
        }
        let mut t = pending as u64;
        h.bench_inner(format!("perf/event_queue/push_pop_{pending}_pending"), 64, || {
            q.push(
                Nanos(t),
                EventKind::FrameArrival {
                    node: NodeId(0),
                    port: PortId(0),
                    frame: Box::new(EthFrame::new(
                        MacAddr::local(1),
                        MacAddr::local(2),
                        ethertype::SIM_TEST,
                        Bytes::from_static(&[0u8; 46]),
                    )),
                },
            );
            t += 1;
            q.pop()
        });
    }
}

fn bench_tap_observe(h: &mut Harness) {
    let frame = EthFrame::new(
        MacAddr::local(1),
        MacAddr::local(2),
        ethertype::SIM_TEST,
        Bytes::from_static(&[0u8; 46]),
    );
    let mut tap = Tap::hardware_default();
    let mut t = 0u64;
    h.bench_inner("perf/tap/observe", 256, || {
        t += 8;
        tap.observe(Nanos(t), TapDir::AToB, &frame);
        if tap.records().len() >= 65_536 {
            tap.clear();
        }
    });
}

fn bench_fig4_e2e(h: &mut Harness) {
    // The fig4-shaped end-to-end scenario at reduced cycle count: the
    // whole XDP host + link + tap pipeline, as the figure binaries
    // drive it.
    h.bench("perf/e2e/fig4_ts_500_cycles", || {
        run_reflection(&ReflectionConfig {
            variant: ReflectVariant::Ts,
            cycles: 500,
            seed: 0x57EE1,
            ..ReflectionConfig::default()
        })
        .tap_records
    });
    // The same pipeline with a bounded-loop program: every frame pays
    // the verifier-bounded payload scan, so this row tracks the fused
    // per-block cost accounting and the fuel check on the VM hot path.
    h.bench("perf/e2e/fig4_loops", || {
        run_reflection(&ReflectionConfig {
            variant: ReflectVariant::Base,
            loop_variant: Some(LoopVariant::PayloadScan),
            cycles: 500,
            seed: 0x57EE1,
            ..ReflectionConfig::default()
        })
        .tap_records
    });
}

fn bench_verify_loop_corpus(h: &mut Harness) {
    // The interval verifier itself: worklist fixpoint with widening
    // over all three loop programs (back-edges, joins, fuel
    // derivation). Straight-line verification is a subset of this
    // work, so one row covers the analysis cost trajectory.
    let (maps, _rb) = standard_maps();
    h.bench("perf/xdpsim/verify_loop_corpus", move || {
        let mut fuel = 0u64;
        for v in LoopVariant::ALL {
            let stats = verify(&loop_variant(v), &maps)
                // steelcheck: allow(panic-reachable): the corpus is verified in unit tests; a rejection here is a broken build
                .expect("shipped loop program verifies");
            fuel += stats.max_insns;
        }
        fuel
    });
}

fn bench_lower_corpus(h: &mut Harness) {
    // The lowering pass itself (load-time cost): verify-with-proof plus
    // compile for all nine shipped programs.
    let (maps, rb) = standard_maps();
    h.bench("perf/xdpsim/lower_corpus", move || {
        let mut elided = 0usize;
        let progs = LoopVariant::ALL
            .iter()
            .map(|&v| loop_variant(v))
            .chain(ReflectVariant::ALL.iter().map(|&v| reflect_variant(v, rb)));
        for p in progs {
            let (_, proof) = verify_with_proof(&p, &maps)
                // steelcheck: allow(panic-reachable): the corpus is verified in unit tests; a rejection here is a broken build
                .expect("shipped program verifies");
            // steelcheck: allow(panic-reachable): lowering any verified program is covered by the differential oracle
            let lp = lower(&p, &proof).expect("verified program lowers");
            elided += lp.elided_checks();
        }
        elided
    });
}

fn bench_exec_lowered_vs_interp(h: &mut Harness) {
    // The VM hot path in isolation, same program + packet sweep through
    // both engines: the ratio of these two rows is the pure execution
    // speedup of proof-elided lowering, without the host/NIC/netsim
    // layers the e2e rows carry.
    let (maps, _rb) = standard_maps();
    let prog = loop_variant(LoopVariant::PayloadScan);
    let (stats, proof) = verify_with_proof(&prog, &maps)
        // steelcheck: allow(panic-reachable): the corpus is verified in unit tests; a rejection here is a broken build
        .expect("shipped loop program verifies");
    // steelcheck: allow(panic-reachable): lowering any verified program is covered by the differential oracle
    let lp = lower(&prog, &proof).expect("verified program lowers");
    let plan = BlockPlan::new(&prog);
    let cm = CostModel::default();
    let runs = 200u64;
    {
        let (prog, maps, cm, plan) = (prog.clone(), maps.clone(), cm.clone(), plan.clone());
        h.bench("perf/xdpsim/exec_lowered_vs_interp/interp", move || {
            let mut maps = maps.clone();
            let mut rng = SimRng::seed_from_u64(0x1077);
            let mut insns = 0u64;
            for i in 0..runs {
                let mut pkt = vec![0u8; 64];
                pkt[0] = i as u8;
                let r = steelworks_xdpsim::vm::run_with(
                    &prog,
                    Some(&plan),
                    stats.max_insns,
                    &mut pkt,
                    XdpContext::default(),
                    &mut maps,
                    &cm,
                    i,
                    0,
                    &mut rng,
                );
                insns += r.cost.insns;
            }
            insns
        });
    }
    h.bench("perf/xdpsim/exec_lowered_vs_interp/lowered", move || {
        let mut maps = maps.clone();
        let mut rng = SimRng::seed_from_u64(0x1077);
        let mut insns = 0u64;
        for i in 0..runs {
            let mut pkt = vec![0u8; 64];
            pkt[0] = i as u8;
            let r = run_lowered(
                &lp,
                &mut pkt,
                XdpContext::default(),
                &mut maps,
                &cm,
                i,
                0,
                &mut rng,
            );
            insns += r.cost.insns;
        }
        insns
    });
}

fn bench_campus_e2e(h: &mut Harness) {
    // A reduced campus (4 cells × 4 leaves × 64 endpoints ≈ 4k nodes)
    // through the full build/run/audit path: the arena node table, the
    // calendar queue under six-figure backlogs, and the payload pool
    // all on their intended workload shape.
    h.bench("perf/e2e/fig_campus_4k_nodes", || {
        let cfg = CampusConfig {
            cells: 4,
            leaves_per_cell: 4,
            endpoints_per_leaf: 64,
            period: NanoDur::from_micros(500),
            cycles: 5,
            seed: 0xCA9,
        };
        let r = run_campus(&cfg);
        assert_eq!(r.frames_received, r.frames_sent);
        r.events_processed
    });
}

fn bench_steelpar_fanout(h: &mut Harness) {
    // The fig6-shaped sweep through the scenario runner at one worker
    // vs the machine's parallelism. On a multi-core box the ratio of
    // these two rows is the scenario-level speedup; outputs are
    // byte-identical either way.
    let cfg = StudyConfig::default();
    let grid: Vec<(TopologyKind, usize)> = TopologyKind::ALL
        .iter()
        .flat_map(|&k| cfg.client_counts.iter().map(move |&n| (k, n)))
        .collect();
    let auto = steelpar::resolve_jobs(None);
    for (label, jobs) in [("jobs1", 1usize), ("jobs_auto", auto)] {
        let grid = &grid;
        let cfg = &cfg;
        h.bench(format!("perf/steelpar/fig6_sweep_{label}"), move || {
            steelpar::run(jobs, grid.clone(), |(k, n)| {
                evaluate_point(k, steelworks_mlnet::prelude::MlApp::ALL[0], n, cfg).latency_ms
            })
            .len()
        });
    }
}

fn bench_steelcheck_scan(h: &mut Harness) {
    // The four-layer static-analysis gate over the full workspace:
    // lex + parse every file, build the call graph, then run the
    // reachability BFS and the CFG/dataflow fixpoints. The gate runs
    // on every `check_hermetic.sh` invocation and inside `cargo
    // test`, so its latency is part of the edit-compile-verify loop
    // this trajectory tracks.
    let root = steelcheck::walk::find_workspace_root(std::path::Path::new("."))
        // steelcheck: allow(panic-reachable): dies before any sampling starts; the bench must run from inside the repo
        .expect("workspace root");
    h.bench("perf/steelcheck/workspace_scan", move || {
        // steelcheck: allow(panic-reachable): an unreadable source file is a broken checkout, not a measurement
        let report = steelcheck::run(&root).expect("workspace scan");
        assert_eq!(report.findings.len(), 0, "gate must stay clean");
        report.rust_files
    });
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1).and_then(|s| s.parse::<usize>().ok()))
        .unwrap_or(20);
    let filter = args
        .iter()
        .position(|a| a == "--filter")
        .and_then(|i| args.get(i + 1).cloned());
    let _ = steelpar::take_jobs_arg(&mut args);
    let mut h = Harness::new("perf").samples(samples).filter(filter);
    bench_transmit_deliver(&mut h);
    bench_event_queue(&mut h);
    bench_tap_observe(&mut h);
    bench_verify_loop_corpus(&mut h);
    bench_lower_corpus(&mut h);
    bench_exec_lowered_vs_interp(&mut h);
    bench_fig4_e2e(&mut h);
    bench_campus_e2e(&mut h);
    bench_steelpar_fanout(&mut h);
    bench_steelcheck_scan(&mut h);
    h.finish();
}
