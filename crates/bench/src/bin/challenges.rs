//! Reproduce the quantitative claims of the paper's challenge sections
//! (§2.1 timing, §2.2 availability, §2.3 traffic mix).
//!
//! The Monte-Carlo trial count comes from the committed
//! `specs/challenges.json` scenario spec; pass a different spec path as
//! the first argument. The pipeline lives in `steelserve::figures`.

use steelserve::figures::run_spec;

/// The committed default spec (regenerates `results/challenges.txt`).
const DEFAULT_SPEC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/challenges.json");

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));
    let path = args.first().map(String::as_str).unwrap_or(DEFAULT_SPEC);
    let spec = steelworks_bench::load_spec(path, "challenges");
    print!("{}", run_spec(&spec, jobs));
}
