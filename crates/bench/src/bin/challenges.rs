//! Reproduce the quantitative claims of the paper's challenge sections
//! (§2.1 timing, §2.2 availability, §2.3 traffic mix).

use steelworks_bench::check;
use steelworks_core::prelude::*;
use steelworks_netsim::rng::SimRng;
use steelworks_netsim::time::NanoDur;
use steelworks_xdpsim::prelude::{NicModel, PcieModel};

fn section_2_1_timing() {
    println!("## §2.1 — Timing\n");
    // PCIe share of NIC latency for small packets (paper: >90 % of
    // total NIC latency per Neugebauer et al.; our model separates the
    // MAC pipeline, so we report the share of the host-side path).
    let nic = NicModel::default();
    let mut rows = Vec::new();
    for len in [64usize, 128, 256, 512, 1500] {
        rows.push(vec![
            len.to_string(),
            format!("{:.0}", nic.rx_latency(len).as_nanos()),
            format!("{:.1}", nic.pcie_fraction_rx(len) * 100.0),
        ]);
    }
    println!(
        "{}",
        format_table(
            "NIC RX latency and PCIe share vs frame size",
            &["bytes", "rx latency (ns)", "PCIe share (%)"],
            &rows
        )
    );
    check(
        "PCIe dominates small-frame NIC latency",
        nic.pcie_fraction_rx(64) > 0.65,
    );
    let pcie = PcieModel::default();
    check(
        "per-transaction cost >> per-byte cost for industrial frames",
        pcie.base_ns + pcie.iommu_ns > 10.0 * (pcie.per_byte_ns * 250.0),
    );

    // Cycle-time requirements table (paper's numbers).
    let rows = vec![
        vec!["machine tools".into(), "500 µs".into()],
        vec![
            "high-speed motion control".into(),
            "250 µs / <1 µs jitter".into(),
        ],
        vec!["process automation".into(), "10–100 ms".into()],
    ];
    println!(
        "{}",
        format_table(
            "OT timing requirements (§2.1)",
            &["use case", "requirement"],
            &rows
        )
    );
}

fn section_2_2_availability(jobs: usize) {
    println!("## §2.2 — Service availability\n");
    let six = nines(6);
    let budget = downtime_per_year(six);
    println!(
        "# 99.9999 % availability = {:.1} s downtime per year (paper: 31.5 s)",
        budget.as_secs_f64()
    );
    check(
        "six nines = 31.5 s/year",
        (budget.as_secs_f64() - 31.536).abs() < 0.05,
    );

    let dc_minutes_per_month = 4.0;
    let dc = NanoDur::from_secs_f64(dc_minutes_per_month * 60.0 * 12.0);
    println!(
        "# data-center practice (~{dc_minutes_per_month} min/month) = {:.0} s/year = {:.0}x the OT budget",
        dc.as_secs_f64(),
        dc.as_secs_f64() / budget.as_secs_f64()
    );

    // Redundancy schemes at a pessimistic 12 primary failures/year.
    let mttr = NanoDur::from_secs(1800);
    let schemes = [
        Scheme::None,
        Scheme::Kubernetes,
        Scheme::HardwarePair,
        Scheme::InstaPlc {
            cycle: NanoDur::from_micros(1_500),
            switchover_cycles: 2,
        },
    ];
    // Six independent Monte-Carlo estimates (four schemes at 12
    // failures/yr, plus InstaPLC and the hardware pair at 400) fan out
    // over the worker pool; each estimate seeds its own RNG, so the
    // numbers match the sequential run exactly.
    let grid: Vec<(Scheme, f64)> = schemes
        .iter()
        .map(|&s| (s, 12.0))
        .chain([(schemes[3], 400.0), (schemes[2], 400.0)])
        .collect();
    let ests = steelpar::run(jobs, grid, |(s, rate)| estimate(s, rate, mttr, 5_000, 0xA11A));
    let mut rows = Vec::new();
    for (s, e) in schemes.iter().zip(&ests) {
        rows.push(vec![
            s.name().to_string(),
            format!("{:.3}", e.downtime_per_year.as_secs_f64()),
            format!("{:.7}", e.availability),
            if e.meets_ot_requirement { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            "redundancy schemes @ 12 failures/yr, 30 min MTTR",
            &["scheme", "downtime (s/yr)", "availability", ">= 6 nines"],
            &rows
        )
    );
    check(
        "k8s-style standby misses six nines even at 12 failures/yr",
        !ests[1].meets_ot_requirement,
    );
    check(
        "in-network switchover holds six nines even at 400 failures/yr",
        ests[4].meets_ot_requirement && !ests[5].meets_ot_requirement,
    );
    // Published takeover bands.
    let mut rng = SimRng::seed_from_u64(0xF00D);
    let hw: Vec<f64> = (0..5_000)
        .map(|_| steelworks_vplc::redundancy::takeover::hardware_pair(&mut rng).as_millis_f64())
        .collect();
    let k8: Vec<f64> = (0..5_000)
        .map(|_| steelworks_vplc::redundancy::takeover::kubernetes(&mut rng).as_millis_f64())
        .collect();
    let minmax = |v: &[f64]| {
        (
            v.iter().cloned().fold(f64::MAX, f64::min),
            v.iter().cloned().fold(0.0, f64::max),
        )
    };
    let (hmin, hmax) = minmax(&hw);
    let (kmin, kmax) = minmax(&k8);
    println!("# hardware pair takeover: {hmin:.0}-{hmax:.0} ms (paper: 50-300 ms)");
    println!(
        "# kubernetes takeover   : {kmin:.0} ms - {:.1} s (paper: ~110 ms - 55.4 s)",
        kmax / 1000.0
    );
    check(
        "hardware band matches the system manual",
        hmin >= 50.0 && hmax <= 300.0,
    );
    check(
        "k8s band matches the literature",
        kmin >= 110.0 && kmax <= 55_400.0,
    );
}

fn section_2_3_traffic_mix() {
    println!("## §2.3 — The new traffic mix\n");
    let flows = generate_traffic_mix(&MixConfig::default(), 0x7AFF);
    let r = evaluate_traffic_mix(&flows);
    println!(
        "# population: {} flows, {} of them vPLC cyclic microflows",
        r.total, r.microflows_truth
    );
    println!(
        "# feature classifier: {}/{} correct, {}/{} microflows detected",
        r.correct, r.total, r.microflows_found, r.microflows_truth
    );
    println!(
        "# size-only classifier mislabels {}/{} microflows as bulk (the class blends categories)",
        r.microflows_mislabelled_by_size, r.microflows_truth
    );
    check(
        "feature classifier detects every microflow",
        r.microflows_found == r.microflows_truth,
    );
    check(
        "size-only view misses the class entirely",
        r.microflows_mislabelled_by_size == r.microflows_truth,
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));
    println!("# §2 challenge numbers, reproduced\n");
    section_2_1_timing();
    section_2_2_availability(jobs);
    section_2_3_traffic_mix();
}
