//! Regenerate **Fig. 1**: industrial-networking term occurrences in
//! recent SIGCOMM/HotNets proceedings.
//!
//! The real proceedings are copyrighted; the analyzer runs over the
//! calibrated synthetic corpus (see `steelworks-corpus::synth`). Pass a
//! directory of `.txt` files as the first argument to analyze a real
//! corpus instead.
//!
//! Corpus *generation* threads one RNG through every paper and stays
//! sequential; *analysis* is a sum of per-document term counts, so it
//! chunks the corpus across a `steelpar` worker pool (`--jobs N` /
//! `STEELWORKS_JOBS`) and merges by addition — the totals are identical
//! for any partition, so the output is byte-identical at any job count.

use steelworks_bench::{check, FIGURE_SEED};
use steelworks_core::prelude::format_bars;
use steelworks_corpus::prelude::*;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));
    let texts: Vec<String> = if let Some(dir) = args.first() {
        println!("# Fig. 1 over real corpus directory: {dir}");
        std::fs::read_dir(dir)
            // steelcheck: allow(panic-reachable): dies before any sweep starts, with a clear message
            .expect("readable corpus directory")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().map(|x| x == "txt").unwrap_or(false))
            .filter_map(|e| std::fs::read_to_string(e.path()).ok())
            .collect()
    } else {
        println!("# Fig. 1 over the calibrated synthetic corpus (seed {FIGURE_SEED:#x})");
        generate(160, FIGURE_SEED)
            .into_iter()
            .map(|p| p.text)
            .collect()
    };

    // Contiguous document chunks, one per worker; group counts merge by
    // summing the measured column.
    let n_chunks = jobs.min(texts.len()).max(1);
    let chunk_size = texts.len().div_ceil(n_chunks).max(1);
    let chunks: Vec<&[String]> = texts.chunks(chunk_size).collect();
    let mut partials = steelpar::run(jobs, chunks, |chunk| {
        analyze(chunk.iter().map(|s| s.as_str()))
    })
    .into_iter();
    let mut counts = partials
        .next()
        .unwrap_or_else(|| analyze(std::iter::empty()));
    for partial in partials {
        for (acc, p) in counts.iter_mut().zip(partial) {
            acc.measured += p.measured;
        }
    }

    let bars: Vec<(String, u64, u64)> = counts
        .iter()
        .map(|c| (c.label.to_string(), c.measured, c.published))
        .collect();
    println!(
        "{}",
        format_bars(
            "Fig. 1 — occurrences (with permutations) in proceedings corpus",
            &bars
        )
    );

    let (ot, min_it) = research_gap(&counts);
    println!("# research gap: {ot} total OT-side mentions vs {min_it} for the rarest IT term");
    check("all 13 groups measured", counts.len() == 13);
    check(
        "synthetic corpus matches published counts",
        args.first().is_some() || counts.iter().all(|c| c.measured == c.published),
    );
    check("gap exceeds 25x", min_it > 25 * ot.max(1));
}
