//! Regenerate **Fig. 1**: industrial-networking term occurrences in
//! recent SIGCOMM/HotNets proceedings.
//!
//! The real proceedings are copyrighted; by default the analyzer runs
//! over the calibrated synthetic corpus described by the committed
//! `specs/fig1.json` scenario spec (pass a different `.json` spec as
//! the first argument to change the corpus size or seed). Pass a
//! *directory* of `.txt` files as the first argument to analyze a real
//! corpus instead.
//!
//! Corpus *generation* threads one RNG through every paper and stays
//! sequential; *analysis* is a sum of per-document term counts, so it
//! chunks the corpus across a `steelpar` worker pool (`--jobs N` /
//! `STEELWORKS_JOBS`) and merges by addition — the totals are identical
//! for any partition, so the output is byte-identical at any job count.

use std::path::Path;
use steelserve::figures::{fig1_corpus_report, run_spec};

/// The committed default spec (regenerates `results/fig1.txt`).
const DEFAULT_SPEC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig1.json");

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = steelpar::resolve_jobs(steelpar::take_jobs_arg(&mut args));
    match args.first() {
        Some(dir) if Path::new(dir).is_dir() => {
            println!("# Fig. 1 over real corpus directory: {dir}");
            let texts: Vec<String> = std::fs::read_dir(dir)
                // steelcheck: allow(panic-reachable): dies before any sweep starts, with a clear message
                .expect("readable corpus directory")
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().map(|x| x == "txt").unwrap_or(false))
                .filter_map(|e| std::fs::read_to_string(e.path()).ok())
                .collect();
            print!("{}", fig1_corpus_report(&texts, true, jobs));
        }
        arg => {
            let path = arg.map(String::as_str).unwrap_or(DEFAULT_SPEC);
            let spec = steelworks_bench::load_spec(path, "fig1");
            print!("{}", run_spec(&spec, jobs));
        }
    }
}
