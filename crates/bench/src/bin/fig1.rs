//! Regenerate **Fig. 1**: industrial-networking term occurrences in
//! recent SIGCOMM/HotNets proceedings.
//!
//! The real proceedings are copyrighted; the analyzer runs over the
//! calibrated synthetic corpus (see `steelworks-corpus::synth`). Pass a
//! directory of `.txt` files as the first argument to analyze a real
//! corpus instead.

use steelworks_bench::{check, FIGURE_SEED};
use steelworks_core::prelude::format_bars;
use steelworks_corpus::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let texts: Vec<String> = if let Some(dir) = args.get(1) {
        println!("# Fig. 1 over real corpus directory: {dir}");
        std::fs::read_dir(dir)
            .expect("readable corpus directory")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().map(|x| x == "txt").unwrap_or(false))
            .filter_map(|e| std::fs::read_to_string(e.path()).ok())
            .collect()
    } else {
        println!("# Fig. 1 over the calibrated synthetic corpus (seed {FIGURE_SEED:#x})");
        generate(160, FIGURE_SEED)
            .into_iter()
            .map(|p| p.text)
            .collect()
    };

    let counts = analyze(texts.iter().map(|s| s.as_str()));
    let bars: Vec<(String, u64, u64)> = counts
        .iter()
        .map(|c| (c.label.to_string(), c.measured, c.published))
        .collect();
    println!(
        "{}",
        format_bars(
            "Fig. 1 — occurrences (with permutations) in proceedings corpus",
            &bars
        )
    );

    let (ot, min_it) = research_gap(&counts);
    println!("# research gap: {ot} total OT-side mentions vs {min_it} for the rarest IT term");
    check("all 13 groups measured", counts.len() == 13);
    check(
        "synthetic corpus matches published counts",
        args.get(1).is_some() || counts.iter().all(|c| c.measured == c.published),
    );
    check("gap exceeds 25x", min_it > 25 * ot.max(1));
}
