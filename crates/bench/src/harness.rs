//! A small self-contained benchmark harness.
//!
//! Replaces Criterion so the workspace builds offline with zero
//! external crates. Deliberately minimal: per benchmark it runs a
//! warmup, then takes N wall-clock samples over `Instant`, and reports
//! median / p95 / mean / min / max. Results print as aligned
//! human-readable rows plus one machine-readable JSON array (the
//! `BENCH_*.json` trajectory format), optionally written to the path
//! in the `BENCH_JSON` environment variable.
//!
//! Bench names are kept identical to the former Criterion
//! `group/function[/input]` ids so historical trajectories stay
//! comparable.

use std::hint::black_box;
use std::time::Instant;
use steelworks_netsim::stats::{fmt_ns, quantile_sorted};

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchStats {
    /// `group/function[/input]` id.
    pub name: String,
    /// Samples taken (after warmup).
    pub samples: usize,
    /// Inner iterations per sample (timing is divided by this).
    pub inner_iters: u32,
    /// Median ns/iter.
    pub median_ns: f64,
    /// 95th-percentile ns/iter.
    pub p95_ns: f64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Fastest sample ns/iter.
    pub min_ns: f64,
    /// Slowest sample ns/iter.
    pub max_ns: f64,
}

impl BenchStats {
    /// One JSON object, flat keys, no external serializer needed.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"samples\":{},\"inner_iters\":{},\"median_ns\":{:.1},\"p95_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1}}}",
            self.name, self.samples, self.inner_iters, self.median_ns, self.p95_ns, self.mean_ns, self.min_ns, self.max_ns
        )
    }
}

/// Collects benchmarks for one harness binary.
#[derive(Debug)]
pub struct Harness {
    title: &'static str,
    warmup: usize,
    samples: usize,
    filter: Option<String>,
    results: Vec<BenchStats>,
}

impl Harness {
    /// New harness with default warmup (3) and sample (30) counts.
    pub fn new(title: &'static str) -> Harness {
        println!("# bench harness: {title}");
        println!(
            "# {:<44} {:>12} {:>12} {:>12}",
            "name", "median", "p95", "mean"
        );
        Harness {
            title,
            warmup: 3,
            samples: 30,
            filter: None,
            results: Vec::new(),
        }
    }

    /// Override the per-bench sample count (builder style).
    pub fn samples(mut self, n: usize) -> Harness {
        self.samples = n.max(1);
        self
    }

    /// Only run benchmarks whose name contains `substr` (builder
    /// style). While a filter is active `finish()` refuses to write
    /// `$BENCH_JSON`, so a partial run can never clobber the recorded
    /// trajectory with a subset of its rows.
    pub fn filter(mut self, substr: Option<String>) -> Harness {
        self.filter = substr;
        self
    }

    /// Time `f`, one invocation per sample.
    pub fn bench<T>(&mut self, name: impl Into<String>, f: impl FnMut() -> T) {
        self.bench_inner(name, 1, f)
    }

    /// Time `f` with `inner` invocations per sample — use for
    /// sub-microsecond bodies where a single call is below timer
    /// resolution.
    pub fn bench_inner<T>(&mut self, name: impl Into<String>, inner: u32, mut f: impl FnMut() -> T) {
        let name = name.into();
        if let Some(fil) = &self.filter {
            if !name.contains(fil.as_str()) {
                return;
            }
        }
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / inner as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        // Nearest-rank on the sorted samples, via the shared helper so
        // the convention can never drift from other timing reports.
        let q = |p: f64| quantile_sorted(&per_iter_ns, p).unwrap_or(0.0);
        let stats = BenchStats {
            name: name.clone(),
            samples: per_iter_ns.len(),
            inner_iters: inner,
            median_ns: q(0.5),
            p95_ns: q(0.95),
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            min_ns: q(0.0),
            max_ns: q(1.0),
        };
        println!(
            "  {:<44} {:>12} {:>12} {:>12}",
            stats.name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            fmt_ns(stats.mean_ns)
        );
        self.results.push(stats);
    }

    /// Print the JSON trajectory (and write it to `$BENCH_JSON` when
    /// set). Call once at the end of `main`.
    pub fn finish(self) {
        let json = format!(
            "[{}]",
            self.results
                .iter()
                .map(BenchStats::to_json)
                .collect::<Vec<_>>()
                .join(",")
        );
        println!("# BENCH_JSON {json}");
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if self.filter.is_some() {
                eprintln!(
                    "# bench harness {}: --filter active, not writing {path}",
                    self.title
                );
            } else if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("# bench harness {}: cannot write {path}: {e}", self.title);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_ordering_and_json() {
        let mut h = Harness::new("selftest").samples(16);
        let mut x = 0u64;
        h.bench_inner("group/fn", 8, || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        let s = &h.results[0];
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns && s.p95_ns <= s.max_ns);
        assert_eq!(s.samples, 16);
        let j = s.to_json();
        assert!(j.starts_with("{\"name\":\"group/fn\""));
        assert!(j.contains("\"median_ns\":"));
    }
}
