//! # steelworks-bench
//!
//! Figure regeneration and performance benchmarks.
//!
//! One binary per paper figure prints the same rows/series the paper
//! plots (`cargo run --release -p steelworks-bench --bin fig4`), plus a
//! `challenges` binary reproducing the §2 quantitative claims. The
//! [`harness`]-based benches (`cargo bench -p steelworks-bench`)
//! measure the substrates themselves (and the ablations DESIGN.md
//! calls out) with zero external crates.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod harness;

/// Standard seed used by all figure binaries so published outputs are
/// exactly reproducible.
pub const FIGURE_SEED: u64 = 0x57EE1;

/// Shape assertion helper used by figure binaries: warn loudly (but do
/// not crash a report run) when a reproduction invariant fails.
pub fn check(label: &str, ok: bool) {
    if ok {
        println!("# CHECK ok   : {label}");
    } else {
        println!("# CHECK FAIL : {label}");
    }
}
