//! # steelworks-bench
//!
//! Figure regeneration and performance benchmarks.
//!
//! One binary per paper figure prints the same rows/series the paper
//! plots (`cargo run --release -p steelworks-bench --bin fig4`), plus a
//! `challenges` binary reproducing the §2 quantitative claims. The
//! [`harness`]-based benches (`cargo bench -p steelworks-bench`)
//! measure the substrates themselves (and the ablations DESIGN.md
//! calls out) with zero external crates.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod harness;

/// Standard seed used by all figure binaries so published outputs are
/// exactly reproducible.
pub const FIGURE_SEED: u64 = 0x57EE1;

/// Shape assertion helper used by figure binaries: warn loudly (but do
/// not crash a report run) when a reproduction invariant fails.
pub fn check(label: &str, ok: bool) {
    if ok {
        println!("# CHECK ok   : {label}");
    } else {
        println!("# CHECK FAIL : {label}");
    }
}

/// Load and validate the scenario spec a figure binary was pointed at
/// (default: the committed `specs/<figure>.json`). Dies loudly on a
/// missing file, a parse error, or a spec for a different figure —
/// nothing has been simulated yet, so a crash is the right report.
pub fn load_spec(path: &str, figure: &str) -> steelserve::spec::Spec {
    let text = std::fs::read_to_string(path)
        // steelcheck: allow(panic-reachable): dies before any simulation starts, with a clear message
        .unwrap_or_else(|e| panic!("read spec {path}: {e}"));
    let spec = steelserve::spec::Spec::parse(&text)
        // steelcheck: allow(panic-reachable): dies before any simulation starts, with a clear message
        .unwrap_or_else(|e| panic!("{path}: {e}"));
    if spec.figure() != figure {
        // steelcheck: allow(panic-reachable): dies before any simulation starts, with a clear message
        panic!(
            "{path} is a `{}` spec, but this binary renders `{figure}`",
            spec.figure()
        );
    }
    spec
}
