//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! ring-buffer cost and kernel noise profile (Fig. 4's drivers), tap
//! precision vs PTP (the measurement-method argument), and the
//! watchdog/switchover margin (InstaPLC's safety budget).
//!
//! These are correctness-bearing parameter sweeps wrapped in the
//! in-repo bench harness so they run under `cargo bench` and their
//! outputs land in the bench report; each iteration asserts the
//! ablation's expected direction.

use steelworks_bench::harness::Harness;
use steelworks_core::prelude::*;
use steelworks_netsim::prelude::*;
use steelworks_rtnet::prelude::{measurement_errors, PtpClient, PtpConfig};
use steelworks_xdpsim::prelude::*;

/// Ablation 1: zeroing the ring-buffer wakeup penalty collapses the
/// TS-RB vs Base separation — proving the separation is driven by the
/// modelled consumer wakeup, not by instruction count.
fn ablation_ringbuf_cost(h: &mut Harness) {
    h.bench("ablation_ebpf/ringbuf_penalty_on_vs_off", || {
        let run_with = |profile: HostProfile| {
            let mut out = run_reflection(&ReflectionConfig {
                variant: ReflectVariant::TsRb,
                cycles: 300,
                profile,
                seed: 5,
                ..ReflectionConfig::default()
            });
            out.median_delay_us()
        };
        let with = run_with(HostProfile::preempt_rt());
        let without = run_with(HostProfile {
            ringbuf_wakeup_mu: 0.0_f64.max(f64::MIN_POSITIVE).ln(),
            ringbuf_wakeup_sigma: 0.0,
            ..HostProfile::preempt_rt()
        });
        assert!(
            with > without + 2.0,
            "wakeup penalty drives the RB separation: {with} vs {without}"
        );
        (with, without)
    });
    h.bench("ablation_ebpf/preempt_rt_vs_vanilla_jitter", || {
        let p99 = |profile: HostProfile| {
            let mut out = run_reflection(&ReflectionConfig {
                variant: ReflectVariant::Ts,
                cycles: 400,
                profile,
                seed: 6,
                ..ReflectionConfig::default()
            });
            out.p99_jitter_ns()
        };
        let rt = p99(HostProfile::preempt_rt());
        let vanilla = p99(HostProfile::vanilla());
        assert!(
            vanilla > rt,
            "vanilla kernel must be noisier: {vanilla} vs {rt}"
        );
        (rt, vanilla)
    });
}

/// Ablation 2: tap precision sweep + tap-vs-PTP error. Degrading the
/// tap clock to µs-class quantization destroys the nanosecond jitter
/// visibility the method exists for.
fn ablation_tap_vs_ptp(h: &mut Harness) {
    h.bench("ablation_tap/tap_precision_sweep", || {
        let p99_at = |precision: NanoDur| {
            let mut out = run_reflection(&ReflectionConfig {
                variant: ReflectVariant::Ts,
                cycles: 300,
                tap_precision: precision,
                seed: 7,
                ..ReflectionConfig::default()
            });
            out.p99_jitter_ns()
        };
        let fine = p99_at(NanoDur(8));
        let coarse = p99_at(NanoDur(1_000));
        // A 1 µs tap rounds sub-µs jitter into 1 µs steps: the
        // measured p99 becomes a multiple of the quantum.
        assert_eq!(coarse as u64 % 1_000, 0);
        (fine, coarse)
    });
    h.bench("ablation_tap/one_clock_vs_two_clock_error", || {
        let mut a = PtpClient::new(PtpConfig::default());
        let mut bb = PtpClient::new(PtpConfig {
            path_asymmetry: NanoDur(320),
            ..PtpConfig::default()
        });
        let mut rng = SimRng::seed_from_u64(8);
        let (tap_err, ptp_err) =
            measurement_errors(NanoDur(8), &mut a, &mut bb, Nanos::from_secs(30), &mut rng);
        assert!(ptp_err > 5.0 * tap_err);
        (tap_err, ptp_err)
    });
}

/// Ablation 3: the switchover margin. With the threshold under the
/// device watchdog the I/O never halts; pushed past it, the watchdog
/// fires first and production stops — quantifying InstaPLC's budget.
fn ablation_watchdog(h: &mut Harness) {
    h.bench("ablation_watchdog/switchover_margin", || {
        let run_with = |switchover_cycles: u32| {
            run_scenario(&ScenarioConfig {
                switchover_cycles,
                crash_at: Nanos::from_millis(300),
                duration: Nanos::from_millis(900),
                ..ScenarioConfig::default()
            })
        };
        // Margin inside the watchdog: seamless.
        let safe = run_with(2);
        assert_eq!(safe.io_safe_entries, 0);
        // Threshold beyond the watchdog (factor 3): the device
        // halts before the switch reacts.
        let late = run_with(6);
        assert!(late.io_safe_entries >= 1);
        (safe.io_received, late.io_received)
    });
}

fn main() {
    let mut h = Harness::new("ablations").samples(10);
    ablation_ringbuf_cost(&mut h);
    ablation_tap_vs_ptp(&mut h);
    ablation_watchdog(&mut h);
    h.finish();
}
