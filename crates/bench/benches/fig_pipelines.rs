//! Benchmarks of the four figure pipelines — one benchmark per
//! table/figure, measuring the cost of regenerating it at reduced
//! scale (absolute regeneration happens in the `fig*` binaries).

use steelworks_bench::harness::Harness;
use steelworks_core::prelude::*;
use steelworks_corpus::prelude::{analyze, generate};
use steelworks_mlnet::prelude::MlApp;
use steelworks_netsim::time::Nanos;
use steelworks_xdpsim::prelude::ReflectVariant;

fn bench_fig1(h: &mut Harness) {
    let corpus = generate(40, 7);
    let texts: Vec<&str> = corpus.iter().map(|p| p.text.as_str()).collect();
    h.bench("fig1/analyze_40_papers", || analyze(texts.iter().copied()));
}

fn bench_fig4(h: &mut Harness) {
    for variant in [ReflectVariant::Base, ReflectVariant::TsRb] {
        h.bench(format!("fig4/reflection_500_cycles/{}", variant.name()), || {
            run_reflection(&ReflectionConfig {
                variant,
                cycles: 500,
                seed: 1,
                ..ReflectionConfig::default()
            })
        });
    }
    h.bench("fig4/reflection_25_flows_200_cycles", || {
        run_reflection(&ReflectionConfig {
            variant: ReflectVariant::Ts,
            flows: 25,
            cycles: 200,
            seed: 1,
            ..ReflectionConfig::default()
        })
    });
}

fn bench_fig5(h: &mut Harness) {
    h.bench("fig5/instaplc_scenario_1s", || {
        run_scenario(&ScenarioConfig {
            crash_at: Nanos::from_millis(400),
            duration: Nanos::from_secs(1),
            ..ScenarioConfig::default()
        })
    });
}

fn bench_fig6(h: &mut Harness) {
    let cfg = StudyConfig::default();
    for kind in TopologyKind::ALL {
        h.bench(format!("fig6/evaluate_point_256/{}", kind.name()), || {
            evaluate_point(kind, MlApp::DefectDetection, 256, &cfg)
        });
    }
    h.bench("fig6/full_sweep", || fig6(&cfg));
}

fn main() {
    let mut h = Harness::new("fig_pipelines").samples(10);
    bench_fig1(&mut h);
    bench_fig4(&mut h);
    bench_fig5(&mut h);
    bench_fig6(&mut h);
    h.finish();
}
