//! Criterion benchmarks of the four figure pipelines — one benchmark
//! per table/figure, measuring the cost of regenerating it at reduced
//! scale (absolute regeneration happens in the `fig*` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use steelworks_core::prelude::*;
use steelworks_corpus::prelude::{analyze, generate};
use steelworks_mlnet::prelude::MlApp;
use steelworks_netsim::time::Nanos;
use steelworks_xdpsim::prelude::ReflectVariant;

fn bench_fig1(c: &mut Criterion) {
    let corpus = generate(40, 7);
    let texts: Vec<&str> = corpus.iter().map(|p| p.text.as_str()).collect();
    c.bench_function("fig1/analyze_40_papers", |b| {
        b.iter(|| analyze(texts.iter().copied()))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for variant in [ReflectVariant::Base, ReflectVariant::TsRb] {
        g.bench_with_input(
            BenchmarkId::new("reflection_500_cycles", variant.name()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    run_reflection(&ReflectionConfig {
                        variant,
                        cycles: 500,
                        seed: 1,
                        ..ReflectionConfig::default()
                    })
                })
            },
        );
    }
    g.bench_function("reflection_25_flows_200_cycles", |b| {
        b.iter(|| {
            run_reflection(&ReflectionConfig {
                variant: ReflectVariant::Ts,
                flows: 25,
                cycles: 200,
                seed: 1,
                ..ReflectionConfig::default()
            })
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("instaplc_scenario_1s", |b| {
        b.iter(|| {
            run_scenario(&ScenarioConfig {
                crash_at: Nanos::from_millis(400),
                duration: Nanos::from_secs(1),
                ..ScenarioConfig::default()
            })
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    let cfg = StudyConfig::default();
    for kind in TopologyKind::ALL {
        g.bench_with_input(
            BenchmarkId::new("evaluate_point_256", kind.name()),
            &kind,
            |b, &kind| b.iter(|| evaluate_point(kind, MlApp::DefectDetection, 256, &cfg)),
        );
    }
    g.bench_function("full_sweep", |b| b.iter(|| fig6(&cfg)));
    g.finish();
}

criterion_group!(figs, bench_fig1, bench_fig4, bench_fig5, bench_fig6);
criterion_main!(figs);
