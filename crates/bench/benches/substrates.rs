//! Microbenchmarks of the substrates themselves: event-loop
//! throughput, eBPF interpretation, verification, pipeline processing,
//! routing and schedule synthesis.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use steelworks_dataplane::prelude::*;
use steelworks_netsim::prelude::*;
use steelworks_rtnet::prelude::{schedule, EgressId, FlowSpec};
use steelworks_topo::prelude::{leaf_spine, shortest_path, EdgeAttr, HopWeight};
use steelworks_xdpsim::prelude::*;

fn bench_event_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("deliver_10k_frames_direct_link", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(1);
            let src = sim.add_node(
                PeriodicSource::new(
                    "src",
                    MacAddr::local(1),
                    MacAddr::local(2),
                    46,
                    NanoDur::from_micros(1),
                )
                .with_limit(10_000),
            );
            let dst = sim.add_node(CounterSink::new("dst"));
            sim.connect(src, PortId(0), dst, PortId(0), LinkSpec::gigabit());
            sim.run_to_quiescence();
            assert_eq!(sim.trace().counters().delivered, 10_000);
        })
    });
    g.bench_function("deliver_10k_frames_through_switch", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(1);
            let src = sim.add_node(
                PeriodicSource::new(
                    "src",
                    MacAddr::local(1),
                    MacAddr::local(2),
                    46,
                    NanoDur::from_micros(1),
                )
                .with_limit(10_000),
            );
            let dst = sim.add_node(CounterSink::new("dst"));
            let sw = sim.add_node({
                let mut s = LearningSwitch::eight_port("sw");
                s.learn_static(MacAddr::local(2), PortId(1));
                s
            });
            sim.connect(src, PortId(0), sw, PortId(0), LinkSpec::gigabit());
            sim.connect(dst, PortId(0), sw, PortId(1), LinkSpec::gigabit());
            sim.run_to_quiescence();
        })
    });
    g.finish();
}

fn bench_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("xdpsim");
    let (mut maps, rb) = standard_maps();
    let base = reflect_variant(ReflectVariant::Base, rb);
    let rbv = reflect_variant(ReflectVariant::TsRb, rb);
    let cm = CostModel::default();
    let mut rng = SimRng::seed_from_u64(1);
    g.throughput(Throughput::Elements(1));
    g.bench_function("vm_run_base_reflect", |b| {
        let mut pkt = vec![0u8; 64];
        b.iter(|| {
            run(
                &base,
                &mut pkt,
                XdpContext::default(),
                &mut maps,
                &cm,
                0,
                0,
                &mut rng,
            )
        })
    });
    g.bench_function("vm_run_ts_rb_reflect", |b| {
        let mut pkt = vec![0u8; 64];
        b.iter(|| {
            let r = run(
                &rbv,
                &mut pkt,
                XdpContext::default(),
                &mut maps,
                &cm,
                0,
                0,
                &mut rng,
            );
            // Keep the ring from filling up.
            if r.ringbuf_events > 0 {
                maps.get_mut(rb).unwrap().ring_drain();
            }
        })
    });
    g.bench_function("verify_ts_d_rb", |b| {
        let prog = reflect_variant(ReflectVariant::TsDRb, rb);
        let (maps, _) = standard_maps();
        b.iter(|| verify(&prog, &maps).unwrap())
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataplane");
    let mut p = steelworks_core::instaplc::build_pipeline();
    // Install a representative cyclic entry.
    let t = p.table_mut("cyclic").unwrap();
    t.insert(Entry {
        keys: vec![TernaryKey::exact(0x8001), TernaryKey::exact(0)],
        priority: 0,
        action: ActionSpec::new(vec![
            Primitive::RegWrite {
                reg: 0,
                index: IndexSource::FromField(Field::RtFrameId),
                value: ValueSource::NowNs,
            },
            Primitive::Forward(PortId(2)),
        ]),
    });
    let frame = EthFrame::new(
        MacAddr::local(2),
        MacAddr::local(1),
        ethertype::INDUSTRIAL_RT,
        steelworks_rtnet::frame::RtPayload::CyclicData {
            frame_id: steelworks_rtnet::frame::FrameId(0x8001),
            cycle: 1,
            status: steelworks_rtnet::frame::DataStatus::running_primary(),
            data: bytes::Bytes::from_static(&[0; 8]),
        }
        .to_bytes(),
    );
    let fs = parse(&frame, PortId(0));
    g.throughput(Throughput::Elements(1));
    g.bench_function("instaplc_pipeline_cyclic_frame", |b| {
        b.iter(|| p.process(fs.clone(), PortId(0), Nanos(123), 4, 84, &frame.payload))
    });
    g.finish();
}

fn bench_topo(c: &mut Criterion) {
    let mut g = c.benchmark_group("topo");
    let built = leaf_spine(4, 16, 16, EdgeAttr::gigabit_local());
    g.bench_function("dijkstra_leaf_spine_256_clients", |b| {
        b.iter(|| {
            shortest_path(
                &built.graph,
                built.clients[0],
                built.clients[255],
                &HopWeight,
            )
            .unwrap()
        })
    });
    g.bench_function("tsn_schedule_8_flows", |b| {
        let flows: Vec<FlowSpec> = (0..8)
            .map(|i| FlowSpec {
                name: format!("f{i}"),
                period: NanoDur::from_millis(if i % 2 == 0 { 1 } else { 2 }),
                tx_time: NanoDur::from_micros(20),
                path: vec![
                    (EgressId(i % 3), NanoDur::ZERO),
                    (EgressId(3), NanoDur::from_micros(5)),
                ],
            })
            .collect();
        b.iter(|| schedule(&flows, NanoDur::from_micros(10)).unwrap())
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_event_loop,
    bench_vm,
    bench_pipeline,
    bench_topo
);
criterion_main!(substrates);
