//! Microbenchmarks of the substrates themselves: event-loop
//! throughput, eBPF interpretation, verification, pipeline processing,
//! routing and schedule synthesis.

use steelworks_bench::harness::Harness;
use steelworks_dataplane::prelude::*;
use steelworks_netsim::bytes::Bytes;
use steelworks_netsim::prelude::*;
use steelworks_rtnet::prelude::{schedule, EgressId, FlowSpec};
use steelworks_topo::prelude::{leaf_spine, shortest_path, EdgeAttr, HopWeight};
use steelworks_xdpsim::prelude::*;

fn bench_event_loop(h: &mut Harness) {
    h.bench("netsim/deliver_10k_frames_direct_link", || {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                46,
                NanoDur::from_micros(1),
            )
            .with_limit(10_000),
        );
        let dst = sim.add_node(CounterSink::new("dst"));
        sim.connect(src, PortId(0), dst, PortId(0), LinkSpec::gigabit());
        sim.run_to_quiescence();
        assert_eq!(sim.trace().counters().delivered, 10_000);
    });
    h.bench("netsim/deliver_10k_frames_through_switch", || {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                46,
                NanoDur::from_micros(1),
            )
            .with_limit(10_000),
        );
        let dst = sim.add_node(CounterSink::new("dst"));
        let sw = sim.add_node({
            let mut s = LearningSwitch::eight_port("sw");
            s.learn_static(MacAddr::local(2), PortId(1));
            s
        });
        sim.connect(src, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(dst, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.run_to_quiescence();
    });
}

fn bench_vm(h: &mut Harness) {
    let (mut maps, rb) = standard_maps();
    let base = reflect_variant(ReflectVariant::Base, rb);
    let rbv = reflect_variant(ReflectVariant::TsRb, rb);
    let cm = CostModel::default();
    let mut rng = SimRng::seed_from_u64(1);
    {
        let mut pkt = vec![0u8; 64];
        h.bench_inner("xdpsim/vm_run_base_reflect", 64, || {
            run(
                &base,
                &mut pkt,
                XdpContext::default(),
                &mut maps,
                &cm,
                0,
                0,
                &mut rng,
            )
        });
    }
    {
        let mut pkt = vec![0u8; 64];
        h.bench_inner("xdpsim/vm_run_ts_rb_reflect", 64, || {
            let r = run(
                &rbv,
                &mut pkt,
                XdpContext::default(),
                &mut maps,
                &cm,
                0,
                0,
                &mut rng,
            );
            // Keep the ring from filling up.
            if r.ringbuf_events > 0 {
                maps.get_mut(rb).unwrap().ring_drain();
            }
            r
        });
    }
    {
        let prog = reflect_variant(ReflectVariant::TsDRb, rb);
        let (maps, _) = standard_maps();
        h.bench_inner("xdpsim/verify_ts_d_rb", 16, || verify(&prog, &maps).unwrap());
    }
}

fn bench_pipeline(h: &mut Harness) {
    let mut p = steelworks_core::instaplc::build_pipeline();
    // Install a representative cyclic entry.
    let t = p.table_mut("cyclic").unwrap();
    t.insert(Entry {
        keys: vec![TernaryKey::exact(0x8001), TernaryKey::exact(0)],
        priority: 0,
        action: ActionSpec::new(vec![
            Primitive::RegWrite {
                reg: 0,
                index: IndexSource::FromField(Field::RtFrameId),
                value: ValueSource::NowNs,
            },
            Primitive::Forward(PortId(2)),
        ]),
    });
    let frame = EthFrame::new(
        MacAddr::local(2),
        MacAddr::local(1),
        ethertype::INDUSTRIAL_RT,
        steelworks_rtnet::frame::RtPayload::CyclicData {
            frame_id: steelworks_rtnet::frame::FrameId(0x8001),
            cycle: 1,
            status: steelworks_rtnet::frame::DataStatus::running_primary(),
            data: Bytes::from_static(&[0; 8]),
        }
        .to_bytes(),
    );
    let fs = parse(&frame, PortId(0));
    h.bench_inner("dataplane/instaplc_pipeline_cyclic_frame", 64, || {
        p.process(fs.clone(), PortId(0), Nanos(123), 4, 84, &frame.payload)
    });
}

fn bench_topo(h: &mut Harness) {
    let built = leaf_spine(4, 16, 16, EdgeAttr::gigabit_local());
    h.bench_inner("topo/dijkstra_leaf_spine_256_clients", 16, || {
        shortest_path(
            &built.graph,
            built.clients[0],
            built.clients[255],
            &HopWeight,
        )
        .unwrap()
    });
    let flows: Vec<FlowSpec> = (0..8)
        .map(|i| FlowSpec {
            name: format!("f{i}"),
            period: NanoDur::from_millis(if i % 2 == 0 { 1 } else { 2 }),
            tx_time: NanoDur::from_micros(20),
            path: vec![
                (EgressId(i % 3), NanoDur::ZERO),
                (EgressId(3), NanoDur::from_micros(5)),
            ],
        })
        .collect();
    h.bench("topo/tsn_schedule_8_flows", || {
        schedule(&flows, NanoDur::from_micros(10)).unwrap()
    });
}

fn main() {
    let mut h = Harness::new("substrates").samples(20);
    bench_event_loop(&mut h);
    bench_vm(&mut h);
    bench_pipeline(&mut h);
    bench_topo(&mut h);
    h.finish();
}
