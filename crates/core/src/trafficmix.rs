//! **The new traffic mix** (§2.3): deterministic never-ending
//! microflows meeting data-center flow taxonomy.
//!
//! Generates a synthetic converged-network flow population — classic DC
//! flows per the published size mix plus vPLC cyclic microflows — and
//! shows that the vPLC class is (a) reliably detectable from observable
//! features and (b) invisible to size-based classification alone.

use steelworks_netsim::rng::SimRng;
use steelworks_netsim::time::NanoDur;
use steelworks_topo::traffic::{classify, FlowClass, FlowFeatures};

/// Generator mix ratios for the DC side (counts, not bytes; mice
/// dominate flow counts in the measurement literature).
#[derive(Clone, Debug)]
pub struct MixConfig {
    /// Number of DC flows.
    pub dc_flows: usize,
    /// Number of vPLC cyclic flows.
    pub vplc_flows: usize,
    /// Fraction of DC flows that are mice.
    pub mice_fraction: f64,
    /// Fraction of DC flows that are elephants (rest: medium).
    pub elephant_fraction: f64,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            dc_flows: 1_000,
            vplc_flows: 50,
            mice_fraction: 0.8,
            elephant_fraction: 0.05,
        }
    }
}

/// A labelled synthetic flow.
#[derive(Clone, Debug)]
pub struct LabelledFlow {
    /// Ground truth.
    pub truth: FlowClass,
    /// Observable features.
    pub features: FlowFeatures,
}

/// Generate the mixed flow population.
pub fn generate(cfg: &MixConfig, seed: u64) -> Vec<LabelledFlow> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut flows = Vec::with_capacity(cfg.dc_flows + cfg.vplc_flows);
    for _ in 0..cfg.dc_flows {
        let r = rng.f64();
        let (truth, bytes, duration_ms) = if r < cfg.mice_fraction {
            // Mice: ≲10 KB, a handful of ms.
            (FlowClass::Mice, rng.range(200, 10_000), rng.range(1, 20))
        } else if r < cfg.mice_fraction + cfg.elephant_fraction {
            // Elephants: >1 GB, long.
            (
                FlowClass::Elephant,
                rng.range(1_000_000_000, 20_000_000_000),
                rng.range(10_000, 120_000),
            )
        } else {
            // Medium: ≈0.5 MB.
            (
                FlowClass::Medium,
                rng.range(100_000, 2_000_000),
                rng.range(20, 500),
            )
        };
        flows.push(LabelledFlow {
            truth,
            features: FlowFeatures {
                bytes,
                duration: NanoDur::from_millis(duration_ms),
                ongoing: false,
                gap_cv: 0.5 + rng.f64(), // bursty
                mean_payload: rng.range(200, 1460) as u32,
            },
        });
    }
    for _ in 0..cfg.vplc_flows {
        // Cyclic microflows: 20–250 B payloads, 0.5–10 ms cycles,
        // running since commissioning, near-zero gap variation.
        let cycle_us = rng.range(500, 10_000);
        let payload = rng.range(20, 251) as u32;
        let age_s = rng.range(3600, 30 * 24 * 3600);
        let frames = age_s * 1_000_000 / cycle_us;
        flows.push(LabelledFlow {
            truth: FlowClass::DeterministicMicroflow,
            features: FlowFeatures {
                bytes: frames * payload as u64,
                duration: NanoDur::from_secs(age_s),
                ongoing: true,
                gap_cv: rng.f64() * 0.02,
                mean_payload: payload,
            },
        });
    }
    flows
}

/// Classification report.
#[derive(Clone, Debug, Default)]
pub struct MixReport {
    /// Per-class (truth, predicted) counts on the diagonal.
    pub correct: usize,
    /// Total flows.
    pub total: usize,
    /// vPLC flows detected as such.
    pub microflows_found: usize,
    /// vPLC flows in truth.
    pub microflows_truth: usize,
    /// vPLC flows a size-only classifier would label elephant/medium.
    pub microflows_mislabelled_by_size: usize,
}

/// Run the feature classifier and the size-only strawman over a
/// population.
pub fn evaluate(flows: &[LabelledFlow]) -> MixReport {
    let mut report = MixReport {
        total: flows.len(),
        ..MixReport::default()
    };
    for f in flows {
        let predicted = classify(&f.features);
        if predicted == f.truth {
            report.correct += 1;
        }
        if f.truth == FlowClass::DeterministicMicroflow {
            report.microflows_truth += 1;
            if predicted == FlowClass::DeterministicMicroflow {
                report.microflows_found += 1;
            }
            // Size-only view: weeks of tiny frames look like bulk.
            let size_only = if f.features.bytes <= 10_000 {
                FlowClass::Mice
            } else if f.features.bytes <= 10_000_000 {
                FlowClass::Medium
            } else {
                FlowClass::Elephant
            };
            if size_only != FlowClass::Mice {
                report.microflows_mislabelled_by_size += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_microflows_detected() {
        let flows = generate(&MixConfig::default(), 1);
        let r = evaluate(&flows);
        assert_eq!(r.microflows_truth, 50);
        assert_eq!(r.microflows_found, 50, "feature classifier finds all");
    }

    #[test]
    fn size_only_misreads_the_new_class() {
        // §2.3's point: the class "blends characteristics" — by size it
        // masquerades as medium/elephant bulk.
        let flows = generate(&MixConfig::default(), 2);
        let r = evaluate(&flows);
        assert_eq!(
            r.microflows_mislabelled_by_size, r.microflows_truth,
            "every long-lived microflow is mis-sized as bulk"
        );
    }

    #[test]
    fn dc_flows_classified_correctly() {
        let flows = generate(
            &MixConfig {
                vplc_flows: 0,
                ..MixConfig::default()
            },
            3,
        );
        let r = evaluate(&flows);
        assert!(
            r.correct as f64 / r.total as f64 > 0.95,
            "{}/{}",
            r.correct,
            r.total
        );
    }

    #[test]
    fn mix_ratios_respected() {
        let flows = generate(&MixConfig::default(), 4);
        let mice = flows.iter().filter(|f| f.truth == FlowClass::Mice).count();
        assert!(
            (mice as f64 / 1000.0 - 0.8).abs() < 0.05,
            "mice fraction {mice}"
        );
    }

    #[test]
    fn deterministic() {
        let a = evaluate(&generate(&MixConfig::default(), 7));
        let b = evaluate(&generate(&MixConfig::default(), 7));
        assert_eq!(a.correct, b.correct);
    }
}
