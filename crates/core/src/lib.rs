//! # steelworks-core
//!
//! The paper's three contributions, implemented on the workspace's
//! substrates, plus the quantitative arguments of its challenge
//! sections:
//!
//! - [`traffic_reflection`] — §3's measurement method, regenerating
//!   Fig. 4 (eBPF/XDP delay and jitter CDFs).
//! - [`instaplc`] — §4's in-network vPLC high availability with a
//!   digital twin and data-plane switchover, regenerating Fig. 5.
//! - [`mlaware`] — §5's topology study for industrial ML inference,
//!   regenerating Fig. 6.
//! - [`availability`] — §2.2's nines/downtime arithmetic and the
//!   redundancy-scheme comparison.
//! - [`campus`] — the campus-scale scenario (ring of leaf-spine
//!   cells, 10²–10⁵ nodes) behind `fig_campus`, exercising the
//!   rearchitected netsim core at the scale the paper implies.
//! - [`trafficmix`] — §2.3's flow taxonomy and the detectability of
//!   the new deterministic-microflow class.
//! - [`report`] — plain-text rendering used by the figure binaries.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod availability;
pub mod campus;
pub mod instaplc;
pub mod mlaware;
pub mod report;
pub mod traffic_reflection;
pub mod trafficmix;

/// Convenient glob import.
pub mod prelude {
    pub use crate::availability::{
        availability_for_downtime, covered_downtime_per_year, downtime_per_year, estimate, nines,
        parallel, required_coverage_for_six_nines, series, Scheme, SchemeEstimate,
    };
    pub use crate::campus::{run_campus, CampusConfig, CampusResult, ClassStats, PathClass};
    pub use crate::instaplc::{
        build_pipeline, run_migration_scenario, run_scenario, InstaPlcController, ScenarioConfig,
        ScenarioResult,
    };
    pub use crate::mlaware::{evaluate_point, fig6, StudyConfig, StudyPoint, TopologyKind};
    pub use crate::report::{format_bars, format_cdf, format_series, format_table};
    pub use crate::traffic_reflection::{
        fig4_left, fig4_left_one, fig4_loop_one, fig4_right, fig4_right_one, run_reflection,
        ReflectionConfig, ReflectionOutcome,
    };
    pub use crate::trafficmix::{
        evaluate as evaluate_traffic_mix, generate as generate_traffic_mix, LabelledFlow,
        MixConfig, MixReport,
    };
}
