//! **Traffic Reflection** (§3): the paper's measurement method for
//! exposing hidden timing drift in eBPF/XDP packet processing.
//!
//! Topology (Fig. 3): one or more cyclic TSN senders → a passive
//! hardware tap → the XDP host running a reflection program. Every
//! frame is timestamped by the tap's single clock on the way in and —
//! because the program returns `XDP_TX` — again on the way out. The
//! difference is the full host-side delay (NIC RX, PCIe, program,
//! noise, NIC TX), free of any clock-synchronization error.

use steelworks_netsim::prelude::*;
use steelworks_rtnet::watchdog::JitterBurstTracker;
use steelworks_xdpsim::prelude::*;

/// Configuration of one reflection experiment.
#[derive(Clone, Debug)]
pub struct ReflectionConfig {
    /// Which program variant the host runs.
    pub variant: ReflectVariant,
    /// When set, run this bounded-loop program instead of `variant`
    /// (the corpus the interval verifier admits past straight-line XDP).
    pub loop_variant: Option<LoopVariant>,
    /// Number of concurrent cyclic RT flows.
    pub flows: u32,
    /// Cycles (frames) per flow.
    pub cycles: u64,
    /// Cycle time of each flow.
    pub cycle_time: NanoDur,
    /// RT payload bytes (paper: 20–50 B class).
    pub payload_len: usize,
    /// Host noise profile.
    pub profile: HostProfile,
    /// Tap timestamp precision.
    pub tap_precision: NanoDur,
    /// World seed.
    pub seed: u64,
}

impl Default for ReflectionConfig {
    fn default() -> Self {
        ReflectionConfig {
            variant: ReflectVariant::Base,
            loop_variant: None,
            flows: 1,
            cycles: 2_000,
            cycle_time: NanoDur::from_millis(1),
            payload_len: 50,
            profile: HostProfile::preempt_rt(),
            tap_precision: NanoDur(8),
            seed: 0xB0EF,
        }
    }
}

/// Measured outcome of one experiment.
#[derive(Debug)]
pub struct ReflectionOutcome {
    /// Per-frame delay (tap-out − tap-in), nanoseconds.
    pub delays: SampleSet,
    /// Consecutive-cycle jitter |delay_i − delay_{i−1}|, nanoseconds,
    /// computed per flow then pooled.
    pub jitters: SampleSet,
    /// Consecutive over-threshold jitter events per flow — the metric
    /// §2.1 faults existing evaluations for omitting: a burst at least
    /// as long as a device's watchdog factor is a production stop.
    /// Tracked against a 1 µs threshold; longest burst pooled over
    /// flows.
    pub max_jitter_burst: u32,
    /// Fraction of cycles whose jitter exceeded 1 µs.
    pub over_threshold_fraction: f64,
    /// XDP verdict counters.
    pub stats: XdpStats,
    /// Frames observed by the tap (both directions).
    pub tap_records: usize,
}

impl ReflectionOutcome {
    /// Median delay in microseconds.
    pub fn median_delay_us(&mut self) -> f64 {
        self.delays.median().unwrap_or(0.0) / 1_000.0
    }

    /// 99th-percentile jitter in nanoseconds.
    pub fn p99_jitter_ns(&mut self) -> f64 {
        self.jitters.quantile(0.99).unwrap_or(0.0)
    }

    /// Worst-case (max) delay in microseconds — the metric §2.1 says
    /// existing evaluations fail to report.
    pub fn worst_delay_us(&mut self) -> f64 {
        self.delays.max().unwrap_or(0.0) / 1_000.0
    }

    /// Would a device with this watchdog factor have halted during the
    /// measurement? (Burst of over-threshold cycles ≥ factor.)
    pub fn would_trip_watchdog(&self, factor: u8) -> bool {
        self.max_jitter_burst >= factor as u32
    }
}

/// MAC of the XDP reflector host.
fn host_mac() -> MacAddr {
    MacAddr::local(0x0100)
}

/// MAC of flow `i`'s sender.
fn flow_mac(i: u32) -> MacAddr {
    MacAddr::local(0x0200 + i as u16)
}

/// Run one Traffic Reflection experiment.
pub fn run_reflection(cfg: &ReflectionConfig) -> ReflectionOutcome {
    let mut sim = Simulator::new(cfg.seed);

    // The XDP host under test.
    let (maps, rb) = standard_maps();
    let prog = match cfg.loop_variant {
        Some(lv) => loop_variant(lv),
        None => reflect_variant(cfg.variant, rb),
    };
    let host = sim.add_node(
        // steelcheck: allow(unwrap-in-lib): the shipped reflection variants are verifier-tested in xdpsim
        XdpHost::new("xdp-host", prog, maps, cfg.profile.clone()).expect("shipped variants verify"),
    );

    // Senders share a switch in the multi-flow case so the host sees a
    // single ingress port, exactly like the paper's testbed NIC.
    let (tap_link, _switch) = if cfg.flows == 1 {
        let src = sim.add_node(
            PeriodicSource::new(
                "flow0",
                flow_mac(0),
                host_mac(),
                cfg.payload_len,
                cfg.cycle_time,
            )
            .with_limit(cfg.cycles),
        );
        let link = sim.connect(src, PortId(0), host, PortId(0), LinkSpec::gigabit());
        (link, None)
    } else {
        let sw = sim.add_node(LearningSwitch::new(
            "agg",
            SwitchConfig {
                ports: cfg.flows as usize + 1,
                forwarding_latency: NanoDur(1_000),
                queue_capacity: 1024,
            },
        ));
        for i in 0..cfg.flows {
            // Spread flow phases across the cycle so frames interleave
            // rather than synchronize (realistic independent devices).
            let phase = NanoDur(cfg.cycle_time.as_nanos() * i as u64 / cfg.flows as u64);
            let src = sim.add_node(
                PeriodicSource::new(
                    format!("flow{i}"),
                    flow_mac(i),
                    host_mac(),
                    cfg.payload_len,
                    cfg.cycle_time,
                )
                .with_limit(cfg.cycles)
                .with_start_offset(phase),
            );
            sim.connect(src, PortId(0), sw, PortId(i as usize), LinkSpec::gigabit());
        }
        let link = sim.connect(
            sw,
            PortId(cfg.flows as usize),
            host,
            PortId(0),
            LinkSpec::gigabit(),
        );
        (link, Some(sw))
    };

    let tap = sim.attach_tap(tap_link, Tap::new(0.5, cfg.tap_precision));

    // Run: all cycles plus drain time.
    let horizon = Nanos::ZERO + cfg.cycle_time * cfg.cycles + NanoDur::from_millis(50);
    sim.run_until(horizon);

    // Delay per frame, attributed to its flow by source MAC.
    let tap_ref = sim.tap(tap);
    let mut delays = SampleSet::new();
    let mut per_flow_delays: std::collections::BTreeMap<MacAddr, Vec<f64>> =
        std::collections::BTreeMap::new();
    {
        // Pair in/out by frame id, remembering the inbound source MAC.
        let mut inbound: std::collections::BTreeMap<
            steelworks_netsim::frame::FrameId,
            (Nanos, MacAddr),
        > = std::collections::BTreeMap::new();
        for r in tap_ref.records() {
            match r.dir {
                TapDir::AToB => {
                    inbound.entry(r.frame).or_insert((r.ts, r.src));
                }
                TapDir::BToA => {
                    if let Some((t_in, src)) = inbound.remove(&r.frame) {
                        // steelcheck: allow(float-hygiene): delay sample converted for the percentile report only
                        let d = r.ts.saturating_since(t_in).as_nanos() as f64;
                        delays.push(d);
                        per_flow_delays.entry(src).or_default().push(d);
                    }
                }
            }
        }
    }

    let mut jitters = SampleSet::new();
    let mut max_burst = 0u32;
    let mut over = 0u64;
    let mut total = 0u64;
    for (_, ds) in per_flow_delays {
        // Burst tracking over this flow's *delay deviations*: feed the
        // tracker synthetic arrivals at the nominal cycle plus each
        // frame's delay, so a run of delay swings > 1 µs registers as
        // consecutive jitter — the PROFINET watchdog's view.
        let mut tracker = JitterBurstTracker::new(cfg.cycle_time, NanoDur(1_000));
        for (i, d) in ds.iter().enumerate() {
            tracker.record(Nanos(cfg.cycle_time.as_nanos() * i as u64 + *d as u64));
        }
        tracker.finish();
        max_burst = max_burst.max(tracker.max_burst());
        over +=
            (tracker.over_threshold_fraction() * ds.len().saturating_sub(1) as f64).round() as u64;
        total += ds.len().saturating_sub(1) as u64;
        for w in ds.windows(2) {
            jitters.push((w[1] - w[0]).abs());
        }
    }

    ReflectionOutcome {
        delays,
        jitters,
        max_jitter_burst: max_burst,
        over_threshold_fraction: if total == 0 {
            0.0
        } else {
            over as f64 / total as f64
        },
        stats: sim.node_ref::<XdpHost>(host).stats(),
        tap_records: sim.tap(tap).records().len(),
    }
}

/// One Fig. 4 left-panel scenario: the delay CDF (µs) of a single
/// variant at the default flow count. Each call builds its own
/// simulator, so independent variants can run on separate workers.
pub fn fig4_left_one(variant: ReflectVariant, seed: u64, cycles: u64) -> (&'static str, Vec<(f64, f64)>) {
    let mut out = run_reflection(&ReflectionConfig {
        variant,
        cycles,
        seed,
        ..ReflectionConfig::default()
    });
    let cdf = out
        .delays
        .cdf(200)
        .into_iter()
        .map(|(ns, p)| (ns / 1_000.0, p)) // µs
        .collect();
    (variant.name(), cdf)
}

/// Fig. 4 (left): delay CDFs for all six variants, single flow.
pub fn fig4_left(seed: u64, cycles: u64) -> Vec<(&'static str, Vec<(f64, f64)>)> {
    ReflectVariant::ALL
        .iter()
        .map(|&variant| fig4_left_one(variant, seed, cycles))
        .collect()
}

/// One Fig. 4 loop-corpus scenario: the delay CDF (µs) of one
/// bounded-loop program at the default flow count — the program class
/// the interval verifier newly admits.
pub fn fig4_loop_one(lv: LoopVariant, seed: u64, cycles: u64) -> (&'static str, Vec<(f64, f64)>) {
    let mut out = run_reflection(&ReflectionConfig {
        loop_variant: Some(lv),
        cycles,
        seed,
        ..ReflectionConfig::default()
    });
    let cdf = out
        .delays
        .cdf(200)
        .into_iter()
        .map(|(ns, p)| (ns / 1_000.0, p)) // µs
        .collect();
    (lv.name(), cdf)
}

/// One Fig. 4 right-panel scenario: the TS variant at `flows`
/// concurrent flows, returning the full outcome so callers can derive
/// both the jitter CDF and the worst-case/burst metrics from one run.
pub fn fig4_right_one(flows: u32, seed: u64, cycles: u64) -> ReflectionOutcome {
    run_reflection(&ReflectionConfig {
        variant: ReflectVariant::Ts,
        flows,
        cycles,
        seed,
        ..ReflectionConfig::default()
    })
}

/// Fig. 4 (right): jitter CDFs for 1 vs 25 flows (TS variant, as the
/// representative measurement program).
pub fn fig4_right(seed: u64, cycles: u64) -> Vec<(u32, Vec<(f64, f64)>)> {
    [1u32, 25]
        .iter()
        .map(|&flows| {
            let mut out = fig4_right_one(flows, seed, cycles);
            (flows, out.jitters.cdf(200))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(variant: ReflectVariant, flows: u32) -> ReflectionOutcome {
        run_reflection(&ReflectionConfig {
            variant,
            flows,
            cycles: 300,
            seed: 1,
            ..ReflectionConfig::default()
        })
    }

    #[test]
    fn every_frame_reflected_and_measured() {
        let out = quick(ReflectVariant::Base, 1);
        assert_eq!(out.stats.runs, 300);
        assert_eq!(out.stats.tx, 300);
        assert_eq!(out.delays.len(), 300);
        assert_eq!(out.tap_records, 600);
    }

    #[test]
    fn delays_in_plausible_band() {
        let mut out = quick(ReflectVariant::Base, 1);
        let med = out.median_delay_us();
        // The paper's Fig. 4 x-axis runs ~8–20 µs.
        assert!(med > 4.0 && med < 20.0, "median = {med} µs");
    }

    #[test]
    fn ringbuf_variants_clearly_slower() {
        let mut base = quick(ReflectVariant::Base, 1);
        let mut ts = quick(ReflectVariant::Ts, 1);
        let mut rb = quick(ReflectVariant::TsRb, 1);
        let mut drb = quick(ReflectVariant::TsDRb, 1);
        let (b, t, r, d) = (
            base.median_delay_us(),
            ts.median_delay_us(),
            rb.median_delay_us(),
            drb.median_delay_us(),
        );
        assert!(t >= b, "TS {t} ≥ Base {b}");
        assert!(r > t + 2.0, "TS-RB {r} should sit µs above TS {t}");
        assert!(d > t + 2.0, "TS-D-RB {d} likewise");
    }

    #[test]
    fn multi_flow_inflates_jitter() {
        let mut one = quick(ReflectVariant::Ts, 1);
        let mut many = quick(ReflectVariant::Ts, 25);
        let j1 = one.p99_jitter_ns();
        let j25 = many.p99_jitter_ns();
        assert!(j25 > 1.5 * j1, "25-flow p99 jitter {j25} vs 1-flow {j1}");
    }

    #[test]
    fn multi_flow_all_flows_served() {
        let out = quick(ReflectVariant::Base, 5);
        // 5 flows × 300 cycles reflected.
        assert_eq!(out.stats.tx, 1500);
        assert_eq!(out.delays.len(), 1500);
    }

    #[test]
    fn burst_metric_reported() {
        // Single quiet flow: bursts should be rare/short under
        // PREEMPT_RT; a vanilla kernel produces longer runs.
        let rt = quick(ReflectVariant::Ts, 1);
        let vanilla = run_reflection(&ReflectionConfig {
            variant: ReflectVariant::Ts,
            cycles: 300,
            profile: steelworks_xdpsim::host::HostProfile::vanilla(),
            seed: 1,
            ..ReflectionConfig::default()
        });
        assert!(
            vanilla.over_threshold_fraction >= rt.over_threshold_fraction,
            "vanilla {} vs rt {}",
            vanilla.over_threshold_fraction,
            rt.over_threshold_fraction
        );
        // The RT host must not halt a watchdog-3 device in 300 cycles.
        assert!(!rt.would_trip_watchdog(3), "burst {}", rt.max_jitter_burst);
    }

    #[test]
    fn loop_corpus_reflects_every_frame() {
        for lv in LoopVariant::ALL {
            let out = run_reflection(&ReflectionConfig {
                loop_variant: Some(lv),
                cycles: 200,
                seed: 1,
                ..ReflectionConfig::default()
            });
            // 50 B payloads cover every loop window: all frames reflect.
            assert_eq!(out.stats.tx, 200, "{}", lv.name());
            assert_eq!(out.stats.aborted, 0, "{}", lv.name());
            assert_eq!(out.delays.len(), 200, "{}", lv.name());
        }
    }

    #[test]
    fn loop_programs_cost_more_than_base() {
        let mut base = quick(ReflectVariant::Base, 1);
        let mut scan = run_reflection(&ReflectionConfig {
            loop_variant: Some(LoopVariant::PayloadScan),
            cycles: 300,
            seed: 1,
            ..ReflectionConfig::default()
        });
        assert!(
            scan.median_delay_us() > base.median_delay_us(),
            "loop work must show up in the delay CDF: scan {} vs base {}",
            scan.median_delay_us(),
            base.median_delay_us()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = quick(ReflectVariant::TsOw, 1).delays.raw().to_vec();
        let b = quick(ReflectVariant::TsOw, 1).delays.raw().to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn tap_precision_quantizes_delays() {
        let out = run_reflection(&ReflectionConfig {
            tap_precision: NanoDur(100),
            cycles: 50,
            seed: 2,
            ..ReflectionConfig::default()
        });
        // Delays are differences of 100 ns-quantized stamps.
        for d in out.delays.raw() {
            assert_eq!((*d as u64) % 100, 0);
        }
    }

    #[test]
    fn fig4_shapes() {
        let left = fig4_left(3, 200);
        assert_eq!(left.len(), 6);
        for (name, cdf) in &left {
            assert!(!cdf.is_empty(), "{name}");
            assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
        let right = fig4_right(3, 200);
        assert_eq!(right.len(), 2);
        assert_eq!(right[0].0, 1);
        assert_eq!(right[1].0, 25);
    }
}
