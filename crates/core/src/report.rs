//! Plain-text rendering of experiment outputs: the figure binaries
//! print the same rows/series the paper plots.

/// Render a CDF as aligned `value  P(X<=x)` rows, downsampled.
pub fn format_cdf(title: &str, unit: &str, cdf: &[(f64, f64)], rows: usize) -> String {
    let mut out = format!("# {title}\n# {unit:>12}  P(X<=x)\n");
    if cdf.is_empty() {
        out.push_str("# (no data)\n");
        return out;
    }
    let step = (cdf.len() / rows.max(1)).max(1);
    for (i, (v, p)) in cdf.iter().enumerate() {
        if i % step == 0 || i == cdf.len() - 1 {
            out.push_str(&format!("{v:>14.3}  {p:.4}\n"));
        }
    }
    out
}

/// Render a binned time series as `t_ms  count` rows.
pub fn format_series(title: &str, bin_ms: f64, counts: &[u64]) -> String {
    let mut out = format!("# {title}\n#   t(ms)  count\n");
    for (i, c) in counts.iter().enumerate() {
        out.push_str(&format!("{:>8.0}  {c}\n", i as f64 * bin_ms));
    }
    out
}

/// Render a labelled bar list (Fig. 1 style).
pub fn format_bars(title: &str, bars: &[(String, u64, u64)]) -> String {
    let mut out = format!(
        "# {title}\n# {:<28} {:>9} {:>9}\n",
        "label", "measured", "paper"
    );
    for (label, measured, published) in bars {
        out.push_str(&format!("{label:<30} {measured:>9} {published:>9}\n"));
    }
    out
}

/// A simple aligned table.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = format!("# {title}\n");
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_formatting() {
        let cdf = vec![(1.0, 0.5), (2.0, 1.0)];
        let s = format_cdf("test", "us", &cdf, 10);
        assert!(s.contains("test"));
        assert!(s.contains("1.000"));
        assert!(s.contains("1.0000"));
    }

    #[test]
    fn empty_cdf_safe() {
        let s = format_cdf("t", "us", &[], 5);
        assert!(s.contains("no data"));
    }

    #[test]
    fn series_formatting() {
        let s = format_series("pkts", 50.0, &[33, 34, 0]);
        assert!(s.contains("100"));
        assert!(s.contains("33"));
    }

    #[test]
    fn table_aligns() {
        let s = format_table("t", &["a", "long-header"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].ends_with('2'));
    }
}
