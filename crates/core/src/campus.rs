//! Campus-scale scenario: a factory campus modelled as a ring of
//! leaf-spine cells, exercising the netsim core at 10²–10⁵ nodes.
//!
//! The paper's premise — steel mills operated like data centers —
//! implies campus scale: thousands of vPLCs and endpoints behind a
//! hierarchical industrial network, not the handful of devices earlier
//! figures simulate. This module builds that campus:
//!
//! - `cells` production cells, their spine layers joined in a campus
//!   backbone ring (the classic OT resilience shape at the top);
//! - each cell a leaf-spine pod: 2 spines, `leaves_per_cell` leaf
//!   switches, `endpoints_per_leaf` endpoints per leaf (the IT fabric
//!   shape within a cell);
//! - even endpoints are cyclic sources, odd endpoints sinks, in three
//!   deterministic flow classes: **local** (same leaf, one switch),
//!   **cell** (next leaf via spine 1, three switches), **ring** (same
//!   leaf position in the next cell via spine 0 and one backbone hop,
//!   four switches).
//!
//! Commissioned industrial networks are static, so every switch FDB is
//! pre-seeded along each flow's path — no flooding, which also keeps
//! the backbone ring loop-safe without spanning tree. All scheduling is
//! phase-staggered and fully deterministic: the same config produces a
//! bit-identical run on every platform and at any `--jobs` count.

use steelworks_netsim::prelude::*;

/// Flow classes by path length through the campus.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum PathClass {
    /// Same leaf: endpoint → leaf → endpoint.
    Local,
    /// Next leaf in the same cell, via spine 1.
    Cell,
    /// Same position in the next cell, via spine 0 and one ring hop.
    Ring,
}

impl PathClass {
    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            PathClass::Local => "local",
            PathClass::Cell => "cell",
            PathClass::Ring => "ring",
        }
    }
}

/// Campus shape and traffic parameters.
#[derive(Clone, Debug)]
pub struct CampusConfig {
    /// Production cells on the backbone ring (≥ 2).
    pub cells: usize,
    /// Leaf switches per cell (≥ 2).
    pub leaves_per_cell: usize,
    /// Endpoints per leaf (even, ≥ 8).
    pub endpoints_per_leaf: usize,
    /// Cyclic send period of every source.
    pub period: NanoDur,
    /// Frames each source emits.
    pub cycles: u64,
    /// World seed.
    pub seed: u64,
}

/// Spines per cell: spine 0 carries inter-cell (ring) traffic, spine 1
/// intra-cell cross-leaf traffic.
const SPINES_PER_CELL: usize = 2;
/// Phase stride between consecutive sources' first frames, taken
/// modulo the period. A prime stride co-prime to both periods (100 µs
/// and 1 ms) scatters phases uniformly across the whole period instead
/// of packing each cell's sources into a narrow burst — the commissioned
/// load is then smooth at every spine and no egress queue builds up.
/// Phases stay pairwise unique as long as the source count is below the
/// period in nanoseconds (50k sources < 100 000 at the smallest period).
const STAGGER: NanoDur = NanoDur(9973);

impl CampusConfig {
    /// Smoke-test scale: 2 cells × 2 leaves × 8 endpoints (40 nodes).
    pub fn small() -> Self {
        CampusConfig {
            cells: 2,
            leaves_per_cell: 2,
            endpoints_per_leaf: 8,
            period: NanoDur::from_micros(100),
            cycles: 20,
            seed: 0xCA1,
        }
    }

    /// Mid scale: 8 cells × 8 leaves × 156 endpoints (~10k nodes).
    pub fn mid() -> Self {
        CampusConfig {
            cells: 8,
            leaves_per_cell: 8,
            endpoints_per_leaf: 156,
            period: NanoDur::from_millis(1),
            cycles: 10,
            seed: 0xCA2,
        }
    }

    /// Campus scale: 16 cells × 16 leaves × 392 endpoints (>100k nodes).
    pub fn large() -> Self {
        CampusConfig {
            cells: 16,
            leaves_per_cell: 16,
            endpoints_per_leaf: 392,
            period: NanoDur::from_millis(1),
            cycles: 10,
            seed: 0xCA3,
        }
    }

    /// Total simulated nodes (endpoints + leaves + spines).
    pub fn node_count(&self) -> usize {
        self.cells * (SPINES_PER_CELL + self.leaves_per_cell * (1 + self.endpoints_per_leaf))
    }

    fn validate(&self) {
        assert!(self.cells >= 2, "backbone ring needs at least 2 cells");
        assert!(self.leaves_per_cell >= 2, "cell traffic needs at least 2 leaves");
        assert!(
            self.endpoints_per_leaf >= 8 && self.endpoints_per_leaf % 2 == 0,
            "endpoints per leaf must be even and >= 8 to populate all flow classes"
        );
    }
}

/// Locally-administered unicast MAC for an endpoint; `MacAddr::local`
/// only spans a `u16`, far too small for a campus.
fn campus_mac(cell: usize, leaf: usize, ep: usize) -> MacAddr {
    MacAddr([
        0x02,
        0xC5,
        cell as u8,
        leaf as u8,
        (ep >> 8) as u8,
        ep as u8,
    ])
}

/// Per-class delivery and latency aggregate.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassStats {
    /// Flows in this class.
    pub flows: u64,
    /// Frames received across all flows.
    pub received: u64,
    /// Smallest end-to-end latency observed, ns.
    pub min_latency_ns: u64,
    /// Largest end-to-end latency observed, ns.
    pub max_latency_ns: u64,
}

/// Outcome of one campus run.
#[derive(Clone, Debug)]
pub struct CampusResult {
    /// Simulated nodes.
    pub nodes: usize,
    /// Simulated links.
    pub links: usize,
    /// Sources in the world.
    pub sources: u64,
    /// Frames emitted by all sources.
    pub frames_sent: u64,
    /// Frames absorbed by all sinks.
    pub frames_received: u64,
    /// Per-class stats, indexed Local/Cell/Ring.
    pub classes: [ClassStats; 3],
    /// Frames switches forwarded to a learned port.
    pub switch_forwarded: u64,
    /// Frames switches flooded — must be 0 with the static FDB.
    pub switch_flooded: u64,
    /// Frames lost to full egress queues.
    pub switch_tail_drops: u64,
    /// Frames a switch filtered because the destination sat on the
    /// ingress port — must be 0 with the static FDB.
    pub switch_filtered: u64,
    /// Frames the transport layer dropped (faults / unwired ports) —
    /// must be 0: every campus link is clean and fully wired.
    pub link_drops: u64,
    /// Deepest egress queue seen anywhere.
    pub peak_queue_depth: usize,
    /// Event-queue events processed (delivered frames + timers).
    pub events_processed: u64,
    /// Final simulated clock, ns.
    pub sim_end_ns: u64,
}

/// One source→sink flow and where to audit it afterwards.
struct Flow {
    class: PathClass,
    source: NodeId,
    sink: NodeId,
    offset: NanoDur,
}

/// Flow class of the source at even endpoint index `ep`.
fn class_of(ep: usize) -> PathClass {
    match ep % 8 {
        0 => PathClass::Ring,
        4 => PathClass::Cell,
        _ => PathClass::Local,
    }
}

/// Build and run one campus; see the module docs for the shape.
pub fn run_campus(cfg: &CampusConfig) -> CampusResult {
    cfg.validate();
    let (cells, leaves, eps) = (cfg.cells, cfg.leaves_per_cell, cfg.endpoints_per_leaf);
    let mut sim = Simulator::new(cfg.seed);

    // --- nodes, in deterministic construction order per cell ---------
    // Leaf ports: 0..eps endpoints, eps = up to spine 0, eps+1 = up to
    // spine 1. Spine ports: 0..leaves down-links, leaves = ring toward
    // the next cell, leaves+1 = ring from the previous cell (spine 0
    // only; spine 1 leaves them unwired).
    let mut spines = vec![[NodeId(0); SPINES_PER_CELL]; cells];
    let mut leaf_ids = vec![vec![NodeId(0); leaves]; cells];
    let mut ep_ids = vec![vec![vec![NodeId(0); eps]; leaves]; cells];
    for c in 0..cells {
        for s in 0..SPINES_PER_CELL {
            spines[c][s] = sim.add_node(LearningSwitch::new(
                "spine",
                SwitchConfig {
                    ports: leaves + 2,
                    ..SwitchConfig::default()
                },
            ));
        }
        for l in 0..leaves {
            leaf_ids[c][l] = sim.add_node(LearningSwitch::new(
                "leaf",
                SwitchConfig {
                    ports: eps + 2,
                    ..SwitchConfig::default()
                },
            ));
        }
        for l in 0..leaves {
            for e in 0..eps {
                ep_ids[c][l][e] = if e % 2 == 0 {
                    // Sources are wired below once flows are assigned.
                    sim.add_node(PeriodicSource::new(
                        "src",
                        campus_mac(c, l, e),
                        MacAddr::BROADCAST, // placeholder; set per flow
                        46,
                        cfg.period,
                    ))
                } else {
                    sim.add_node(CounterSink::new("sink"))
                };
            }
        }
    }

    // --- links -------------------------------------------------------
    let mut links = 0usize;
    for c in 0..cells {
        for l in 0..leaves {
            for e in 0..eps {
                sim.connect(
                    ep_ids[c][l][e],
                    PortId(0),
                    leaf_ids[c][l],
                    PortId(e),
                    LinkSpec::gigabit(),
                );
                links += 1;
            }
            for s in 0..SPINES_PER_CELL {
                sim.connect(
                    leaf_ids[c][l],
                    PortId(eps + s),
                    spines[c][s],
                    PortId(l),
                    LinkSpec::gigabit(),
                );
                links += 1;
            }
        }
        // Backbone ring between spine 0s of adjacent cells.
        let next = (c + 1) % cells;
        sim.connect(
            spines[c][0],
            PortId(leaves),
            spines[next][0],
            PortId(leaves + 1),
            LinkSpec::gigabit(),
        );
        links += 1;
    }

    // --- flows + static FDB along each path --------------------------
    let mut flows: Vec<Flow> = Vec::new();
    let mut g = 0u64; // global source index, for phase staggering
    for c in 0..cells {
        for l in 0..leaves {
            for e in (0..eps).step_by(2) {
                let class = class_of(e);
                let (dc, dl) = match class {
                    PathClass::Local => (c, l),
                    PathClass::Cell => (c, (l + 1) % leaves),
                    PathClass::Ring => ((c + 1) % cells, l),
                };
                let de = e + 1;
                let dst_mac = campus_mac(dc, dl, de);
                let offset = NanoDur((g * STAGGER.as_nanos()) % cfg.period.as_nanos());
                g += 1;

                // Seed the forwarding path hop by hop.
                match class {
                    PathClass::Local => {
                        sim.node_mut::<LearningSwitch>(leaf_ids[c][l])
                            .learn_static(dst_mac, PortId(de));
                    }
                    PathClass::Cell => {
                        sim.node_mut::<LearningSwitch>(leaf_ids[c][l])
                            .learn_static(dst_mac, PortId(eps + 1));
                        sim.node_mut::<LearningSwitch>(spines[c][1])
                            .learn_static(dst_mac, PortId(dl));
                        sim.node_mut::<LearningSwitch>(leaf_ids[dc][dl])
                            .learn_static(dst_mac, PortId(de));
                    }
                    PathClass::Ring => {
                        sim.node_mut::<LearningSwitch>(leaf_ids[c][l])
                            .learn_static(dst_mac, PortId(eps));
                        sim.node_mut::<LearningSwitch>(spines[c][0])
                            .learn_static(dst_mac, PortId(leaves));
                        sim.node_mut::<LearningSwitch>(spines[dc][0])
                            .learn_static(dst_mac, PortId(dl));
                        sim.node_mut::<LearningSwitch>(leaf_ids[dc][dl])
                            .learn_static(dst_mac, PortId(de));
                    }
                }

                let src_id = ep_ids[c][l][e];
                {
                    let src = sim.node_mut::<PeriodicSource>(src_id);
                    src.dst = dst_mac;
                    src.limit = Some(cfg.cycles);
                    src.start_offset = offset;
                }
                flows.push(Flow {
                    class,
                    source: src_id,
                    sink: ep_ids[dc][dl][de],
                    offset,
                });
            }
        }
    }

    // --- run to completion -------------------------------------------
    sim.run_to_quiescence();

    // --- audit --------------------------------------------------------
    let mut classes = [ClassStats::default(); 3];
    for cs in &mut classes {
        cs.min_latency_ns = u64::MAX;
    }
    let mut frames_sent = 0u64;
    let mut frames_received = 0u64;
    for flow in &flows {
        frames_sent += sim.node_ref::<PeriodicSource>(flow.source).sent();
        let sink = sim.node_ref::<CounterSink>(flow.sink);
        let cs = &mut classes[flow.class as usize];
        cs.flows += 1;
        cs.received += sink.count();
        frames_received += sink.count();
        for (n, at) in sink.arrivals().iter().enumerate() {
            let ideal = Nanos(flow.offset.as_nanos() + n as u64 * cfg.period.as_nanos());
            let lat = at.saturating_since(ideal).as_nanos();
            cs.min_latency_ns = cs.min_latency_ns.min(lat);
            cs.max_latency_ns = cs.max_latency_ns.max(lat);
        }
    }
    for cs in &mut classes {
        if cs.received == 0 {
            cs.min_latency_ns = 0;
        }
    }

    let mut switch_forwarded = 0u64;
    let mut switch_flooded = 0u64;
    let mut switch_tail_drops = 0u64;
    let mut switch_filtered = 0u64;
    let mut peak_queue_depth = 0usize;
    for c in 0..cells {
        for s in 0..SPINES_PER_CELL {
            let sw = sim.node_ref::<LearningSwitch>(spines[c][s]);
            switch_forwarded += sw.frames_forwarded();
            switch_flooded += sw.frames_flooded();
            switch_tail_drops += sw.tail_drops();
            switch_filtered += sw.frames_filtered();
            peak_queue_depth = peak_queue_depth.max(sw.peak_queue_depth());
        }
        for l in 0..leaves {
            let sw = sim.node_ref::<LearningSwitch>(leaf_ids[c][l]);
            switch_forwarded += sw.frames_forwarded();
            switch_flooded += sw.frames_flooded();
            switch_tail_drops += sw.tail_drops();
            switch_filtered += sw.frames_filtered();
            peak_queue_depth = peak_queue_depth.max(sw.peak_queue_depth());
        }
    }

    let counters = sim.trace().counters();
    CampusResult {
        nodes: cfg.node_count(),
        links,
        sources: flows.len() as u64,
        frames_sent,
        frames_received,
        classes,
        switch_forwarded,
        switch_flooded,
        switch_tail_drops,
        switch_filtered,
        link_drops: counters.dropped,
        peak_queue_depth,
        events_processed: counters.delivered + counters.timers_fired,
        sim_end_ns: sim.now().as_nanos(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campus_delivers_everything() {
        let cfg = CampusConfig::small();
        let r = run_campus(&cfg);
        assert_eq!(r.nodes, 40);
        // 8 sources (2 cells × 2 leaves × 2 even endpoints... actually
        // eps/2 per leaf): 2*2*4 = 16 sources, 20 cycles each.
        assert_eq!(r.sources, 16);
        assert_eq!(r.frames_sent, 16 * 20);
        assert_eq!(r.frames_received, r.frames_sent);
        assert_eq!(r.switch_flooded, 0);
        assert_eq!(r.switch_tail_drops, 0);
    }

    #[test]
    fn latency_classes_are_ordered_by_path_length() {
        let r = run_campus(&CampusConfig::small());
        let [local, cell, ring] = r.classes;
        assert!(local.received > 0 && cell.received > 0 && ring.received > 0);
        assert!(local.max_latency_ns < cell.min_latency_ns);
        assert!(cell.max_latency_ns < ring.min_latency_ns);
    }

    #[test]
    fn campus_is_deterministic() {
        let a = run_campus(&CampusConfig::small());
        let b = run_campus(&CampusConfig::small());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn class_assignment_covers_all_three() {
        assert_eq!(class_of(0), PathClass::Ring);
        assert_eq!(class_of(2), PathClass::Local);
        assert_eq!(class_of(4), PathClass::Cell);
        assert_eq!(class_of(6), PathClass::Local);
    }
}
