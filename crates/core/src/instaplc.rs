//! **InstaPLC** (§4): in-network high availability for virtual PLCs.
//!
//! The application runs on the programmable switch between the vPLCs
//! and the I/O device:
//!
//! 1. The first vPLC to connect to an I/O device becomes its *primary*;
//!    its connect/parameterization exchange is observed by the switch,
//!    which learns the CR's parameters and builds a **digital twin** of
//!    the device.
//! 2. A second vPLC connecting to the same device is designated
//!    *secondary* and transparently connected to the twin: its connect
//!    is answered by the switch, its cyclic output frames are dropped
//!    after updating a liveness register, and the physical device's
//!    input frames are mirrored to it — so the secondary always holds
//!    the device's current state.
//! 3. The data plane timestamps every primary frame; when the primary
//!    stays silent for a configurable number of I/O cycles, the switch
//!    rewires the tables: the secondary's frames now reach the physical
//!    device. No dedicated sync links between the vPLCs are required.

use steelworks_dataplane::prelude::*;
use steelworks_netsim::prelude::*;
use steelworks_rtnet::frame::{CrParams, FrameId, RtPayload};
use steelworks_vplc::prelude::*;

/// Digest kinds raised by the InstaPLC pipeline.
pub mod digest_kind {
    /// A connect request appeared (payload attached).
    pub const CONNECT_REQ: u32 = 1;
    /// A connect response from the I/O device (payload attached).
    pub const CONNECT_RESP: u32 = 2;
    /// An alarm frame passed through.
    pub const ALARM: u32 = 3;
}

/// Register array 0: last-seen timestamp per FrameId for the primary.
pub const REG_LAST_SEEN_PRIMARY: u32 = 0;
/// Register array 1: last-seen timestamp per FrameId for the secondary.
pub const REG_LAST_SEEN_SECONDARY: u32 = 1;

/// One controlled connection's control-plane state.
#[derive(Clone, Debug)]
struct Conn {
    params: CrParams,
    primary: Option<(PortId, MacAddr)>,
    secondary: Option<(PortId, MacAddr)>,
    running: bool,
    /// Installed cyclic-table entries, for clean rewiring.
    entries: Vec<EntryId>,
}

/// InstaPLC's control plane (embedded with the switch, as the paper's
/// Python controller is co-located with the DPDK data plane).
#[derive(Debug)]
pub struct InstaPlcController {
    /// Port the physical I/O device hangs off.
    pub io_port: PortId,
    /// The I/O device's MAC (twin responses are sent from it).
    pub io_mac: MacAddr,
    /// Silence threshold, in I/O cycles, before switchover.
    pub switchover_cycles: u32,
    /// Liveness scan period.
    pub scan_interval: NanoDur,
    conns: std::collections::BTreeMap<u16, Conn>,
    /// Completed switchovers: (when, frame id).
    pub switchovers: Vec<(Nanos, u16)>,
    /// Planned role swaps to execute at given instants (live migration,
    /// as in the P4PLC demo the paper cites): (when, frame id).
    pub planned_migrations: Vec<(Nanos, u16)>,
    /// Completed planned migrations.
    pub migrations_done: Vec<(Nanos, u16)>,
    /// Twin connect responses issued.
    pub twin_accepts: u64,
    /// Third-controller rejections issued.
    pub rejections: u64,
}

impl InstaPlcController {
    /// A controller guarding the device on `io_port`.
    pub fn new(io_port: PortId, io_mac: MacAddr) -> Self {
        InstaPlcController {
            io_port,
            io_mac,
            switchover_cycles: 2,
            scan_interval: NanoDur::from_micros(250),
            conns: std::collections::BTreeMap::new(),
            switchovers: Vec::new(),
            planned_migrations: Vec::new(),
            migrations_done: Vec::new(),
            twin_accepts: 0,
            rejections: 0,
        }
    }

    /// Schedule a planned, hitless migration of `fid`'s control from
    /// the current primary to the secondary at time `at`. Unlike a
    /// failure switchover, the old primary stays alive and is demoted
    /// to secondary (running against the twin), so control can be
    /// migrated back later — e.g. around host maintenance windows.
    pub fn schedule_migration(&mut self, at: Nanos, fid: u16) {
        self.planned_migrations.push((at, fid));
    }

    /// Swap primary and secondary roles for `fid`, retaining both.
    /// Returns false when there is no secondary to promote.
    pub fn swap_roles(&mut self, now: Nanos, fid: u16, pipeline: &mut Pipeline) -> bool {
        let Some(conn) = self.conns.get_mut(&fid) else {
            return false;
        };
        let (Some(p), Some(s_)) = (conn.primary, conn.secondary) else {
            return false;
        };
        conn.primary = Some(s_);
        conn.secondary = Some(p);
        // Exchange the liveness stamps along with the roles.
        let pstamp = pipeline.registers[REG_LAST_SEEN_PRIMARY as usize].read(fid as u32);
        let sstamp = pipeline.registers[REG_LAST_SEEN_SECONDARY as usize].read(fid as u32);
        pipeline.registers[REG_LAST_SEEN_PRIMARY as usize]
            .write(fid as u32, sstamp.max(now.as_nanos()));
        pipeline.registers[REG_LAST_SEEN_SECONDARY as usize]
            .write(fid as u32, pstamp.max(now.as_nanos()));
        self.migrations_done.push((now, fid));
        self.install_cyclic_entries(fid, pipeline);
        true
    }

    fn install_cyclic_entries(&mut self, fid: u16, pipeline: &mut Pipeline) {
        // steelcheck: allow(unwrap-in-lib): fid was inserted by accept() before any install runs
        let conn = self.conns.get_mut(&fid).expect("conn exists");
        // steelcheck: allow(unwrap-in-lib): the cyclic table is created in Pipeline construction above
        let table = pipeline.table_mut("cyclic").expect("cyclic table");
        for id in conn.entries.drain(..) {
            table.remove(id);
        }
        let mut entries = Vec::new();
        if let Some((pport, _)) = conn.primary {
            // Primary → device, stamping liveness.
            entries.push(table.insert(Entry {
                keys: vec![
                    TernaryKey::exact(fid as u64),
                    TernaryKey::exact(pport.0 as u64),
                ],
                priority: 0,
                action: ActionSpec::new(vec![
                    Primitive::RegWrite {
                        reg: REG_LAST_SEEN_PRIMARY,
                        index: IndexSource::FromField(Field::RtFrameId),
                        value: ValueSource::NowNs,
                    },
                    Primitive::Forward(self.io_port),
                ]),
            }));
            // Device → primary (+ mirror to the secondary when present).
            let mut dev_prims = vec![Primitive::Forward(pport)];
            if let Some((sport, _)) = conn.secondary {
                dev_prims.push(Primitive::Mirror(sport));
            }
            entries.push(table.insert(Entry {
                keys: vec![
                    TernaryKey::exact(fid as u64),
                    TernaryKey::exact(self.io_port.0 as u64),
                ],
                priority: 0,
                action: ActionSpec::new(dev_prims),
            }));
        }
        if let Some((sport, _)) = conn.secondary {
            // Secondary → twin: stamp liveness, then absorb.
            entries.push(table.insert(Entry {
                keys: vec![
                    TernaryKey::exact(fid as u64),
                    TernaryKey::exact(sport.0 as u64),
                ],
                priority: 0,
                action: ActionSpec::new(vec![
                    Primitive::RegWrite {
                        reg: REG_LAST_SEEN_SECONDARY,
                        index: IndexSource::FromField(Field::RtFrameId),
                        value: ValueSource::NowNs,
                    },
                    Primitive::Drop,
                ]),
            }));
        }
        // steelcheck: allow(unwrap-in-lib): fid was inserted by accept() before entries are staged
        self.conns.get_mut(&fid).expect("conn exists").entries = entries;
    }

    fn on_connect_req(&mut self, now: Nanos, digest: &Digest, api: &mut ControlApi<'_>) {
        let Some(payload) = &digest.payload else {
            return;
        };
        let Ok(RtPayload::ConnectReq { frame_id, params }) = RtPayload::parse(payload) else {
            return;
        };
        let fid = frame_id.0;
        let ingress = PortId(digest.fields.get(Field::IngressPort) as usize);
        let src = u64_to_mac(digest.fields.get(Field::EthSrc));
        let conn = self.conns.entry(fid).or_insert_with(|| Conn {
            params,
            primary: None,
            secondary: None,
            running: false,
            entries: Vec::new(),
        });

        let already_primary = conn.primary.map(|(_, m)| m == src).unwrap_or(false);
        let already_secondary = conn.secondary.map(|(_, m)| m == src).unwrap_or(false);

        if conn.primary.is_none() || already_primary {
            // Designate (or refresh) the primary; pass the request on
            // to the physical device.
            conn.primary = Some((ingress, src));
            conn.params = params;
            let io_port = self.io_port;
            let io_mac = self.io_mac;
            self.install_cyclic_entries(fid, api.pipeline());
            let frame = EthFrame::new(io_mac, src, ethertype::INDUSTRIAL_RT, payload.clone())
                .with_vlan(VlanTag::RT);
            api.inject(io_port, frame);
        } else if conn.secondary.is_none() || already_secondary {
            // Designate the secondary and answer from the digital twin.
            conn.secondary = Some((ingress, src));
            let io_mac = self.io_mac;
            self.install_cyclic_entries(fid, api.pipeline());
            let resp = RtPayload::ConnectResp {
                frame_id,
                accepted: true,
            };
            let frame = EthFrame::new(src, io_mac, ethertype::INDUSTRIAL_RT, resp.to_bytes())
                .with_vlan(VlanTag::RT);
            self.twin_accepts += 1;
            api.inject(ingress, frame);
            // Seed the secondary's liveness stamp so the scan doesn't
            // misfire before its first cyclic frame.
            if let Some(reg) = api
                .pipeline()
                .registers
                .get_mut(REG_LAST_SEEN_SECONDARY as usize)
            {
                reg.write(fid as u32, now.as_nanos());
            }
        } else {
            // A third controller: reject, as the physical device would.
            let resp = RtPayload::ConnectResp {
                frame_id,
                accepted: false,
            };
            let io_mac = self.io_mac;
            let frame = EthFrame::new(src, io_mac, ethertype::INDUSTRIAL_RT, resp.to_bytes())
                .with_vlan(VlanTag::RT);
            self.rejections += 1;
            api.inject(ingress, frame);
        }
    }

    fn on_connect_resp(&mut self, now: Nanos, digest: &Digest, api: &mut ControlApi<'_>) {
        let Some(payload) = &digest.payload else {
            return;
        };
        let Ok(RtPayload::ConnectResp { frame_id, accepted }) = RtPayload::parse(payload) else {
            return;
        };
        let ingress = PortId(digest.fields.get(Field::IngressPort) as usize);
        if ingress != self.io_port {
            return; // Only the physical device's responses are relayed.
        }
        let Some(conn) = self.conns.get_mut(&frame_id.0) else {
            return;
        };
        if accepted {
            conn.running = true;
        }
        if let Some((pport, pmac)) = conn.primary {
            let frame = EthFrame::new(pmac, self.io_mac, ethertype::INDUSTRIAL_RT, payload.clone())
                .with_vlan(VlanTag::RT);
            api.inject(pport, frame);
            // Seed liveness so the scan tolerates the connect phase.
            if let Some(reg) = api
                .pipeline()
                .registers
                .get_mut(REG_LAST_SEEN_PRIMARY as usize)
            {
                reg.write(frame_id.0 as u32, now.as_nanos());
            }
        }
    }

    /// Promote the secondary of `fid` to primary (public so operators /
    /// tests can force a manual switchover).
    pub fn force_switchover(&mut self, now: Nanos, fid: u16, pipeline: &mut Pipeline) -> bool {
        let Some(conn) = self.conns.get_mut(&fid) else {
            return false;
        };
        let Some((sport, smac)) = conn.secondary.take() else {
            return false;
        };
        conn.primary = Some((sport, smac));
        self.switchovers.push((now, fid));
        // The new primary's liveness continues from its secondary stamp.
        let stamp = pipeline.registers[REG_LAST_SEEN_SECONDARY as usize].read(fid as u32);
        pipeline.registers[REG_LAST_SEEN_PRIMARY as usize].write(fid as u32, stamp);
        self.install_cyclic_entries(fid, pipeline);
        true
    }

    /// Number of completed switchovers.
    pub fn switchover_count(&self) -> usize {
        self.switchovers.len()
    }
}

impl PipelineController for InstaPlcController {
    fn on_digest(&mut self, now: Nanos, digest: &Digest, api: &mut ControlApi<'_>) {
        match digest.kind {
            digest_kind::CONNECT_REQ => self.on_connect_req(now, digest, api),
            digest_kind::CONNECT_RESP => self.on_connect_resp(now, digest, api),
            _ => {}
        }
    }

    fn on_tick(&mut self, now: Nanos, api: &mut ControlApi<'_>) {
        // Execute due planned migrations first.
        let due_migrations: Vec<u16> = {
            let mut due = Vec::new();
            self.planned_migrations.retain(|&(at, fid)| {
                if at <= now {
                    due.push(fid);
                    false
                } else {
                    true
                }
            });
            due
        };
        for fid in due_migrations {
            self.swap_roles(now, fid, api.pipeline());
        }
        // Liveness scan: promote secondaries whose primary went silent.
        let due: Vec<u16> = self
            .conns
            .iter()
            .filter_map(|(&fid, conn)| {
                if !conn.running || conn.primary.is_none() || conn.secondary.is_none() {
                    return None;
                }
                let last =
                    api.pipeline().registers[REG_LAST_SEEN_PRIMARY as usize].read(fid as u32);
                let threshold = conn.params.cycle_time.as_nanos() * self.switchover_cycles as u64;
                (now.as_nanos().saturating_sub(last) > threshold).then_some(fid)
            })
            .collect();
        for fid in due {
            self.force_switchover(now, fid, api.pipeline());
        }
    }

    fn tick_interval(&self) -> Option<NanoDur> {
        Some(self.scan_interval)
    }
}

/// Build the InstaPLC data-plane program.
pub fn build_pipeline() -> Pipeline {
    let mut p = Pipeline::new();
    let r0 = p.add_registers(RegisterArray::new("last_seen_primary", 65_536));
    let r1 = p.add_registers(RegisterArray::new("last_seen_secondary", 65_536));
    debug_assert_eq!(r0, REG_LAST_SEEN_PRIMARY);
    debug_assert_eq!(r1, REG_LAST_SEEN_SECONDARY);

    // Table 0: classify by RT frame type (field = type byte + 1).
    let mut classify = Table::new(
        "classify",
        vec![Field::RtFrameType],
        MatchKind::Ternary,
        // Non-RT traffic is not InstaPLC's business: drop.
        ActionSpec::drop(),
    );
    classify.insert(Entry {
        keys: vec![TernaryKey::exact(1)], // ConnectReq
        priority: 10,
        action: ActionSpec::new(vec![
            Primitive::DigestPacket {
                kind: digest_kind::CONNECT_REQ,
            },
            Primitive::Drop,
        ]),
    });
    classify.insert(Entry {
        keys: vec![TernaryKey::exact(2)], // ConnectResp
        priority: 10,
        action: ActionSpec::new(vec![
            Primitive::DigestPacket {
                kind: digest_kind::CONNECT_RESP,
            },
            Primitive::Drop,
        ]),
    });
    classify.insert(Entry {
        keys: vec![TernaryKey::exact(3)], // CyclicData
        priority: 10,
        action: ActionSpec::new(vec![Primitive::GotoTable(1)]),
    });
    classify.insert(Entry {
        keys: vec![TernaryKey::exact(4)], // Alarm
        priority: 10,
        action: ActionSpec::new(vec![
            Primitive::Digest {
                kind: digest_kind::ALARM,
                field: Field::RtFrameId,
            },
            Primitive::Flood,
        ]),
    });
    p.add_table(classify);

    // Table 1: cyclic forwarding, programmed at runtime.
    p.add_table(Table::new(
        "cyclic",
        vec![Field::RtFrameId, Field::IngressPort],
        MatchKind::Exact,
        ActionSpec::drop(),
    ));
    p
}

/// Scenario configuration for the Fig. 5 experiment.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// I/O cycle time (Fig. 5's ≈33 packets / 50 ms ⇒ 1.5 ms).
    pub cycle_time: NanoDur,
    /// Device watchdog factor.
    pub watchdog_factor: u8,
    /// Switch silence threshold in cycles (must undercut the watchdog).
    pub switchover_cycles: u32,
    /// When the primary vPLC crashes.
    pub crash_at: Nanos,
    /// Total simulated time.
    pub duration: Nanos,
    /// When the secondary vPLC boots.
    pub secondary_start: NanoDur,
    /// Seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            cycle_time: NanoDur::from_micros(1_500),
            watchdog_factor: 3,
            switchover_cycles: 2,
            crash_at: Nanos::from_millis(1_200),
            duration: Nanos::from_secs(3),
            secondary_start: NanoDur::from_millis(40),
            seed: 0x1A57,
        }
    }
}

/// Everything Fig. 5 plots, plus health counters.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Cyclic frames sent by vPLC1 per 50 ms bin (Fig. 5a, first line).
    pub vplc1_series: Vec<u64>,
    /// Cyclic frames sent by vPLC2 per 50 ms bin (Fig. 5a, second line).
    pub vplc2_series: Vec<u64>,
    /// Cyclic frames received by the I/O device per 50 ms (Fig. 5b).
    pub io_series: Vec<u64>,
    /// When the switchover fired.
    pub switchover_at: Option<Nanos>,
    /// Safe-state entries at the device (0 = seamless switchover).
    pub io_safe_entries: u64,
    /// Twin connects answered by the switch.
    pub twin_accepts: u64,
    /// I/O device frames received in total.
    pub io_received: u64,
}

/// Run the Fig. 5 scenario.
pub fn run_scenario(cfg: &ScenarioConfig) -> ScenarioResult {
    let mut sim = Simulator::new(cfg.seed);
    let io_mac = MacAddr::local(0x10);
    let v1_mac = MacAddr::local(0x21);
    let v2_mac = MacAddr::local(0x22);
    let fid = FrameId(0x8001);
    let params = CrParams {
        cycle_time: cfg.cycle_time,
        watchdog_factor: cfg.watchdog_factor,
        output_len: 8,
        input_len: 8,
    };

    let v1 = sim.add_node(VplcDevice::new(
        "vplc1",
        v1_mac,
        io_mac,
        fid,
        params,
        PlcProgram::passthrough(8),
    ));
    let v2 = sim.add_node(
        VplcDevice::new(
            "vplc2",
            v2_mac,
            io_mac,
            fid,
            params,
            PlcProgram::passthrough(8),
        )
        .with_start_delay(cfg.secondary_start),
    );
    let io = sim.add_node(IoDevice::new(
        "io",
        io_mac,
        (8, 8),
        Box::new(LoopbackProcess),
    ));

    let mut controller = InstaPlcController::new(PortId(2), io_mac);
    controller.switchover_cycles = cfg.switchover_cycles;
    let sw = sim.add_node(PipelineSwitch::new(
        "instaplc",
        3,
        build_pipeline(),
        Box::new(controller),
    ));

    sim.connect(v1, PortId(0), sw, PortId(0), LinkSpec::gigabit());
    sim.connect(v2, PortId(0), sw, PortId(1), LinkSpec::gigabit());
    sim.connect(io, PortId(0), sw, PortId(2), LinkSpec::gigabit());

    sim.inject_timer(v1, cfg.crash_at, VPLC_CRASH_TOKEN);
    sim.run_until(cfg.duration);

    let extract = |series: &steelworks_netsim::stats::BinnedSeries, until: Nanos| {
        let mut s = series.clone();
        // The run ends exactly at `duration`; extend to the last full
        // bin so the series has no spurious empty tail bin.
        s.extend_to(until - NanoDur(1));
        s.counts().to_vec()
    };
    let v1_ref = sim.node_ref::<VplcDevice>(v1);
    let v2_ref = sim.node_ref::<VplcDevice>(v2);
    let io_ref = sim.node_ref::<IoDevice>(io);
    let sw_ref = sim.node_ref::<PipelineSwitch>(sw);
    let ctrl = sw_ref.controller_ref::<InstaPlcController>();

    ScenarioResult {
        vplc1_series: extract(&v1_ref.sent_series, cfg.duration),
        vplc2_series: extract(&v2_ref.sent_series, cfg.duration),
        io_series: extract(&io_ref.received_series, cfg.duration),
        switchover_at: ctrl.switchovers.first().map(|(t, _)| *t),
        io_safe_entries: io_ref.stats().safe_state_entries,
        twin_accepts: ctrl.twin_accepts,
        io_received: io_ref.stats().cyclic_received,
    }
}

/// Run a planned-migration scenario: same world as [`run_scenario`],
/// but instead of crashing the primary, control migrates to the
/// secondary at `migrate_at` (and back at `migrate_back_at` when set) —
/// both vPLCs stay alive throughout.
pub fn run_migration_scenario(
    cfg: &ScenarioConfig,
    migrate_at: Nanos,
    migrate_back_at: Option<Nanos>,
) -> ScenarioResult {
    let mut sim = Simulator::new(cfg.seed);
    let io_mac = MacAddr::local(0x10);
    let v1_mac = MacAddr::local(0x21);
    let v2_mac = MacAddr::local(0x22);
    let fid = FrameId(0x8001);
    let params = CrParams {
        cycle_time: cfg.cycle_time,
        watchdog_factor: cfg.watchdog_factor,
        output_len: 8,
        input_len: 8,
    };
    let v1 = sim.add_node(VplcDevice::new(
        "vplc1",
        v1_mac,
        io_mac,
        fid,
        params,
        PlcProgram::passthrough(8),
    ));
    let v2 = sim.add_node(
        VplcDevice::new(
            "vplc2",
            v2_mac,
            io_mac,
            fid,
            params,
            PlcProgram::passthrough(8),
        )
        .with_start_delay(cfg.secondary_start),
    );
    let io = sim.add_node(IoDevice::new(
        "io",
        io_mac,
        (8, 8),
        Box::new(LoopbackProcess),
    ));
    let mut controller = InstaPlcController::new(PortId(2), io_mac);
    controller.switchover_cycles = cfg.switchover_cycles;
    controller.schedule_migration(migrate_at, fid.0);
    if let Some(back) = migrate_back_at {
        controller.schedule_migration(back, fid.0);
    }
    let sw = sim.add_node(PipelineSwitch::new(
        "instaplc",
        3,
        build_pipeline(),
        Box::new(controller),
    ));
    sim.connect(v1, PortId(0), sw, PortId(0), LinkSpec::gigabit());
    sim.connect(v2, PortId(0), sw, PortId(1), LinkSpec::gigabit());
    sim.connect(io, PortId(0), sw, PortId(2), LinkSpec::gigabit());
    sim.run_until(cfg.duration);

    let extract = |series: &steelworks_netsim::stats::BinnedSeries, until: Nanos| {
        let mut s = series.clone();
        s.extend_to(until - NanoDur(1));
        s.counts().to_vec()
    };
    let v1_ref = sim.node_ref::<VplcDevice>(v1);
    let v2_ref = sim.node_ref::<VplcDevice>(v2);
    let io_ref = sim.node_ref::<IoDevice>(io);
    let ctrl = sim
        .node_ref::<PipelineSwitch>(sw)
        .controller_ref::<InstaPlcController>();
    ScenarioResult {
        vplc1_series: extract(&v1_ref.sent_series, cfg.duration),
        vplc2_series: extract(&v2_ref.sent_series, cfg.duration),
        io_series: extract(&io_ref.received_series, cfg.duration),
        switchover_at: ctrl.migrations_done.first().map(|(t, _)| *t),
        io_safe_entries: io_ref.stats().safe_state_entries,
        twin_accepts: ctrl.twin_accepts,
        io_received: io_ref.stats().cyclic_received,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_scenario() -> ScenarioConfig {
        ScenarioConfig {
            crash_at: Nanos::from_millis(400),
            duration: Nanos::from_secs(1),
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn primary_controls_device_before_crash() {
        let cfg = ScenarioConfig {
            crash_at: Nanos::from_secs(10), // never
            duration: Nanos::from_millis(500),
            ..ScenarioConfig::default()
        };
        let r = run_scenario(&cfg);
        assert!(r.io_received > 250, "io got {}", r.io_received);
        assert_eq!(r.io_safe_entries, 0);
        assert_eq!(r.switchover_at, None);
        assert_eq!(r.twin_accepts, 1, "secondary connected to the twin");
    }

    #[test]
    fn switchover_fires_after_crash() {
        let r = run_scenario(&short_scenario());
        let t = r.switchover_at.expect("switchover happened");
        assert!(t > Nanos::from_millis(400));
        // Detection within switchover_cycles (2 × 1.5 ms) + scan slack.
        assert!(t < Nanos::from_millis(405), "switchover at {t} too slow");
    }

    #[test]
    fn device_never_enters_safe_state() {
        let r = run_scenario(&short_scenario());
        assert_eq!(r.io_safe_entries, 0, "switchover preempted the watchdog");
    }

    #[test]
    fn io_keeps_receiving_across_switchover() {
        let r = run_scenario(&short_scenario());
        // 1 s / 1.5 ms ≈ 666 cycles; the switchover gap costs a few.
        assert!(r.io_received > 640, "io got {}", r.io_received);
        // Every 50 ms bin after warm-up has traffic.
        for (i, &c) in r.io_series.iter().enumerate().skip(1) {
            assert!(c > 20, "bin {i} had only {c} frames");
        }
    }

    #[test]
    fn fig5_shape() {
        let r = run_scenario(&ScenarioConfig::default());
        // (a) vPLC1 sends ~33/bin until the crash bin (24 = 1.2 s/50 ms).
        assert!(r.vplc1_series[10] >= 30 && r.vplc1_series[10] <= 36);
        assert_eq!(r.vplc1_series[30], 0, "vPLC1 silent after crash");
        // vPLC2 sends continuously the whole run (to twin, then to I/O).
        assert!(r.vplc2_series[10] >= 30);
        assert!(r.vplc2_series[40] >= 30);
        // (b) the I/O device sees steady traffic before and after.
        assert!(r.io_series[10] >= 30);
        assert!(r.io_series[40] >= 30);
        assert_eq!(r.io_safe_entries, 0);
    }

    #[test]
    fn without_secondary_device_halts() {
        // Ablation: no vPLC2 → crash ⇒ watchdog expiry ⇒ safe state.
        let mut sim = Simulator::new(5);
        let io_mac = MacAddr::local(0x10);
        let v1_mac = MacAddr::local(0x21);
        let params = CrParams {
            cycle_time: NanoDur::from_micros(1_500),
            watchdog_factor: 3,
            output_len: 8,
            input_len: 8,
        };
        let v1 = sim.add_node(VplcDevice::new(
            "vplc1",
            v1_mac,
            io_mac,
            FrameId(0x8001),
            params,
            PlcProgram::passthrough(8),
        ));
        let io = sim.add_node(IoDevice::new(
            "io",
            io_mac,
            (8, 8),
            Box::new(LoopbackProcess),
        ));
        let sw = sim.add_node(PipelineSwitch::new(
            "instaplc",
            3,
            build_pipeline(),
            Box::new(InstaPlcController::new(PortId(2), io_mac)),
        ));
        sim.connect(v1, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(io, PortId(0), sw, PortId(2), LinkSpec::gigabit());
        sim.inject_timer(v1, Nanos::from_millis(400), VPLC_CRASH_TOKEN);
        sim.run_until(Nanos::from_secs(1));
        assert_eq!(sim.node_ref::<IoDevice>(io).stats().safe_state_entries, 1);
    }

    #[test]
    fn third_controller_rejected() {
        let mut sim = Simulator::new(7);
        let io_mac = MacAddr::local(0x10);
        let params = CrParams {
            cycle_time: NanoDur::from_micros(1_500),
            watchdog_factor: 3,
            output_len: 8,
            input_len: 8,
        };
        let mut nodes = Vec::new();
        for i in 0..3u16 {
            nodes.push(
                sim.add_node(
                    VplcDevice::new(
                        format!("vplc{i}"),
                        MacAddr::local(0x21 + i),
                        io_mac,
                        FrameId(0x8001),
                        params,
                        PlcProgram::passthrough(8),
                    )
                    .with_start_delay(NanoDur::from_millis(10 * i as u64)),
                ),
            );
        }
        let io = sim.add_node(IoDevice::new(
            "io",
            io_mac,
            (8, 8),
            Box::new(LoopbackProcess),
        ));
        let sw = sim.add_node(PipelineSwitch::new(
            "instaplc",
            4,
            build_pipeline(),
            Box::new(InstaPlcController::new(PortId(3), io_mac)),
        ));
        for (i, &n) in nodes.iter().enumerate() {
            sim.connect(n, PortId(0), sw, PortId(i), LinkSpec::gigabit());
        }
        sim.connect(io, PortId(0), sw, PortId(3), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(300));
        let ctrl = sim
            .node_ref::<PipelineSwitch>(sw)
            .controller_ref::<InstaPlcController>();
        assert_eq!(ctrl.twin_accepts, 1);
        assert!(ctrl.rejections >= 1, "third vPLC must be rejected");
        use steelworks_rtnet::connection::ControllerState;
        assert_eq!(
            sim.node_ref::<VplcDevice>(nodes[2]).cr_state(),
            ControllerState::Released,
            "rejected controller released its CR"
        );
    }

    #[test]
    fn deterministic_scenario() {
        let a = run_scenario(&short_scenario());
        let b = run_scenario(&short_scenario());
        assert_eq!(a.io_series, b.io_series);
        assert_eq!(a.switchover_at, b.switchover_at);
    }

    #[test]
    fn planned_migration_is_hitless() {
        let cfg = ScenarioConfig {
            crash_at: Nanos::from_secs(100), // unused here
            duration: Nanos::from_secs(1),
            ..ScenarioConfig::default()
        };
        let r = run_migration_scenario(&cfg, Nanos::from_millis(500), None);
        assert!(r.switchover_at.is_some(), "migration executed");
        assert_eq!(r.io_safe_entries, 0, "hitless");
        // Both vPLCs keep transmitting the entire run: the demoted
        // primary continues against the twin.
        for (i, (&a, &b)) in r
            .vplc1_series
            .iter()
            .zip(&r.vplc2_series)
            .enumerate()
            .skip(3)
        {
            assert!(a >= 25, "vPLC1 bin {i}: {a}");
            assert!(b >= 25, "vPLC2 bin {i}: {b}");
        }
        // The I/O device misses at most a cycle or two across the swap.
        assert!(r.io_received > 640, "{}", r.io_received);
    }

    #[test]
    fn migration_and_failback() {
        let cfg = ScenarioConfig {
            crash_at: Nanos::from_secs(100),
            duration: Nanos::from_secs(2),
            ..ScenarioConfig::default()
        };
        let r = run_migration_scenario(
            &cfg,
            Nanos::from_millis(500),
            Some(Nanos::from_millis(1_200)),
        );
        assert_eq!(r.io_safe_entries, 0);
        // ~1333 cycles over 2 s; both swaps nearly lossless.
        assert!(r.io_received > 1_300, "{}", r.io_received);
    }

    #[test]
    fn migration_then_crash_still_fails_over() {
        // Migrate to vPLC2, then crash vPLC2: the demoted vPLC1 (now
        // secondary against the twin) must take control back via the
        // liveness switchover.
        let cfg = ScenarioConfig::default();
        let mut sim = Simulator::new(cfg.seed);
        let io_mac = MacAddr::local(0x10);
        let params = CrParams {
            cycle_time: cfg.cycle_time,
            watchdog_factor: cfg.watchdog_factor,
            output_len: 8,
            input_len: 8,
        };
        let v1 = sim.add_node(VplcDevice::new(
            "vplc1",
            MacAddr::local(0x21),
            io_mac,
            FrameId(0x8001),
            params,
            PlcProgram::passthrough(8),
        ));
        let v2 = sim.add_node(
            VplcDevice::new(
                "vplc2",
                MacAddr::local(0x22),
                io_mac,
                FrameId(0x8001),
                params,
                PlcProgram::passthrough(8),
            )
            .with_start_delay(cfg.secondary_start),
        );
        let io = sim.add_node(IoDevice::new(
            "io",
            io_mac,
            (8, 8),
            Box::new(LoopbackProcess),
        ));
        let mut controller = InstaPlcController::new(PortId(2), io_mac);
        controller.schedule_migration(Nanos::from_millis(300), 0x8001);
        let sw = sim.add_node(PipelineSwitch::new(
            "instaplc",
            3,
            build_pipeline(),
            Box::new(controller),
        ));
        sim.connect(v1, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(v2, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.connect(io, PortId(0), sw, PortId(2), LinkSpec::gigabit());
        // Crash the NEW primary after the migration.
        sim.inject_timer(v2, Nanos::from_millis(600), VPLC_CRASH_TOKEN);
        sim.run_until(Nanos::from_secs(1));
        let io_ref = sim.node_ref::<IoDevice>(io);
        assert_eq!(io_ref.stats().safe_state_entries, 0);
        let ctrl = sim
            .node_ref::<PipelineSwitch>(sw)
            .controller_ref::<InstaPlcController>();
        assert_eq!(ctrl.migrations_done.len(), 1);
        assert_eq!(ctrl.switchover_count(), 1, "failback via liveness");
    }
}
