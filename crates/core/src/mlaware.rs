//! **ML-aware industrial networks** (§5, Fig. 6): simulation-based
//! comparison of a classic industrial ring, a leaf-spine fabric, and a
//! traffic-aware design, for ML inference latency at 32–256 clients.
//!
//! ## Latency model
//!
//! One inference request = deliver a complete compressed input frame,
//! then run inference on the serving tier:
//!
//! - **Frame delivery**: frames are packetized, so the frame pipelines
//!   through hops; delivery ≈ whole-frame M/D/1 sojourn (service +
//!   queueing) at the *bottleneck* hop, plus per-hop packet
//!   serialization, propagation and M/D/1 packet queueing on the rest
//!   of the path.
//! - **Inference**: the tiered server model of `steelworks-mlnet`.
//!
//! ## Latency vs. achievable accuracy
//!
//! Latency is evaluated at the *target* input quality: a hop offered
//! more than it can carry reports a bounded, monotone overload penalty
//! (real deployments shed and queue-limit rather than diverge).
//! Separately, the study reports the *accuracy each topology could
//! actually sustain* if clients adapted compression downward to keep
//! utilization feasible — the paper's own line of work on trading ML
//! prediction quality against data quantity. An under-provisioned
//! topology thus shows its weakness twice: higher latency at target
//! quality, and degraded achievable accuracy under adaptation. The
//! ML-aware design is dimensioned so neither penalty occurs —
//! "aligning inference accuracy with infrastructure cost and network
//! dimensioning".

use steelworks_mlnet::prelude::*;
use steelworks_netsim::time::NanoDur;
use steelworks_topo::prelude::*;

/// The three compared topologies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum TopologyKind {
    /// Classic industrial ring, one fog server, gigabit everywhere.
    Ring,
    /// Leaf-spine with gigabit access and fabric, central fog pool —
    /// the brownfield "modern IT derivative".
    LeafSpine,
    /// The traffic-aware design: clustered edge compute, 2.5G access,
    /// 10G uplinks, capacity-planned to the measured ML demand.
    MlAware,
}

impl TopologyKind {
    /// Display name matching the figure legend.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Ring => "Ring",
            TopologyKind::LeafSpine => "Leaf Spine",
            TopologyKind::MlAware => "ML-aware",
        }
    }

    /// All three, in the figure's legend order.
    pub const ALL: [TopologyKind; 3] = [
        TopologyKind::LeafSpine,
        TopologyKind::Ring,
        TopologyKind::MlAware,
    ];
}

/// Study parameters.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Accuracy target the input quality should sustain.
    pub accuracy_target: f64,
    /// Client counts to sweep (the figure: 32, 64, 128, 256).
    pub client_counts: Vec<usize>,
    /// Utilization ceiling used for the adaptive-accuracy view and as
    /// the stability knee of the latency model.
    pub rho_limit: f64,
    /// Extra waiting, in bottleneck service times per unit of excess
    /// utilization, charged beyond the knee.
    pub overload_slope: f64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            accuracy_target: 0.90,
            client_counts: vec![32, 64, 128, 256],
            rho_limit: 0.9,
            overload_slope: 6.0,
        }
    }
}

/// One evaluated point.
#[derive(Clone, Debug)]
pub struct StudyPoint {
    /// Topology.
    pub topology: TopologyKind,
    /// Application.
    pub app: MlApp,
    /// Number of clients.
    pub clients: usize,
    /// Mean end-to-end latency (network + inference), milliseconds.
    pub latency_ms: f64,
    /// Network share of the latency, milliseconds.
    pub network_ms: f64,
    /// Inference share, milliseconds.
    pub inference_ms: f64,
    /// Highest hop utilization after adaptation.
    pub max_utilization: f64,
    /// Quality clients could sustain (≤ the target's quality).
    pub quality: f64,
    /// Accuracy actually achievable at that quality.
    pub achieved_accuracy: f64,
    /// Whether the mean request misses the app deadline.
    pub deadline_miss: bool,
    /// Infrastructure cost of the topology (price-book units).
    pub cost: f64,
}

struct Scenario {
    graph: Graph,
    /// (client node, serving compute node, clients sharing that server).
    demands: Vec<(GNode, GNode, u32)>,
    server: InferenceServer,
}

/// 2.5GBASE-T access used by the ML-aware design.
fn access_2g5() -> EdgeAttr {
    EdgeAttr {
        bandwidth_bps: 2_500_000_000,
        latency_ns: 500,
    }
}

fn build_scenario(kind: TopologyKind, n: usize, bps: f64) -> Scenario {
    match kind {
        TopologyKind::Ring => {
            let mut b = industrial_ring(n, EdgeAttr::gigabit_local());
            // Brownfield ring: even the fog attach is gigabit. Rebuild
            // the fog attach link at 1G by constructing a fresh graph
            // is avoidable — industrial_ring attaches fog at 10G, so we
            // emulate the constrained attach by inserting a 1G hop.
            let fog = b.compute[0];
            let choke = b.graph.add_node(NodeKind::Switch, "fog-access");
            // Note: the existing 10G agg link stays, but routing by hop
            // count will still cross it; instead, route demands to a
            // fog behind a 1G link:
            let fog2 = b.graph.add_node(NodeKind::FogCompute, "fog-1g");
            b.graph
                .connect(b.switches[0], choke, EdgeAttr::gigabit_local());
            b.graph.connect(choke, fog2, EdgeAttr::gigabit_local());
            let _ = fog;
            let demands = b.clients.iter().map(|&c| (c, fog2, n as u32)).collect();
            Scenario {
                graph: b.graph,
                demands,
                server: InferenceServer {
                    tier: ComputeTier::Fog,
                    slots: 8,
                },
            }
        }
        TopologyKind::LeafSpine => {
            // Gigabit access *and* gigabit fabric (brownfield IT gear),
            // central fog pool behind one spine at 1G.
            let leaves = n.div_ceil(16).max(2);
            let gig = EdgeAttr::gigabit_local();
            let mut g = Graph::new();
            let spines: Vec<GNode> = (0..2)
                .map(|i| g.add_node(NodeKind::Switch, format!("spine{i}")))
                .collect();
            let leaf_nodes: Vec<GNode> = (0..leaves)
                .map(|i| g.add_node(NodeKind::Switch, format!("leaf{i}")))
                .collect();
            for &s in &spines {
                for &l in &leaf_nodes {
                    g.connect(s, l, gig);
                }
            }
            let mut clients = Vec::new();
            for &l in &leaf_nodes {
                for _ in 0..16 {
                    if clients.len() >= n {
                        break;
                    }
                    let c = g.add_node(NodeKind::Client, "client");
                    g.connect(l, c, gig);
                    clients.push(c);
                }
            }
            let fog = g.add_node(NodeKind::FogCompute, "fog0");
            g.connect(spines[0], fog, gig);
            let demands = clients.iter().map(|&c| (c, fog, n as u32)).collect();
            Scenario {
                graph: g,
                demands,
                server: InferenceServer {
                    tier: ComputeTier::Fog,
                    slots: 8,
                },
            }
        }
        TopologyKind::MlAware => {
            let d = design(
                n,
                ClientProfile {
                    bps_per_client: bps,
                    mean_packet: 1400,
                },
                &DesignConfig {
                    access: access_2g5(),
                    ..DesignConfig::default()
                },
            );
            let per_cluster = d.cluster_size as u32;
            let demands = d
                .built
                .clients
                .iter()
                .zip(&d.assignment)
                .map(|(&c, &s)| (c, s, per_cluster))
                .collect();
            Scenario {
                graph: d.built.graph,
                demands,
                server: InferenceServer {
                    tier: ComputeTier::Edge,
                    slots: 4,
                },
            }
        }
    }
}

/// Invert the rate model: quality whose frame size is `bytes`.
fn quality_for_bytes(profile: &MlAppProfile, bytes: f64) -> f64 {
    let frac = bytes / profile.raw_frame_bytes as f64;
    (((frac - 0.02) / 0.18).max(0.0)).sqrt().clamp(0.05, 1.0)
}

/// Evaluate one (topology, app, n) point.
pub fn evaluate_point(kind: TopologyKind, app: MlApp, n: usize, cfg: &StudyConfig) -> StudyPoint {
    let profile = app.profile();
    let q_target = min_quality_for_accuracy(&profile, cfg.accuracy_target)
        // steelcheck: allow(unwrap-in-lib): full quality always meets the caller-validated accuracy target
        .expect("target reachable at full quality");
    let scenario = build_scenario(kind, n, client_bps(&profile, q_target));

    // Route demands; accumulate per-edge frame arrival rates.
    let mut paths = Vec::with_capacity(scenario.demands.len());
    let mut edge_lambda = vec![0.0f64; scenario.graph.edge_count()];
    for &(c, s, _) in &scenario.demands {
        // steelcheck: allow(unwrap-in-lib): scenario graphs are built connected by construction
        let p = shortest_path(&scenario.graph, c, s, &HopWeight).expect("connected");
        for e in &p.edges {
            edge_lambda[e.0] += profile.fps;
        }
        paths.push(p);
    }

    // Adaptive-accuracy view: the largest frame size that would keep
    // every hop at or below the utilization ceiling, capped at the
    // target quality. This does NOT alter the latency evaluation.
    let mut max_bytes = f64::INFINITY;
    for (e, &lambda) in edge_lambda.iter().enumerate() {
        if lambda <= 0.0 {
            continue;
        }
        let cap = scenario.graph.edge_attr(GEdge(e)).bandwidth_bps as f64;
        max_bytes = max_bytes.min(cfg.rho_limit * cap / (lambda * 8.0));
    }
    let target_bytes = frame_bytes(&profile, q_target) as f64;
    let quality = quality_for_bytes(&profile, target_bytes.min(max_bytes)).min(q_target);
    let achieved_accuracy = accuracy(
        &profile,
        &InputDegradation {
            quality,
            frame_loss: 0.0,
            jitter: NanoDur::ZERO,
        },
    );
    // Latency is evaluated at the target quality.
    let bytes = target_bytes;

    // Per-demand latency: bottleneck whole-frame sojourn + per-hop
    // packet terms on the remaining hops.
    let pkt_bytes = profile.mean_packet as f64;
    let mut max_util = 0.0f64;
    let mut net_total_ns = 0.0f64;
    let mut inf_total_ns = 0.0f64;
    for (p, &(_, _, sharing)) in paths.iter().zip(&scenario.demands) {
        // Per hop: the whole-frame M/D/1 sojourn (if this were the
        // pipelining bottleneck) and the per-packet term (otherwise).
        let mut sojourns = Vec::with_capacity(p.edges.len());
        for e in &p.edges {
            let attr = scenario.graph.edge_attr(*e);
            let cap = attr.bandwidth_bps as f64;
            let lambda = edge_lambda[e.0];
            let frame_s = bytes * 8.0 / cap;
            let rho = lambda * frame_s;
            max_util = max_util.max(rho);
            // M/D/1 below the knee; linear overload penalty above it
            // (continuous at the knee), so latency is bounded and
            // monotone in offered load.
            let knee = cfg.rho_limit;
            let wait_s = if rho < knee {
                lambda * frame_s * frame_s / (2.0 * (1.0 - rho))
            } else {
                let at_knee = knee / (2.0 * (1.0 - knee));
                (at_knee + cfg.overload_slope * (rho - knee)) * frame_s
            };
            let rho_q = rho.min(knee);
            let pkt_ser_ns = pkt_bytes * 8.0 / cap * 1e9;
            let pkt_wait_ns = rho_q / (2.0 * (1.0 - rho_q)) * pkt_ser_ns;
            sojourns.push((
                (frame_s + wait_s) * 1e9,
                pkt_ser_ns + pkt_wait_ns + attr.latency_ns as f64,
            ));
        }
        // The slowest hop dominates frame delivery; the rest contribute
        // only packet-level latency (the frame pipelines through them).
        let mut net_ns = 0.0;
        if let Some((bi, _)) = sojourns
            .iter()
            .enumerate()
            // steelcheck: allow(unwrap-in-lib): scores are finite: built from bounded model terms, no division
            .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite"))
        {
            for (i, (sj, pkt)) in sojourns.iter().enumerate() {
                net_ns += if i == bi { *sj } else { *pkt };
            }
        }
        net_total_ns += net_ns;
        // steelcheck: allow(float-hygiene): response-time samples feed the report aggregate, never the sim clock
        inf_total_ns += scenario.server.response_time(&profile, sharing).as_nanos() as f64;
    }
    let k = scenario.demands.len() as f64;
    let network_ms = net_total_ns / k / 1e6;
    let inference_ms = inf_total_ns / k / 1e6;
    let latency_ms = network_ms + inference_ms;

    StudyPoint {
        topology: kind,
        app,
        clients: n,
        latency_ms,
        network_ms,
        inference_ms,
        max_utilization: max_util,
        quality,
        achieved_accuracy,
        deadline_miss: NanoDur::from_secs_f64(latency_ms / 1e3) > profile.deadline,
        cost: infrastructure_cost(&scenario.graph, &PriceBook::default()),
    }
}

/// The full Fig. 6 sweep: every (app, topology, client-count) point.
pub fn fig6(cfg: &StudyConfig) -> Vec<StudyPoint> {
    let mut out = Vec::new();
    for app in MlApp::ALL {
        for kind in TopologyKind::ALL {
            for &n in &cfg.client_counts {
                out.push(evaluate_point(kind, app, n, cfg));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(kind: TopologyKind, app: MlApp, n: usize) -> StudyPoint {
        evaluate_point(kind, app, n, &StudyConfig::default())
    }

    #[test]
    fn latencies_in_figure_band() {
        // Fig. 6's y-axis spans ≈2–6 ms; allow a generous envelope.
        for app in MlApp::ALL {
            for kind in TopologyKind::ALL {
                for n in [32, 256] {
                    let p = point(kind, app, n);
                    assert!(
                        p.latency_ms > 0.5 && p.latency_ms < 15.0,
                        "{} {} n={n}: {} ms",
                        kind.name(),
                        app.profile().name,
                        p.latency_ms
                    );
                }
            }
        }
    }

    #[test]
    fn ordering_matches_paper() {
        // Ring worst, leaf-spine slightly better, ML-aware clearly best.
        for app in MlApp::ALL {
            for n in [32, 64, 128, 256] {
                let ring = point(TopologyKind::Ring, app, n).latency_ms;
                let ls = point(TopologyKind::LeafSpine, app, n).latency_ms;
                let ml = point(TopologyKind::MlAware, app, n).latency_ms;
                assert!(
                    ml < ls && ls <= ring * 1.05,
                    "{} n={n}: ml {ml:.2} ls {ls:.2} ring {ring:.2}",
                    app.profile().name
                );
                assert!(
                    ml < 0.92 * ring,
                    "{} n={n}: ML-aware wins ({ml:.2} vs {ring:.2})",
                    app.profile().name
                );
            }
            // At full scale the gap is decisive, as in the figure.
            let ring = point(TopologyKind::Ring, app, 256).latency_ms;
            let ml = point(TopologyKind::MlAware, app, 256).latency_ms;
            assert!(
                ml < 0.5 * ring,
                "{} @256: ML-aware should win clearly ({ml:.2} vs {ring:.2})",
                app.profile().name
            );
        }
    }

    #[test]
    fn ring_latency_grows_with_clients() {
        for app in MlApp::ALL {
            let l32 = point(TopologyKind::Ring, app, 32).latency_ms;
            let l256 = point(TopologyKind::Ring, app, 256).latency_ms;
            assert!(
                l256 > 1.15 * l32,
                "{}: ring must degrade with scale ({l32:.2} → {l256:.2})",
                app.profile().name
            );
        }
    }

    #[test]
    fn ml_aware_stays_flat() {
        for app in MlApp::ALL {
            let l32 = point(TopologyKind::MlAware, app, 32).latency_ms;
            let l256 = point(TopologyKind::MlAware, app, 256).latency_ms;
            assert!(
                l256 < 1.3 * l32,
                "{}: ML-aware should scale ({l32:.2} → {l256:.2})",
                app.profile().name
            );
        }
    }

    #[test]
    fn constrained_topologies_sacrifice_accuracy_at_scale() {
        // The adaptation story: at 256 clients the ring/leaf-spine can
        // no longer carry target-quality input; the ML-aware design can.
        for app in MlApp::ALL {
            let ring = point(TopologyKind::Ring, app, 256);
            let ml = point(TopologyKind::MlAware, app, 256);
            assert!(
                ring.achieved_accuracy < 0.9 - 0.03,
                "{}: ring accuracy {}",
                app.profile().name,
                ring.achieved_accuracy
            );
            assert!(
                ml.achieved_accuracy >= 0.9 - 1e-6,
                "{}: ML-aware holds the target ({})",
                app.profile().name,
                ml.achieved_accuracy
            );
        }
    }

    #[test]
    fn ring_overloads_ml_aware_does_not() {
        let ring = point(TopologyKind::Ring, MlApp::DefectDetection, 256);
        let ml = point(TopologyKind::MlAware, MlApp::DefectDetection, 256);
        assert!(
            ring.max_utilization > 1.0,
            "ring util {}",
            ring.max_utilization
        );
        assert!(ml.max_utilization < 0.5, "ml util {}", ml.max_utilization);
    }

    #[test]
    fn ring_latency_monotone_in_clients() {
        for app in MlApp::ALL {
            let mut last = 0.0;
            for n in [32, 64, 128, 256] {
                let l = point(TopologyKind::Ring, app, n).latency_ms;
                assert!(
                    l >= last,
                    "{} n={n}: {l:.2} < {last:.2} (must be monotone)",
                    app.profile().name
                );
                last = l;
            }
        }
    }

    #[test]
    fn cost_ordering_ring_heaviest() {
        // A switch per cell makes the ring the most expensive build;
        // the ML-aware design buys edge servers yet stays far cheaper.
        let ring = point(TopologyKind::Ring, MlApp::DefectDetection, 128).cost;
        let ls = point(TopologyKind::LeafSpine, MlApp::DefectDetection, 128).cost;
        let ml = point(TopologyKind::MlAware, MlApp::DefectDetection, 128).cost;
        assert!(ring > ml, "ring {ring} vs ml {ml}");
        assert!(ml > ls, "ml {ml} vs leaf-spine {ls}");
    }

    #[test]
    fn fig6_full_sweep_shape() {
        let points = fig6(&StudyConfig::default());
        assert_eq!(points.len(), 2 * 3 * 4);
        for p in &points {
            if p.topology == TopologyKind::MlAware {
                assert!(!p.deadline_miss);
            }
        }
    }
}
