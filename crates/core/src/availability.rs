//! **Service availability math** (§2.2): nines, downtime budgets,
//! MTBF/MTTR composition, and the availability achieved by each
//! redundancy scheme.
//!
//! The paper's anchor numbers: industrial automation demands
//! ≥ 99.9999 % (≤ 31.5 s downtime/year), while data centers "typically
//! aim for monthly downtime of a few minutes, potentially multiples of
//! 31.5 s".

use steelworks_netsim::rng::SimRng;
use steelworks_netsim::time::NanoDur;
use steelworks_vplc::redundancy::takeover;

/// Seconds in a (non-leap) year.
pub const SECONDS_PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;

/// Downtime per year implied by an availability (0..1).
pub fn downtime_per_year(availability: f64) -> NanoDur {
    assert!((0.0..=1.0).contains(&availability));
    NanoDur::from_secs_f64((1.0 - availability) * SECONDS_PER_YEAR)
}

/// Availability implied by a yearly downtime budget.
pub fn availability_for_downtime(downtime_per_year: NanoDur) -> f64 {
    1.0 - downtime_per_year.as_secs_f64() / SECONDS_PER_YEAR
}

/// "k nines" as an availability (e.g. 6 → 0.999999).
pub fn nines(k: u32) -> f64 {
    1.0 - 10f64.powi(-(k as i32))
}

/// Steady-state availability from MTBF and MTTR.
pub fn availability_mtbf_mttr(mtbf: NanoDur, mttr: NanoDur) -> f64 {
    let up = mtbf.as_secs_f64();
    let down = mttr.as_secs_f64();
    up / (up + down)
}

/// Availability of components in series (all must be up).
pub fn series(components: &[f64]) -> f64 {
    components.iter().product()
}

/// Availability of redundant components in parallel (any one suffices).
pub fn parallel(components: &[f64]) -> f64 {
    1.0 - components.iter().map(|a| 1.0 - a).product::<f64>()
}

/// Redundancy schemes evaluated for vPLC control (§4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// No standby: every failure costs a full MTTR.
    None,
    /// Classical hardware pair (dedicated sync links).
    HardwarePair,
    /// Kubernetes-orchestrated standby/restart.
    Kubernetes,
    /// InstaPLC in-network switchover.
    InstaPlc {
        /// I/O cycle time.
        cycle: NanoDur,
        /// Silence threshold in cycles.
        switchover_cycles: u32,
    },
}

impl Scheme {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::None => "no redundancy",
            Scheme::HardwarePair => "hardware pair",
            Scheme::Kubernetes => "kubernetes standby",
            Scheme::InstaPlc { .. } => "InstaPLC",
        }
    }

    /// Sample the control-loss interval caused by one primary failure.
    pub fn sample_outage(&self, rng: &mut SimRng, mttr: NanoDur) -> NanoDur {
        match self {
            Scheme::None => mttr,
            Scheme::HardwarePair => takeover::hardware_pair(rng),
            Scheme::Kubernetes => takeover::kubernetes(rng),
            Scheme::InstaPlc {
                cycle,
                switchover_cycles,
            } => takeover::in_network(*cycle, *switchover_cycles, NanoDur::from_micros(4)),
        }
    }
}

/// Monte-Carlo estimate of a scheme's yearly control downtime and the
/// resulting availability, given a primary-failure rate.
#[derive(Clone, Copy, Debug)]
pub struct SchemeEstimate {
    /// Expected control-loss time per year.
    pub downtime_per_year: NanoDur,
    /// Resulting availability.
    pub availability: f64,
    /// Whether it clears the six-nines OT requirement.
    pub meets_ot_requirement: bool,
}

/// Estimate a scheme: `failures_per_year` primary failures, each
/// costing one sampled outage; `mttr` applies to the no-redundancy
/// case (full repair).
pub fn estimate(
    scheme: Scheme,
    failures_per_year: f64,
    mttr: NanoDur,
    samples: u32,
    seed: u64,
) -> SchemeEstimate {
    let mut rng = SimRng::seed_from_u64(seed);
    let mean_outage_s: f64 = (0..samples)
        .map(|_| scheme.sample_outage(&mut rng, mttr).as_secs_f64())
        .sum::<f64>()
        / samples as f64;
    let downtime_s = mean_outage_s * failures_per_year;
    let availability = 1.0 - downtime_s / SECONDS_PER_YEAR;
    SchemeEstimate {
        downtime_per_year: NanoDur::from_secs_f64(downtime_s),
        availability,
        meets_ot_requirement: availability >= nines(6),
    }
}

/// Expected yearly downtime of a redundant pair with imperfect
/// switchover *coverage*: a fraction `coverage` of primary failures is
/// caught and masked by the takeover mechanism (costing `takeover`),
/// the rest are uncovered (undetected primary hang, split brain, twin
/// desync, ...) and cost a full `mttr`. Coverage is the quantity real
/// HA engineering fights over; availability is brutally sensitive to
/// it, which this model makes explicit.
pub fn covered_downtime_per_year(
    failures_per_year: f64,
    takeover: NanoDur,
    mttr: NanoDur,
    coverage: f64,
) -> NanoDur {
    assert!((0.0..=1.0).contains(&coverage), "coverage is a probability");
    let per_failure = coverage * takeover.as_secs_f64() + (1.0 - coverage) * mttr.as_secs_f64();
    NanoDur::from_secs_f64(failures_per_year * per_failure)
}

/// The minimum coverage a scheme needs to hold six nines, given its
/// takeover time, failure rate and repair time. `None` when even
/// perfect coverage is not enough.
pub fn required_coverage_for_six_nines(
    failures_per_year: f64,
    takeover: NanoDur,
    mttr: NanoDur,
) -> Option<f64> {
    let budget = downtime_per_year(nines(6)).as_secs_f64();
    let t = takeover.as_secs_f64();
    let m = mttr.as_secs_f64();
    let per_failure_budget = budget / failures_per_year;
    if per_failure_budget < t {
        return None; // takeover alone already blows the budget
    }
    if m <= per_failure_budget {
        return Some(0.0); // even uncovered failures fit
    }
    // c·t + (1−c)·m = budget/failures  ⇒  c = (m − budget/f)/(m − t)
    Some(((m - per_failure_budget) / (m - t)).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_nines_is_thirty_one_and_a_half_seconds() {
        // The paper's §2.2 anchor: 99.9999 % ⇒ < 31.5 s/year.
        let d = downtime_per_year(nines(6));
        let secs = d.as_secs_f64();
        assert!((secs - 31.536).abs() < 0.01, "{secs}");
    }

    #[test]
    fn dc_monthly_minutes_is_multiples_of_ot_budget() {
        // "A few minutes monthly" — say 4 min/month = 48 min/year.
        let dc_downtime = NanoDur::from_secs(48 * 60);
        let a = availability_for_downtime(dc_downtime);
        assert!(a < nines(5), "DC practice is under five nines: {a}");
        // 48 min/yr is ~91 multiples of 31.5 s.
        assert!(dc_downtime.as_secs_f64() / 31.5 > 80.0);
    }

    #[test]
    fn nines_round_trip() {
        for k in 1..=7 {
            let a = nines(k);
            let d = downtime_per_year(a);
            assert!((availability_for_downtime(d) - a).abs() < 1e-9);
        }
    }

    #[test]
    fn mtbf_mttr() {
        // MTBF 1 year, MTTR 31.5 s ≈ six nines.
        let a =
            availability_mtbf_mttr(NanoDur::from_secs(31_536_000), NanoDur::from_secs_f64(31.5));
        assert!(a >= nines(6) - 1e-7, "{a}");
    }

    #[test]
    fn series_parallel_composition() {
        let a = series(&[0.99, 0.99]);
        assert!((a - 0.9801).abs() < 1e-9);
        let b = parallel(&[0.99, 0.99]);
        assert!((b - 0.9999).abs() < 1e-9);
        assert!(parallel(&[0.9, 0.9, 0.9]) > series(&[0.9, 0.9, 0.9]));
    }

    #[test]
    fn scheme_ordering() {
        // With monthly primary failures (12/yr, pessimistic for vPLC
        // hosts) and 30 min MTTR:
        let mttr = NanoDur::from_secs(1800);
        let none = estimate(Scheme::None, 12.0, mttr, 2000, 1);
        let hw = estimate(Scheme::HardwarePair, 12.0, mttr, 2000, 1);
        let k8s = estimate(Scheme::Kubernetes, 12.0, mttr, 2000, 1);
        let insta = estimate(
            Scheme::InstaPlc {
                cycle: NanoDur::from_micros(1_500),
                switchover_cycles: 2,
            },
            12.0,
            mttr,
            2000,
            1,
        );
        assert!(none.downtime_per_year > k8s.downtime_per_year);
        assert!(k8s.downtime_per_year > hw.downtime_per_year);
        assert!(hw.downtime_per_year > insta.downtime_per_year);
        // Only InstaPLC clears six nines at this failure rate.
        assert!(!none.meets_ot_requirement);
        assert!(!k8s.meets_ot_requirement);
        assert!(insta.meets_ot_requirement, "{:?}", insta);
    }

    #[test]
    fn hardware_pair_meets_six_nines_only_at_low_failure_rates() {
        let mttr = NanoDur::from_secs(1800);
        // 2 failures/yr × ≤300 ms ≤ 0.6 s — fine.
        let rare = estimate(Scheme::HardwarePair, 2.0, mttr, 2000, 2);
        assert!(rare.meets_ot_requirement);
        // 400 failures/yr × ~175 ms ≈ 70 s — breached.
        let frequent = estimate(Scheme::HardwarePair, 400.0, mttr, 2000, 2);
        assert!(!frequent.meets_ot_requirement);
    }

    #[test]
    fn coverage_dominates_availability() {
        let takeover = NanoDur::from_millis(5);
        let mttr = NanoDur::from_secs(1800);
        // Perfect coverage: 12 failures x 5 ms = 60 ms/yr.
        let perfect = covered_downtime_per_year(12.0, takeover, mttr, 1.0);
        assert!(perfect < NanoDur::from_secs(1));
        // 99% coverage: the 1% uncovered failures cost 0.12 x 1800 s.
        let good = covered_downtime_per_year(12.0, takeover, mttr, 0.99);
        assert!(good > NanoDur::from_secs(200));
        // Six nines (31.5 s) at 12 failures/yr needs coverage ≥ ~99.85%.
        let c = required_coverage_for_six_nines(12.0, takeover, mttr).unwrap();
        assert!(c > 0.998 && c < 0.999, "c = {c}");
        let at_c = covered_downtime_per_year(12.0, takeover, mttr, c);
        assert!(
            (at_c.as_secs_f64() - 31.536).abs() < 0.5,
            "{}",
            at_c.as_secs_f64()
        );
    }

    #[test]
    fn slow_takeover_cannot_reach_six_nines() {
        // A 55 s k8s-style reschedule at 12 failures/yr exceeds the
        // budget even with perfect coverage.
        assert_eq!(
            required_coverage_for_six_nines(12.0, NanoDur::from_secs(55), NanoDur::from_secs(1800)),
            None
        );
        // Rare failures make even uncovered repairs acceptable... not
        // at 30 min MTTR, but at 20 s MTTR yes.
        assert_eq!(
            required_coverage_for_six_nines(1.0, NanoDur::from_millis(100), NanoDur::from_secs(20)),
            Some(0.0)
        );
    }

    #[test]
    fn estimates_deterministic() {
        let a = estimate(Scheme::Kubernetes, 10.0, NanoDur::from_secs(60), 500, 9);
        let b = estimate(Scheme::Kubernetes, 10.0, NanoDur::from_secs(60), 500, 9);
        assert_eq!(a.downtime_per_year, b.downtime_per_year);
    }
}
