//! **steelserve** — the cached scenario-serving layer.
//!
//! The workspace's determinism contract (steelcheck + the hermetic
//! gate) guarantees that a figure artifact is a pure function of its
//! scenario spec. This crate turns that guarantee into a service:
//!
//! - [`spec`] — the declarative scenario format: a small integer-only
//!   JSON schema that expresses every figure in `results/*.txt` as
//!   data, canonicalizes it, and derives a SHA-256 content address.
//! - [`figures`] — the figure pipelines as `Spec -> String` library
//!   functions (the historical binaries, ported byte-for-byte).
//! - [`cache`] — the content-addressed result cache under
//!   `results/cache/`: `hash(spec) → bytes`, valid forever; corrupt
//!   entries recompute instead of panicking.
//! - [`http`] + [`server`] — a std-only TCP + minimal HTTP/1.1 server
//!   (`POST /run`) with in-flight request dedup and a steelpar-backed
//!   miss executor, plus the keep-alive client the load generator and
//!   scripts drive it with.
//! - [`json`] / [`sha`] — the zero-dependency wire format and hash
//!   primitive underneath all of the above.
//!
//! The `steelserve` binary wraps this into `serve` / `post` /
//! `shutdown` / `verify` / `key` subcommands; `steelload` (in
//! `crates/bench`) is the closed-loop load generator that publishes
//! `results/BENCH_serve.json`.

pub mod cache;
pub mod figures;
pub mod http;
pub mod json;
pub mod server;
pub mod sha;
pub mod spec;
