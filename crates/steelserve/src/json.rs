//! A minimal hand-rolled JSON reader/writer for the scenario-spec
//! format — the serving layer's one wire format, kept deliberately
//! small so it can be audited like the rest of the zero-dependency
//! workspace.
//!
//! Two sharp edges are intentional:
//!
//! - **Objects are `BTreeMap`s.** Key order is sorted everywhere, so a
//!   value has exactly one [`Value::compact`] rendering — the property
//!   the content-addressed cache key rests on.
//! - **Numbers are `i64` only.** Scenario specs scale their units
//!   (microseconds, percent) instead of carrying floats; float
//!   canonicalization ambiguity (`1e3` vs `1000.0` vs `1000.00`) would
//!   otherwise split the cache on equivalent specs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (integer-only numbers; sorted object keys).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number. Floats are rejected at parse time.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; `BTreeMap` so iteration (and serialization) is sorted.
    Obj(BTreeMap<String, Value>),
}

/// A parse error with the byte offset it was detected at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Canonical rendering: minimal whitespace, sorted keys, escaped
    /// strings. Two structurally equal values always produce the same
    /// bytes — this is the hashing form.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Human-oriented rendering: two-space indentation, sorted keys.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Value::Obj(map) => {
                let keys: Vec<&String> = map.keys().collect();
                write_seq(out, indent, depth, '{', '}', keys.len(), |out, i| {
                    write_escaped(out, keys[i]);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    map[keys[i]].write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Object field access (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key→value map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// Render `[..]`/`{..}` bodies with shared indentation logic.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // steelcheck: allow(hot-path-alloc): control-character escape, cold path; serving strings are printable in practice
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Nesting ceiling: specs are a couple of levels deep; a hostile
/// request must not be able to overflow the parser's stack.
const MAX_DEPTH: usize = 32;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(Value::Null),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err(
                "floating-point numbers are not allowed in specs; scale the unit instead \
                 (e.g. period_us, accuracy_pct)",
            ));
        }
        let digits = &self.bytes[start + usize::from(self.bytes[start] == b'-')..self.pos];
        if digits.len() > 1 && digits[0] == b'0' {
            return Err(self.err("leading zeros are not valid JSON"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<i64>().ok())
            .map(Value::Int)
            .ok_or_else(|| self.err("invalid integer literal"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            let c = char::from_u32(hex).ok_or_else(|| {
                                self.err("\\u escape is not a scalar value (surrogate pairs unsupported)")
                            })?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|seq| std::str::from_utf8(seq).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            // steelcheck: allow(hot-path-alloc): the key is moved into the map; the clone only feeds the duplicate-key error
            if map.insert(key.clone(), value).is_some() {
                // steelcheck: allow(hot-path-alloc): error path, parse aborts here
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        Value::parse(s).expect(s)
    }

    #[test]
    fn scalars_round_trip() {
        for (text, compact) in [
            ("null", "null"),
            ("true", "true"),
            ("false", "false"),
            ("42", "42"),
            ("-7", "-7"),
            ("\"hi\"", "\"hi\""),
            ("  12  ", "12"),
        ] {
            assert_eq!(parse(text).compact(), compact);
        }
    }

    #[test]
    fn object_keys_sort_in_compact_form() {
        let v = parse(r#"{"zeta": 1, "alpha": {"b": 2, "a": 3}, "mid": []}"#);
        assert_eq!(v.compact(), r#"{"alpha":{"a":3,"b":2},"mid":[],"zeta":1}"#);
    }

    #[test]
    fn pretty_then_parse_is_identity() {
        let v = parse(r#"{"b": [1, 2, {"x": "y"}], "a": null}"#);
        assert_eq!(Value::parse(&v.pretty()).expect("pretty re-parses"), v);
        assert_eq!(Value::parse(&v.compact()).expect("compact re-parses"), v);
    }

    #[test]
    fn floats_are_rejected_with_guidance() {
        for bad in ["1.5", "[1e3]", "{\"x\": 0.25}", "2E8"] {
            let err = Value::parse(bad).expect_err(bad);
            assert!(err.msg.contains("scale the unit"), "{bad}: {err}");
        }
    }

    #[test]
    fn malformed_documents_are_errors() {
        for bad in [
            "", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2",
            "{\"a\":1,\"a\":2}", "nulll", "[01]",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn leading_zero_is_rejected() {
        // "[01]" above covers the array case; a bare leading-zero int
        // parses as 0 followed by trailing garbage.
        assert!(Value::parse("01").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""line\nquote\"tab\tback\\u\u0041""#);
        assert_eq!(v, Value::Str("line\nquote\"tab\tback\\uA".to_string()));
        let rendered = v.compact();
        assert_eq!(parse(&rendered), v);
    }

    #[test]
    fn control_chars_escape_on_output() {
        let v = Value::Str("\u{0001}".to_string());
        assert_eq!(v.compact(), "\"\\u0001\"");
        assert_eq!(parse(&v.compact()), v);
    }

    #[test]
    fn unicode_passes_through() {
        let v = parse("\"gef\u{00e4}hrlich \u{2603}\"");
        assert_eq!(v.as_str(), Some("gef\u{00e4}hrlich \u{2603}"));
        assert_eq!(parse(&v.compact()), v);
    }

    #[test]
    fn depth_limit_holds() {
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        let err = Value::parse(&deep).expect_err("too deep");
        assert!(err.msg.contains("nesting"));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "s": "x", "a": [1], "o": {}}"#);
        assert_eq!(v.get("n").and_then(Value::as_int), Some(3));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(Value::as_arr).map(<[Value]>::len), Some(1));
        assert!(v.get("o").and_then(Value::as_obj).is_some_and(BTreeMap::is_empty));
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("n").is_none());
    }
}
