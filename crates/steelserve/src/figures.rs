//! Figure pipelines as spec-driven library functions.
//!
//! Each function here is the body of one of the historical figure
//! binaries (`crates/bench/src/bin/*.rs`), ported verbatim except that
//! it (a) takes its parameters from a [`Spec`] instead of hard-coded
//! constants and (b) renders into a `String` instead of stdout — the
//! string IS the figure artifact (`results/<figure>.txt`), so it can be
//! cached, served, and byte-compared. With the default specs in
//! `specs/`, every function reproduces its committed `results/*.txt`
//! byte-for-byte at any `--jobs` count.
//!
//! The binaries remain as thin wrappers: load spec, call
//! [`run_spec`], print.

use crate::spec::Spec;
use std::fmt::Write as _;
use steelworks_core::prelude::*;
use steelworks_mlnet::prelude::MlApp;
use steelworks_netsim::rng::SimRng;
use steelworks_netsim::time::{NanoDur, Nanos};
use steelworks_xdpsim::prelude::{NicModel, PcieModel, ReflectVariant};

/// Append one line (`writeln!` into a `String` cannot fail).
macro_rules! wln {
    ($out:expr) => { $out.push('\n') };
    ($out:expr, $($arg:tt)*) => {{
        let _ = writeln!($out, $($arg)*);
    }};
}

/// The figure-output analogue of `steelworks_bench::check`: records a
/// shape assertion in the artifact itself (byte-compatible with the
/// binary version, which prints the same line to stdout).
fn check(out: &mut String, label: &str, ok: bool) {
    if ok {
        wln!(out, "# CHECK ok   : {label}");
    } else {
        wln!(out, "# CHECK FAIL : {label}");
    }
}

/// Execute `spec` on a `jobs`-wide steelpar pool and return the figure
/// artifact. Deterministic: the bytes depend only on the spec, never on
/// the job count, host, or wall clock.
pub fn run_spec(spec: &Spec, jobs: usize) -> String {
    let mut out = String::new();
    match spec {
        Spec::Fig1 { papers, seed } => fig1(&mut out, *papers, *seed, jobs),
        Spec::Fig4 {
            cycles,
            seed,
            loops,
        } => fig4(&mut out, *cycles, *seed, *loops, jobs),
        Spec::Fig5 {
            seed,
            crash_at_ms,
            migrate_at_ms,
            failback_at_ms,
        } => fig5(&mut out, *seed, *crash_at_ms, *migrate_at_ms, *failback_at_ms, jobs),
        Spec::Fig6 {
            accuracy_pct,
            client_counts,
        } => fig6(&mut out, *accuracy_pct, client_counts, jobs),
        Spec::Challenges { trials } => challenges(&mut out, *trials, jobs),
        Spec::Campus { scales } => fig_campus(&mut out, scales, jobs),
    }
    out
}

/// Fig. 1: industrial-networking term occurrences over the calibrated
/// synthetic corpus. (The real-corpus directory mode stays in the
/// binary — a directory of copyrighted PDFs is not expressible as a
/// cacheable spec.)
fn fig1(out: &mut String, papers: u64, seed: u64, jobs: usize) {
    use steelworks_corpus::prelude::*;

    wln!(out, "# Fig. 1 over the calibrated synthetic corpus (seed {seed:#x})");
    let texts: Vec<String> = generate(papers as usize, seed)
        .into_iter()
        .map(|p| p.text)
        .collect();
    out.push_str(&fig1_corpus_report(&texts, false, jobs));
}

/// The analysis + rendering tail of Fig. 1, shared between the
/// spec-driven synthetic path and the figure binary's real-corpus-dir
/// mode. `published_check_waived` marks a user-supplied corpus, whose
/// totals legitimately differ from the published counts.
pub fn fig1_corpus_report(texts: &[String], published_check_waived: bool, jobs: usize) -> String {
    use steelworks_corpus::prelude::*;

    let mut report = String::new();
    let out = &mut report;

    // Contiguous document chunks, one per worker; group counts merge by
    // summing the measured column.
    let n_chunks = jobs.min(texts.len()).max(1);
    let chunk_size = texts.len().div_ceil(n_chunks).max(1);
    let chunks: Vec<&[String]> = texts.chunks(chunk_size).collect();
    let mut partials = steelpar::run(jobs, chunks, |chunk| {
        analyze(chunk.iter().map(|s| s.as_str()))
    })
    .into_iter();
    let mut counts = partials
        .next()
        .unwrap_or_else(|| analyze(std::iter::empty()));
    for partial in partials {
        for (acc, p) in counts.iter_mut().zip(partial) {
            acc.measured += p.measured;
        }
    }

    let bars: Vec<(String, u64, u64)> = counts
        .iter()
        .map(|c| (c.label.to_string(), c.measured, c.published))
        .collect();
    wln!(
        out,
        "{}",
        format_bars(
            "Fig. 1 — occurrences (with permutations) in proceedings corpus",
            &bars
        )
    );

    let (ot, min_it) = research_gap(&counts);
    wln!(out, "# research gap: {ot} total OT-side mentions vs {min_it} for the rarest IT term");
    check(out, "all 13 groups measured", counts.len() == 13);
    check(
        out,
        "synthetic corpus matches published counts",
        published_check_waived || counts.iter().all(|c| c.measured == c.published),
    );
    check(out, "gap exceeds 25x", min_it > 25 * ot.max(1));
    report
}

enum Fig4Scenario {
    Left(ReflectVariant),
    Flows(u32),
}

enum Fig4Outcome {
    Left((&'static str, Vec<(f64, f64)>)),
    Flows(u32, ReflectionOutcome),
}

/// Fig. 4: Traffic Reflection delay/jitter CDFs (six eBPF/XDP variants,
/// 1 vs 25 concurrent RT flows). With `loops != 0`, the bounded-loop
/// corpus panel is appended after the legacy output, so a `loops: 0`
/// spec reproduces the pre-corpus artifact byte-for-byte.
fn fig4(out: &mut String, cycles: u64, seed: u64, loops: u64, jobs: usize) {
    wln!(out, "# Fig. 4 — Traffic Reflection (seed {seed:#x}, {cycles} cycles/flow)\n");

    let scenarios: Vec<Fig4Scenario> = ReflectVariant::ALL
        .iter()
        .map(|&v| Fig4Scenario::Left(v))
        .chain([1u32, 25].iter().map(|&f| Fig4Scenario::Flows(f)))
        .collect();
    let outcomes = steelpar::run(jobs, scenarios, move |s| match s {
        Fig4Scenario::Left(v) => Fig4Outcome::Left(fig4_left_one(v, seed, cycles)),
        Fig4Scenario::Flows(f) => Fig4Outcome::Flows(f, fig4_right_one(f, seed, cycles)),
    });
    let mut left = Vec::new();
    let mut flow_outs = Vec::new();
    for o in outcomes {
        match o {
            Fig4Outcome::Left(l) => left.push(l),
            Fig4Outcome::Flows(f, o) => flow_outs.push((f, o)),
        }
    }

    // Left panel.
    wln!(out, "## Left: delay CDFs per eBPF program variant (1 flow)");
    let mut medians = std::collections::BTreeMap::new();
    for (name, cdf) in &left {
        wln!(out, "{}", format_cdf(&format!("delay, {name}"), "us", cdf, 20));
        let median = cdf
            .iter()
            .find(|(_, p)| *p >= 0.5)
            .map(|(v, _)| *v)
            .unwrap_or(0.0);
        medians.insert(*name, median);
    }
    wln!(out, "# medians (µs):");
    for v in ReflectVariant::ALL {
        wln!(out, "#   {:8} {:6.2}", v.name(), medians[v.name()]);
    }

    // §2.1's missing metrics: worst case and consecutive jitter bursts.
    wln!(out, "\n## Worst-case & burst metrics (the numbers §2.1 says evaluations omit)");
    for (flows, o) in &mut flow_outs {
        let flows = *flows;
        wln!(
            out,
            "# {flows:>2} flow(s): worst delay {:.2} µs | >1 µs-jitter cycles {:.3} % | longest burst {} | trips watchdog x3: {}",
            o.worst_delay_us(),
            o.over_threshold_fraction * 100.0,
            o.max_jitter_burst,
            o.would_trip_watchdog(3),
        );
        if flows == 1 {
            check(
                out,
                "one quiet flow never halts a watchdog-3 device",
                !o.would_trip_watchdog(3),
            );
        }
    }

    // Right panel.
    wln!(out, "\n## Right: jitter CDFs, 1 vs 25 flows (TS variant)");
    let right: Vec<(u32, Vec<(f64, f64)>)> = flow_outs
        .iter_mut()
        .map(|(flows, o)| (*flows, o.jitters.cdf(200)))
        .collect();
    let mut p99 = Vec::new();
    for (flows, cdf) in &right {
        wln!(
            out,
            "{}",
            format_cdf(&format!("jitter, {flows} flow(s)"), "ns", cdf, 20)
        );
        let v99 = cdf
            .iter()
            .find(|(_, p)| *p >= 0.99)
            .map(|(v, _)| *v)
            .unwrap_or(0.0);
        p99.push((*flows, v99));
        wln!(out, "#   {flows} flow(s): p99 jitter = {v99:.0} ns");
    }

    // Shape checks against the paper.
    let base = medians["Base"];
    let ts_rb = medians["TS-RB"];
    let ts_d_rb = medians["TS-D-RB"];
    check(
        out,
        "delay medians in the ~5-25 µs band",
        medians.values().all(|&m| m > 4.0 && m < 25.0),
    );
    check(
        out,
        "ring-buffer variants separate from the rest (paper: left vs right cluster)",
        ts_rb > base + 2.0 && ts_d_rb > base + 2.0,
    );
    check(
        out,
        "small code changes shift the CDF (TS > Base)",
        medians["TS"] >= base,
    );
    check(
        out,
        "25 flows inflate jitter vs 1 flow (paper: right panel)",
        p99[1].1 > 1.5 * p99[0].1,
    );
    check(
        out,
        "jitter in the sub-microsecond-to-µs band",
        p99[1].1 < 5_000.0,
    );

    if loops != 0 {
        fig4_loops(out, cycles, seed, base, jobs);
    }
}

/// The bounded-loop corpus companion panel: three loop programs the
/// interval verifier accepts with a derived fuel bound, run through the
/// same reflection harness as the straight-line variants.
fn fig4_loops(out: &mut String, cycles: u64, seed: u64, base_median: f64, jobs: usize) {
    use steelworks_xdpsim::prelude::{loop_variant, standard_maps, verify, LoopVariant};

    wln!(out, "\n## Loop corpus: bounded-loop variants (interval verifier, derived fuel)");
    let results = steelpar::run(jobs, LoopVariant::ALL.to_vec(), move |lv| {
        fig4_loop_one(lv, seed, cycles)
    });
    let mut medians = std::collections::BTreeMap::new();
    for (name, cdf) in &results {
        wln!(out, "{}", format_cdf(&format!("delay, {name}"), "us", cdf, 20));
        let median = cdf
            .iter()
            .find(|(_, p)| *p >= 0.5)
            .map(|(v, _)| *v)
            .unwrap_or(0.0);
        medians.insert(*name, median);
    }
    wln!(out, "# medians (µs):");
    for lv in LoopVariant::ALL {
        wln!(out, "#   {:8} {:6.2}", lv.name(), medians[lv.name()]);
    }

    // The static side of the panel: what the verifier proved about each
    // program, including the fuel bound the VM enforces at runtime.
    wln!(out, "# verifier: insns / loops / derived fuel (max_insns)");
    let (maps, _rb) = standard_maps();
    let mut all_bounded = true;
    for lv in LoopVariant::ALL {
        match verify(&loop_variant(lv), &maps) {
            Ok(stats) => {
                all_bounded &= stats.loops >= 1 && stats.max_insns > stats.insns as u64;
                wln!(
                    out,
                    "#   {:8} {:>4} insns, {} loop(s), fuel {:>5}",
                    lv.name(),
                    stats.insns,
                    stats.loops,
                    stats.max_insns
                );
            }
            Err(e) => {
                all_bounded = false;
                wln!(out, "#   {:8} REJECTED: {e}", lv.name());
            }
        }
    }

    check(
        out,
        "every loop program verifies with a loop and a finite fuel bound",
        all_bounded,
    );
    check(
        out,
        "loop variants cost more than the straight-line Base",
        LoopVariant::ALL.iter().all(|lv| medians[lv.name()] > base_median),
    );
    check(
        out,
        "loop delays stay within the reflection band (< 60 µs median)",
        medians.values().all(|&m| m > 0.0 && m < 60.0),
    );
}

enum Fig5Job {
    Crash,
    Migration,
}

/// Fig. 5: InstaPLC switchover plus the planned-migration companion.
fn fig5(
    out: &mut String,
    seed: u64,
    crash_at_ms: u64,
    migrate_at_ms: u64,
    failback_at_ms: u64,
    jobs: usize,
) {
    let cfg = ScenarioConfig {
        crash_at: Nanos::from_millis(crash_at_ms),
        seed,
        ..ScenarioConfig::default()
    };
    wln!(
        out,
        "# Fig. 5 — InstaPLC switchover (cycle {} µs, watchdog ×{}, crash at {} ms)\n",
        cfg.cycle_time.as_micros_f64(),
        cfg.watchdog_factor,
        cfg.crash_at.as_millis_f64()
    );
    // The crash scenario and the planned-migration companion are
    // independent simulations; run both on the worker pool and print in
    // the original order.
    let cfg2 = cfg.clone();
    let mut results = steelpar::run(jobs, vec![Fig5Job::Crash, Fig5Job::Migration], move |j| {
        match j {
            Fig5Job::Crash => run_scenario(&cfg2),
            Fig5Job::Migration => run_migration_scenario(
                &ScenarioConfig {
                    crash_at: Nanos::from_secs(100), // never
                    ..cfg2.clone()
                },
                Nanos::from_millis(migrate_at_ms),
                Some(Nanos::from_millis(failback_at_ms)),
            ),
        }
    })
    .into_iter();
    let (r, m) = match (results.next(), results.next()) {
        (Some(r), Some(m)) => (r, m),
        // steelcheck: allow(panic-reachable): steelpar::run returns exactly one result per job
        _ => unreachable!("steelpar returns one result per job"),
    };

    wln!(
        out,
        "{}",
        format_series("Fig. 5a — from vPLC1 (pkts / 50 ms)", 50.0, &r.vplc1_series)
    );
    wln!(
        out,
        "{}",
        format_series("Fig. 5a — from vPLC2 (pkts / 50 ms)", 50.0, &r.vplc2_series)
    );
    wln!(
        out,
        "{}",
        format_series("Fig. 5b — to I/O (pkts / 50 ms)", 50.0, &r.io_series)
    );

    match r.switchover_at {
        Some(t) => wln!(
            out,
            "# switchover completed at t = {:.3} ms ({:.3} ms after the crash)",
            t.as_millis_f64(),
            t.as_millis_f64() - cfg.crash_at.as_millis_f64()
        ),
        None => wln!(out, "# switchover: none"),
    }
    wln!(out, "# I/O safe-state entries: {}", r.io_safe_entries);
    wln!(out, "# twin connects answered: {}", r.twin_accepts);

    // Shape checks against the paper. (Spec validation bounds
    // `crash_at_ms` to 400..=2800, so the slices below stay in range
    // for the 3 s / 50 ms-binned series.)
    let crash_bin = (cfg.crash_at.as_nanos() / 50_000_000) as usize;
    check(
        out,
        "steady ~33 pkts/50ms before the crash (paper: 20-50 band)",
        r.vplc1_series[5..crash_bin - 1]
            .iter()
            .all(|&c| (25..=40).contains(&c)),
    );
    check(
        out,
        "vPLC1 stops at the crash",
        r.vplc1_series[crash_bin + 1..].iter().all(|&c| c == 0),
    );
    check(
        out,
        "vPLC2 transmits continuously (twin, then device)",
        r.vplc2_series[3..].iter().all(|&c| c >= 25),
    );
    check(
        out,
        "I/O stays controlled in every bin after warm-up",
        r.io_series[1..].iter().all(|&c| c >= 25),
    );
    check(
        out,
        "switchover within a few cycles of the crash",
        r.switchover_at
            .map(|t| t - cfg.crash_at < NanoDur::from_millis(5))
            .unwrap_or(false),
    );
    check(out, "no watchdog expiry at the device", r.io_safe_entries == 0);

    // Companion experiment: planned (hitless) migration instead of a
    // crash — the P4PLC capability the paper cites.
    wln!(out, "\n## Planned migration (no crash: control moves and moves back)");
    wln!(
        out,
        "# migration at {:.1} s, failback at {:.1} s; I/O received {} frames, safe-state entries {}",
        migrate_at_ms as f64 / 1000.0,
        failback_at_ms as f64 / 1000.0,
        m.io_received,
        m.io_safe_entries
    );
    check(out, "planned migration is hitless", m.io_safe_entries == 0);
    check(
        out,
        "both vPLCs alive throughout (demoted primary keeps running)",
        m.vplc1_series[5..].iter().all(|&c| c >= 25)
            && m.vplc2_series[5..].iter().all(|&c| c >= 25),
    );
}

/// Fig. 6: ML inference latency vs client count for three topologies ×
/// two applications, plus the accuracy/cost view.
fn fig6(out: &mut String, accuracy_pct: u64, client_counts: &[u64], jobs: usize) {
    let cfg = StudyConfig {
        accuracy_target: accuracy_pct as f64 / 100.0,
        client_counts: client_counts.iter().map(|&n| n as usize).collect(),
        ..StudyConfig::default()
    };
    wln!(
        out,
        "# Fig. 6 — ML-aware topologies (accuracy target {:.2})\n",
        cfg.accuracy_target
    );
    let mut grid = Vec::new();
    for app in MlApp::ALL {
        for kind in TopologyKind::ALL {
            for &n in &cfg.client_counts {
                grid.push((app, kind, n));
            }
        }
    }
    let cfg2 = cfg.clone();
    let points = steelpar::run(jobs, grid, move |(app, kind, n)| {
        evaluate_point(kind, app, n, &cfg2)
    });

    // Spec validation guarantees at least one client count; the largest
    // anchors the accuracy/cost companion view (256 in the shipped spec).
    let showcase = cfg.client_counts.last().copied().unwrap_or(256);
    let smallest = cfg.client_counts.first().copied().unwrap_or(32);

    for app in MlApp::ALL {
        let name = app.profile().name;
        wln!(out, "## {name}");
        let mut rows = Vec::new();
        for &n in &cfg.client_counts {
            let mut row = vec![n.to_string()];
            for kind in TopologyKind::ALL {
                let p = points
                    .iter()
                    .find(|p| p.app == app && p.topology == kind && p.clients == n)
                    // steelcheck: allow(unwrap-in-lib, panic-reachable): sweep emits every (app, kind, n) combination
                    .expect("point exists");
                row.push(format!("{:.2}", p.latency_ms));
            }
            rows.push(row);
        }
        wln!(
            out,
            "{}",
            format_table(
                &format!("{name}: mean latency (ms) per topology"),
                &["clients", "Leaf Spine", "Ring", "ML-aware"],
                &rows
            )
        );

        // The accuracy/cost companion view.
        let mut rows = Vec::new();
        for kind in TopologyKind::ALL {
            let p = points
                .iter()
                .find(|p| p.app == app && p.topology == kind && p.clients == showcase)
                // steelcheck: allow(unwrap-in-lib, panic-reachable): sweep always includes the showcase point
                .expect("point exists");
            rows.push(vec![
                kind.name().to_string(),
                format!("{:.3}", p.achieved_accuracy),
                format!("{:.2}", p.max_utilization),
                format!("{:.0}", p.cost),
            ]);
        }
        wln!(
            out,
            "{}",
            format_table(
                &format!("{name} @{showcase} clients: achievable accuracy / utilization / cost"),
                &["topology", "accuracy", "max util", "cost"],
                &rows
            )
        );
    }

    // Shape checks against the paper.
    for app in MlApp::ALL {
        let name = app.profile().name;
        let get = |kind: TopologyKind, n: usize| {
            points
                .iter()
                .find(|p| p.app == app && p.topology == kind && p.clients == n)
                // steelcheck: allow(unwrap-in-lib, panic-reachable): sweep emits every (app, kind, n) combination
                .expect("point")
                .latency_ms
        };
        check(
            out,
            &format!("{name}: ML-aware lowest at every client count"),
            cfg.client_counts.iter().all(|&n| {
                get(TopologyKind::MlAware, n) < get(TopologyKind::LeafSpine, n)
                    && get(TopologyKind::MlAware, n) < get(TopologyKind::Ring, n)
            }),
        );
        check(
            out,
            &format!("{name}: ring worst (leaf-spine only slightly improves)"),
            cfg.client_counts
                .iter()
                .all(|&n| get(TopologyKind::LeafSpine, n) <= get(TopologyKind::Ring, n) * 1.05),
        );
        check(
            out,
            &format!("{name}: ring degrades with scale"),
            get(TopologyKind::Ring, showcase) > get(TopologyKind::Ring, smallest),
        );
        check(
            out,
            &format!("{name}: latencies within the figure's ~2-6 ms band (×2 envelope)"),
            cfg.client_counts.iter().all(|&n| {
                TopologyKind::ALL
                    .iter()
                    .all(|&k| (0.5..12.0).contains(&get(k, n)))
            }),
        );
    }
}

/// fig_campus: the ring-of-leaf-spine campus scaling study.
fn fig_campus(out: &mut String, spec_scales: &[crate::spec::CampusScale], jobs: usize) {
    let scales: Vec<(String, CampusConfig)> = spec_scales
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                CampusConfig {
                    cells: s.cells as usize,
                    leaves_per_cell: s.leaves_per_cell as usize,
                    endpoints_per_leaf: s.endpoints_per_leaf as usize,
                    period: NanoDur::from_micros(s.period_us),
                    cycles: s.cycles,
                    seed: s.seed,
                },
            )
        })
        .collect();
    wln!(out, "# fig_campus — ring-of-leaf-spine campus scaling study");
    wln!(
        out,
        "# scales: {}",
        scales
            .iter()
            .map(|(name, cfg)| format!(
                "{} ({}c x {}l x {}e = {} nodes)",
                name,
                cfg.cells,
                cfg.leaves_per_cell,
                cfg.endpoints_per_leaf,
                cfg.node_count()
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
    wln!(out);

    // The scale points are independent worlds: run them on the worker
    // pool and print in order.
    let results = steelpar::run(jobs, scales.clone(), |(_, cfg)| run_campus(&cfg));

    wln!(
        out,
        "# {:<8} {:>8} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "scale", "nodes", "links", "sent", "received", "events", "sim-end-ms"
    );
    for ((name, _), r) in scales.iter().zip(&results) {
        wln!(
            out,
            "  {:<8} {:>8} {:>8} {:>10} {:>10} {:>12} {:>10.3}",
            name,
            r.nodes,
            r.links,
            r.frames_sent,
            r.frames_received,
            r.events_processed,
            r.sim_end_ns as f64 / 1e6,
        );
    }

    wln!(out);
    wln!(
        out,
        "# per-class latency (ns): {:<8} {:>8} {:>10} {:>10} {:>10}",
        "scale", "class", "flows", "min", "max"
    );
    for ((name, _), r) in scales.iter().zip(&results) {
        for (class, cs) in [PathClass::Local, PathClass::Cell, PathClass::Ring]
            .iter()
            .zip(&r.classes)
        {
            wln!(
                out,
                "  {:<24} {:>8} {:>10} {:>10} {:>10}",
                name,
                class.label(),
                cs.flows,
                cs.min_latency_ns,
                cs.max_latency_ns
            );
        }
    }

    wln!(out);
    for ((name, _), r) in scales.iter().zip(&results) {
        wln!(
            out,
            "# {}: switches forwarded {} / flooded {} / filtered {} / tail-dropped {}, link drops {}, peak queue {}",
            name,
            r.switch_forwarded,
            r.switch_flooded,
            r.switch_filtered,
            r.switch_tail_drops,
            r.link_drops,
            r.peak_queue_depth
        );
    }

    wln!(out);
    for ((name, _), r) in scales.iter().zip(&results) {
        check(
            out,
            &format!("{name}: every emitted frame is delivered"),
            r.frames_sent > 0 && r.frames_received == r.frames_sent,
        );
        check(
            out,
            &format!("{name}: static FDB complete (zero flooding on the ring)"),
            r.switch_flooded == 0,
        );
        check(
            out,
            &format!("{name}: no tail drops at commissioned load"),
            r.switch_tail_drops == 0,
        );
        let [local, cell, ring] = r.classes;
        check(
            out,
            &format!("{name}: latency classes ordered local < cell < ring"),
            local.max_latency_ns < cell.min_latency_ns
                && cell.max_latency_ns < ring.min_latency_ns,
        );
    }
    // The largest (last) scale carries the headline claim.
    if let Some(campus) = results.last() {
        check(
            out,
            "campus scale exceeds 100k nodes",
            campus.nodes > 100_000,
        );
    }
}

/// The §2 challenge numbers (§2.1 timing, §2.2 availability, §2.3
/// traffic mix).
fn challenges(out: &mut String, trials: u64, jobs: usize) {
    wln!(out, "# §2 challenge numbers, reproduced\n");
    challenges_2_1_timing(out);
    challenges_2_2_availability(out, trials as u32, jobs);
    challenges_2_3_traffic_mix(out);
}

fn challenges_2_1_timing(out: &mut String) {
    wln!(out, "## §2.1 — Timing\n");
    // PCIe share of NIC latency for small packets (paper: >90 % of
    // total NIC latency per Neugebauer et al.; our model separates the
    // MAC pipeline, so we report the share of the host-side path).
    let nic = NicModel::default();
    let mut rows = Vec::new();
    for len in [64usize, 128, 256, 512, 1500] {
        rows.push(vec![
            len.to_string(),
            format!("{:.0}", nic.rx_latency(len).as_nanos()),
            format!("{:.1}", nic.pcie_fraction_rx(len) * 100.0),
        ]);
    }
    wln!(
        out,
        "{}",
        format_table(
            "NIC RX latency and PCIe share vs frame size",
            &["bytes", "rx latency (ns)", "PCIe share (%)"],
            &rows
        )
    );
    check(
        out,
        "PCIe dominates small-frame NIC latency",
        nic.pcie_fraction_rx(64) > 0.65,
    );
    let pcie = PcieModel::default();
    check(
        out,
        "per-transaction cost >> per-byte cost for industrial frames",
        pcie.base_ns + pcie.iommu_ns > 10.0 * (pcie.per_byte_ns * 250.0),
    );

    // Cycle-time requirements table (paper's numbers).
    let rows = vec![
        vec!["machine tools".into(), "500 µs".into()],
        vec![
            "high-speed motion control".into(),
            "250 µs / <1 µs jitter".into(),
        ],
        vec!["process automation".into(), "10–100 ms".into()],
    ];
    wln!(
        out,
        "{}",
        format_table(
            "OT timing requirements (§2.1)",
            &["use case", "requirement"],
            &rows
        )
    );
}

fn challenges_2_2_availability(out: &mut String, trials: u32, jobs: usize) {
    wln!(out, "## §2.2 — Service availability\n");
    let six = nines(6);
    let budget = downtime_per_year(six);
    wln!(
        out,
        "# 99.9999 % availability = {:.1} s downtime per year (paper: 31.5 s)",
        budget.as_secs_f64()
    );
    check(
        out,
        "six nines = 31.5 s/year",
        (budget.as_secs_f64() - 31.536).abs() < 0.05,
    );

    let dc_minutes_per_month = 4.0;
    let dc = NanoDur::from_secs_f64(dc_minutes_per_month * 60.0 * 12.0);
    wln!(
        out,
        "# data-center practice (~{dc_minutes_per_month} min/month) = {:.0} s/year = {:.0}x the OT budget",
        dc.as_secs_f64(),
        dc.as_secs_f64() / budget.as_secs_f64()
    );

    // Redundancy schemes at a pessimistic 12 primary failures/year.
    let mttr = NanoDur::from_secs(1800);
    let schemes = [
        Scheme::None,
        Scheme::Kubernetes,
        Scheme::HardwarePair,
        Scheme::InstaPlc {
            cycle: NanoDur::from_micros(1_500),
            switchover_cycles: 2,
        },
    ];
    // Six independent Monte-Carlo estimates (four schemes at 12
    // failures/yr, plus InstaPLC and the hardware pair at 400) fan out
    // over the worker pool; each estimate seeds its own RNG, so the
    // numbers match the sequential run exactly.
    let grid: Vec<(Scheme, f64)> = schemes
        .iter()
        .map(|&s| (s, 12.0))
        .chain([(schemes[3], 400.0), (schemes[2], 400.0)])
        .collect();
    let ests = steelpar::run(jobs, grid, move |(s, rate)| {
        estimate(s, rate, mttr, trials, 0xA11A)
    });
    let mut rows = Vec::new();
    for (s, e) in schemes.iter().zip(&ests) {
        rows.push(vec![
            s.name().to_string(),
            format!("{:.3}", e.downtime_per_year.as_secs_f64()),
            format!("{:.7}", e.availability),
            if e.meets_ot_requirement { "yes" } else { "no" }.to_string(),
        ]);
    }
    wln!(
        out,
        "{}",
        format_table(
            "redundancy schemes @ 12 failures/yr, 30 min MTTR",
            &["scheme", "downtime (s/yr)", "availability", ">= 6 nines"],
            &rows
        )
    );
    check(
        out,
        "k8s-style standby misses six nines even at 12 failures/yr",
        !ests[1].meets_ot_requirement,
    );
    check(
        out,
        "in-network switchover holds six nines even at 400 failures/yr",
        ests[4].meets_ot_requirement && !ests[5].meets_ot_requirement,
    );
    // Published takeover bands.
    let mut rng = SimRng::seed_from_u64(0xF00D);
    let hw: Vec<f64> = (0..trials)
        .map(|_| steelworks_vplc::redundancy::takeover::hardware_pair(&mut rng).as_millis_f64())
        .collect();
    let k8: Vec<f64> = (0..trials)
        .map(|_| steelworks_vplc::redundancy::takeover::kubernetes(&mut rng).as_millis_f64())
        .collect();
    let minmax = |v: &[f64]| {
        (
            v.iter().cloned().fold(f64::MAX, f64::min),
            v.iter().cloned().fold(0.0, f64::max),
        )
    };
    let (hmin, hmax) = minmax(&hw);
    let (kmin, kmax) = minmax(&k8);
    wln!(out, "# hardware pair takeover: {hmin:.0}-{hmax:.0} ms (paper: 50-300 ms)");
    wln!(
        out,
        "# kubernetes takeover   : {kmin:.0} ms - {:.1} s (paper: ~110 ms - 55.4 s)",
        kmax / 1000.0
    );
    check(
        out,
        "hardware band matches the system manual",
        hmin >= 50.0 && hmax <= 300.0,
    );
    check(
        out,
        "k8s band matches the literature",
        kmin >= 110.0 && kmax <= 55_400.0,
    );
}

fn challenges_2_3_traffic_mix(out: &mut String) {
    wln!(out, "## §2.3 — The new traffic mix\n");
    let flows = generate_traffic_mix(&MixConfig::default(), 0x7AFF);
    let r = evaluate_traffic_mix(&flows);
    wln!(
        out,
        "# population: {} flows, {} of them vPLC cyclic microflows",
        r.total, r.microflows_truth
    );
    wln!(
        out,
        "# feature classifier: {}/{} correct, {}/{} microflows detected",
        r.correct, r.total, r.microflows_found, r.microflows_truth
    );
    wln!(
        out,
        "# size-only classifier mislabels {}/{} microflows as bulk (the class blends categories)",
        r.microflows_mislabelled_by_size, r.microflows_truth
    );
    check(
        out,
        "feature classifier detects every microflow",
        r.microflows_found == r.microflows_truth,
    );
    check(
        out,
        "size-only view misses the class entirely",
        r.microflows_mislabelled_by_size == r.microflows_truth,
    );
}
