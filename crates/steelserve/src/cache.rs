//! The content-addressed result cache.
//!
//! Determinism makes every figure artifact infinitely cacheable: the
//! address is [`Spec::key`](crate::spec::Spec::key) (SHA-256 of the
//! canonical spec), and the value is the artifact bytes, valid forever.
//!
//! On-disk layout (`results/cache/<key>`), one entry per file:
//!
//! ```text
//! steelserve1 <sha256-hex of the artifact bytes>
//! <canonical spec, one line>
//! <artifact bytes...>
//! ```
//!
//! The header seals the payload against on-disk corruption and the
//! embedded canonical spec makes every entry self-describing — the
//! `verify` mode re-executes it and byte-compares without any side
//! table. A file that fails any part of validation (bad magic, hash
//! mismatch, spec/key mismatch) is **evicted and treated as a miss**:
//! a poisoned cache recomputes, it never panics and never serves
//! corrupt bytes.

use crate::sha::sha256_hex;
use crate::spec::Spec;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// Magic tag of cache format v1.
const MAGIC: &str = "steelserve1";

/// Counters exposed by `GET /stats` and the load generator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory or a valid disk entry.
    pub hits: u64,
    /// Lookups that found nothing (or only a corrupt entry).
    pub misses: u64,
    /// Artifacts written.
    pub stores: u64,
    /// Corrupt disk entries removed.
    pub evictions: u64,
}

/// Lock a mutex, riding through poisoning: cache state is a plain map
/// of immutable artifacts, valid regardless of another thread's panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct Inner {
    /// In-memory memo over the disk entries touched this process.
    memo: BTreeMap<String, String>,
    stats: CacheStats,
}

/// A content-addressed artifact store under one directory.
pub struct ResultCache {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// Open (creating if needed) the cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir,
            inner: Mutex::new(Inner {
                memo: BTreeMap::new(),
                stats: CacheStats::default(),
            }),
        })
    }

    /// The directory this cache persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &str) -> Option<PathBuf> {
        // Keys are SHA-256 hex by construction; anything else (in
        // particular anything with path separators) is refused, so a
        // hostile "key" can never escape the cache directory.
        if key.len() == 64 && key.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        {
            Some(self.dir.join(key))
        } else {
            None
        }
    }

    /// Look up `key`, consulting the in-process memo first, then disk.
    /// Counts a hit or miss; corrupt disk entries are evicted.
    pub fn lookup(&self, key: &str) -> Option<String> {
        {
            let mut inner = lock(&self.inner);
            if let Some(artifact) = inner.memo.get(key).cloned() {
                inner.stats.hits += 1;
                return Some(artifact);
            }
        }
        let Some(path) = self.entry_path(key) else {
            lock(&self.inner).stats.misses += 1;
            return None;
        };
        let loaded = match std::fs::read_to_string(&path) {
            Ok(raw) => parse_entry(key, &raw).map(|(_, artifact)| artifact),
            Err(_) => None,
        };
        let mut inner = lock(&self.inner);
        match loaded {
            Some(artifact) => {
                inner.stats.hits += 1;
                inner.memo.insert(key.to_string(), artifact.clone());
                Some(artifact)
            }
            None => {
                if path.exists() {
                    // Corrupt entry: evict so the recompute can replace it.
                    inner.stats.evictions += u64::from(std::fs::remove_file(&path).is_ok());
                }
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Persist `artifact` under the spec's content address and memoize
    /// it. The write goes through a temp file + rename so a concurrent
    /// reader never sees a torn entry.
    pub fn store(&self, spec: &Spec, artifact: &str) -> io::Result<String> {
        let key = spec.key();
        let Some(path) = self.entry_path(&key) else {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "malformed cache key"));
        };
        let entry = format!(
            "{MAGIC} {}\n{}\n{artifact}",
            sha256_hex(artifact.as_bytes()),
            spec.canonical()
        );
        let tmp = self.dir.join(format!(".tmp-{key}"));
        std::fs::write(&tmp, entry)?;
        std::fs::rename(&tmp, &path)?;
        let mut inner = lock(&self.inner);
        inner.stats.stores += 1;
        inner.memo.insert(key.clone(), artifact.to_string());
        Ok(key)
    }

    /// Drop `key` from memo and disk (used when a determinism
    /// cross-check catches a mismatch).
    pub fn evict(&self, key: &str) {
        let mut inner = lock(&self.inner);
        inner.memo.remove(key);
        if let Some(path) = self.entry_path(key) {
            inner.stats.evictions += u64::from(std::fs::remove_file(&path).is_ok());
        }
    }

    /// Every `(spec, artifact)` currently on disk, sorted by key and
    /// skipping corrupt entries — the `verify` mode's worklist.
    pub fn entries_on_disk(&self) -> Vec<(String, Spec, String)> {
        let mut keys: Vec<String> = Vec::new();
        if let Ok(rd) = std::fs::read_dir(&self.dir) {
            for e in rd.flatten() {
                if let Some(name) = e.file_name().to_str() {
                    if self.entry_path(name).is_some() {
                        keys.push(name.to_string());
                    }
                }
            }
        }
        keys.sort();
        let mut out = Vec::new();
        for key in keys {
            let Some(path) = self.entry_path(&key) else {
                continue;
            };
            let Ok(raw) = std::fs::read_to_string(&path) else {
                continue;
            };
            if let Some((spec, artifact)) = parse_entry(&key, &raw) {
                out.push((key, spec, artifact));
            }
        }
        out
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        lock(&self.inner).stats
    }
}

/// Validate one raw on-disk entry against its key. `None` means the
/// entry is corrupt (any of: bad magic, artifact-hash mismatch,
/// embedded spec unparseable, or spec hash not matching the key).
fn parse_entry(key: &str, raw: &str) -> Option<(Spec, String)> {
    let (header, rest) = raw.split_once('\n')?;
    let digest = header.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    let (spec_line, artifact) = rest.split_once('\n')?;
    if sha256_hex(artifact.as_bytes()) != digest {
        return None;
    }
    let spec = Spec::parse(spec_line).ok()?;
    if spec.key() != key {
        return None;
    }
    Some((spec, artifact.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("steelserve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> Spec {
        Spec::Fig4 {
            cycles: 25,
            seed: 7,
            loops: 0,
        }
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let cache = ResultCache::open(tmpdir("roundtrip")).expect("open");
        let key = cache.store(&spec(), "artifact bytes\n").expect("store");
        assert_eq!(key, spec().key());
        assert_eq!(cache.lookup(&key).as_deref(), Some("artifact bytes\n"));
        let stats = cache.stats();
        assert_eq!((stats.stores, stats.hits, stats.misses), (1, 1, 0));
        // A second cache over the same directory reads it from disk.
        let reopened = ResultCache::open(cache.dir()).expect("reopen");
        assert_eq!(reopened.lookup(&key).as_deref(), Some("artifact bytes\n"));
        let entries = reopened.entries_on_disk();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].1, spec());
        assert_eq!(entries[0].2, "artifact bytes\n");
    }

    #[test]
    fn missing_key_is_a_miss() {
        let cache = ResultCache::open(tmpdir("miss")).expect("open");
        assert!(cache.lookup(&spec().key()).is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn poisoned_entry_recomputes_instead_of_panicking() {
        let dir = tmpdir("poison");
        let cache = ResultCache::open(&dir).expect("open");
        let key = cache.store(&spec(), "good artifact").expect("store");

        // Corrupt the on-disk entry behind the cache's back, in each of
        // the ways validation must catch.
        for garbage in [
            "not even a header",
            "steelserve1 deadbeef\n{\"figure\":\"fig4\"}\npayload",
            &format!("{MAGIC} {}\nnot json\npayload", sha256_hex(b"payload")),
        ] {
            std::fs::write(dir.join(&key), garbage).expect("corrupt");
            let fresh = ResultCache::open(&dir).expect("reopen");
            assert!(fresh.lookup(&key).is_none(), "corrupt entry served: {garbage:?}");
            let stats = fresh.stats();
            assert_eq!((stats.misses, stats.evictions), (1, 1), "for {garbage:?}");
            assert!(!dir.join(&key).exists(), "corrupt entry not evicted");
            // The recompute path stores over the evicted entry.
            fresh.store(&spec(), "good artifact").expect("restore");
            assert_eq!(fresh.lookup(&key).as_deref(), Some("good artifact"));
        }
    }

    #[test]
    fn hostile_keys_never_touch_paths() {
        let cache = ResultCache::open(tmpdir("hostile")).expect("open");
        for bad in ["../../etc/passwd", "short", &"A".repeat(64), &"g".repeat(64)] {
            assert!(cache.lookup(bad).is_none());
        }
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn evict_removes_memo_and_disk() {
        let cache = ResultCache::open(tmpdir("evict")).expect("open");
        let key = cache.store(&spec(), "x").expect("store");
        cache.evict(&key);
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.stats().evictions, 1);
    }
}
