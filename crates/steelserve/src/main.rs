//! The `steelserve` binary: serve scenario specs over HTTP, drive a
//! running server, or audit the result cache.
//!
//! ```text
//! steelserve serve    [--addr 127.0.0.1:0] [--jobs N] [--crosscheck-every N] [--cache-dir D]
//! steelserve post     <addr> <spec.json> [--expect hit|miss|wait]
//! steelserve shutdown <addr>
//! steelserve verify   [--jobs N] [--cache-dir D]
//! steelserve key      <spec.json>
//! ```
//!
//! `serve` prints `steelserve listening on <addr>` once bound (scripts
//! scrape the ephemeral port from that line). `post` prints the
//! returned artifact on stdout, so `steelserve post A spec.json >
//! fig.txt` is the served twin of running a figure binary directly.

use std::path::PathBuf;
use std::process::ExitCode;
use steelserve::http::{header, Client};
use steelserve::server::{bind, ServerConfig};
use steelserve::spec::Spec;
use steelserve::{cache, figures};

fn fail(msg: &str) -> ExitCode {
    eprintln!("steelserve: {msg}");
    ExitCode::FAILURE
}

/// Pull `--name value` out of `args` (any position), if present.
fn take_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let at = args.iter().position(|a| a == name)?;
    if at + 1 >= args.len() {
        return None;
    }
    let value = args.remove(at + 1);
    args.remove(at);
    Some(value)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return fail("usage: steelserve <serve|post|shutdown|verify|key> ...");
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "serve" => cmd_serve(args),
        "post" => cmd_post(args),
        "shutdown" => cmd_shutdown(args),
        "verify" => cmd_verify(args),
        "key" => cmd_key(args),
        other => fail(&format!("unknown command `{other}`")),
    }
}

fn cmd_serve(mut args: Vec<String>) -> ExitCode {
    let mut cfg = ServerConfig::default();
    if let Some(addr) = take_flag(&mut args, "--addr") {
        cfg.addr = addr;
    }
    if let Some(jobs) = take_flag(&mut args, "--jobs") {
        match jobs.parse() {
            Ok(n) => cfg.jobs = steelpar::resolve_jobs(Some(n)),
            Err(_) => return fail("--jobs expects an integer"),
        }
    }
    if let Some(every) = take_flag(&mut args, "--crosscheck-every") {
        match every.parse() {
            Ok(n) => cfg.crosscheck_every = n,
            Err(_) => return fail("--crosscheck-every expects an integer"),
        }
    }
    if let Some(dir) = take_flag(&mut args, "--cache-dir") {
        cfg.cache_dir = PathBuf::from(dir);
    }
    if !args.is_empty() {
        return fail(&format!("unexpected arguments: {args:?}"));
    }
    let server = match bind(&cfg) {
        Ok(s) => s,
        Err(e) => return fail(&format!("bind {}: {e}", cfg.addr)),
    };
    println!("steelserve listening on {}", server.local_addr());
    match server.serve_forever() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&format!("serve: {e}")),
    }
}

fn cmd_post(mut args: Vec<String>) -> ExitCode {
    let expect = take_flag(&mut args, "--expect");
    let (Some(addr), Some(path)) = (args.first().cloned(), args.get(1).cloned()) else {
        return fail("usage: steelserve post <addr> <spec.json> [--expect hit|miss|wait]");
    };
    let spec_text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => return fail(&format!("read {path}: {e}")),
    };
    let mut client = Client::connect(&addr);
    let resp = match client.request("POST", "/run", spec_text.as_bytes()) {
        Ok(resp) => resp,
        Err(e) => return fail(&format!("POST {addr}/run: {e}")),
    };
    let disposition = header(&resp.headers, "X-Steelserve-Cache").unwrap_or("?").to_string();
    if resp.status != 200 {
        return fail(&format!(
            "server returned {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body).trim_end()
        ));
    }
    if let Some(want) = expect {
        if disposition != want {
            return fail(&format!("expected X-Steelserve-Cache: {want}, got {disposition}"));
        }
    }
    print!("{}", String::from_utf8_lossy(&resp.body));
    ExitCode::SUCCESS
}

fn cmd_shutdown(args: Vec<String>) -> ExitCode {
    let Some(addr) = args.first() else {
        return fail("usage: steelserve shutdown <addr>");
    };
    let mut client = Client::connect(addr);
    match client.request("POST", "/shutdown", b"") {
        Ok(resp) if resp.status == 200 => ExitCode::SUCCESS,
        Ok(resp) => fail(&format!("shutdown returned {}", resp.status)),
        Err(e) => fail(&format!("POST {addr}/shutdown: {e}")),
    }
}

/// Re-execute every cached entry and byte-compare: the determinism
/// cross-check in bulk, over the whole cache.
fn cmd_verify(mut args: Vec<String>) -> ExitCode {
    let jobs = match take_flag(&mut args, "--jobs").map(|j| j.parse::<usize>()) {
        None => steelpar::resolve_jobs(None),
        Some(Ok(n)) => steelpar::resolve_jobs(Some(n)),
        Some(Err(_)) => return fail("--jobs expects an integer"),
    };
    let dir = take_flag(&mut args, "--cache-dir").unwrap_or_else(|| "results/cache".to_string());
    let cache = match cache::ResultCache::open(&dir) {
        Ok(c) => c,
        Err(e) => return fail(&format!("open cache {dir}: {e}")),
    };
    let entries = cache.entries_on_disk();
    if entries.is_empty() {
        println!("cache {dir}: empty, nothing to verify");
        return ExitCode::SUCCESS;
    }
    let total = entries.len();
    let outcomes = steelpar::run(jobs, entries, |(key, spec, artifact)| {
        let ok = figures::run_spec(&spec, 1) == artifact;
        (key, ok)
    });
    let mut bad = 0usize;
    for (key, ok) in &outcomes {
        if !ok {
            eprintln!("MISMATCH {key}: re-execution differs from cached artifact");
            bad += 1;
        }
    }
    println!("cache {dir}: {}/{} entries verified byte-identical", total - bad, total);
    if bad == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_key(args: Vec<String>) -> ExitCode {
    let Some(path) = args.first() else {
        return fail("usage: steelserve key <spec.json>");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return fail(&format!("read {path}: {e}")),
    };
    match Spec::parse(&text) {
        Ok(spec) => {
            println!("{}", spec.key());
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}
