//! The declarative scenario-spec format.
//!
//! A spec is a small JSON object naming a figure and its parameters —
//! the whole experiment as data. Every figure the repo publishes
//! (`results/*.txt`) is expressible as a spec; the shipped defaults
//! live in `specs/*.json` and regenerate the committed outputs
//! byte-for-byte, whether run through the figure binaries or through a
//! `steelserve` instance.
//!
//! Three forms of one spec:
//!
//! - **authored** — whatever the user wrote. Missing parameters take
//!   figure defaults; unknown keys are rejected (a typo'd knob must not
//!   silently run the default experiment).
//! - **canonical** — [`Spec::canonical`]: compact JSON, sorted keys,
//!   every parameter explicit. Structurally equal specs have equal
//!   canonical bytes, so the canonical form is what gets hashed.
//! - **content address** — [`Spec::key`]: SHA-256 of the canonical
//!   bytes. Determinism makes the result cache infinitely valid:
//!   `hash(spec) → bytes`, forever.
//!
//! Numbers are integers only (see [`crate::json`]); fractional knobs
//! scale their unit (`accuracy_pct`, `period_us`).

use crate::json::Value;
use crate::sha::sha256_hex;
use std::collections::BTreeMap;
use std::fmt;

/// The standard figure seed (`steelworks_bench::FIGURE_SEED`).
pub const FIGURE_SEED: u64 = 0x57EE1;

/// Names of every figure a spec can express, in `results/` order.
pub const FIGURES: &[&str] = &["challenges", "fig1", "fig4", "fig5", "fig6", "fig_campus"];

/// One campus scale point (a row of `fig_campus`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampusScale {
    /// Display label (`small`, `mid`, `campus`, ...).
    pub name: String,
    /// Production cells on the backbone ring.
    pub cells: u64,
    /// Leaf switches per cell.
    pub leaves_per_cell: u64,
    /// Endpoints per leaf (even, ≥ 8).
    pub endpoints_per_leaf: u64,
    /// Cyclic send period, microseconds.
    pub period_us: u64,
    /// Frames per source.
    pub cycles: u64,
    /// World seed.
    pub seed: u64,
}

/// A parsed, validated scenario spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Spec {
    /// Fig. 1 — term occurrences over the calibrated synthetic corpus.
    Fig1 {
        /// Papers to synthesize.
        papers: u64,
        /// Corpus seed.
        seed: u64,
    },
    /// Fig. 4 — Traffic Reflection delay/jitter CDFs.
    Fig4 {
        /// Cycles per flow.
        cycles: u64,
        /// Simulation seed.
        seed: u64,
        /// Include the bounded-loop program corpus (0 = off, 1 = on).
        /// Additive: 0 reproduces the pre-corpus artifact byte-for-byte.
        loops: u64,
    },
    /// Fig. 5 — InstaPLC switchover + planned-migration companion.
    Fig5 {
        /// Scenario seed.
        seed: u64,
        /// Primary vPLC crash instant, milliseconds.
        crash_at_ms: u64,
        /// Planned-migration instant, milliseconds.
        migrate_at_ms: u64,
        /// Planned failback instant, milliseconds.
        failback_at_ms: u64,
    },
    /// Fig. 6 — ML-aware topology study.
    Fig6 {
        /// Accuracy target, percent (90 ⇒ 0.90).
        accuracy_pct: u64,
        /// Client counts to sweep.
        client_counts: Vec<u64>,
    },
    /// §2 challenge numbers.
    Challenges {
        /// Monte-Carlo trials per estimate.
        trials: u64,
    },
    /// fig_campus — the campus scaling study.
    Campus {
        /// Scale points, printed in order.
        scales: Vec<CampusScale>,
    },
}

/// A spec-layer error (parse, unknown figure/key, out-of-range value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description.
    pub msg: String,
}

impl SpecError {
    fn new(msg: impl Into<String>) -> SpecError {
        SpecError { msg: msg.into() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error: {}", self.msg)
    }
}

impl std::error::Error for SpecError {}

/// Pull an integer field (with bounds) out of an object, falling back
/// to `default` when absent.
fn field_u64(
    obj: &BTreeMap<String, Value>,
    key: &str,
    default: u64,
    lo: u64,
    hi: u64,
) -> Result<u64, SpecError> {
    let v = match obj.get(key) {
        None => return Ok(default),
        Some(v) => v
            .as_int()
            .ok_or_else(|| SpecError::new(format!("`{key}` must be an integer")))?,
    };
    let v = u64::try_from(v).map_err(|_| SpecError::new(format!("`{key}` must be >= 0")))?;
    if v < lo || v > hi {
        return Err(SpecError::new(format!(
            "`{key}` = {v} is outside the accepted range {lo}..={hi}"
        )));
    }
    Ok(v)
}

/// Reject keys the figure does not understand: a typo'd parameter must
/// fail loudly, not silently run the default experiment.
fn reject_unknown(
    obj: &BTreeMap<String, Value>,
    figure: &str,
    known: &[&str],
) -> Result<(), SpecError> {
    for key in obj.keys() {
        if key != "figure" && !known.contains(&key.as_str()) {
            // steelcheck: allow(hot-path-alloc): error path, spec validation aborts here
            return Err(SpecError::new(format!(
                "unknown key `{key}` for figure `{figure}` (accepted: {})",
                known.join(", ")
            )));
        }
    }
    Ok(())
}

impl Spec {
    /// The figure defaults — exactly the configuration the committed
    /// `results/<figure>.txt` was generated with.
    pub fn default_for(figure: &str) -> Option<Spec> {
        match figure {
            "fig1" => Some(Spec::Fig1 {
                papers: 160,
                seed: FIGURE_SEED,
            }),
            "fig4" => Some(Spec::Fig4 {
                cycles: 10_000,
                seed: FIGURE_SEED,
                loops: 0,
            }),
            "fig5" => Some(Spec::Fig5 {
                seed: 0x1A57,
                crash_at_ms: 1_200,
                migrate_at_ms: 1_000,
                failback_at_ms: 2_000,
            }),
            "fig6" => Some(Spec::Fig6 {
                accuracy_pct: 90,
                client_counts: vec![32, 64, 128, 256],
            }),
            "challenges" => Some(Spec::Challenges { trials: 5_000 }),
            "fig_campus" => Some(Spec::Campus {
                scales: default_campus_scales(),
            }),
            _ => None,
        }
    }

    /// The figure this spec drives.
    pub fn figure(&self) -> &'static str {
        match self {
            Spec::Fig1 { .. } => "fig1",
            Spec::Fig4 { .. } => "fig4",
            Spec::Fig5 { .. } => "fig5",
            Spec::Fig6 { .. } => "fig6",
            Spec::Challenges { .. } => "challenges",
            Spec::Campus { .. } => "fig_campus",
        }
    }

    /// Parse and validate a spec document.
    pub fn parse(text: &str) -> Result<Spec, SpecError> {
        let value = Value::parse(text).map_err(|e| SpecError::new(e.to_string()))?;
        Spec::from_value(&value)
    }

    /// Build a spec from a parsed JSON value. Missing parameters take
    /// figure defaults; unknown keys and out-of-range values error.
    /// The ranges bound what a served request may ask a worker to
    /// simulate — a spec is untrusted input once a server listens.
    pub fn from_value(value: &Value) -> Result<Spec, SpecError> {
        let obj = value
            .as_obj()
            .ok_or_else(|| SpecError::new("spec must be a JSON object"))?;
        let figure = obj
            .get("figure")
            .and_then(Value::as_str)
            .ok_or_else(|| SpecError::new("spec needs a string `figure` field"))?;
        match figure {
            "fig1" => {
                reject_unknown(obj, figure, &["papers", "seed"])?;
                Ok(Spec::Fig1 {
                    papers: field_u64(obj, "papers", 160, 1, 10_000)?,
                    seed: field_u64(obj, "seed", FIGURE_SEED, 0, i64::MAX as u64)?,
                })
            }
            "fig4" => {
                reject_unknown(obj, figure, &["cycles", "seed", "loops"])?;
                Ok(Spec::Fig4 {
                    cycles: field_u64(obj, "cycles", 10_000, 1, 1_000_000)?,
                    seed: field_u64(obj, "seed", FIGURE_SEED, 0, i64::MAX as u64)?,
                    loops: field_u64(obj, "loops", 0, 0, 1)?,
                })
            }
            "fig5" => {
                reject_unknown(
                    obj,
                    figure,
                    &["seed", "crash_at_ms", "migrate_at_ms", "failback_at_ms"],
                )?;
                Ok(Spec::Fig5 {
                    seed: field_u64(obj, "seed", 0x1A57, 0, i64::MAX as u64)?,
                    // The shape checks slice series around the crash
                    // bin, so the crash must fall well inside the 3 s
                    // scenario: bins exist up to 2 950 ms and the
                    // pre-crash window needs bins 5..crash-1.
                    crash_at_ms: field_u64(obj, "crash_at_ms", 1_200, 400, 2_800)?,
                    migrate_at_ms: field_u64(obj, "migrate_at_ms", 1_000, 100, 2_500)?,
                    failback_at_ms: field_u64(obj, "failback_at_ms", 2_000, 200, 2_900)?,
                })
            }
            "fig6" => {
                reject_unknown(obj, figure, &["accuracy_pct", "client_counts"])?;
                let counts = match obj.get("client_counts") {
                    None => vec![32, 64, 128, 256],
                    Some(v) => {
                        let arr = v.as_arr().ok_or_else(|| {
                            SpecError::new("`client_counts` must be an array of integers")
                        })?;
                        if arr.is_empty() || arr.len() > 16 {
                            return Err(SpecError::new("`client_counts` needs 1..=16 entries"));
                        }
                        let mut out = Vec::with_capacity(arr.len());
                        for v in arr {
                            let n = v.as_int().filter(|&n| (1..=4_096).contains(&n)).ok_or_else(
                                || SpecError::new("each client count must be in 1..=4096"),
                            )?;
                            out.push(n as u64);
                        }
                        out
                    }
                };
                Ok(Spec::Fig6 {
                    accuracy_pct: field_u64(obj, "accuracy_pct", 90, 1, 100)?,
                    client_counts: counts,
                })
            }
            "challenges" => {
                reject_unknown(obj, figure, &["trials"])?;
                Ok(Spec::Challenges {
                    trials: field_u64(obj, "trials", 5_000, 10, 1_000_000)?,
                })
            }
            "fig_campus" => {
                reject_unknown(obj, figure, &["scales"])?;
                let scales = match obj.get("scales") {
                    None => default_campus_scales(),
                    Some(v) => {
                        let arr = v
                            .as_arr()
                            .ok_or_else(|| SpecError::new("`scales` must be an array"))?;
                        if arr.is_empty() || arr.len() > 8 {
                            return Err(SpecError::new("`scales` needs 1..=8 entries"));
                        }
                        let mut out = Vec::with_capacity(arr.len());
                        for v in arr {
                            out.push(parse_scale(v)?);
                        }
                        out
                    }
                };
                Ok(Spec::Campus { scales })
            }
            other => Err(SpecError::new(format!(
                "unknown figure `{other}` (one of: {})",
                FIGURES.join(", ")
            ))),
        }
    }

    /// Render as a JSON value with every parameter explicit.
    pub fn to_value(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("figure".into(), Value::Str(self.figure().into()));
        let int = |n: u64| Value::Int(n as i64);
        match self {
            Spec::Fig1 { papers, seed } => {
                obj.insert("papers".into(), int(*papers));
                obj.insert("seed".into(), int(*seed));
            }
            Spec::Fig4 {
                cycles,
                seed,
                loops,
            } => {
                obj.insert("cycles".into(), int(*cycles));
                obj.insert("seed".into(), int(*seed));
                // Omitted at 0: the default canonical bytes — and with
                // them every cached content address — stay exactly what
                // they were before the loop corpus existed.
                if *loops != 0 {
                    obj.insert("loops".into(), int(*loops));
                }
            }
            Spec::Fig5 {
                seed,
                crash_at_ms,
                migrate_at_ms,
                failback_at_ms,
            } => {
                obj.insert("seed".into(), int(*seed));
                obj.insert("crash_at_ms".into(), int(*crash_at_ms));
                obj.insert("migrate_at_ms".into(), int(*migrate_at_ms));
                obj.insert("failback_at_ms".into(), int(*failback_at_ms));
            }
            Spec::Fig6 {
                accuracy_pct,
                client_counts,
            } => {
                obj.insert("accuracy_pct".into(), int(*accuracy_pct));
                obj.insert(
                    "client_counts".into(),
                    Value::Arr(client_counts.iter().map(|&n| int(n)).collect()),
                );
            }
            Spec::Challenges { trials } => {
                obj.insert("trials".into(), int(*trials));
            }
            Spec::Campus { scales } => {
                let items = scales
                    .iter()
                    .map(|s| {
                        let mut m = BTreeMap::new();
                        m.insert("name".into(), Value::Str(s.name.clone()));
                        m.insert("cells".into(), int(s.cells));
                        m.insert("leaves_per_cell".into(), int(s.leaves_per_cell));
                        m.insert("endpoints_per_leaf".into(), int(s.endpoints_per_leaf));
                        m.insert("period_us".into(), int(s.period_us));
                        m.insert("cycles".into(), int(s.cycles));
                        m.insert("seed".into(), int(s.seed));
                        Value::Obj(m)
                    })
                    .collect();
                obj.insert("scales".into(), Value::Arr(items));
            }
        }
        Value::Obj(obj)
    }

    /// Canonical bytes: compact JSON, sorted keys, defaults explicit.
    pub fn canonical(&self) -> String {
        self.to_value().compact()
    }

    /// Human-oriented rendering (the `specs/*.json` on-disk form).
    pub fn pretty(&self) -> String {
        self.to_value().pretty()
    }

    /// The content address: SHA-256 of the canonical bytes, lowercase
    /// hex. Two specs share a key iff they describe the same scenario.
    pub fn key(&self) -> String {
        sha256_hex(self.canonical().as_bytes())
    }
}

/// The three committed `fig_campus` scale points (small / mid / campus,
/// matching `CampusConfig::{small,mid,large}`).
fn default_campus_scales() -> Vec<CampusScale> {
    vec![
        CampusScale {
            name: "small".into(),
            cells: 2,
            leaves_per_cell: 2,
            endpoints_per_leaf: 8,
            period_us: 100,
            cycles: 20,
            seed: 0xCA1,
        },
        CampusScale {
            name: "mid".into(),
            cells: 8,
            leaves_per_cell: 8,
            endpoints_per_leaf: 156,
            period_us: 1_000,
            cycles: 10,
            seed: 0xCA2,
        },
        CampusScale {
            name: "campus".into(),
            cells: 16,
            leaves_per_cell: 16,
            endpoints_per_leaf: 392,
            period_us: 1_000,
            cycles: 10,
            seed: 0xCA3,
        },
    ]
}

fn parse_scale(value: &Value) -> Result<CampusScale, SpecError> {
    let obj = value
        .as_obj()
        .ok_or_else(|| SpecError::new("each scale must be an object"))?;
    for key in obj.keys() {
        if !matches!(
            key.as_str(),
            "name" | "cells" | "leaves_per_cell" | "endpoints_per_leaf" | "period_us" | "cycles"
                | "seed"
        ) {
            // steelcheck: allow(hot-path-alloc): error path, spec validation aborts here
            return Err(SpecError::new(format!("unknown scale key `{key}`")));
        }
    }
    let name = obj
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| SpecError::new("each scale needs a string `name`"))?;
    if name.is_empty() || name.len() > 24 || !name.chars().all(|c| c.is_ascii_graphic()) {
        return Err(SpecError::new(
            "scale `name` must be 1..=24 printable ASCII characters",
        ));
    }
    let endpoints = field_u64(obj, "endpoints_per_leaf", 8, 8, 1_024)?;
    if endpoints % 2 != 0 {
        return Err(SpecError::new("`endpoints_per_leaf` must be even"));
    }
    Ok(CampusScale {
        name: name.to_string(),
        cells: field_u64(obj, "cells", 2, 2, 64)?,
        leaves_per_cell: field_u64(obj, "leaves_per_cell", 2, 2, 64)?,
        endpoints_per_leaf: endpoints,
        period_us: field_u64(obj, "period_us", 100, 10, 1_000_000)?,
        cycles: field_u64(obj, "cycles", 10, 1, 1_000)?,
        seed: field_u64(obj, "seed", 0xCA1, 0, i64::MAX as u64)?,
    })
}

/// A seeded mix of cheap, distinct scenario specs for the closed-loop
/// load generator: every figure kind is represented, parameters stay
/// small enough that a cold miss completes in milliseconds, and the
/// draw is a pure function of `(count, seed)` so a load run is
/// reproducible request-for-request.
pub fn sample_mix(count: usize, seed: u64) -> Vec<Spec> {
    let mut rng = steelworks_netsim::rng::SimRng::seed_from_u64(seed);
    // Seeds stay in 0..=i64::MAX so they survive the integer-only JSON
    // wire format (see `crate::json`).
    let draw_seed = |rng: &mut steelworks_netsim::rng::SimRng| rng.next_u64() >> 1;
    (0..count)
        .map(|i| match rng.below(5) {
            0 => Spec::Fig4 {
                cycles: rng.range(20, 60),
                seed: draw_seed(&mut rng),
                loops: 0,
            },
            1 => Spec::Fig1 {
                papers: rng.range(4, 12),
                seed: draw_seed(&mut rng),
            },
            2 => Spec::Challenges {
                trials: rng.range(200, 5_000),
            },
            3 => Spec::Fig6 {
                accuracy_pct: rng.range(80, 96),
                client_counts: vec![32, rng.range(48, 200)],
            },
            _ => Spec::Campus {
                scales: vec![CampusScale {
                    name: format!("load{i}"),
                    cells: 2,
                    leaves_per_cell: 2,
                    endpoints_per_leaf: 8,
                    period_us: 100,
                    cycles: rng.range(2, 8),
                    seed: draw_seed(&mut rng),
                }],
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_has_a_default() {
        for fig in FIGURES {
            let spec = Spec::default_for(fig).expect(fig);
            assert_eq!(spec.figure(), *fig);
            // The default round-trips through its own canonical form.
            let back = Spec::parse(&spec.canonical()).expect(fig);
            assert_eq!(back, spec);
            let back = Spec::parse(&spec.pretty()).expect(fig);
            assert_eq!(back, spec);
        }
        assert!(Spec::default_for("fig9").is_none());
    }

    #[test]
    fn minimal_spec_fills_defaults() {
        let spec = Spec::parse(r#"{"figure": "fig4"}"#).expect("minimal");
        assert_eq!(spec, Spec::default_for("fig4").expect("default"));
        // ... and its canonical form materializes every parameter.
        assert_eq!(
            spec.canonical(),
            r#"{"cycles":10000,"figure":"fig4","seed":360161}"#
        );
    }

    #[test]
    fn fig4_loops_field_is_additive() {
        // loops: 1 round-trips, is materialized in the canonical form,
        // and yields a different cache address.
        let on = Spec::parse(r#"{"figure": "fig4", "loops": 1}"#).expect("loops on");
        assert_eq!(
            on.canonical(),
            r#"{"cycles":10000,"figure":"fig4","loops":1,"seed":360161}"#
        );
        assert_eq!(Spec::parse(&on.canonical()).expect("round-trip"), on);
        // loops: 0 is the default and stays OUT of the canonical form,
        // so pre-corpus specs keep their exact bytes and cache keys.
        let off = Spec::parse(r#"{"figure": "fig4", "loops": 0}"#).expect("loops off");
        assert_eq!(off, Spec::default_for("fig4").expect("default"));
        assert_ne!(on.key(), off.key());
        // Out-of-range values are rejected.
        assert!(Spec::parse(r#"{"figure": "fig4", "loops": 2}"#).is_err());
    }

    #[test]
    fn key_is_whitespace_and_order_insensitive() {
        let a = Spec::parse(r#"{"figure":"fig4","cycles":10000,"seed":359137}"#).expect("a");
        let b = Spec::parse("{\n  \"seed\": 359137,\n  \"figure\": \"fig4\",\n  \"cycles\": 10000\n}")
            .expect("b");
        assert_eq!(a.key(), b.key());
        // A changed parameter changes the address.
        let c = Spec::parse(r#"{"figure":"fig4","cycles":10001}"#).expect("c");
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn unknown_figure_and_keys_rejected() {
        assert!(Spec::parse(r#"{"figure": "fig9"}"#).is_err());
        assert!(Spec::parse(r#"{"figure": "fig4", "cycels": 10}"#).is_err());
        assert!(Spec::parse(r#"{"figure": "fig_campus", "scales": [{"name": "x", "sells": 2}]}"#)
            .is_err());
        assert!(Spec::parse(r#"[1]"#).is_err());
        assert!(Spec::parse(r#"{"cycles": 10}"#).is_err(), "figure is required");
    }

    #[test]
    fn out_of_range_values_rejected() {
        for bad in [
            r#"{"figure": "fig4", "cycles": 0}"#,
            r#"{"figure": "fig4", "cycles": 100000000}"#,
            r#"{"figure": "fig4", "cycles": -5}"#,
            r#"{"figure": "fig1", "papers": 1000000}"#,
            r#"{"figure": "fig5", "crash_at_ms": 10}"#,
            r#"{"figure": "fig6", "client_counts": []}"#,
            r#"{"figure": "fig6", "client_counts": [0]}"#,
            r#"{"figure": "fig_campus", "scales": []}"#,
            r#"{"figure": "fig_campus", "scales": [{"name": "x", "endpoints_per_leaf": 9}]}"#,
            r#"{"figure": "challenges", "trials": 1}"#,
        ] {
            assert!(Spec::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn sample_mix_is_reproducible_and_distinct() {
        let a = sample_mix(64, 0x10AD);
        let b = sample_mix(64, 0x10AD);
        assert_eq!(a, b);
        let keys: std::collections::BTreeSet<String> = a.iter().map(Spec::key).collect();
        assert_eq!(keys.len(), a.len(), "mix keys collide");
        let other = sample_mix(64, 0x10AE);
        assert_ne!(a, other);
        // Every spec in the mix is valid by construction.
        for spec in &a {
            assert_eq!(Spec::parse(&spec.canonical()).expect("valid"), *spec);
        }
    }
}
