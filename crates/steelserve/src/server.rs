//! The scenario-serving loop: accept connections, answer `POST /run`
//! requests with figure artifacts, serve hits from the
//! content-addressed cache, and schedule misses onto a steelpar worker
//! pool.
//!
//! Request lifecycle for `POST /run`:
//!
//! 1. Parse + validate the spec (strict: unknown keys and out-of-range
//!    values are a `400`, not a default run).
//! 2. Derive the content address ([`Spec::key`]).
//! 3. Cache hit → serve the artifact (optionally re-executing every
//!    Nth hit as a determinism cross-check; a byte mismatch evicts the
//!    entry and fails the request loudly with a `500`).
//! 4. Cache miss → **in-flight dedup**: the first requester of a key
//!    becomes the leader and enqueues the spec on the executor; every
//!    concurrent requester of the same key blocks on the same
//!    [`Flight`] and receives the one computed artifact
//!    (`X-Steelserve-Cache: wait`). The executor drains the queue in
//!    batches through `steelpar::run` (each scenario itself runs with
//!    `jobs = 1` — parallelism comes from concurrent distinct specs).
//!
//! The `X-Steelserve-Cache` response header (`hit` / `miss` / `wait`)
//! makes the path taken observable to clients, tests, and the hermetic
//! gate.

use crate::cache::ResultCache;
use crate::figures;
use crate::http::{self, Request};
use crate::json::Value;
use crate::spec::Spec;
use std::collections::BTreeMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// steelpar pool width for the miss executor.
    pub jobs: usize,
    /// Re-execute every Nth cache hit and byte-compare (0 disables).
    pub crosscheck_every: u64,
    /// Cache directory.
    pub cache_dir: PathBuf,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: steelpar::resolve_jobs(None),
            crosscheck_every: 0,
            cache_dir: PathBuf::from("results/cache"),
        }
    }
}

/// Request counters, exposed at `GET /stats`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Requests handled (all endpoints).
    pub requests: u64,
    /// `POST /run` served from cache.
    pub run_hits: u64,
    /// `POST /run` computed by this request (dedup leader).
    pub run_misses: u64,
    /// `POST /run` that joined another request's in-flight computation.
    pub run_waits: u64,
    /// Malformed requests (unparseable spec, unknown endpoint, ...).
    pub run_errors: u64,
    /// Determinism cross-checks executed on hits.
    pub crosschecks: u64,
    /// Cross-checks whose re-execution did not match the cached bytes.
    pub crosscheck_failures: u64,
}

/// Lock, riding through poisoning (a panicking connection thread must
/// not wedge the whole server; all guarded state stays consistent
/// under this module's short critical sections).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One in-flight computation; every requester of the same key waits on
/// the same flight.
struct Flight {
    result: Mutex<Option<Result<String, String>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn fulfill(&self, outcome: Result<String, String>) {
        *lock(&self.result) = Some(outcome);
        self.done.notify_all();
    }

    fn wait_done(&self) -> Result<String, String> {
        let mut guard = lock(&self.result);
        loop {
            if let Some(outcome) = guard.as_ref() {
                return outcome.clone();
            }
            guard = self
                .done
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// The executor's work queue.
struct Queue {
    items: Vec<(Spec, Arc<Flight>)>,
    shutdown: bool,
}

struct Shared {
    cache: ResultCache,
    addr: Mutex<Option<SocketAddr>>,
    jobs: usize,
    crosscheck_every: u64,
    inflight: Mutex<BTreeMap<String, Arc<Flight>>>,
    queue: Mutex<Queue>,
    queue_ready: Condvar,
    stats: Mutex<ServeStats>,
    stopping: Mutex<bool>,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// Bind `cfg.addr` and open the cache. The returned server reports its
/// actual address (ephemeral ports resolved) before `run` is called.
pub fn bind(cfg: &ServerConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let cache = ResultCache::open(&cfg.cache_dir)?;
    Ok(Server {
        listener,
        addr,
        shared: Arc::new(Shared {
            cache,
            addr: Mutex::new(Some(addr)),
            jobs: cfg.jobs.max(1),
            crosscheck_every: cfg.crosscheck_every,
            inflight: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(Queue {
                items: Vec::new(),
                shutdown: false,
            }),
            queue_ready: Condvar::new(),
            stats: Mutex::new(ServeStats::default()),
            stopping: Mutex::new(false),
        }),
    })
}

impl Server {
    /// The bound address (use after `addr: 127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until a `POST /shutdown` arrives. Blocks the calling
    /// thread; connection handlers and the miss executor run on their
    /// own threads.
    pub fn serve_forever(self) -> io::Result<()> {
        let executor = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || executor_loop(&shared))
        };
        for conn in self.listener.incoming() {
            if *lock(&self.shared.stopping) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(&shared, stream));
        }
        // Drain the executor so in-flight leaders get their answers
        // before the process (or embedding test) moves on.
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
            self.shared.queue_ready.notify_all();
        }
        let _ = executor.join();
        Ok(())
    }
}

/// The miss executor: drain queued specs in batches over a steelpar
/// pool. Each scenario runs with inner `jobs = 1`; concurrency comes
/// from distinct specs in the batch, and the per-spec artifact is
/// byte-identical either way (that is the determinism contract the
/// hermetic gate pins).
fn executor_loop(shared: &Arc<Shared>) {
    loop {
        let batch = {
            let mut q = lock(&shared.queue);
            loop {
                if !q.items.is_empty() {
                    break std::mem::take(&mut q.items);
                }
                if q.shutdown {
                    return;
                }
                q = shared
                    .queue_ready
                    .wait(q)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        let width = shared.jobs.min(batch.len()).max(1);
        let worker_shared = Arc::clone(shared);
        steelpar::run(width, batch, move |(spec, flight): (Spec, Arc<Flight>)| {
            let key = spec.key();
            let artifact = figures::run_spec(&spec, 1);
            let outcome = match worker_shared.cache.store(&spec, &artifact) {
                Ok(_) => Ok(artifact),
                Err(e) => Err(format!("cache store failed: {e}")),
            };
            flight.fulfill(outcome);
            lock(&worker_shared.inflight).remove(&key);
        });
    }
}

/// How `POST /run` resolved, for the `X-Steelserve-Cache` header.
enum Disposition {
    Hit,
    Miss,
    Wait,
    Error,
}

impl Disposition {
    fn label(&self) -> &'static str {
        match self {
            Disposition::Hit => "hit",
            Disposition::Miss => "miss",
            Disposition::Wait => "wait",
            Disposition::Error => "error",
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    // Keep-alive: serve requests until the peer closes or errors.
    while let Ok(Some(req)) = http::read_request(&mut reader) {
        lock(&shared.stats).requests += 1;
        let (status, reason, disposition, body) = route(shared, &req);
        let stop = req.method == "POST" && req.path == "/shutdown";
        let ok = http::write_response(
            &mut write_half,
            status,
            reason,
            &[("X-Steelserve-Cache", disposition.label())],
            body.as_bytes(),
        )
        .is_ok();
        if stop {
            request_stop(shared);
            return;
        }
        if !ok {
            return;
        }
    }
}

fn route(shared: &Arc<Shared>, req: &Request) -> (u16, &'static str, Disposition, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/run") => handle_run(shared, &req.body),
        ("GET", "/healthz") => (200, "OK", Disposition::Hit, "ok\n".to_string()),
        ("GET", "/stats") => (200, "OK", Disposition::Hit, render_stats(shared)),
        ("POST", "/shutdown") => (200, "OK", Disposition::Hit, "shutting down\n".to_string()),
        _ => {
            lock(&shared.stats).run_errors += 1;
            (
                404,
                "Not Found",
                Disposition::Error,
                "unknown endpoint (try POST /run, GET /healthz, GET /stats)\n".to_string(),
            )
        }
    }
}

fn handle_run(shared: &Arc<Shared>, body: &[u8]) -> (u16, &'static str, Disposition, String) {
    let spec = std::str::from_utf8(body)
        .map_err(|_| "spec must be UTF-8".to_string())
        .and_then(|text| Spec::parse(text).map_err(|e| e.to_string()));
    let spec = match spec {
        Ok(spec) => spec,
        Err(msg) => {
            lock(&shared.stats).run_errors += 1;
            return (400, "Bad Request", Disposition::Error, format!("{msg}\n"));
        }
    };
    let key = spec.key();

    if let Some(artifact) = shared.cache.lookup(&key) {
        if let Err(resp) = maybe_crosscheck(shared, &spec, &key, &artifact) {
            return resp;
        }
        lock(&shared.stats).run_hits += 1;
        return (200, "OK", Disposition::Hit, artifact);
    }

    // In-flight dedup: first requester leads, the rest share the ride.
    let (flight, leader) = {
        let mut inflight = lock(&shared.inflight);
        match inflight.get(&key) {
            Some(flight) => (Arc::clone(flight), false),
            None => {
                let flight = Arc::new(Flight::new());
                inflight.insert(key.clone(), Arc::clone(&flight));
                (flight, true)
            }
        }
    };
    if leader {
        let mut q = lock(&shared.queue);
        q.items.push((spec, Arc::clone(&flight)));
        shared.queue_ready.notify_all();
    }
    match flight.wait_done() {
        Ok(artifact) => {
            let disposition = if leader {
                lock(&shared.stats).run_misses += 1;
                Disposition::Miss
            } else {
                lock(&shared.stats).run_waits += 1;
                Disposition::Wait
            };
            (200, "OK", disposition, artifact)
        }
        Err(msg) => {
            lock(&shared.stats).run_errors += 1;
            (500, "Internal Server Error", Disposition::Error, format!("{msg}\n"))
        }
    }
}

/// Every Nth hit, re-execute the spec and byte-compare against the
/// cached artifact. A mismatch means the determinism contract broke
/// (or the cache was poisoned past its seal): evict and fail loudly.
fn maybe_crosscheck(
    shared: &Arc<Shared>,
    spec: &Spec,
    key: &str,
    artifact: &str,
) -> Result<(), (u16, &'static str, Disposition, String)> {
    if shared.crosscheck_every == 0 {
        return Ok(());
    }
    let due = {
        let mut stats = lock(&shared.stats);
        (stats.run_hits + 1) % shared.crosscheck_every == 0 && {
            stats.crosschecks += 1;
            true
        }
    };
    if !due {
        return Ok(());
    }
    let recomputed = figures::run_spec(spec, 1);
    if recomputed == artifact {
        return Ok(());
    }
    shared.cache.evict(key);
    lock(&shared.stats).crosscheck_failures += 1;
    Err((
        500,
        "Internal Server Error",
        Disposition::Error,
        format!("determinism cross-check failed for key {key}: re-execution differs from cached artifact (entry evicted)\n"),
    ))
}

fn render_stats(shared: &Arc<Shared>) -> String {
    let stats = *lock(&shared.stats);
    let cache = shared.cache.stats();
    let mut obj = BTreeMap::new();
    let int = |n: u64| Value::Int(n as i64);
    obj.insert("requests".to_string(), int(stats.requests));
    obj.insert("run_hits".to_string(), int(stats.run_hits));
    obj.insert("run_misses".to_string(), int(stats.run_misses));
    obj.insert("run_waits".to_string(), int(stats.run_waits));
    obj.insert("run_errors".to_string(), int(stats.run_errors));
    obj.insert("crosschecks".to_string(), int(stats.crosschecks));
    obj.insert(
        "crosscheck_failures".to_string(),
        int(stats.crosscheck_failures),
    );
    obj.insert("cache_hits".to_string(), int(cache.hits));
    obj.insert("cache_misses".to_string(), int(cache.misses));
    obj.insert("cache_stores".to_string(), int(cache.stores));
    obj.insert("cache_evictions".to_string(), int(cache.evictions));
    Value::Obj(obj).pretty()
}

/// Flag the accept loop to stop, then poke it awake with a loopback
/// connection (`accept()` has no timeout in std, so the flag alone
/// would only be observed on the next organic connection).
fn request_stop(shared: &Arc<Shared>) {
    *lock(&shared.stopping) = true;
    // Copy the addr out before connecting: an `if let` scrutinee guard
    // lives through the whole construct, which would hold the lock
    // across the blocking connect (steelcheck R11).
    let addr = *lock(&shared.addr);
    if let Some(addr) = addr {
        let _ = TcpStream::connect(addr);
    }
}
