//! A minimal HTTP/1.1 reader/writer over `std::net` — just enough
//! protocol for the serving layer: request line + headers +
//! `Content-Length` bodies, keep-alive connections, nothing else (no
//! chunked encoding, no TLS, no HTTP/2). Both the server and the
//! closed-loop load generator speak through this module, so the wire
//! behavior of the two sides can never drift apart.
//!
//! Every function is panic-free: a malformed peer produces an
//! `io::Error` (or `Ok(None)` for a clean close), never an abort — the
//! server must survive arbitrary bytes on its socket.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;

/// Ceiling on one header line (start line included).
const MAX_LINE: usize = 8 * 1024;
/// Ceiling on the number of headers per message.
const MAX_HEADERS: usize = 64;
/// Ceiling on a request/response body (specs and figure artifacts are
/// kilobytes; a megabyte of headroom is generous).
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method verb (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target (`/run`, ...), as sent.
    pub path: String,
    /// Header `(name, value)` pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// Decoded body (`Content-Length` framing only).
    pub body: Vec<u8>,
}

/// One parsed HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// Decoded body.
    pub body: Vec<u8>,
}

/// Case-insensitive header lookup (first match).
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn protocol_error(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("http: {msg}"))
}

/// Read one CRLF- (or bare-LF-) terminated line, without the ending.
fn read_line(reader: &mut BufReader<TcpStream>) -> io::Result<Option<String>> {
    let mut line = String::new();
    let mut chunk = [0u8; 1];
    loop {
        match reader.read(&mut chunk)? {
            0 => {
                return if line.is_empty() {
                    Ok(None) // clean EOF between messages
                } else {
                    Err(protocol_error("connection closed mid-line"))
                };
            }
            _ => match chunk[0] {
                b'\n' => {
                    if line.ends_with('\r') {
                        line.pop();
                    }
                    return Ok(Some(line));
                }
                b => {
                    if line.len() >= MAX_LINE {
                        return Err(protocol_error("header line too long"));
                    }
                    line.push(b as char);
                }
            },
        }
    }
}

/// Read `headers` then (if `Content-Length` is present) the body.
fn read_headers_and_body(
    reader: &mut BufReader<TcpStream>,
) -> io::Result<(Vec<(String, String)>, Vec<u8>)> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or_else(|| protocol_error("eof in headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(protocol_error("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| protocol_error("header without ':'"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    let len = match header(&headers, "Content-Length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| protocol_error("bad Content-Length"))?,
    };
    if len > MAX_BODY {
        return Err(protocol_error("body too large"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok((headers, body))
}

/// Read one request from a keep-alive connection. `Ok(None)` means the
/// peer closed cleanly between requests.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let Some(start) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = start.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(protocol_error("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(protocol_error("unsupported protocol version"));
    }
    let (headers, body) = read_headers_and_body(reader)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    }))
}

/// Read one response (client side).
pub fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<Response> {
    let start = read_line(reader)?.ok_or_else(|| protocol_error("eof before status line"))?;
    let mut parts = start.split_whitespace();
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(protocol_error("malformed status line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(protocol_error("unsupported protocol version"));
    }
    let status = code
        .parse::<u16>()
        .map_err(|_| protocol_error("malformed status code"))?;
    let (headers, body) = read_headers_and_body(reader)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Write a response with `Content-Length` framing on a keep-alive
/// connection. `extra` headers ride along verbatim.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut msg = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\nContent-Type: text/plain; charset=utf-8\r\nConnection: keep-alive\r\n",
        body.len()
    );
    for (name, value) in extra {
        msg.push_str(name);
        msg.push_str(": ");
        msg.push_str(value);
        msg.push_str("\r\n");
    }
    msg.push_str("\r\n");
    stream.write_all(msg.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A keep-alive HTTP client over one TCP connection.
pub struct Client {
    addr: String,
    reader: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for `addr` (`host:port`); connects lazily.
    pub fn connect(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            reader: None,
        }
    }

    fn ensure_connected(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.reader.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            self.reader = Some(BufReader::new(stream));
        }
        self.reader
            .as_mut()
            .ok_or_else(|| protocol_error("connection unavailable"))
    }

    /// Issue one request and read the response. On a transport error
    /// the connection is dropped and retried once (the server may have
    /// closed an idle keep-alive connection).
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        for attempt in 0..2 {
            match self.request_once(method, path, body) {
                Ok(resp) => return Ok(resp),
                Err(e) if attempt == 0 && e.kind() != io::ErrorKind::InvalidData => {
                    self.reader = None; // reconnect and retry
                }
                Err(e) => return Err(e),
            }
        }
        Err(protocol_error("request retry exhausted"))
    }

    fn request_once(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let reader = self.ensure_connected()?;
        let msg = format!(
            "{method} {path} HTTP/1.1\r\nHost: steelserve\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        {
            let stream = reader.get_mut();
            stream.write_all(msg.as_bytes())?;
            stream.write_all(body)?;
            stream.flush()?;
        }
        read_response(reader)
    }
}
