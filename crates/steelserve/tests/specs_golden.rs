//! Golden tests over the shipped spec files in `specs/`.
//!
//! The spec documents are the public face of the serving layer: every
//! figure binary loads one, the hermetic gate posts them over HTTP,
//! and their content addresses name the cache entries. These tests pin
//! (a) the on-disk bytes (parse → pretty round-trip), (b) the mapping
//! to the committed figure defaults, and (c) the cache key derivation,
//! so an accidental format or canonicalization change cannot silently
//! re-address every cached artifact.

use std::path::PathBuf;
use steelserve::spec::{Spec, FIGURES};

/// Content address of `specs/fig4.json`. Pinned: if this moves, every
/// cache entry ever written for the default Fig. 4 run is orphaned —
/// such a change must be deliberate and called out in review.
const FIG4_KEY: &str = "d613e05edb8a4e4017be829ab733a8b2911aa86f13fa88397ddf20c79a334b94";

fn spec_path(figure: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs")).join(format!("{figure}.json"))
}

fn load(figure: &str) -> (String, Spec) {
    let path = spec_path(figure);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let spec =
        Spec::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
    (text, spec)
}

#[test]
fn every_figure_ships_a_spec_and_round_trips_byte_exactly() {
    for figure in FIGURES {
        let (text, spec) = load(figure);
        assert_eq!(spec.figure(), *figure, "{figure}: wrong figure field");
        // The committed file is exactly the pretty-printer's output —
        // regenerating a spec never produces a spurious diff.
        assert_eq!(
            spec.pretty(),
            text,
            "{figure}: specs/{figure}.json is not in canonical pretty form"
        );
        // canonical → parse → canonical is a fixed point, so the cache
        // key survives a round trip through the wire format.
        let reparsed = Spec::parse(&spec.canonical()).expect("canonical re-parse");
        assert_eq!(reparsed, spec, "{figure}: canonical form lost information");
        assert_eq!(reparsed.key(), spec.key(), "{figure}: key drifted across round trip");
    }
}

#[test]
fn shipped_specs_are_the_figure_defaults() {
    // The specs in `specs/` must describe exactly the runs that
    // produced the committed `results/<figure>.txt` artifacts.
    for figure in FIGURES {
        let (_, spec) = load(figure);
        let default = Spec::default_for(figure).expect("default exists");
        assert_eq!(
            spec, default,
            "{figure}: shipped spec diverged from the committed-figure defaults"
        );
    }
}

#[test]
fn fig4_cache_key_is_stable() {
    let (_, spec) = load("fig4");
    assert_eq!(spec.key(), FIG4_KEY, "canonicalization or hashing changed");
}

#[test]
fn keys_are_distinct_across_figures() {
    let mut keys: Vec<String> = FIGURES.iter().map(|f| load(f).1.key()).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), FIGURES.len(), "two figures share a content address");
}
