//! End-to-end serving tests over real loopback TCP: an in-process
//! server on an ephemeral port, exercised with the crate's own
//! keep-alive client. Covers the full request lifecycle the design
//! promises — miss (execute + store), hit (cached bytes), concurrent
//! duplicate requests deduplicating onto one computation, and a clean
//! `POST /shutdown`.

use std::path::PathBuf;
use steelserve::http::{header, Client};
use steelserve::server::{bind, ServerConfig};
use steelserve::spec::Spec;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("steelserve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bind a server on an ephemeral loopback port with a scratch cache;
/// returns its address and the serving thread's join handle.
fn spawn(tag: &str) -> (String, PathBuf, std::thread::JoinHandle<std::io::Result<()>>) {
    let dir = scratch(tag);
    let cfg = ServerConfig {
        jobs: 2,
        cache_dir: dir.clone(),
        ..ServerConfig::default()
    };
    let server = bind(&cfg).expect("bind ephemeral loopback port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.serve_forever());
    (addr, dir, handle)
}

fn shutdown(addr: &str, dir: &PathBuf, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let mut client = Client::connect(addr);
    let resp = client.request("POST", "/shutdown", b"").expect("shutdown");
    assert_eq!(resp.status, 200);
    handle.join().expect("server thread").expect("serve_forever");
    let _ = std::fs::remove_dir_all(dir);
}

/// A tiny spec so the miss path executes a real scenario quickly.
fn small_spec() -> Spec {
    Spec::Fig4 { cycles: 50, seed: 7, loops: 0 }
}

#[test]
fn miss_then_hit_serves_identical_bytes() {
    let (addr, dir, handle) = spawn("miss-hit");
    let body = small_spec().canonical();

    let mut client = Client::connect(&addr);
    let cold = client.request("POST", "/run", body.as_bytes()).expect("cold POST");
    assert_eq!(cold.status, 200);
    assert_eq!(header(&cold.headers, "X-Steelserve-Cache"), Some("miss"));
    assert!(!cold.body.is_empty());

    let warm = client.request("POST", "/run", body.as_bytes()).expect("warm POST");
    assert_eq!(warm.status, 200);
    assert_eq!(header(&warm.headers, "X-Steelserve-Cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "cache must serve the miss's exact bytes");

    shutdown(&addr, &dir, handle);
}

#[test]
fn concurrent_duplicates_dedup_onto_one_computation() {
    let (addr, dir, handle) = spawn("dedup");
    let body = Spec::Fig4 { cycles: 2_000, seed: 11, loops: 0 }.canonical();

    // Race several connections posting the same spec against an empty
    // cache: exactly one leader computes (`miss`), the rest either join
    // the in-flight computation (`wait`) or, if they arrive after the
    // store, read the cache (`hit`). All get the same bytes.
    let clients = 6;
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.clone();
            let body = body.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr);
                let resp = client.request("POST", "/run", body.as_bytes()).expect("POST");
                assert_eq!(resp.status, 200);
                let label = header(&resp.headers, "X-Steelserve-Cache")
                    .expect("disposition header")
                    .to_string();
                (label, resp.body)
            })
        })
        .collect();
    let results: Vec<(String, Vec<u8>)> =
        workers.into_iter().map(|w| w.join().expect("client thread")).collect();

    let misses = results.iter().filter(|(label, _)| label == "miss").count();
    assert_eq!(misses, 1, "exactly one leader may execute: {results:?}");
    for (label, bytes) in &results {
        assert!(
            label == "miss" || label == "wait" || label == "hit",
            "unexpected disposition {label}"
        );
        assert_eq!(bytes, &results[0].1, "all duplicates must see identical bytes");
    }

    shutdown(&addr, &dir, handle);
}

#[test]
fn malformed_spec_is_rejected_without_killing_the_connection() {
    let (addr, dir, handle) = spawn("reject");
    let mut client = Client::connect(&addr);

    let bad = client.request("POST", "/run", b"{\"figure\":\"fig99\"}").expect("bad POST");
    assert_eq!(bad.status, 400);
    assert_eq!(header(&bad.headers, "X-Steelserve-Cache"), Some("error"));

    // The same keep-alive connection still serves a good request.
    let good = client
        .request("POST", "/run", small_spec().canonical().as_bytes())
        .expect("good POST after rejection");
    assert_eq!(good.status, 200);

    shutdown(&addr, &dir, handle);
}
