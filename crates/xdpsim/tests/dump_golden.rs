//! Golden test for the lowered-program listing (`xdpverify
//! --dump-lowered` prints exactly this text).
//!
//! The golden file pins the complete lowering of the `L-SCAN` bounded
//! loop: block partition, resolved ops, every elided check with its
//! proof fact, and per-block fuel. Regenerate after an intentional
//! format or corpus change with:
//!
//! ```text
//! cargo run --release -p steelworks-bench --bin xdpverify -- \
//!     --dump-lowered L-SCAN > crates/xdpsim/tests/golden/l_scan_lowered.txt
//! ```

use steelworks_xdpsim::lower::lower;
use steelworks_xdpsim::prelude::*;
use steelworks_xdpsim::verifier::verify_with_proof;

#[test]
fn l_scan_dump_matches_golden() {
    let (maps, _) = standard_maps();
    let prog = loop_variant(LoopVariant::PayloadScan);
    let (_, proof) = verify_with_proof(&prog, &maps).expect("verifies");
    let lp = lower(&prog, &proof).expect("lowers");
    let golden = include_str!("golden/l_scan_lowered.txt");
    assert_eq!(
        lp.dump(),
        golden,
        "lowered listing drifted from the pinned golden; \
         see this file's header for the regeneration command"
    );
}
