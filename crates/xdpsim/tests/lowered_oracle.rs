//! Differential oracle: every corpus program, interpreter vs lowered
//! engine, over a seeded packet sweep — results must agree *exactly*,
//! including bit-identical f64 cost totals.
//!
//! This is the empirical half of the check-elision soundness argument:
//! the verifier's proof licenses dropping runtime checks, and this
//! sweep confirms the two engines are observationally equivalent on
//! every program the repo ships (see `DESIGN.md` §12).

use steelworks_xdpsim::cost::{BlockPlan, CostModel};
use steelworks_xdpsim::lower::{lower, run_lowered};
use steelworks_xdpsim::prelude::*;
use steelworks_xdpsim::verifier::verify_with_proof;
use steelworks_xdpsim::vm::run_with;
use steelworks_netsim::rng::SimRng;

/// Same seed and sweep shape as the verifier's fuel oracle in
/// `programs.rs`, so a divergence here points at lowering, not inputs.
const SEED: u64 = 0x5EED_F0E1;
const PACKETS_PER_PROG: usize = 32;

fn corpus() -> (MapSet, Vec<Program>) {
    let (maps, rb) = standard_maps();
    let mut progs: Vec<Program> = LoopVariant::ALL.iter().map(|&v| loop_variant(v)).collect();
    progs.extend(ReflectVariant::ALL.iter().map(|&v| reflect_variant(v, rb)));
    (maps, progs)
}

#[test]
fn interpreter_and_lowered_agree_on_corpus_sweep() {
    // The oracle must exercise the real engines regardless of the
    // host-level escape hatch.
    assert_ne!(
        std::env::var("XDPSIM_FORCE_INTERP").ok().as_deref(),
        Some("1"),
        "oracle runs both engines directly; unset XDPSIM_FORCE_INTERP"
    );
    let (maps, progs) = corpus();
    let cm = CostModel::default();
    let mut rng = SimRng::seed_from_u64(SEED);
    let mut compared = 0usize;
    for prog in &progs {
        let (stats, proof) = verify_with_proof(prog, &maps).expect("corpus verifies");
        let lp = lower(prog, &proof).expect("corpus lowers");
        let plan = BlockPlan::new(prog);
        for _ in 0..PACKETS_PER_PROG {
            let len = rng.range(10, 128) as usize;
            let mut pkt = Vec::with_capacity(len);
            for _ in 0..len {
                pkt.push(rng.below(256) as u8);
            }
            let ctx = XdpContext {
                ingress_ifindex: rng.below(4) as u32,
                rx_queue: rng.below(2) as u32,
            };
            let host_time = rng.below(1_000_000);
            let cpu = ctx.rx_queue;

            // Each engine gets its own clone of every mutable input so
            // neither can contaminate the other's run.
            let mut maps_a = maps.clone();
            let mut maps_b = maps.clone();
            let mut pkt_a = pkt.clone();
            let mut pkt_b = pkt;
            let mut rng_a = SimRng::seed_from_u64(host_time ^ SEED);
            let mut rng_b = SimRng::seed_from_u64(host_time ^ SEED);

            let a = run_with(
                prog,
                Some(&plan),
                stats.max_insns,
                &mut pkt_a,
                ctx,
                &mut maps_a,
                &cm,
                host_time,
                cpu,
                &mut rng_a,
            );
            let b = run_lowered(
                &lp, &mut pkt_b, ctx, &mut maps_b, &cm, host_time, cpu, &mut rng_b,
            );

            let tag = format!("{} len={len}", lp.name());
            assert_eq!(a.action, b.action, "{tag}: action");
            assert_eq!(a.trap, b.trap, "{tag}: trap");
            assert_eq!(a.cost.insns, b.cost.insns, "{tag}: retired insns");
            assert_eq!(
                a.cost.ns.to_bits(),
                b.cost.ns.to_bits(),
                "{tag}: cost ns {} vs {}",
                a.cost.ns,
                b.cost.ns
            );
            assert_eq!(a.ringbuf_events, b.ringbuf_events, "{tag}: ringbuf events");
            assert_eq!(a.pkt_writes, b.pkt_writes, "{tag}: pkt writes");
            assert_eq!(pkt_a, pkt_b, "{tag}: packet bytes");
            // Engines must consume host RNG identically (noise draws
            // downstream depend on it).
            assert_eq!(rng_a.below(u64::MAX), rng_b.below(u64::MAX), "{tag}: rng");
            compared += 1;
        }
    }
    assert_eq!(compared, progs.len() * PACKETS_PER_PROG);
}

#[test]
fn lowered_engine_elides_checks_on_every_corpus_program() {
    let (maps, progs) = corpus();
    for prog in &progs {
        let (_, proof) = verify_with_proof(prog, &maps).expect("corpus verifies");
        let lp = lower(prog, &proof).expect("corpus lowers");
        assert!(
            lp.elided_checks() > 0,
            "{}: lowering elided no checks",
            lp.name()
        );
        assert_eq!(lp.fuel(), proof.max_insns(), "{}: fuel", lp.name());
    }
}
