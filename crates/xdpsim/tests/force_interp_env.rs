//! The `XDPSIM_FORCE_INTERP=1` escape hatch.
//!
//! Env vars are process-wide, so this is the *only* test in its binary
//! (integration-test binaries run as separate processes; `cargo test`
//! cannot interleave another test into this one's environment).

use steelworks_xdpsim::host::HostProfile;
use steelworks_xdpsim::prelude::*;
use steelworks_xdpsim::xdp::XdpHost;

fn mk_host() -> XdpHost {
    let (maps, rb) = standard_maps();
    let prog = reflect_variant(ReflectVariant::TsRb, rb);
    XdpHost::new("xdp", prog, maps, HostProfile::preempt_rt()).expect("verifies")
}

#[test]
fn env_hatch_pins_interpreter() {
    // Default (variable unset or != "1"): compiled engine.
    std::env::remove_var("XDPSIM_FORCE_INTERP");
    assert_eq!(mk_host().engine(), "lowered");
    std::env::set_var("XDPSIM_FORCE_INTERP", "0");
    assert_eq!(mk_host().engine(), "lowered");

    // The hatch: hosts created while it is set run the interpreter.
    std::env::set_var("XDPSIM_FORCE_INTERP", "1");
    assert_eq!(mk_host().engine(), "interp");

    // Read once per host at load time, not per frame.
    std::env::remove_var("XDPSIM_FORCE_INTERP");
    assert_eq!(mk_host().engine(), "lowered");
}
