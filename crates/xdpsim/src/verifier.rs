//! The static verifier.
//!
//! A faithful-in-spirit model of the kernel's eBPF verifier, specialised
//! to XDP programs: abstract interpretation over the control flow graph
//! tracking register types, interval-bounded scalars, stack
//! initialization and spilled values, packet bounds knowledge, and map
//! value nullability.
//!
//! Scalars (and packet-pointer offsets) carry an unsigned interval
//! `[lo, hi]` from [`crate::interval`]. The fixpoint joins states at
//! merge points and, at loop heads, widens any still-growing bound to
//! its extreme after [`WIDEN_AFTER`] merges so analysis terminates.
//!
//! Back-edges are accepted only when a syntactic pre-pass can prove the
//! loop bounded: a single strictly-increasing counter (`rC += s`,
//! `s >= 1`, written nowhere else in the body) tested by a guard
//! against an immediate or a loop-invariant register whose interval has
//! a proven upper bound. From the per-loop trip bounds the verifier
//! derives a per-program fuel value ([`VerifyStats::max_insns`]) that
//! the VM enforces at runtime as a belt-and-braces bailout.
//!
//! Simplifications relative to the kernel (documented deliberately):
//!
//! - Loop shapes are restricted to single, non-nested, non-overlapping
//!   counter loops; anything else is rejected with a specific
//!   [`VerifyKind`] rather than being path-explored.
//! - Division/modulo by a register is accepted only when the divisor's
//!   interval excludes zero.
//! - Signed comparisons refine intervals only in the shared-positive
//!   range where the signed and unsigned orders agree.

use crate::insn::{AluOp, CmpOp, Helper, Insn, Reg, Size, MAX_INSNS};
use crate::interval::{refine, Interval};
use crate::maps::{MapKind, MapSet};
use crate::prog::Program;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Size of the program stack, as in the kernel.
pub const STACK_SIZE: usize = 512;

/// Merges into a loop head before widening kicks in.
pub const WIDEN_AFTER: u32 = 4;

/// Largest provable trip count a single loop may have.
pub const MAX_LOOP_TRIPS: u64 = 1 << 16;

/// Ceiling on the derived per-program fuel (mirrors the VM step limit).
pub const FUEL_CAP: u64 = 1_000_000;

/// Simulated `xdp_md` context layout (simulator-defined, 64-bit fields
/// for data pointers):
pub mod ctx_layout {
    /// `*(u64*)(ctx + 0)` → packet data pointer.
    pub const DATA: i16 = 0;
    /// `*(u64*)(ctx + 8)` → packet data end pointer.
    pub const DATA_END: i16 = 8;
    /// `*(u32*)(ctx + 16)` → ingress ifindex.
    pub const INGRESS_IFINDEX: i16 = 16;
    /// `*(u32*)(ctx + 20)` → rx queue index.
    pub const RX_QUEUE: i16 = 20;
}

/// Abstract register value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AbsVal {
    /// Never written on this path.
    Uninit,
    /// A number within the tracked interval.
    Scalar(Interval),
    /// The XDP context pointer (R1 at entry).
    CtxPtr,
    /// Pointer into the packet, `off` bytes past its start.
    PktPtr { off: Interval },
    /// The packet end sentinel.
    PktEnd,
    /// Pointer into the stack frame; `off` is relative to R10 (<= 0).
    StackPtr { off: i32 },
    /// Pointer to a map value of `size` bytes; must be null-checked
    /// while `nullable`.
    MapValuePtr { size: u32, nullable: bool },
    /// Pointer to a reserved ring buffer record.
    RingBufPtr { size: u32, nullable: bool },
}

impl AbsVal {
    fn is_init(&self) -> bool {
        !matches!(self, AbsVal::Uninit)
    }

    /// Compact rendering for diagnostics.
    fn render(&self) -> String {
        match self {
            AbsVal::Uninit => "uninit".into(),
            AbsVal::Scalar(iv) => format!("scalar{iv}"),
            AbsVal::CtxPtr => "ctx".into(),
            AbsVal::PktPtr { off } => format!("pkt+{off}"),
            AbsVal::PktEnd => "pkt_end".into(),
            AbsVal::StackPtr { off } => format!("fp{off:+}"),
            AbsVal::MapValuePtr { size, nullable } => {
                format!("map_value({size}B{})", if *nullable { ", nullable" } else { "" })
            }
            AbsVal::RingBufPtr { size, nullable } => {
                format!("ringbuf({size}B{})", if *nullable { ", nullable" } else { "" })
            }
        }
    }
}

/// The value interval a `size`-wide memory load can produce.
fn size_iv(size: Size) -> Interval {
    match size {
        Size::B => Interval::new(0, 0xFF),
        Size::H => Interval::new(0, 0xFFFF),
        Size::W => Interval::new(0, 0xFFFF_FFFF),
        Size::DW => Interval::TOP,
    }
}

/// Abstract machine state at one program point.
#[derive(Clone, PartialEq, Eq, Debug)]
struct State {
    regs: [AbsVal; 11],
    /// Which stack bytes have been written (index 0 = lowest address,
    /// i.e. R10 - STACK_SIZE).
    stack_init: [bool; STACK_SIZE],
    /// Tracked values of stack slots, keyed by the R10-relative offset
    /// of their lowest byte. A slot only restores through a load of the
    /// exact same (offset, size) pair; overlapping stores evict.
    spills: BTreeMap<i32, (Size, AbsVal)>,
    /// Proven minimum packet length (bytes readable from packet start).
    pkt_len_min: u32,
}

impl State {
    fn entry() -> Self {
        let mut regs = [AbsVal::Uninit; 11];
        regs[Reg::R1.idx()] = AbsVal::CtxPtr;
        regs[Reg::R10.idx()] = AbsVal::StackPtr { off: 0 };
        State {
            regs,
            stack_init: [false; STACK_SIZE],
            spills: BTreeMap::new(),
            pkt_len_min: 0,
        }
    }

    fn get(&self, r: Reg) -> AbsVal {
        self.regs[r.idx()]
    }

    fn set(&mut self, r: Reg, v: AbsVal) -> Result<(), VerifyKind> {
        if r == Reg::R10 {
            return Err(VerifyKind::FramePointerWrite);
        }
        self.regs[r.idx()] = v;
        Ok(())
    }

    /// Merge an incoming state into this one (joins are conservative:
    /// intersection of knowledge, hull of intervals). With `widen`,
    /// any interval bound still growing is sent to its extreme.
    fn merge(&mut self, other: &State, widen: bool) -> bool {
        let mut changed = false;
        for i in 0..11 {
            let joined = join_vals(self.regs[i], other.regs[i]);
            let merged = if widen {
                widen_val(self.regs[i], joined)
            } else {
                joined
            };
            if merged != self.regs[i] {
                self.regs[i] = merged;
                changed = true;
            }
        }
        let mut spills = BTreeMap::new();
        for (k, (sz, v)) in &self.spills {
            if let Some((osz, ov)) = other.spills.get(k) {
                if osz == sz {
                    let joined = join_vals(*v, *ov);
                    let merged = if widen { widen_val(*v, joined) } else { joined };
                    if merged.is_init() {
                        spills.insert(*k, (*sz, merged));
                    }
                }
            }
        }
        if spills != self.spills {
            self.spills = spills;
            changed = true;
        }
        for i in 0..STACK_SIZE {
            let merged = self.stack_init[i] && other.stack_init[i];
            if merged != self.stack_init[i] {
                self.stack_init[i] = merged;
                changed = true;
            }
        }
        let merged_len = self.pkt_len_min.min(other.pkt_len_min);
        if merged_len != self.pkt_len_min {
            self.pkt_len_min = merged_len;
            changed = true;
        }
        changed
    }
}

fn join_vals(a: AbsVal, b: AbsVal) -> AbsVal {
    use AbsVal::*;
    if a == b {
        return a;
    }
    match (a, b) {
        (Scalar(x), Scalar(y)) => Scalar(x.join(&y)),
        (PktPtr { off: o1 }, PktPtr { off: o2 }) => PktPtr { off: o1.join(&o2) },
        (
            MapValuePtr {
                size: s1,
                nullable: n1,
            },
            MapValuePtr {
                size: s2,
                nullable: n2,
            },
        ) if s1 == s2 => MapValuePtr {
            size: s1,
            nullable: n1 || n2,
        },
        (
            RingBufPtr {
                size: s1,
                nullable: n1,
            },
            RingBufPtr {
                size: s2,
                nullable: n2,
            },
        ) if s1 == s2 => RingBufPtr {
            size: s1,
            nullable: n1 || n2,
        },
        // A register that is a scalar on one path and a pointer on the
        // other (or vice versa) is unusable afterwards.
        _ => Uninit,
    }
}

/// Widening lift: intervals widen, everything else takes the join.
fn widen_val(old: AbsVal, joined: AbsVal) -> AbsVal {
    use AbsVal::*;
    match (old, joined) {
        (Scalar(o), Scalar(j)) => Scalar(o.widen(&j)),
        (PktPtr { off: o }, PktPtr { off: j }) => PktPtr { off: o.widen(&j) },
        (_, j) => j,
    }
}

/// Why a program was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyKind {
    /// Empty program.
    Empty,
    /// More than [`MAX_INSNS`] instructions.
    TooLong(usize),
    /// Execution can run off the end of the instruction stream.
    FallOffEnd(usize),
    /// Jump target outside the program.
    BadJumpTarget(usize),
    /// A back-edge with no provably bounded induction.
    UnboundedLoop(usize),
    /// Overlapping/nested loops or jumps into a loop body.
    LoopTooComplex(usize),
    /// The loop counter is not strictly increasing.
    LoopNotMonotonic(usize, Reg),
    /// The loop counter or bound register is written in the body.
    LoopCounterClobbered(usize, Reg),
    /// The loop bound register has no proven upper bound.
    LoopBoundUnknown(usize, Reg),
    /// The proven trip count exceeds the budget.
    LoopBoundTooLarge(usize, u64),
    /// The abstract interpretation failed to converge (safety valve).
    FixpointDiverged,
    /// Read of a register never written on some path.
    UninitRead(usize, Reg),
    /// Write to the read-only frame pointer.
    FramePointerWrite,
    /// Possibly-zero divisor.
    DivByZero(usize),
    /// Division by a register whose interval does not exclude zero.
    RegDivisor(usize),
    /// Memory access through a non-pointer.
    NonPointerDeref(usize, Reg),
    /// Packet access without a proven bound.
    PktOutOfBounds {
        /// Instruction index.
        at: usize,
        /// Bytes needed from packet start (worst case).
        need: u32,
        /// Bytes proven available.
        have: u32,
    },
    /// Stack access outside the 512-byte frame.
    StackOutOfBounds(usize, i32),
    /// Read of uninitialized stack bytes.
    StackUninitRead(usize, i32),
    /// Dereference of a possibly-null map/ringbuf value.
    PossibleNullDeref(usize, Reg),
    /// Access beyond a map value's size.
    MapValueOutOfBounds(usize),
    /// Write into the read-only context.
    CtxWrite(usize),
    /// Load from an unmodelled context offset.
    BadCtxAccess(usize, i16),
    /// Helper called with a bad argument.
    BadHelperArg {
        /// Instruction index.
        at: usize,
        /// Helper being called.
        helper: Helper,
        /// Human-readable complaint.
        what: &'static str,
    },
    /// Helper fd argument does not name a map of the required kind.
    BadMapFd(usize),
    /// `Exit` with R0 not holding an initialized scalar.
    BadReturn(usize),
}

impl VerifyKind {
    /// The offending instruction index, when the kind names one.
    pub fn at(&self) -> Option<usize> {
        use VerifyKind::*;
        match *self {
            Empty | TooLong(_) | FramePointerWrite | FixpointDiverged => None,
            FallOffEnd(i)
            | BadJumpTarget(i)
            | UnboundedLoop(i)
            | LoopTooComplex(i)
            | LoopNotMonotonic(i, _)
            | LoopCounterClobbered(i, _)
            | LoopBoundUnknown(i, _)
            | LoopBoundTooLarge(i, _)
            | UninitRead(i, _)
            | DivByZero(i)
            | RegDivisor(i)
            | NonPointerDeref(i, _)
            | StackOutOfBounds(i, _)
            | StackUninitRead(i, _)
            | PossibleNullDeref(i, _)
            | MapValueOutOfBounds(i)
            | CtxWrite(i)
            | BadCtxAccess(i, _)
            | BadMapFd(i)
            | BadReturn(i) => Some(i),
            PktOutOfBounds { at, .. } | BadHelperArg { at, .. } => Some(at),
        }
    }

    /// Stable kebab-case rejection code (see [`REJECT_CODES`]).
    pub fn code(&self) -> &'static str {
        use VerifyKind::*;
        match self {
            Empty => "empty-program",
            TooLong(_) => "too-long",
            FallOffEnd(_) => "fall-off-end",
            BadJumpTarget(_) => "bad-jump-target",
            UnboundedLoop(_) => "unbounded-loop",
            LoopTooComplex(_) => "loop-too-complex",
            LoopNotMonotonic(..) => "loop-not-monotonic",
            LoopCounterClobbered(..) => "loop-counter-clobbered",
            LoopBoundUnknown(..) => "loop-bound-unknown",
            LoopBoundTooLarge(..) => "loop-bound-too-large",
            FixpointDiverged => "fixpoint-diverged",
            UninitRead(..) => "uninit-read",
            FramePointerWrite => "frame-pointer-write",
            DivByZero(_) => "div-by-zero",
            RegDivisor(_) => "reg-divisor",
            NonPointerDeref(..) => "non-pointer-deref",
            PktOutOfBounds { .. } => "pkt-out-of-bounds",
            StackOutOfBounds(..) => "stack-out-of-bounds",
            StackUninitRead(..) => "stack-uninit-read",
            PossibleNullDeref(..) => "possible-null-deref",
            MapValueOutOfBounds(_) => "map-value-out-of-bounds",
            CtxWrite(_) => "ctx-write",
            BadCtxAccess(..) => "bad-ctx-access",
            BadHelperArg { .. } => "bad-helper-arg",
            BadMapFd(_) => "bad-map-fd",
            BadReturn(_) => "bad-return",
        }
    }
}

impl fmt::Display for VerifyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyKind::Empty => write!(f, "empty program"),
            VerifyKind::TooLong(n) => write!(f, "program too long: {n} insns"),
            VerifyKind::FallOffEnd(i) => write!(f, "insn {i}: control falls off the end"),
            VerifyKind::BadJumpTarget(i) => write!(f, "insn {i}: jump out of range"),
            VerifyKind::UnboundedLoop(i) => {
                write!(f, "insn {i}: back-edge with no provably bounded induction")
            }
            VerifyKind::LoopTooComplex(i) => {
                write!(f, "insn {i}: loop shape too complex to bound")
            }
            VerifyKind::LoopNotMonotonic(i, r) => {
                write!(f, "insn {i}: loop counter {r:?} is not strictly increasing")
            }
            VerifyKind::LoopCounterClobbered(i, r) => {
                write!(f, "insn {i}: loop counter/bound {r:?} clobbered in loop body")
            }
            VerifyKind::LoopBoundUnknown(i, r) => {
                write!(f, "insn {i}: loop bound {r:?} has no proven upper bound")
            }
            VerifyKind::LoopBoundTooLarge(i, k) => {
                write!(f, "insn {i}: loop bound {k} exceeds trip budget")
            }
            VerifyKind::FixpointDiverged => {
                write!(f, "abstract interpretation did not converge")
            }
            VerifyKind::UninitRead(i, r) => write!(f, "insn {i}: read of uninitialized {r:?}"),
            VerifyKind::FramePointerWrite => write!(f, "write to frame pointer R10"),
            VerifyKind::DivByZero(i) => write!(f, "insn {i}: divisor may be zero"),
            VerifyKind::RegDivisor(i) => {
                write!(f, "insn {i}: register divisor not proven non-zero")
            }
            VerifyKind::NonPointerDeref(i, r) => {
                write!(f, "insn {i}: memory access through non-pointer {r:?}")
            }
            VerifyKind::PktOutOfBounds { at, need, have } => write!(
                f,
                "insn {at}: packet access needs {need} bytes, only {have} proven"
            ),
            VerifyKind::StackOutOfBounds(i, off) => {
                write!(f, "insn {i}: stack access at offset {off} out of frame")
            }
            VerifyKind::StackUninitRead(i, off) => {
                write!(f, "insn {i}: read of uninitialized stack at {off}")
            }
            VerifyKind::PossibleNullDeref(i, r) => {
                write!(f, "insn {i}: possible NULL dereference of {r:?}")
            }
            VerifyKind::MapValueOutOfBounds(i) => {
                write!(f, "insn {i}: access beyond map value bounds")
            }
            VerifyKind::CtxWrite(i) => write!(f, "insn {i}: context is read-only"),
            VerifyKind::BadCtxAccess(i, off) => {
                write!(f, "insn {i}: invalid context offset {off}")
            }
            VerifyKind::BadHelperArg { at, helper, what } => {
                write!(f, "insn {at}: {helper:?}: {what}")
            }
            VerifyKind::BadMapFd(i) => write!(f, "insn {i}: fd is not a suitable map"),
            VerifyKind::BadReturn(i) => write!(f, "insn {i}: R0 not a scalar at exit"),
        }
    }
}

/// A rejection, carrying the reason plus diagnostics: the disassembled
/// offending instruction and the abstract state of its registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// What went wrong.
    pub kind: VerifyKind,
    /// Disassembly of the offending instruction, when one is named.
    pub insn: Option<String>,
    /// Rendered abstract values of the registers the instruction uses,
    /// as known just before it executed.
    pub regs: Vec<(Reg, String)>,
}

impl VerifyError {
    fn build(
        kind: VerifyKind,
        prog: &Program,
        st: Option<&State>,
        fallback_at: Option<usize>,
    ) -> VerifyError {
        let at = kind.at().or(fallback_at);
        let offending = at.and_then(|i| prog.insns.get(i));
        let insn = offending.map(|i| i.to_string());
        let regs = match (offending, st) {
            (Some(ins), Some(st)) => insn_regs(ins)
                .into_iter()
                .map(|r| (r, st.get(r).render()))
                .collect(),
            _ => Vec::new(),
        };
        VerifyError { kind, insn, regs }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(insn) = &self.insn {
            write!(f, " | `{insn}`")?;
        }
        if !self.regs.is_empty() {
            write!(f, " |")?;
            for (r, v) in &self.regs {
                write!(f, " {r:?}={v}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Registers an instruction reads or writes, for diagnostics
/// (first occurrence order, deduplicated).
fn insn_regs(insn: &Insn) -> Vec<Reg> {
    let raw = match *insn {
        Insn::MovImm(d, _) | Insn::AluImm(_, d, _) | Insn::Neg(d) => vec![d],
        Insn::MovReg(d, s) | Insn::AluReg(_, d, s) => vec![d, s],
        Insn::Load(_, d, b, _) => vec![d, b],
        Insn::Store(_, b, _, s) => vec![b, s],
        Insn::StoreImm(_, b, _, _) => vec![b],
        Insn::Ja(_) => vec![],
        Insn::JmpImm(_, r, _, _) => vec![r],
        Insn::JmpReg(_, a, b, _) => vec![a, b],
        Insn::Call(_) => vec![Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5],
        Insn::Exit => vec![Reg::R0],
    };
    let mut out: Vec<Reg> = Vec::new();
    for r in raw {
        if !out.contains(&r) {
            out.push(r);
        }
    }
    out
}

/// One row of the rejection-code reference table.
#[derive(Clone, Copy, Debug)]
pub struct RejectInfo {
    /// Stable kebab-case identifier ([`VerifyKind::code`]).
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// What the programmer should do about it.
    pub detail: &'static str,
}

/// Reference table for every rejection code the verifier can emit,
/// in the order the checks run.
pub const REJECT_CODES: &[RejectInfo] = &[
    RejectInfo {
        id: "empty-program",
        summary: "program has no instructions",
        detail: "emit at least `R0 = <action>; exit`",
    },
    RejectInfo {
        id: "too-long",
        summary: "program exceeds the instruction limit",
        detail: "keep programs within MAX_INSNS instructions",
    },
    RejectInfo {
        id: "fall-off-end",
        summary: "control can run past the last instruction",
        detail: "end every path with `exit` (or an unconditional jump)",
    },
    RejectInfo {
        id: "bad-jump-target",
        summary: "jump lands outside the instruction stream",
        detail: "jump offsets must stay within the program",
    },
    RejectInfo {
        id: "unbounded-loop",
        summary: "back-edge with no provably bounded induction",
        detail: "shape loops as a counter guarded by `>=`/`>` at the head or `<`/`<=` on the back-edge",
    },
    RejectInfo {
        id: "loop-too-complex",
        summary: "loop shape defeats the bound analysis",
        detail: "avoid nested/overlapping loops, jumps into a body, or branches that skip the increment",
    },
    RejectInfo {
        id: "loop-not-monotonic",
        summary: "loop counter is not strictly increasing",
        detail: "advance the counter with a single `rC += s` (s >= 1) in the body",
    },
    RejectInfo {
        id: "loop-counter-clobbered",
        summary: "counter or bound register is written inside the body",
        detail: "keep the counter and bound registers untouched apart from the one increment",
    },
    RejectInfo {
        id: "loop-bound-unknown",
        summary: "bound register has no proven upper bound",
        detail: "derive the bound from an immediate or a value clamped before the loop",
    },
    RejectInfo {
        id: "loop-bound-too-large",
        summary: "proven trip count exceeds the budget",
        detail: "keep per-loop trips within MAX_LOOP_TRIPS and total fuel within FUEL_CAP",
    },
    RejectInfo {
        id: "fixpoint-diverged",
        summary: "abstract interpretation did not converge",
        detail: "simplify control flow; this is the analysis safety valve",
    },
    RejectInfo {
        id: "uninit-read",
        summary: "read of a register never written on some path",
        detail: "initialize registers on every path before use; calls clobber R1-R5",
    },
    RejectInfo {
        id: "frame-pointer-write",
        summary: "write to the read-only frame pointer R10",
        detail: "copy R10 to another register to do pointer arithmetic",
    },
    RejectInfo {
        id: "div-by-zero",
        summary: "divisor may be zero",
        detail: "divide by a non-zero immediate or prove the divisor's range excludes 0",
    },
    RejectInfo {
        id: "reg-divisor",
        summary: "register divisor not proven non-zero",
        detail: "branch on the divisor (or mask/or it) so its interval excludes 0",
    },
    RejectInfo {
        id: "non-pointer-deref",
        summary: "memory access through a non-pointer",
        detail: "only ctx, packet, stack, map-value and ringbuf pointers dereference",
    },
    RejectInfo {
        id: "pkt-out-of-bounds",
        summary: "packet access beyond the proven length",
        detail: "bounds-check against data_end before reading; clamp variable offsets",
    },
    RejectInfo {
        id: "stack-out-of-bounds",
        summary: "stack access outside the 512-byte frame",
        detail: "stack offsets live in [-512, 0) relative to R10",
    },
    RejectInfo {
        id: "stack-uninit-read",
        summary: "read of stack bytes never written",
        detail: "store to a slot (on every path) before loading from it",
    },
    RejectInfo {
        id: "possible-null-deref",
        summary: "dereference of a possibly-null helper result",
        detail: "null-check map_lookup/ringbuf_reserve results before use",
    },
    RejectInfo {
        id: "map-value-out-of-bounds",
        summary: "access beyond the map value's size",
        detail: "keep offsets within the declared value_size",
    },
    RejectInfo {
        id: "ctx-write",
        summary: "store into the read-only context",
        detail: "the xdp_md context cannot be written",
    },
    RejectInfo {
        id: "bad-ctx-access",
        summary: "load from an unmodelled context offset",
        detail: "use the ctx_layout offsets with the matching width",
    },
    RejectInfo {
        id: "bad-helper-arg",
        summary: "helper called with an invalid argument",
        detail: "see the per-helper message for the argument contract",
    },
    RejectInfo {
        id: "bad-map-fd",
        summary: "fd argument is not a suitable map",
        detail: "pass a constant fd of the kind the helper expects",
    },
    RejectInfo {
        id: "bad-return",
        summary: "R0 is not a scalar at exit",
        detail: "set R0 to an XDP action before `exit`",
    },
];

/// Look up a rejection code by its stable id.
pub fn reject_info(id: &str) -> Option<&'static RejectInfo> {
    REJECT_CODES.iter().find(|r| r.id == id)
}

/// Statistics from a successful verification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Distinct (insn, state-merge) steps processed.
    pub states_processed: u64,
    /// Program length.
    pub insns: usize,
    /// Derived fuel: a proven upper bound on retired instructions per
    /// packet, which the VM enforces at runtime.
    pub max_insns: u64,
    /// Number of bounded loops accepted.
    pub loops: usize,
}

/// The proven region of one memory access, recorded at the fixpoint.
///
/// Facts are extracted from the *final* fixpoint state at each
/// instruction. The worklist re-queues an instruction whenever its
/// in-state changes, so the state recorded here is exactly the one the
/// last (successful) `check_mem_access` ran against — an
/// over-approximation of every concrete state that can reach the
/// instruction. The lowering may therefore drop the runtime region
/// dispatch and bounds check for the access, citing the interval here
/// as the proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessFact {
    /// Typed load from the context struct (offset/width pair already
    /// validated against [`ctx_layout`]).
    Ctx,
    /// Packet access through a bounded packet pointer.
    Packet {
        /// Proven interval of the base pointer's offset into the packet.
        off: Interval,
        /// Packet length proven available on every path to this point;
        /// the verifier established `off.hi + insn_off + width <= len_min`.
        len_min: u32,
    },
    /// Stack access at a statically known frame offset (joins of
    /// differing `StackPtr` offsets degrade to `Uninit`, so a verified
    /// stack access always has exactly one).
    Stack {
        /// R10-relative offset of the access's lowest byte, in
        /// `[-STACK_SIZE, -width]`; includes the instruction's
        /// displacement.
        off: i32,
    },
    /// Access through a proven non-null map value pointer.
    MapValue {
        /// Declared value size; `insn_off + width <= size` is proven.
        size: u32,
    },
    /// Access through a proven non-null ring buffer reservation.
    RingBuf {
        /// Reserved record size; `insn_off + width <= size` is proven.
        size: u32,
    },
}

/// Proof artifact of a successful verification, consumed by
/// [`crate::lower`]: per-access region facts plus reachability and the
/// derived fuel. A `Proof` can only be obtained from
/// [`verify_with_proof`], so a lowered program is always a verified
/// program and every check it elides cites an entry here.
#[derive(Clone, Debug)]
pub struct Proof {
    /// `facts[pc]` is the proven region of the `Load`/`Store`/`StoreImm`
    /// at `pc` (`None` for other instructions and unreachable code).
    facts: Vec<Option<AccessFact>>,
    /// Whether the fixpoint found any path reaching each instruction.
    reachable: Vec<bool>,
    /// Derived fuel (same value as [`VerifyStats::max_insns`]).
    max_insns: u64,
}

impl Proof {
    /// The proven region fact for the memory access at `pc`, if any.
    pub fn fact(&self, pc: usize) -> Option<AccessFact> {
        self.facts.get(pc).copied().flatten()
    }

    /// Whether any path reaches `pc`.
    pub fn is_reachable(&self, pc: usize) -> bool {
        self.reachable.get(pc).copied().unwrap_or(false)
    }

    /// Length of the program this proof covers.
    pub fn insns(&self) -> usize {
        self.reachable.len()
    }

    /// The verifier-derived retired-instruction bound.
    pub fn max_insns(&self) -> u64 {
        self.max_insns
    }

    /// Number of accesses carrying an elidable bounds proof.
    pub fn proven_accesses(&self) -> usize {
        self.facts.iter().flatten().count()
    }
}

/// Trip-count bound of an accepted loop.
#[derive(Clone, Copy, Debug)]
enum Bound {
    Imm(u64),
    Reg(Reg),
}

/// An accepted (provably bounded) natural loop.
#[derive(Clone, Copy, Debug)]
struct LoopInfo {
    head: usize,
    guard: usize,
    bound: Bound,
    body_len: u64,
}

/// Jump target as an absolute index (i64 math: back-edges are legal).
fn tgt_of(pc: usize, off: i16) -> usize {
    (pc as i64 + 1 + off as i64) as usize
}

fn jump_target(i: usize, insn: &Insn) -> Option<usize> {
    match *insn {
        Insn::Ja(off) | Insn::JmpImm(_, _, _, off) | Insn::JmpReg(_, _, _, off) => {
            Some(tgt_of(i, off))
        }
        _ => None,
    }
}

/// Does `insn` write register `r`? Calls clobber R0-R5.
fn writes(insn: &Insn, r: Reg) -> bool {
    match *insn {
        Insn::MovImm(d, _)
        | Insn::MovReg(d, _)
        | Insn::Neg(d)
        | Insn::AluImm(_, d, _)
        | Insn::AluReg(_, d, _)
        | Insn::Load(_, d, _, _) => d == r,
        Insn::Call(_) => r.idx() <= 5,
        _ => false,
    }
}

/// Does the guard's taken edge leave the loop `[head, be]`?
fn guard_exits(insns: &[Insn], guard: usize, head: usize, be: usize) -> bool {
    match jump_target(guard, &insns[guard]) {
        Some(t) => t < head || t > be,
        None => false,
    }
}

fn imm_bound(guard: usize, imm: i64) -> Result<Bound, VerifyKind> {
    if imm < 0 || imm as u64 > MAX_LOOP_TRIPS {
        return Err(VerifyKind::LoopBoundTooLarge(guard, imm as u64));
    }
    Ok(Bound::Imm(imm as u64))
}

/// Prove one back-edge is a bounded counter loop, or reject.
fn classify_loop(insns: &[Insn], head: usize, be: usize) -> Result<LoopInfo, VerifyKind> {
    let (guard, counter, bound) = match insns[be] {
        // while-form: `head: if rC >= K goto out; ...; rC += s; goto head`.
        Insn::Ja(_) => match insns[head] {
            Insn::JmpImm(CmpOp::Ge | CmpOp::Gt, rc, imm, _)
                if guard_exits(insns, head, head, be) =>
            {
                (head, rc, imm_bound(head, imm)?)
            }
            Insn::JmpReg(CmpOp::Ge | CmpOp::Gt, rc, rb, _)
                if guard_exits(insns, head, head, be) =>
            {
                (head, rc, Bound::Reg(rb))
            }
            _ => return Err(VerifyKind::UnboundedLoop(be)),
        },
        // do-while form: the back-edge itself is the guard.
        Insn::JmpImm(CmpOp::Lt | CmpOp::Le, rc, imm, _) => (be, rc, imm_bound(be, imm)?),
        Insn::JmpReg(CmpOp::Lt | CmpOp::Le, rc, rb, _) => (be, rc, Bound::Reg(rb)),
        _ => return Err(VerifyKind::UnboundedLoop(be)),
    };
    // Exactly one strictly-positive increment of the counter, and no
    // other write to the counter or to a register bound, in the body.
    let mut incr_at = None;
    for (p, ins) in insns.iter().enumerate().take(be + 1).skip(head) {
        if p == guard {
            continue;
        }
        if let Insn::AluImm(AluOp::Add, r, s) = *ins {
            if r == counter {
                if s < 1 {
                    return Err(VerifyKind::LoopNotMonotonic(p, counter));
                }
                if incr_at.is_some() {
                    return Err(VerifyKind::LoopCounterClobbered(p, counter));
                }
                incr_at = Some(p);
                continue;
            }
        }
        if writes(ins, counter) {
            if matches!(*ins, Insn::AluImm(AluOp::Sub, _, _)) {
                return Err(VerifyKind::LoopNotMonotonic(p, counter));
            }
            return Err(VerifyKind::LoopCounterClobbered(p, counter));
        }
        if let Bound::Reg(rb) = bound {
            if writes(ins, rb) {
                return Err(VerifyKind::LoopCounterClobbered(p, rb));
            }
        }
    }
    let Some(incr_at) = incr_at else {
        return Err(VerifyKind::LoopNotMonotonic(be, counter));
    };
    // No branch inside the body may skip the increment yet stay in the
    // loop — every iteration that reaches the back-edge must have
    // advanced the counter.
    for p in head..=be {
        if p == guard || p == be {
            continue;
        }
        if let Some(t) = jump_target(p, &insns[p]) {
            if t <= be && t > incr_at && p < incr_at {
                return Err(VerifyKind::LoopTooComplex(p));
            }
        }
    }
    Ok(LoopInfo {
        head,
        guard,
        bound,
        body_len: (be - head + 1) as u64,
    })
}

/// Find every back-edge and prove each one a bounded counter loop.
fn analyze_loops(prog: &Program) -> Result<Vec<LoopInfo>, VerifyKind> {
    let insns = &prog.insns;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, insn) in insns.iter().enumerate() {
        if let Some(t) = jump_target(i, insn) {
            if t <= i {
                edges.push((t, i));
            }
        }
    }
    // Loops must not overlap (no nesting, no shared bodies).
    for (k, &(h1, b1)) in edges.iter().enumerate() {
        for &(h2, b2) in &edges[k + 1..] {
            if h1 <= b2 && h2 <= b1 {
                return Err(VerifyKind::LoopTooComplex(b1.max(b2)));
            }
        }
    }
    let mut loops = Vec::new();
    for &(head, be) in &edges {
        // No external jump may enter the body anywhere but the head.
        for (p, insn) in insns.iter().enumerate() {
            if p >= head && p <= be {
                continue;
            }
            if let Some(t) = jump_target(p, insn) {
                if t > head && t <= be {
                    return Err(VerifyKind::LoopTooComplex(p));
                }
            }
        }
        loops.push(classify_loop(insns, head, be)?);
    }
    Ok(loops)
}

/// Verify `prog` against the maps it will run with.
pub fn verify(prog: &Program, maps: &MapSet) -> Result<VerifyStats, VerifyError> {
    verify_with_proof(prog, maps).map(|(stats, _)| stats)
}

/// Verify `prog` and return the proof artifact alongside the stats.
///
/// The [`Proof`] records, for every reachable memory access, the region
/// and bounds the fixpoint established — the facts
/// [`crate::lower::lower`] consumes to elide runtime checks.
pub fn verify_with_proof(
    prog: &Program,
    maps: &MapSet,
) -> Result<(VerifyStats, Proof), VerifyError> {
    let err0 = |kind| VerifyError::build(kind, prog, None, None);
    if prog.insns.is_empty() {
        return Err(err0(VerifyKind::Empty));
    }
    if prog.insns.len() > MAX_INSNS {
        return Err(err0(VerifyKind::TooLong(prog.insns.len())));
    }

    let n = prog.insns.len();
    // Static jump sanity: targets in range (back-edges allowed here —
    // the loop analysis decides their fate), no falling off the end.
    for (i, insn) in prog.insns.iter().enumerate() {
        if let Some(off) = match insn {
            Insn::Ja(off) | Insn::JmpImm(_, _, _, off) | Insn::JmpReg(_, _, _, off) => Some(*off),
            _ => None,
        } {
            let tgt = i as i64 + 1 + off as i64;
            if tgt < 0 || tgt >= n as i64 {
                return Err(err0(VerifyKind::BadJumpTarget(i)));
            }
        }
        if i == n - 1 && !matches!(insn, Insn::Exit | Insn::Ja(_)) {
            return Err(err0(VerifyKind::FallOffEnd(i)));
        }
    }

    let loops = analyze_loops(prog).map_err(err0)?;
    let loop_heads: BTreeSet<usize> = loops.iter().map(|l| l.head).collect();

    let mut states: Vec<Option<State>> = vec![None; n];
    states[0] = Some(State::entry());
    let mut merges: Vec<u32> = vec![0; n];
    let mut work: VecDeque<usize> = VecDeque::new();
    work.push_back(0);
    let mut processed = 0u64;

    while let Some(pc) = work.pop_front() {
        let Some(state) = states[pc].clone() else {
            continue;
        };
        processed += 1;
        // Safety valve: widening guarantees convergence; this guards
        // against implementation bugs in the transfer functions.
        if processed > (n as u64) * 1024 {
            return Err(VerifyError::build(
                VerifyKind::FixpointDiverged,
                prog,
                states[pc].as_ref(),
                Some(pc),
            ));
        }
        let outcomes = step(pc, &prog.insns[pc], state, maps)
            .map_err(|kind| VerifyError::build(kind, prog, states[pc].as_ref(), Some(pc)))?;
        for (tgt, st) in outcomes {
            match &mut states[tgt] {
                Some(existing) => {
                    merges[tgt] += 1;
                    let widen = loop_heads.contains(&tgt) && merges[tgt] >= WIDEN_AFTER;
                    if existing.merge(&st, widen) {
                        work.push_back(tgt);
                    }
                }
                slot @ None => {
                    *slot = Some(st);
                    work.push_back(tgt);
                }
            }
        }
    }

    // Fuel: resolve each loop's trip bound against the fixpoint state
    // at its guard and sum the worst-case body costs.
    let mut fuel = n as u64;
    for lp in &loops {
        let bound = match lp.bound {
            Bound::Imm(k) => k,
            Bound::Reg(r) => match states[lp.guard].as_ref().map(|s| s.get(r)) {
                // Guard unreachable: the loop never runs.
                None => 0,
                Some(AbsVal::Scalar(iv)) if iv.hi != u64::MAX => iv.hi,
                Some(_) => {
                    return Err(VerifyError::build(
                        VerifyKind::LoopBoundUnknown(lp.guard, r),
                        prog,
                        states[lp.guard].as_ref(),
                        None,
                    ))
                }
            },
        };
        if bound > MAX_LOOP_TRIPS {
            return Err(VerifyError::build(
                VerifyKind::LoopBoundTooLarge(lp.guard, bound),
                prog,
                states[lp.guard].as_ref(),
                None,
            ));
        }
        // At most `bound` full trips for a head guard, plus slack for
        // the do-while form's first-and-last partial passes.
        fuel = fuel.saturating_add((bound + 2).saturating_mul(lp.body_len));
        if fuel > FUEL_CAP {
            return Err(VerifyError::build(
                VerifyKind::LoopBoundTooLarge(lp.guard, bound),
                prog,
                states[lp.guard].as_ref(),
                None,
            ));
        }
    }

    // Proof extraction: classify every reachable memory access from
    // its final fixpoint state. `check_mem_access` already accepted
    // each of these against the same state, so the match is total for
    // reachable accesses; anything else stays `None` and the lowering
    // keeps (or refuses) it.
    let mut facts: Vec<Option<AccessFact>> = vec![None; n];
    for (pc, insn) in prog.insns.iter().enumerate() {
        let (base, off) = match *insn {
            Insn::Load(_, _, b, o) => (b, o),
            Insn::Store(_, b, o, _) | Insn::StoreImm(_, b, o, _) => (b, o),
            _ => continue,
        };
        let Some(st) = states[pc].as_ref() else {
            continue;
        };
        facts[pc] = match st.get(base) {
            AbsVal::CtxPtr => Some(AccessFact::Ctx),
            AbsVal::PktPtr { off: pk } => Some(AccessFact::Packet {
                off: pk,
                len_min: st.pkt_len_min,
            }),
            AbsVal::StackPtr { off: so } => Some(AccessFact::Stack {
                off: so + off as i32,
            }),
            AbsVal::MapValuePtr { size, .. } => Some(AccessFact::MapValue { size }),
            AbsVal::RingBufPtr { size, .. } => Some(AccessFact::RingBuf { size }),
            _ => None,
        };
    }
    let reachable: Vec<bool> = states.iter().map(|s| s.is_some()).collect();

    Ok((
        VerifyStats {
            states_processed: processed,
            insns: n,
            max_insns: fuel,
            loops: loops.len(),
        },
        Proof {
            facts,
            reachable,
            max_insns: fuel,
        },
    ))
}

type Outcomes = Vec<(usize, State)>;

fn require_init(st: &State, r: Reg, pc: usize) -> Result<AbsVal, VerifyKind> {
    let v = st.get(r);
    if v.is_init() {
        Ok(v)
    } else {
        Err(VerifyKind::UninitRead(pc, r))
    }
}

fn check_mem_access(
    st: &State,
    pc: usize,
    base: Reg,
    off: i16,
    size: Size,
    is_write: bool,
) -> Result<(), VerifyKind> {
    let b = require_init(st, base, pc)?;
    let width = size.bytes() as i32;
    match b {
        AbsVal::CtxPtr => {
            if is_write {
                return Err(VerifyKind::CtxWrite(pc));
            }
            Ok(())
        }
        AbsVal::PktPtr { off: pk } => {
            if off < 0 {
                return Err(VerifyKind::PktOutOfBounds {
                    at: pc,
                    need: 0,
                    have: st.pkt_len_min,
                });
            }
            // Worst case over the offset interval must stay in bounds.
            let need = pk.hi.saturating_add(off as u64 + width as u64);
            if need > st.pkt_len_min as u64 {
                return Err(VerifyKind::PktOutOfBounds {
                    at: pc,
                    need: u32::try_from(need).unwrap_or(u32::MAX),
                    have: st.pkt_len_min,
                });
            }
            Ok(())
        }
        AbsVal::PktEnd => Err(VerifyKind::PktOutOfBounds {
            at: pc,
            need: u32::MAX,
            have: st.pkt_len_min,
        }),
        AbsVal::StackPtr { off: so } => {
            let lo = so + off as i32;
            let hi = lo + width;
            if lo < -(STACK_SIZE as i32) || hi > 0 {
                return Err(VerifyKind::StackOutOfBounds(pc, lo));
            }
            if !is_write {
                let start = (lo + STACK_SIZE as i32) as usize;
                for i in start..start + width as usize {
                    if !st.stack_init[i] {
                        return Err(VerifyKind::StackUninitRead(pc, lo));
                    }
                }
            }
            Ok(())
        }
        AbsVal::MapValuePtr { size: ms, nullable } | AbsVal::RingBufPtr { size: ms, nullable } => {
            if nullable {
                return Err(VerifyKind::PossibleNullDeref(pc, base));
            }
            if off < 0 || off as u32 + width as u32 > ms {
                return Err(VerifyKind::MapValueOutOfBounds(pc));
            }
            Ok(())
        }
        _ => Err(VerifyKind::NonPointerDeref(pc, base)),
    }
}

/// Record a stack store: mark the bytes initialized, evict overlapping
/// spill records, and (when `val` is trackable) remember the value so
/// an exact-shape load restores it.
fn stack_store(st: &mut State, base_off: i32, off: i16, size: Size, val: Option<AbsVal>) {
    let lo = base_off + off as i32;
    let w = size.bytes() as i32;
    let start = (lo + STACK_SIZE as i32) as usize;
    for i in start..start + size.bytes() {
        st.stack_init[i] = true;
    }
    st.spills
        .retain(|k, (ks, _)| *k >= lo + w || *k + ks.bytes() as i32 <= lo);
    if let Some(v) = val {
        st.spills.insert(lo, (size, v));
    }
}

/// Interval transfer for a scalar ALU op (divisor non-zero already
/// proven for Div/Mod).
fn iv_bin(op: AluOp, a: Interval, b: Interval) -> Interval {
    match op {
        AluOp::Add => a.add(&b),
        AluOp::Sub => a.sub(&b),
        AluOp::Mul => a.mul(&b),
        AluOp::Div => a.udiv(&b),
        AluOp::Mod => a.urem(&b),
        AluOp::Or => a.or(&b),
        AluOp::And => a.and(&b),
        AluOp::Xor => a.xor(&b),
        AluOp::Lsh => a.lsh(&b),
        AluOp::Rsh => a.rsh(&b),
        AluOp::Arsh => a.arsh(&b),
    }
}

fn step(pc: usize, insn: &Insn, mut st: State, maps: &MapSet) -> Result<Outcomes, VerifyKind> {
    let next = pc + 1;
    match *insn {
        Insn::MovImm(dst, imm) => {
            st.set(dst, AbsVal::Scalar(Interval::of_imm(imm)))?;
            Ok(vec![(next, st)])
        }
        Insn::MovReg(dst, src) => {
            let v = require_init(&st, src, pc)?;
            st.set(dst, v)?;
            Ok(vec![(next, st)])
        }
        Insn::Neg(dst) => {
            match require_init(&st, dst, pc)? {
                AbsVal::Scalar(iv) => st.set(dst, AbsVal::Scalar(iv.neg()))?,
                _ => st.set(dst, AbsVal::Scalar(Interval::TOP))?,
            }
            Ok(vec![(next, st)])
        }
        Insn::AluImm(op, dst, imm) => {
            if matches!(op, AluOp::Div | AluOp::Mod) && imm == 0 {
                return Err(VerifyKind::DivByZero(pc));
            }
            let v = require_init(&st, dst, pc)?;
            let nv = match (v, op) {
                (AbsVal::Scalar(iv), _) => AbsVal::Scalar(iv_bin(op, iv, Interval::of_imm(imm))),
                (AbsVal::PktPtr { off }, AluOp::Add) => {
                    if imm >= 0 {
                        AbsVal::PktPtr {
                            off: off.add(&Interval::exact(imm as u64)),
                        }
                    } else {
                        AbsVal::PktPtr { off: Interval::TOP }
                    }
                }
                (AbsVal::StackPtr { off }, AluOp::Add) => AbsVal::StackPtr {
                    off: off + imm as i32,
                },
                (AbsVal::StackPtr { off }, AluOp::Sub) => AbsVal::StackPtr {
                    off: off - imm as i32,
                },
                // Arithmetic that destroys pointer provenance.
                _ => AbsVal::Scalar(Interval::TOP),
            };
            st.set(dst, nv)?;
            Ok(vec![(next, st)])
        }
        Insn::AluReg(op, dst, src) => {
            let b = require_init(&st, src, pc)?;
            if matches!(op, AluOp::Div | AluOp::Mod) {
                match b {
                    AbsVal::Scalar(iv) if iv.as_const() == Some(0) => {
                        return Err(VerifyKind::DivByZero(pc))
                    }
                    AbsVal::Scalar(iv) if iv.lo >= 1 => {}
                    _ => return Err(VerifyKind::RegDivisor(pc)),
                }
            }
            let a = require_init(&st, dst, pc)?;
            let nv = match (a, b, op) {
                (AbsVal::Scalar(x), AbsVal::Scalar(y), _) => AbsVal::Scalar(iv_bin(op, x, y)),
                (AbsVal::PktPtr { off }, AbsVal::Scalar(y), AluOp::Add) => {
                    AbsVal::PktPtr { off: off.add(&y) }
                }
                // data_end - (pkt + off) >= pkt_len_min - off.hi
                (AbsVal::PktEnd, AbsVal::PktPtr { off }, AluOp::Sub) => AbsVal::Scalar(
                    Interval::new((st.pkt_len_min as u64).saturating_sub(off.hi), u64::MAX),
                ),
                _ => AbsVal::Scalar(Interval::TOP),
            };
            st.set(dst, nv)?;
            Ok(vec![(next, st)])
        }
        Insn::Load(size, dst, base, off) => {
            let b = require_init(&st, base, pc)?;
            if let AbsVal::CtxPtr = b {
                // Context loads produce typed values.
                let v = match (off, size) {
                    (ctx_layout::DATA, Size::DW) => AbsVal::PktPtr {
                        off: Interval::exact(0),
                    },
                    (ctx_layout::DATA_END, Size::DW) => AbsVal::PktEnd,
                    (ctx_layout::INGRESS_IFINDEX, Size::W) | (ctx_layout::RX_QUEUE, Size::W) => {
                        AbsVal::Scalar(size_iv(Size::W))
                    }
                    _ => return Err(VerifyKind::BadCtxAccess(pc, off)),
                };
                st.set(dst, v)?;
                return Ok(vec![(next, st)]);
            }
            check_mem_access(&st, pc, base, off, size, false)?;
            let loaded = match b {
                // Exact-shape stack loads restore the spilled value.
                AbsVal::StackPtr { off: so } => match st.spills.get(&(so + off as i32)) {
                    Some((sz, v)) if *sz == size => *v,
                    _ => AbsVal::Scalar(size_iv(size)),
                },
                _ => AbsVal::Scalar(size_iv(size)),
            };
            st.set(dst, loaded)?;
            Ok(vec![(next, st)])
        }
        Insn::Store(size, base, off, src) => {
            let v = require_init(&st, src, pc)?;
            check_mem_access(&st, pc, base, off, size, true)?;
            if let AbsVal::StackPtr { off: so } = st.get(base) {
                let rec = match (size, v) {
                    // Full-width stores keep any value, pointers included.
                    (Size::DW, any) => Some(any),
                    // Narrow stores keep scalars, clamped to the width.
                    (_, AbsVal::Scalar(iv)) => {
                        let cap = size_iv(size);
                        Some(AbsVal::Scalar(if iv.hi <= cap.hi { iv } else { cap }))
                    }
                    // A truncated pointer is just bytes.
                    _ => None,
                };
                stack_store(&mut st, so, off, size, rec);
            }
            Ok(vec![(next, st)])
        }
        Insn::StoreImm(size, base, off, imm) => {
            check_mem_access(&st, pc, base, off, size, true)?;
            if let AbsVal::StackPtr { off: so } = st.get(base) {
                let rec = AbsVal::Scalar(Interval::exact((imm as u64) & size_iv(size).hi));
                stack_store(&mut st, so, off, size, Some(rec));
            }
            Ok(vec![(next, st)])
        }
        Insn::Ja(off) => Ok(vec![(tgt_of(pc, off), st)]),
        Insn::JmpImm(op, r, imm, off) => {
            let v = require_init(&st, r, pc)?;
            let tgt = tgt_of(pc, off);
            let mut taken = st.clone();
            let mut fall = st;
            // Null-check refinement for nullable pointers.
            if imm == 0 {
                match v {
                    AbsVal::MapValuePtr {
                        size,
                        nullable: true,
                    } => match op {
                        CmpOp::Eq => {
                            // taken: is null; fall: non-null
                            taken.set(r, AbsVal::Scalar(Interval::exact(0)))?;
                            fall.set(
                                r,
                                AbsVal::MapValuePtr {
                                    size,
                                    nullable: false,
                                },
                            )?;
                        }
                        CmpOp::Ne => {
                            taken.set(
                                r,
                                AbsVal::MapValuePtr {
                                    size,
                                    nullable: false,
                                },
                            )?;
                            fall.set(r, AbsVal::Scalar(Interval::exact(0)))?;
                        }
                        _ => {}
                    },
                    AbsVal::RingBufPtr {
                        size,
                        nullable: true,
                    } => match op {
                        CmpOp::Eq => {
                            taken.set(r, AbsVal::Scalar(Interval::exact(0)))?;
                            fall.set(
                                r,
                                AbsVal::RingBufPtr {
                                    size,
                                    nullable: false,
                                },
                            )?;
                        }
                        CmpOp::Ne => {
                            taken.set(
                                r,
                                AbsVal::RingBufPtr {
                                    size,
                                    nullable: false,
                                },
                            )?;
                            fall.set(r, AbsVal::Scalar(Interval::exact(0)))?;
                        }
                        _ => {}
                    },
                    _ => {}
                }
            }
            // Interval refinement with dead-edge pruning.
            if let AbsVal::Scalar(iv) = v {
                let mut out = Vec::new();
                if let Some((na, _)) = refine(op, true, iv, Interval::of_imm(imm)) {
                    taken.set(r, AbsVal::Scalar(na))?;
                    out.push((tgt, taken));
                }
                if let Some((na, _)) = refine(op, false, iv, Interval::of_imm(imm)) {
                    fall.set(r, AbsVal::Scalar(na))?;
                    out.push((next, fall));
                }
                return Ok(out);
            }
            Ok(vec![(tgt, taken), (next, fall)])
        }
        Insn::JmpReg(op, a, b, off) => {
            let va = require_init(&st, a, pc)?;
            let vb = require_init(&st, b, pc)?;
            let tgt = tgt_of(pc, off);
            let mut taken = st.clone();
            let mut fall = st;
            // The canonical packet bounds check:
            //   rX = pkt + N; if rX > data_end goto fail;
            // On the fall-through, the packet has at least N bytes.
            if let (AbsVal::PktPtr { off: po }, AbsVal::PktEnd) = (va, vb) {
                if let Some(po) = po.as_const() {
                    let po = u32::try_from(po).unwrap_or(u32::MAX);
                    match op {
                        CmpOp::Gt => fall.pkt_len_min = fall.pkt_len_min.max(po),
                        CmpOp::Ge => fall.pkt_len_min = fall.pkt_len_min.max(po.saturating_sub(1)),
                        CmpOp::Le => taken.pkt_len_min = taken.pkt_len_min.max(po),
                        CmpOp::Lt => taken.pkt_len_min = taken.pkt_len_min.max(po.saturating_sub(1)),
                        _ => {}
                    }
                }
                return Ok(vec![(tgt, taken), (next, fall)]);
            }
            if let (AbsVal::Scalar(ia), AbsVal::Scalar(ib)) = (va, vb) {
                let mut out = Vec::new();
                if let Some((na, nb)) = refine(op, true, ia, ib) {
                    taken.set(a, AbsVal::Scalar(na))?;
                    taken.set(b, AbsVal::Scalar(nb))?;
                    out.push((tgt, taken));
                }
                if let Some((na, nb)) = refine(op, false, ia, ib) {
                    fall.set(a, AbsVal::Scalar(na))?;
                    fall.set(b, AbsVal::Scalar(nb))?;
                    out.push((next, fall));
                }
                return Ok(out);
            }
            Ok(vec![(tgt, taken), (next, fall)])
        }
        Insn::Call(helper) => {
            check_helper(pc, helper, &mut st, maps)?;
            // Calls clobber the caller-saved argument registers.
            for r in [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5] {
                st.regs[r.idx()] = AbsVal::Uninit;
            }
            Ok(vec![(next, st)])
        }
        Insn::Exit => match st.get(Reg::R0) {
            AbsVal::Scalar(_) => Ok(vec![]),
            _ => Err(VerifyKind::BadReturn(pc)),
        },
    }
}

fn const_fd(st: &State, r: Reg, pc: usize, helper: Helper) -> Result<u32, VerifyKind> {
    if let AbsVal::Scalar(iv) = st.get(r) {
        if let Some(v) = iv.as_const() {
            if v <= u32::MAX as u64 {
                return Ok(v as u32);
            }
        }
    }
    Err(VerifyKind::BadHelperArg {
        at: pc,
        helper,
        what: "map fd must be a known constant",
    })
}

fn stack_bytes_init(st: &State, off: i32, len: usize) -> bool {
    let lo = off + STACK_SIZE as i32;
    if lo < 0 || lo as usize + len > STACK_SIZE {
        return false;
    }
    (lo as usize..lo as usize + len).all(|i| st.stack_init[i])
}

fn check_helper(pc: usize, helper: Helper, st: &mut State, maps: &MapSet) -> Result<(), VerifyKind> {
    use Helper::*;
    match helper {
        KtimeGetNs | GetSmpProcessorId | GetPrandomU32 => {
            st.regs[Reg::R0.idx()] = AbsVal::Scalar(Interval::TOP);
            Ok(())
        }
        MapLookup => {
            let fd = const_fd(st, Reg::R1, pc, helper)?;
            let map = maps
                .get(crate::maps::MapFd(fd))
                .ok_or(VerifyKind::BadMapFd(pc))?;
            let (key_size, value_size) = match &map.kind {
                MapKind::Array { value_size, .. } | MapKind::PerCpuArray { value_size, .. } => {
                    (4usize, *value_size)
                }
                MapKind::Hash {
                    key_size,
                    value_size,
                    ..
                } => (*key_size, *value_size),
                MapKind::RingBuf { .. } => return Err(VerifyKind::BadMapFd(pc)),
            };
            match st.get(Reg::R2) {
                AbsVal::StackPtr { off } if stack_bytes_init(st, off, key_size) => {}
                AbsVal::StackPtr { .. } => {
                    return Err(VerifyKind::BadHelperArg {
                        at: pc,
                        helper,
                        what: "key bytes not fully initialized",
                    })
                }
                _ => {
                    return Err(VerifyKind::BadHelperArg {
                        at: pc,
                        helper,
                        what: "key must be a stack pointer",
                    })
                }
            }
            st.regs[Reg::R0.idx()] = AbsVal::MapValuePtr {
                size: value_size as u32,
                nullable: true,
            };
            Ok(())
        }
        MapUpdate => {
            let fd = const_fd(st, Reg::R1, pc, helper)?;
            let map = maps
                .get(crate::maps::MapFd(fd))
                .ok_or(VerifyKind::BadMapFd(pc))?;
            let (key_size, value_size) = match &map.kind {
                MapKind::Array { value_size, .. } | MapKind::PerCpuArray { value_size, .. } => {
                    (4usize, *value_size)
                }
                MapKind::Hash {
                    key_size,
                    value_size,
                    ..
                } => (*key_size, *value_size),
                MapKind::RingBuf { .. } => return Err(VerifyKind::BadMapFd(pc)),
            };
            for (r, len, what) in [
                (Reg::R2, key_size, "key bytes not fully initialized"),
                (Reg::R3, value_size, "value bytes not fully initialized"),
            ] {
                match st.get(r) {
                    AbsVal::StackPtr { off } if stack_bytes_init(st, off, len) => {}
                    _ => {
                        return Err(VerifyKind::BadHelperArg {
                            at: pc,
                            helper,
                            what,
                        })
                    }
                }
            }
            st.regs[Reg::R0.idx()] = AbsVal::Scalar(Interval::TOP);
            Ok(())
        }
        RingbufOutput => {
            let fd = const_fd(st, Reg::R1, pc, helper)?;
            let map = maps
                .get(crate::maps::MapFd(fd))
                .ok_or(VerifyKind::BadMapFd(pc))?;
            if !matches!(map.kind, MapKind::RingBuf { .. }) {
                return Err(VerifyKind::BadMapFd(pc));
            }
            let len = match st.get(Reg::R3) {
                AbsVal::Scalar(iv) => match iv.as_const() {
                    Some(v) if v >= 1 && v <= STACK_SIZE as u64 * 8 => v,
                    _ => {
                        return Err(VerifyKind::BadHelperArg {
                            at: pc,
                            helper,
                            what: "length must be a known positive constant",
                        })
                    }
                },
                _ => {
                    return Err(VerifyKind::BadHelperArg {
                        at: pc,
                        helper,
                        what: "length must be a known positive constant",
                    })
                }
            };
            match st.get(Reg::R2) {
                AbsVal::StackPtr { off } if stack_bytes_init(st, off, len as usize) => {}
                AbsVal::PktPtr { off } if off.hi.saturating_add(len) <= st.pkt_len_min as u64 => {}
                _ => {
                    return Err(VerifyKind::BadHelperArg {
                        at: pc,
                        helper,
                        what: "data must be initialized stack or bounded packet bytes",
                    })
                }
            }
            st.regs[Reg::R0.idx()] = AbsVal::Scalar(Interval::TOP);
            Ok(())
        }
        RingbufReserve => {
            let fd = const_fd(st, Reg::R1, pc, helper)?;
            let map = maps
                .get(crate::maps::MapFd(fd))
                .ok_or(VerifyKind::BadMapFd(pc))?;
            if !matches!(map.kind, MapKind::RingBuf { .. }) {
                return Err(VerifyKind::BadMapFd(pc));
            }
            let len = match st.get(Reg::R2) {
                AbsVal::Scalar(iv) => match iv.as_const() {
                    Some(v) if v >= 1 && v <= u32::MAX as u64 => v as u32,
                    _ => {
                        return Err(VerifyKind::BadHelperArg {
                            at: pc,
                            helper,
                            what: "length must be a known positive constant",
                        })
                    }
                },
                _ => {
                    return Err(VerifyKind::BadHelperArg {
                        at: pc,
                        helper,
                        what: "length must be a known positive constant",
                    })
                }
            };
            st.regs[Reg::R0.idx()] = AbsVal::RingBufPtr {
                size: len,
                nullable: true,
            };
            Ok(())
        }
        RingbufSubmit => {
            match st.get(Reg::R1) {
                AbsVal::RingBufPtr {
                    nullable: false, ..
                } => {}
                AbsVal::RingBufPtr { nullable: true, .. } => {
                    return Err(VerifyKind::PossibleNullDeref(pc, Reg::R1))
                }
                _ => {
                    return Err(VerifyKind::BadHelperArg {
                        at: pc,
                        helper,
                        what: "argument must be a reserved ringbuf record",
                    })
                }
            }
            st.regs[Reg::R0.idx()] = AbsVal::Scalar(Interval::exact(0));
            Ok(())
        }
        XdpAdjustHead => {
            if !matches!(st.get(Reg::R1), AbsVal::CtxPtr) {
                return Err(VerifyKind::BadHelperArg {
                    at: pc,
                    helper,
                    what: "first argument must be the context",
                });
            }
            match st.get(Reg::R2) {
                AbsVal::Scalar(_) => {}
                _ => {
                    return Err(VerifyKind::BadHelperArg {
                        at: pc,
                        helper,
                        what: "delta must be a scalar",
                    })
                }
            }
            // All packet pointers — including spilled ones — are
            // invalidated.
            for i in 0..11 {
                if matches!(st.regs[i], AbsVal::PktPtr { .. } | AbsVal::PktEnd) {
                    st.regs[i] = AbsVal::Uninit;
                }
            }
            st.spills
                .retain(|_, (_, v)| !matches!(v, AbsVal::PktPtr { .. } | AbsVal::PktEnd));
            st.pkt_len_min = 0;
            st.regs[Reg::R0.idx()] = AbsVal::Scalar(Interval::TOP);
            Ok(())
        }
        CsumDiff => {
            // Loose checking: all five args must be initialized.
            for r in [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5] {
                require_init(st, r, pc)?;
            }
            st.regs[Reg::R0.idx()] = AbsVal::Scalar(Interval::TOP);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::ProgramBuilder;

    fn empty_maps() -> MapSet {
        MapSet::new()
    }

    /// r0 = XDP_PASS; exit
    fn trivial() -> Program {
        let mut b = ProgramBuilder::new("trivial");
        b.mov_imm(Reg::R0, 2).exit();
        b.build()
    }

    #[test]
    fn trivial_program_verifies() {
        let stats = verify(&trivial(), &empty_maps()).expect("verifies");
        assert_eq!(stats.insns, 2);
        assert_eq!(stats.max_insns, 2);
        assert_eq!(stats.loops, 0);
    }

    /// A bare back-edge with no guard anywhere is rejected, and the
    /// diagnostics name the offending instruction.
    #[test]
    fn back_edge_rejected_with_instruction_index() {
        // 0: r0 = 2
        // 1: ja -2        <- loops back to insn 0, nothing bounds it
        // 2: exit
        let p = Program {
            name: "loop".into(),
            insns: vec![Insn::MovImm(Reg::R0, 2), Insn::Ja(-2), Insn::Exit],
        };
        let err = verify(&p, &empty_maps()).unwrap_err();
        assert_eq!(err.kind, VerifyKind::UnboundedLoop(1));
        assert_eq!(
            err.to_string(),
            "insn 1: back-edge with no provably bounded induction | `goto -2`"
        );
    }

    /// A conditional back-edge whose compare op can never bound the
    /// counter (equality) is rejected too.
    #[test]
    fn conditional_back_edge_rejected() {
        // 0: r0 = 0
        // 1: r0 += 1
        // 2: if r0 == 10 { pc += -2 }   <- loops back to insn 1
        // 3: exit
        let p = Program {
            name: "cond-loop".into(),
            insns: vec![
                Insn::MovImm(Reg::R0, 0),
                Insn::AluImm(AluOp::Add, Reg::R0, 1),
                Insn::JmpImm(CmpOp::Eq, Reg::R0, 10, -2),
                Insn::Exit,
            ],
        };
        let err = verify(&p, &empty_maps()).unwrap_err();
        assert_eq!(err.kind, VerifyKind::UnboundedLoop(2));
    }

    #[test]
    fn empty_program_rejected() {
        let p = Program {
            name: "e".into(),
            insns: vec![],
        };
        assert_eq!(verify(&p, &empty_maps()).unwrap_err().kind, VerifyKind::Empty);
    }

    #[test]
    fn uninit_read_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R0, Reg::R5).exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()).unwrap_err().kind,
            VerifyKind::UninitRead(0, Reg::R5)
        );
    }

    #[test]
    fn fall_off_end_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        assert_eq!(
            verify(&b.build(), &empty_maps()).unwrap_err().kind,
            VerifyKind::FallOffEnd(0)
        );
    }

    #[test]
    fn div_by_zero_imm_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 4).alu_imm(AluOp::Div, Reg::R0, 0).exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()).unwrap_err().kind,
            VerifyKind::DivByZero(1)
        );
    }

    #[test]
    fn frame_pointer_write_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R10, 0).exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()).unwrap_err().kind,
            VerifyKind::FramePointerWrite
        );
    }

    #[test]
    fn packet_access_without_bounds_check_rejected() {
        // r2 = ctx->data; r0 = *(u8*)(r2+0)  — no bounds check.
        let mut b = ProgramBuilder::new("t");
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::B, Reg::R0, Reg::R2, 0)
            .exit();
        match verify(&b.build(), &empty_maps()).unwrap_err().kind {
            VerifyKind::PktOutOfBounds {
                at: 1,
                need: 1,
                have: 0,
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    /// The full diagnostic line: reason, disassembled instruction, and
    /// the abstract state of the registers it uses.
    #[test]
    fn diagnostics_golden_message() {
        let mut b = ProgramBuilder::new("t");
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::B, Reg::R0, Reg::R2, 0)
            .exit();
        let err = verify(&b.build(), &empty_maps()).unwrap_err();
        assert_eq!(
            err.to_string(),
            "insn 1: packet access needs 1 bytes, only 0 proven \
             | `R0 = *(u8*)(R2 +0)` | R0=uninit R2=pkt+[0]"
        );
    }

    #[test]
    fn packet_access_with_bounds_check_accepted() {
        // Standard idiom: check pkt+14 <= data_end before reading 14 bytes.
        let mut b = ProgramBuilder::new("t");
        let fail = b.label();
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 14)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
            .load(Size::W, Reg::R0, Reg::R2, 10) // bytes 10..14: ok
            .exit()
            .bind(fail)
            .mov_imm(Reg::R0, 1)
            .exit();
        verify(&b.build(), &empty_maps()).expect("should verify");
    }

    #[test]
    fn packet_overread_after_bounds_check_rejected() {
        let mut b = ProgramBuilder::new("t");
        let fail = b.label();
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 14)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
            .load(Size::W, Reg::R0, Reg::R2, 12) // bytes 12..16: 2 too far
            .exit()
            .bind(fail)
            .mov_imm(Reg::R0, 1)
            .exit();
        match verify(&b.build(), &empty_maps()).unwrap_err().kind {
            VerifyKind::PktOutOfBounds {
                need: 16, have: 14, ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn stack_uninit_read_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.load(Size::DW, Reg::R0, Reg::R10, -8).exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()).unwrap_err().kind,
            VerifyKind::StackUninitRead(0, -8)
        );
    }

    #[test]
    fn stack_write_then_read_ok() {
        let mut b = ProgramBuilder::new("t");
        b.store_imm(Size::DW, Reg::R10, -8, 42)
            .load(Size::DW, Reg::R0, Reg::R10, -8)
            .exit();
        verify(&b.build(), &empty_maps()).expect("should verify");
    }

    #[test]
    fn stack_out_of_frame_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.store_imm(Size::DW, Reg::R10, -513, 0)
            .mov_imm(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build(), &empty_maps()).unwrap_err().kind,
            VerifyKind::StackOutOfBounds(0, _)
        ));
    }

    #[test]
    fn map_lookup_requires_null_check() {
        let mut maps = MapSet::new();
        let fd = maps.create(MapKind::Array {
            value_size: 8,
            max_entries: 1,
        });
        let mut b = ProgramBuilder::new("t");
        b.store_imm(Size::W, Reg::R10, -4, 0)
            .mov_imm(Reg::R1, fd.0 as i64)
            .mov(Reg::R2, Reg::R10)
            .add_imm(Reg::R2, -4)
            .call(Helper::MapLookup)
            .load(Size::DW, Reg::R0, Reg::R0, 0) // no null check!
            .exit();
        assert_eq!(
            verify(&b.build(), &maps).unwrap_err().kind,
            VerifyKind::PossibleNullDeref(5, Reg::R0)
        );
    }

    #[test]
    fn map_lookup_with_null_check_ok() {
        let mut maps = MapSet::new();
        let fd = maps.create(MapKind::Array {
            value_size: 8,
            max_entries: 1,
        });
        let mut b = ProgramBuilder::new("t");
        let isnull = b.label();
        b.store_imm(Size::W, Reg::R10, -4, 0)
            .mov_imm(Reg::R1, fd.0 as i64)
            .mov(Reg::R2, Reg::R10)
            .add_imm(Reg::R2, -4)
            .call(Helper::MapLookup)
            .jmp_imm(CmpOp::Eq, Reg::R0, 0, isnull)
            .load(Size::DW, Reg::R0, Reg::R0, 0)
            .exit()
            .bind(isnull)
            .mov_imm(Reg::R0, 1)
            .exit();
        verify(&b.build(), &maps).expect("should verify");
    }

    #[test]
    fn ctx_write_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R2, 0)
            .store(Size::W, Reg::R1, 16, Reg::R2)
            .mov_imm(Reg::R0, 0)
            .exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()).unwrap_err().kind,
            VerifyKind::CtxWrite(1)
        );
    }

    #[test]
    fn bad_ctx_offset_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.load(Size::DW, Reg::R2, Reg::R1, 4)
            .mov_imm(Reg::R0, 0)
            .exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()).unwrap_err().kind,
            VerifyKind::BadCtxAccess(0, 4)
        );
    }

    #[test]
    fn helper_clobbers_arg_regs() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R3, 7)
            .call(Helper::KtimeGetNs)
            .mov(Reg::R0, Reg::R3) // R3 was clobbered by the call
            .exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()).unwrap_err().kind,
            VerifyKind::UninitRead(2, Reg::R3)
        );
    }

    #[test]
    fn callee_saved_survive_calls() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R6, 7)
            .call(Helper::KtimeGetNs)
            .mov(Reg::R0, Reg::R6)
            .exit();
        verify(&b.build(), &empty_maps()).expect("R6 survives calls");
    }

    #[test]
    fn ringbuf_reserve_submit_flow() {
        let mut maps = MapSet::new();
        let rb = maps.create(MapKind::RingBuf { capacity: 4096 });
        let mut b = ProgramBuilder::new("t");
        let full = b.label();
        b.mov_imm(Reg::R1, rb.0 as i64)
            .mov_imm(Reg::R2, 16)
            .call(Helper::RingbufReserve)
            .jmp_imm(CmpOp::Eq, Reg::R0, 0, full)
            .mov(Reg::R6, Reg::R0)
            .store_imm(Size::DW, Reg::R6, 0, 1)
            .store_imm(Size::DW, Reg::R6, 8, 2)
            .mov(Reg::R1, Reg::R6)
            .call(Helper::RingbufSubmit)
            .mov_imm(Reg::R0, 3)
            .exit()
            .bind(full)
            .mov_imm(Reg::R0, 1)
            .exit();
        verify(&b.build(), &maps).expect("ringbuf flow verifies");
    }

    #[test]
    fn ringbuf_write_past_reservation_rejected() {
        let mut maps = MapSet::new();
        let rb = maps.create(MapKind::RingBuf { capacity: 4096 });
        let mut b = ProgramBuilder::new("t");
        let full = b.label();
        b.mov_imm(Reg::R1, rb.0 as i64)
            .mov_imm(Reg::R2, 8)
            .call(Helper::RingbufReserve)
            .jmp_imm(CmpOp::Eq, Reg::R0, 0, full)
            .store_imm(Size::DW, Reg::R0, 8, 1) // past the 8-byte record
            .mov_imm(Reg::R0, 3)
            .exit()
            .bind(full)
            .mov_imm(Reg::R0, 1)
            .exit();
        assert_eq!(
            verify(&b.build(), &maps).unwrap_err().kind,
            VerifyKind::MapValueOutOfBounds(4)
        );
    }

    #[test]
    fn exit_without_r0_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()).unwrap_err().kind,
            VerifyKind::BadReturn(0)
        );
    }

    #[test]
    fn merge_keeps_weaker_knowledge() {
        // Two paths: one checks 14 bytes, one checks 20; after the join
        // only 14 are proven, so reading byte 15 must fail.
        let mut b = ProgramBuilder::new("t");
        let fail = b.label();
        let join = b.label();
        let path2 = b.label();
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
            .load(Size::W, Reg::R5, Reg::R1, ctx_layout::INGRESS_IFINDEX)
            .jmp_imm(CmpOp::Eq, Reg::R5, 0, path2)
            // path 1: check 20 bytes
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 20)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
            .ja(join)
            // path 2: check 14 bytes
            .bind(path2)
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 14)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
            .bind(join)
            .load(Size::W, Reg::R0, Reg::R2, 12) // needs 16 > 14
            .exit()
            .bind(fail)
            .mov_imm(Reg::R0, 1)
            .exit();
        match verify(&b.build(), &empty_maps()).unwrap_err().kind {
            VerifyKind::PktOutOfBounds {
                need: 16, have: 14, ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    /// while-form counter loop: guard at the head, `ja` back-edge.
    /// Fuel is program length plus (bound + 2) x body length.
    #[test]
    fn bounded_counter_loop_verifies() {
        // 0: r0 = 0
        // 1: if r0 >= 10 goto +2   <- guard, exits to insn 4
        // 2: r0 += 1
        // 3: goto -3               <- back-edge to insn 1
        // 4: exit
        let p = Program {
            name: "count".into(),
            insns: vec![
                Insn::MovImm(Reg::R0, 0),
                Insn::JmpImm(CmpOp::Ge, Reg::R0, 10, 2),
                Insn::AluImm(AluOp::Add, Reg::R0, 1),
                Insn::Ja(-3),
                Insn::Exit,
            ],
        };
        let stats = verify(&p, &empty_maps()).expect("bounded loop verifies");
        assert_eq!(stats.loops, 1);
        assert_eq!(stats.max_insns, 5 + 12 * 3);
    }

    /// do-while form: the conditional back-edge is itself the guard.
    #[test]
    fn bounded_loop_cond_form_verifies() {
        // 0: r0 = 0
        // 1: r0 += 1
        // 2: if r0 < 5 goto -2     <- guard and back-edge to insn 1
        // 3: exit
        let p = Program {
            name: "dowhile".into(),
            insns: vec![
                Insn::MovImm(Reg::R0, 0),
                Insn::AluImm(AluOp::Add, Reg::R0, 1),
                Insn::JmpImm(CmpOp::Lt, Reg::R0, 5, -2),
                Insn::Exit,
            ],
        };
        let stats = verify(&p, &empty_maps()).expect("do-while verifies");
        assert_eq!(stats.loops, 1);
        assert_eq!(stats.max_insns, 4 + 7 * 2);
    }

    /// A register bound works when its interval has a proven ceiling.
    #[test]
    fn bounded_loop_register_bound_verifies() {
        // 0: r4 = ctx->ifindex    <- [0, u32::MAX]
        // 1: r4 &= 7              <- [0, 7]
        // 2: r0 = 0
        // 3: if r0 >= r4 goto +2
        // 4: r0 += 1
        // 5: goto -3
        // 6: exit
        let p = Program {
            name: "regbound".into(),
            insns: vec![
                Insn::Load(Size::W, Reg::R4, Reg::R1, ctx_layout::INGRESS_IFINDEX),
                Insn::AluImm(AluOp::And, Reg::R4, 7),
                Insn::MovImm(Reg::R0, 0),
                Insn::JmpReg(CmpOp::Ge, Reg::R0, Reg::R4, 2),
                Insn::AluImm(AluOp::Add, Reg::R0, 1),
                Insn::Ja(-3),
                Insn::Exit,
            ],
        };
        let stats = verify(&p, &empty_maps()).expect("register bound verifies");
        assert_eq!(stats.loops, 1);
        assert_eq!(stats.max_insns, 7 + (7 + 2) * 3);
    }

    #[test]
    fn non_monotonic_counter_rejected() {
        // Zero-step increment can never reach the bound.
        let p = Program {
            name: "stuck".into(),
            insns: vec![
                Insn::MovImm(Reg::R0, 0),
                Insn::AluImm(AluOp::Add, Reg::R0, 0),
                Insn::JmpImm(CmpOp::Lt, Reg::R0, 5, -2),
                Insn::Exit,
            ],
        };
        assert_eq!(
            verify(&p, &empty_maps()).unwrap_err().kind,
            VerifyKind::LoopNotMonotonic(1, Reg::R0)
        );
        // Decrementing counters are flagged the same way.
        let p = Program {
            name: "down".into(),
            insns: vec![
                Insn::MovImm(Reg::R0, 9),
                Insn::AluImm(AluOp::Sub, Reg::R0, 1),
                Insn::JmpImm(CmpOp::Lt, Reg::R0, 5, -2),
                Insn::Exit,
            ],
        };
        assert_eq!(
            verify(&p, &empty_maps()).unwrap_err().kind,
            VerifyKind::LoopNotMonotonic(1, Reg::R0)
        );
    }

    #[test]
    fn counter_clobbered_in_body_rejected() {
        // 2: r0 = 3 resets the counter each trip.
        let p = Program {
            name: "clobber".into(),
            insns: vec![
                Insn::MovImm(Reg::R0, 0),
                Insn::AluImm(AluOp::Add, Reg::R0, 1),
                Insn::MovImm(Reg::R0, 3),
                Insn::JmpImm(CmpOp::Lt, Reg::R0, 5, -3),
                Insn::Exit,
            ],
        };
        assert_eq!(
            verify(&p, &empty_maps()).unwrap_err().kind,
            VerifyKind::LoopCounterClobbered(2, Reg::R0)
        );
    }

    /// A bound register whose interval widened to top is not a bound.
    #[test]
    fn loop_bound_unknown_rejected() {
        // 0: call ktime_get_ns     <- r0 = [0,MAX]
        // 1: r4 = r0
        // 2: r0 = 0
        // 3: if r0 >= r4 goto +2
        // 4: r0 += 1
        // 5: goto -3
        // 6: exit
        let p = Program {
            name: "unknown-bound".into(),
            insns: vec![
                Insn::Call(Helper::KtimeGetNs),
                Insn::MovReg(Reg::R4, Reg::R0),
                Insn::MovImm(Reg::R0, 0),
                Insn::JmpReg(CmpOp::Ge, Reg::R0, Reg::R4, 2),
                Insn::AluImm(AluOp::Add, Reg::R0, 1),
                Insn::Ja(-3),
                Insn::Exit,
            ],
        };
        assert_eq!(
            verify(&p, &empty_maps()).unwrap_err().kind,
            VerifyKind::LoopBoundUnknown(3, Reg::R4)
        );
    }

    /// A provable but enormous bound exceeds the trip budget.
    #[test]
    fn loop_bound_too_large_rejected() {
        // r4 = ctx->ifindex is a 32-bit value: bounded, but by 2^32-1.
        let p = Program {
            name: "huge-bound".into(),
            insns: vec![
                Insn::Load(Size::W, Reg::R4, Reg::R1, ctx_layout::INGRESS_IFINDEX),
                Insn::MovImm(Reg::R0, 0),
                Insn::JmpReg(CmpOp::Ge, Reg::R0, Reg::R4, 2),
                Insn::AluImm(AluOp::Add, Reg::R0, 1),
                Insn::Ja(-3),
                Insn::Exit,
            ],
        };
        assert_eq!(
            verify(&p, &empty_maps()).unwrap_err().kind,
            VerifyKind::LoopBoundTooLarge(2, u32::MAX as u64)
        );
    }

    #[test]
    fn jump_into_loop_body_rejected() {
        // insn 1 jumps into the body interior, past the guard.
        let p = Program {
            name: "side-entry".into(),
            insns: vec![
                Insn::MovImm(Reg::R0, 0),
                Insn::JmpImm(CmpOp::Eq, Reg::R0, 0, 1),
                Insn::JmpImm(CmpOp::Ge, Reg::R0, 10, 3),
                Insn::AluImm(AluOp::Add, Reg::R0, 1),
                Insn::MovImm(Reg::R3, 1),
                Insn::Ja(-4),
                Insn::Exit,
            ],
        };
        assert_eq!(
            verify(&p, &empty_maps()).unwrap_err().kind,
            VerifyKind::LoopTooComplex(1)
        );
    }

    #[test]
    fn overlapping_loops_rejected() {
        let p = Program {
            name: "overlap".into(),
            insns: vec![
                Insn::MovImm(Reg::R0, 0),
                Insn::AluImm(AluOp::Add, Reg::R0, 1),
                Insn::JmpImm(CmpOp::Lt, Reg::R0, 5, -2),
                Insn::JmpImm(CmpOp::Lt, Reg::R0, 9, -3),
                Insn::Exit,
            ],
        };
        assert_eq!(
            verify(&p, &empty_maps()).unwrap_err().kind,
            VerifyKind::LoopTooComplex(3)
        );
    }

    /// Spilling a clamped scalar through the stack keeps its range: the
    /// restored value can index the packet where an unclamped one
    /// cannot.
    #[test]
    fn spill_restore_preserves_scalar_range() {
        let build = |clamp: bool| {
            let mut b = ProgramBuilder::new("spill");
            let fail = b.label();
            b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
                .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
                .mov(Reg::R4, Reg::R2)
                .add_imm(Reg::R4, 46)
                .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
                .load(Size::B, Reg::R5, Reg::R2, 14);
            if clamp {
                b.alu_imm(AluOp::And, Reg::R5, 31);
            }
            b.store(Size::DW, Reg::R10, -8, Reg::R5)
                .load(Size::DW, Reg::R6, Reg::R10, -8)
                .mov(Reg::R7, Reg::R2)
                .alu(AluOp::Add, Reg::R7, Reg::R6)
                .load(Size::B, Reg::R0, Reg::R7, 0)
                .exit()
                .bind(fail)
                .mov_imm(Reg::R0, 1)
                .exit();
            b.build()
        };
        // Clamped to [0,31]: worst-case access is byte 31 < 46. Fine.
        verify(&build(true), &empty_maps()).expect("clamped spill verifies");
        // Unclamped [0,255]: worst-case access is byte 255 >= 46.
        match verify(&build(false), &empty_maps()).unwrap_err().kind {
            VerifyKind::PktOutOfBounds { need: 256, have: 46, .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    /// A packet pointer survives a full-width spill/restore round trip.
    #[test]
    fn spill_restore_preserves_packet_pointer() {
        let mut b = ProgramBuilder::new("ptr-spill");
        let fail = b.label();
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 14)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
            .store(Size::DW, Reg::R10, -16, Reg::R2)
            .load(Size::DW, Reg::R8, Reg::R10, -16)
            .load(Size::B, Reg::R0, Reg::R8, 6)
            .exit()
            .bind(fail)
            .mov_imm(Reg::R0, 1)
            .exit();
        verify(&b.build(), &empty_maps()).expect("restored pointer derefs");
    }

    /// Overwriting part of a spilled slot evicts the tracked value.
    #[test]
    fn partial_overwrite_evicts_spill() {
        let mut b = ProgramBuilder::new("evict");
        let fail = b.label();
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 14)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
            .store(Size::DW, Reg::R10, -16, Reg::R2)
            .store_imm(Size::B, Reg::R10, -13, 0) // clobber one byte
            .load(Size::DW, Reg::R8, Reg::R10, -16)
            .load(Size::B, Reg::R0, Reg::R8, 0) // R8 is now just bytes
            .exit()
            .bind(fail)
            .mov_imm(Reg::R0, 1)
            .exit();
        assert!(matches!(
            verify(&b.build(), &empty_maps()).unwrap_err().kind,
            VerifyKind::NonPointerDeref(8, Reg::R8)
        ));
    }

    /// Branch refinement prunes statically dead edges: the fall-through
    /// of `if r0 == 5` with r0 known to be 5 is never explored.
    #[test]
    fn dead_edge_is_pruned() {
        // 0: r0 = 5
        // 1: if r0 == 5 goto +1    <- always taken
        // 2: r0 = r9               <- uninit read, but unreachable
        // 3: exit
        let p = Program {
            name: "dead-edge".into(),
            insns: vec![
                Insn::MovImm(Reg::R0, 5),
                Insn::JmpImm(CmpOp::Eq, Reg::R0, 5, 1),
                Insn::MovReg(Reg::R0, Reg::R9),
                Insn::Exit,
            ],
        };
        verify(&p, &empty_maps()).expect("dead edge pruned");
    }

    /// Interval knowledge flows through a variable packet offset: a
    /// byte clamped below the checked window indexes the packet without
    /// a per-access re-check.
    #[test]
    fn variable_packet_offset_with_clamp_verifies() {
        let mut b = ProgramBuilder::new("varoff");
        let fail = b.label();
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 64)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
            .load(Size::B, Reg::R5, Reg::R2, 12)
            .alu_imm(AluOp::And, Reg::R5, 63)
            .mov(Reg::R6, Reg::R2)
            .alu(AluOp::Add, Reg::R6, Reg::R5)
            .load(Size::B, Reg::R0, Reg::R6, 0) // worst case byte 63 < 64
            .exit()
            .bind(fail)
            .mov_imm(Reg::R0, 1)
            .exit();
        verify(&b.build(), &empty_maps()).expect("clamped offset verifies");
    }

    /// Division by a register is fine once its range excludes zero.
    #[test]
    fn range_proven_register_divisor_accepted() {
        let mut b = ProgramBuilder::new("div");
        b.load(Size::W, Reg::R4, Reg::R1, ctx_layout::RX_QUEUE)
            .alu_imm(AluOp::And, Reg::R4, 3)
            .alu_imm(AluOp::Add, Reg::R4, 1) // [1,4]: never zero
            .mov_imm(Reg::R0, 100)
            .alu(AluOp::Div, Reg::R0, Reg::R4)
            .exit();
        verify(&b.build(), &empty_maps()).expect("non-zero divisor verifies");
        // Without the +1 the range [0,3] still admits zero.
        let mut b = ProgramBuilder::new("div0");
        b.load(Size::W, Reg::R4, Reg::R1, ctx_layout::RX_QUEUE)
            .alu_imm(AluOp::And, Reg::R4, 3)
            .mov_imm(Reg::R0, 100)
            .alu(AluOp::Div, Reg::R0, Reg::R4)
            .exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()).unwrap_err().kind,
            VerifyKind::RegDivisor(3)
        );
    }

    /// Every rejection code is unique, documented, and resolvable; the
    /// kind -> code -> table round trip holds for a sample of kinds.
    #[test]
    fn reject_codes_table_is_consistent() {
        let mut seen = std::collections::BTreeSet::new();
        for rc in REJECT_CODES {
            assert!(seen.insert(rc.id), "duplicate id {}", rc.id);
            assert!(!rc.summary.is_empty() && !rc.detail.is_empty(), "{}", rc.id);
            assert_eq!(reject_info(rc.id).map(|r| r.id), Some(rc.id));
        }
        assert_eq!(REJECT_CODES.len(), 26);
        for kind in [
            VerifyKind::Empty,
            VerifyKind::UnboundedLoop(0),
            VerifyKind::LoopNotMonotonic(0, Reg::R0),
            VerifyKind::LoopBoundUnknown(0, Reg::R4),
            VerifyKind::FixpointDiverged,
            VerifyKind::PktOutOfBounds {
                at: 0,
                need: 1,
                have: 0,
            },
            VerifyKind::BadReturn(0),
        ] {
            assert!(reject_info(kind.code()).is_some(), "{}", kind.code());
        }
        assert!(reject_info("no-such-code").is_none());
    }
}
