//! The static verifier.
//!
//! A faithful-in-spirit model of the kernel's eBPF verifier, specialised
//! to XDP programs: abstract interpretation over the (acyclic) control
//! flow graph tracking register types, stack initialization, packet
//! bounds knowledge, and map value nullability.
//!
//! Simplifications relative to the kernel (documented deliberately):
//!
//! - Only forward jumps exist in the IR, so programs are DAGs and no
//!   loop analysis is needed (matching classic eBPF's back-edge ban).
//! - Scalars track at most one known constant value (enough to resolve
//!   map fds and immediate divisors); full interval tracking is not
//!   implemented.
//! - Division/modulo by a register is rejected outright instead of
//!   being range-proven.
//! - Packet pointers with non-constant offsets can never be
//!   dereferenced.

use crate::insn::{AluOp, CmpOp, Helper, Insn, Reg, Size, MAX_INSNS};
use crate::maps::{MapKind, MapSet};
use crate::prog::Program;
use std::collections::VecDeque;
use std::fmt;

/// Size of the program stack, as in the kernel.
pub const STACK_SIZE: usize = 512;

/// Simulated `xdp_md` context layout (simulator-defined, 64-bit fields
/// for data pointers):
pub mod ctx_layout {
    /// `*(u64*)(ctx + 0)` → packet data pointer.
    pub const DATA: i16 = 0;
    /// `*(u64*)(ctx + 8)` → packet data end pointer.
    pub const DATA_END: i16 = 8;
    /// `*(u32*)(ctx + 16)` → ingress ifindex.
    pub const INGRESS_IFINDEX: i16 = 16;
    /// `*(u32*)(ctx + 20)` → rx queue index.
    pub const RX_QUEUE: i16 = 20;
}

/// Abstract register value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AbsVal {
    /// Never written on this path.
    Uninit,
    /// Arbitrary number; `Some(v)` when the exact value is known.
    Scalar(Option<i64>),
    /// The XDP context pointer (R1 at entry).
    CtxPtr,
    /// Pointer into the packet at constant offset `off` from its start.
    PktPtr { off: u32 },
    /// Pointer into the packet at an unknown offset (not dereferencable).
    PktPtrUnknown,
    /// The packet end sentinel.
    PktEnd,
    /// Pointer into the stack frame; `off` is relative to R10 (<= 0).
    StackPtr { off: i32 },
    /// Pointer to a map value of `size` bytes; must be null-checked
    /// while `nullable`.
    MapValuePtr { size: u32, nullable: bool },
    /// Pointer to a reserved ring buffer record.
    RingBufPtr { size: u32, nullable: bool },
}

impl AbsVal {
    fn is_init(&self) -> bool {
        !matches!(self, AbsVal::Uninit)
    }
}

/// Abstract machine state at one program point.
#[derive(Clone, PartialEq, Eq, Debug)]
struct State {
    regs: [AbsVal; 11],
    /// Which stack bytes have been written (index 0 = lowest address,
    /// i.e. R10 - STACK_SIZE).
    stack_init: [bool; STACK_SIZE],
    /// Proven minimum packet length (bytes readable from packet start).
    pkt_len_min: u32,
}

impl State {
    fn entry() -> Self {
        let mut regs = [AbsVal::Uninit; 11];
        regs[Reg::R1.idx()] = AbsVal::CtxPtr;
        regs[Reg::R10.idx()] = AbsVal::StackPtr { off: 0 };
        State {
            regs,
            stack_init: [false; STACK_SIZE],
            pkt_len_min: 0,
        }
    }

    fn get(&self, r: Reg) -> AbsVal {
        self.regs[r.idx()]
    }

    fn set(&mut self, r: Reg, v: AbsVal) -> Result<(), VerifyError> {
        if r == Reg::R10 {
            return Err(VerifyError::FramePointerWrite);
        }
        self.regs[r.idx()] = v;
        Ok(())
    }

    /// Merge an incoming state into this one (joins are conservative:
    /// intersection of knowledge).
    fn merge(&mut self, other: &State) -> bool {
        let mut changed = false;
        for i in 0..11 {
            let merged = merge_vals(self.regs[i], other.regs[i]);
            if merged != self.regs[i] {
                self.regs[i] = merged;
                changed = true;
            }
        }
        for i in 0..STACK_SIZE {
            let merged = self.stack_init[i] && other.stack_init[i];
            if merged != self.stack_init[i] {
                self.stack_init[i] = merged;
                changed = true;
            }
        }
        let merged_len = self.pkt_len_min.min(other.pkt_len_min);
        if merged_len != self.pkt_len_min {
            self.pkt_len_min = merged_len;
            changed = true;
        }
        changed
    }
}

fn merge_vals(a: AbsVal, b: AbsVal) -> AbsVal {
    use AbsVal::*;
    if a == b {
        return a;
    }
    match (a, b) {
        (Scalar(x), Scalar(y)) => Scalar(if x == y { x } else { None }),
        (PktPtr { off: o1 }, PktPtr { off: o2 }) => {
            if o1 == o2 {
                PktPtr { off: o1 }
            } else {
                PktPtrUnknown
            }
        }
        (
            MapValuePtr {
                size: s1,
                nullable: n1,
            },
            MapValuePtr {
                size: s2,
                nullable: n2,
            },
        ) if s1 == s2 => MapValuePtr {
            size: s1,
            nullable: n1 || n2,
        },
        (
            RingBufPtr {
                size: s1,
                nullable: n1,
            },
            RingBufPtr {
                size: s2,
                nullable: n2,
            },
        ) if s1 == s2 => RingBufPtr {
            size: s1,
            nullable: n1 || n2,
        },
        // A register that is a scalar on one path and a pointer on the
        // other (or vice versa) is unusable afterwards.
        _ => Uninit,
    }
}

/// Why a program was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Empty program.
    Empty,
    /// More than [`MAX_INSNS`] instructions.
    TooLong(usize),
    /// Execution can run off the end of the instruction stream.
    FallOffEnd(usize),
    /// Jump target outside the program.
    BadJumpTarget(usize),
    /// A backward jump (loop) was encountered.
    BackEdge(usize),
    /// Read of a register never written on some path.
    UninitRead(usize, Reg),
    /// Write to the read-only frame pointer.
    FramePointerWrite,
    /// Possibly-zero divisor.
    DivByZero(usize),
    /// Division by a register (unsupported; use immediates).
    RegDivisor(usize),
    /// Memory access through a non-pointer.
    NonPointerDeref(usize, Reg),
    /// Packet access without a proven bound.
    PktOutOfBounds {
        /// Instruction index.
        at: usize,
        /// Bytes needed from packet start.
        need: u32,
        /// Bytes proven available.
        have: u32,
    },
    /// Stack access outside the 512-byte frame.
    StackOutOfBounds(usize, i32),
    /// Read of uninitialized stack bytes.
    StackUninitRead(usize, i32),
    /// Dereference of a possibly-null map/ringbuf value.
    PossibleNullDeref(usize, Reg),
    /// Access beyond a map value's size.
    MapValueOutOfBounds(usize),
    /// Write into the read-only context.
    CtxWrite(usize),
    /// Load from an unmodelled context offset.
    BadCtxAccess(usize, i16),
    /// Helper called with a bad argument.
    BadHelperArg {
        /// Instruction index.
        at: usize,
        /// Helper being called.
        helper: Helper,
        /// Human-readable complaint.
        what: &'static str,
    },
    /// Helper fd argument does not name a map of the required kind.
    BadMapFd(usize),
    /// `Exit` with R0 not holding an initialized scalar.
    BadReturn(usize),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Empty => write!(f, "empty program"),
            VerifyError::TooLong(n) => write!(f, "program too long: {n} insns"),
            VerifyError::FallOffEnd(i) => write!(f, "insn {i}: control falls off the end"),
            VerifyError::BadJumpTarget(i) => write!(f, "insn {i}: jump out of range"),
            VerifyError::BackEdge(i) => write!(f, "insn {i}: backward jump"),
            VerifyError::UninitRead(i, r) => write!(f, "insn {i}: read of uninitialized {r:?}"),
            VerifyError::FramePointerWrite => write!(f, "write to frame pointer R10"),
            VerifyError::DivByZero(i) => write!(f, "insn {i}: divisor may be zero"),
            VerifyError::RegDivisor(i) => write!(f, "insn {i}: register divisor unsupported"),
            VerifyError::NonPointerDeref(i, r) => {
                write!(f, "insn {i}: memory access through non-pointer {r:?}")
            }
            VerifyError::PktOutOfBounds { at, need, have } => write!(
                f,
                "insn {at}: packet access needs {need} bytes, only {have} proven"
            ),
            VerifyError::StackOutOfBounds(i, off) => {
                write!(f, "insn {i}: stack access at offset {off} out of frame")
            }
            VerifyError::StackUninitRead(i, off) => {
                write!(f, "insn {i}: read of uninitialized stack at {off}")
            }
            VerifyError::PossibleNullDeref(i, r) => {
                write!(f, "insn {i}: possible NULL dereference of {r:?}")
            }
            VerifyError::MapValueOutOfBounds(i) => {
                write!(f, "insn {i}: access beyond map value bounds")
            }
            VerifyError::CtxWrite(i) => write!(f, "insn {i}: context is read-only"),
            VerifyError::BadCtxAccess(i, off) => {
                write!(f, "insn {i}: invalid context offset {off}")
            }
            VerifyError::BadHelperArg { at, helper, what } => {
                write!(f, "insn {at}: {helper:?}: {what}")
            }
            VerifyError::BadMapFd(i) => write!(f, "insn {i}: fd is not a suitable map"),
            VerifyError::BadReturn(i) => write!(f, "insn {i}: R0 not a scalar at exit"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Statistics from a successful verification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Distinct (insn, state-merge) steps processed.
    pub states_processed: u64,
    /// Program length.
    pub insns: usize,
}

/// Verify `prog` against the maps it will run with.
pub fn verify(prog: &Program, maps: &MapSet) -> Result<VerifyStats, VerifyError> {
    if prog.insns.is_empty() {
        return Err(VerifyError::Empty);
    }
    if prog.insns.len() > MAX_INSNS {
        return Err(VerifyError::TooLong(prog.insns.len()));
    }

    let n = prog.insns.len();
    // Static jump sanity (targets in range, forward only).
    for (i, insn) in prog.insns.iter().enumerate() {
        let off = match insn {
            Insn::Ja(off) | Insn::JmpImm(_, _, _, off) | Insn::JmpReg(_, _, _, off) => Some(*off),
            _ => None,
        };
        if let Some(off) = off {
            if off < 0 {
                return Err(VerifyError::BackEdge(i));
            }
            let tgt = i as i64 + 1 + off as i64;
            if tgt as usize > n || tgt < 0 {
                return Err(VerifyError::BadJumpTarget(i));
            }
            if tgt as usize == n {
                return Err(VerifyError::BadJumpTarget(i));
            }
        }
        // Plain fallthrough off the end.
        if i == n - 1 && !matches!(insn, Insn::Exit | Insn::Ja(_)) {
            return Err(VerifyError::FallOffEnd(i));
        }
    }

    let mut states: Vec<Option<State>> = vec![None; n];
    states[0] = Some(State::entry());
    let mut work: VecDeque<usize> = VecDeque::new();
    work.push_back(0);
    let mut processed = 0u64;

    while let Some(pc) = work.pop_front() {
        let Some(state) = states[pc].clone() else {
            continue;
        };
        processed += 1;
        // Safety valve: DAG with state merging converges fast; this
        // guards against implementation bugs only.
        if processed > (n as u64) * 64 {
            break;
        }
        let outcomes = step(pc, &prog.insns[pc], state, maps)?;
        for (tgt, st) in outcomes {
            match &mut states[tgt] {
                Some(existing) => {
                    if existing.merge(&st) {
                        work.push_back(tgt);
                    }
                }
                slot @ None => {
                    *slot = Some(st);
                    work.push_back(tgt);
                }
            }
        }
    }

    Ok(VerifyStats {
        states_processed: processed,
        insns: n,
    })
}

type Outcomes = Vec<(usize, State)>;

fn require_init(st: &State, r: Reg, pc: usize) -> Result<AbsVal, VerifyError> {
    let v = st.get(r);
    if v.is_init() {
        Ok(v)
    } else {
        Err(VerifyError::UninitRead(pc, r))
    }
}

fn check_mem_access(
    st: &State,
    pc: usize,
    base: Reg,
    off: i16,
    size: Size,
    is_write: bool,
) -> Result<(), VerifyError> {
    let b = require_init(st, base, pc)?;
    let width = size.bytes() as i32;
    match b {
        AbsVal::CtxPtr => {
            if is_write {
                return Err(VerifyError::CtxWrite(pc));
            }
            Ok(())
        }
        AbsVal::PktPtr { off: pk } => {
            if off < 0 {
                return Err(VerifyError::PktOutOfBounds {
                    at: pc,
                    need: 0,
                    have: st.pkt_len_min,
                });
            }
            let need = pk + off as u32 + width as u32;
            if need > st.pkt_len_min {
                return Err(VerifyError::PktOutOfBounds {
                    at: pc,
                    need,
                    have: st.pkt_len_min,
                });
            }
            Ok(())
        }
        AbsVal::PktPtrUnknown | AbsVal::PktEnd => Err(VerifyError::PktOutOfBounds {
            at: pc,
            need: u32::MAX,
            have: st.pkt_len_min,
        }),
        AbsVal::StackPtr { off: so } => {
            let lo = so + off as i32;
            let hi = lo + width;
            if lo < -(STACK_SIZE as i32) || hi > 0 {
                return Err(VerifyError::StackOutOfBounds(pc, lo));
            }
            if !is_write {
                let start = (lo + STACK_SIZE as i32) as usize;
                for i in start..start + width as usize {
                    if !st.stack_init[i] {
                        return Err(VerifyError::StackUninitRead(pc, lo));
                    }
                }
            }
            Ok(())
        }
        AbsVal::MapValuePtr { size: ms, nullable } | AbsVal::RingBufPtr { size: ms, nullable } => {
            if nullable {
                return Err(VerifyError::PossibleNullDeref(pc, base));
            }
            if off < 0 || off as u32 + width as u32 > ms {
                return Err(VerifyError::MapValueOutOfBounds(pc));
            }
            Ok(())
        }
        _ => Err(VerifyError::NonPointerDeref(pc, base)),
    }
}

fn mark_stack_write(st: &mut State, base_off: i32, off: i16, size: Size) {
    let lo = base_off + off as i32 + STACK_SIZE as i32;
    for i in lo as usize..(lo as usize + size.bytes()) {
        st.stack_init[i] = true;
    }
}

fn scalar_bin(op: AluOp, a: Option<i64>, b: Option<i64>) -> Option<i64> {
    let (x, y) = (a?, b?);
    Some(match op {
        AluOp::Add => x.wrapping_add(y),
        AluOp::Sub => x.wrapping_sub(y),
        AluOp::Mul => x.wrapping_mul(y),
        AluOp::Div => ((x as u64).checked_div(y as u64)).unwrap_or(0) as i64,
        AluOp::Mod => ((x as u64).checked_rem(y as u64)).unwrap_or(0) as i64,
        AluOp::Or => x | y,
        AluOp::And => x & y,
        AluOp::Xor => x ^ y,
        AluOp::Lsh => ((x as u64) << (y as u64 & 63)) as i64,
        AluOp::Rsh => ((x as u64) >> (y as u64 & 63)) as i64,
        AluOp::Arsh => x >> (y & 63),
    })
}

fn step(pc: usize, insn: &Insn, mut st: State, maps: &MapSet) -> Result<Outcomes, VerifyError> {
    let next = pc + 1;
    match *insn {
        Insn::MovImm(dst, imm) => {
            st.set(dst, AbsVal::Scalar(Some(imm)))?;
            Ok(vec![(next, st)])
        }
        Insn::MovReg(dst, src) => {
            let v = require_init(&st, src, pc)?;
            st.set(dst, v)?;
            Ok(vec![(next, st)])
        }
        Insn::Neg(dst) => {
            match require_init(&st, dst, pc)? {
                AbsVal::Scalar(v) => st.set(dst, AbsVal::Scalar(v.map(|x| x.wrapping_neg())))?,
                _ => st.set(dst, AbsVal::Scalar(None))?,
            }
            Ok(vec![(next, st)])
        }
        Insn::AluImm(op, dst, imm) => {
            if matches!(op, AluOp::Div | AluOp::Mod) && imm == 0 {
                return Err(VerifyError::DivByZero(pc));
            }
            let v = require_init(&st, dst, pc)?;
            let nv = match (v, op) {
                (AbsVal::Scalar(c), _) => AbsVal::Scalar(scalar_bin(op, c, Some(imm))),
                (AbsVal::PktPtr { off }, AluOp::Add) => {
                    if imm >= 0 && off as i64 + imm <= u32::MAX as i64 {
                        AbsVal::PktPtr {
                            off: off + imm as u32,
                        }
                    } else {
                        AbsVal::PktPtrUnknown
                    }
                }
                (AbsVal::StackPtr { off }, AluOp::Add) => AbsVal::StackPtr {
                    off: off + imm as i32,
                },
                (AbsVal::StackPtr { off }, AluOp::Sub) => AbsVal::StackPtr {
                    off: off - imm as i32,
                },
                // Arithmetic that destroys pointer provenance.
                _ => AbsVal::Scalar(None),
            };
            st.set(dst, nv)?;
            Ok(vec![(next, st)])
        }
        Insn::AluReg(op, dst, src) => {
            if matches!(op, AluOp::Div | AluOp::Mod) {
                // Allowed only when the divisor is a known non-zero const.
                match require_init(&st, src, pc)? {
                    AbsVal::Scalar(Some(v)) if v != 0 => {}
                    AbsVal::Scalar(Some(_)) => return Err(VerifyError::DivByZero(pc)),
                    _ => return Err(VerifyError::RegDivisor(pc)),
                }
            }
            let a = require_init(&st, dst, pc)?;
            let b = require_init(&st, src, pc)?;
            let nv = match (a, b, op) {
                (AbsVal::Scalar(x), AbsVal::Scalar(y), _) => AbsVal::Scalar(scalar_bin(op, x, y)),
                (AbsVal::PktPtr { .. }, AbsVal::Scalar(Some(k)), AluOp::Add) if k >= 0 => {
                    if let AbsVal::PktPtr { off } = a {
                        AbsVal::PktPtr {
                            off: off.saturating_add(k as u32),
                        }
                    } else {
                        AbsVal::PktPtrUnknown
                    }
                }
                (AbsVal::PktPtr { .. }, AbsVal::Scalar(None), AluOp::Add) => AbsVal::PktPtrUnknown,
                // ptr - ptr = scalar length
                (AbsVal::PktPtr { .. }, AbsVal::PktPtr { .. }, AluOp::Sub)
                | (AbsVal::PktEnd, AbsVal::PktPtr { .. }, AluOp::Sub) => AbsVal::Scalar(None),
                _ => AbsVal::Scalar(None),
            };
            st.set(dst, nv)?;
            Ok(vec![(next, st)])
        }
        Insn::Load(size, dst, base, off) => {
            let b = require_init(&st, base, pc)?;
            if let AbsVal::CtxPtr = b {
                // Context loads produce typed values.
                let v = match (off, size) {
                    (ctx_layout::DATA, Size::DW) => AbsVal::PktPtr { off: 0 },
                    (ctx_layout::DATA_END, Size::DW) => AbsVal::PktEnd,
                    (ctx_layout::INGRESS_IFINDEX, Size::W) | (ctx_layout::RX_QUEUE, Size::W) => {
                        AbsVal::Scalar(None)
                    }
                    _ => return Err(VerifyError::BadCtxAccess(pc, off)),
                };
                st.set(dst, v)?;
                return Ok(vec![(next, st)]);
            }
            check_mem_access(&st, pc, base, off, size, false)?;
            st.set(dst, AbsVal::Scalar(None))?;
            Ok(vec![(next, st)])
        }
        Insn::Store(size, base, off, src) => {
            require_init(&st, src, pc)?;
            check_mem_access(&st, pc, base, off, size, true)?;
            if let AbsVal::StackPtr { off: so } = st.get(base) {
                mark_stack_write(&mut st, so, off, size);
            }
            Ok(vec![(next, st)])
        }
        Insn::StoreImm(size, base, off, _imm) => {
            check_mem_access(&st, pc, base, off, size, true)?;
            if let AbsVal::StackPtr { off: so } = st.get(base) {
                mark_stack_write(&mut st, so, off, size);
            }
            Ok(vec![(next, st)])
        }
        Insn::Ja(off) => Ok(vec![(pc + 1 + off as usize, st)]),
        Insn::JmpImm(op, r, imm, off) => {
            let v = require_init(&st, r, pc)?;
            let tgt = pc + 1 + off as usize;
            let mut taken = st.clone();
            let mut fall = st;
            // Null-check refinement for nullable pointers.
            if imm == 0 {
                match v {
                    AbsVal::MapValuePtr {
                        size,
                        nullable: true,
                    } => match op {
                        CmpOp::Eq => {
                            // taken: is null; fall: non-null
                            taken.set(r, AbsVal::Scalar(Some(0)))?;
                            fall.set(
                                r,
                                AbsVal::MapValuePtr {
                                    size,
                                    nullable: false,
                                },
                            )?;
                        }
                        CmpOp::Ne => {
                            taken.set(
                                r,
                                AbsVal::MapValuePtr {
                                    size,
                                    nullable: false,
                                },
                            )?;
                            fall.set(r, AbsVal::Scalar(Some(0)))?;
                        }
                        _ => {}
                    },
                    AbsVal::RingBufPtr {
                        size,
                        nullable: true,
                    } => match op {
                        CmpOp::Eq => {
                            taken.set(r, AbsVal::Scalar(Some(0)))?;
                            fall.set(
                                r,
                                AbsVal::RingBufPtr {
                                    size,
                                    nullable: false,
                                },
                            )?;
                        }
                        CmpOp::Ne => {
                            taken.set(
                                r,
                                AbsVal::RingBufPtr {
                                    size,
                                    nullable: false,
                                },
                            )?;
                            fall.set(r, AbsVal::Scalar(Some(0)))?;
                        }
                        _ => {}
                    },
                    _ => {}
                }
            }
            Ok(vec![(tgt, taken), (next, fall)])
        }
        Insn::JmpReg(op, a, b, off) => {
            let va = require_init(&st, a, pc)?;
            let vb = require_init(&st, b, pc)?;
            let tgt = pc + 1 + off as usize;
            let mut taken = st.clone();
            let mut fall = st;
            // The canonical packet bounds check:
            //   rX = pkt + N; if rX > data_end goto fail;
            // On the fall-through, the packet has at least N bytes.
            if let (AbsVal::PktPtr { off: po }, AbsVal::PktEnd) = (va, vb) {
                match op {
                    CmpOp::Gt => fall.pkt_len_min = fall.pkt_len_min.max(po),
                    CmpOp::Ge => fall.pkt_len_min = fall.pkt_len_min.max(po.saturating_sub(1)),
                    CmpOp::Le => taken.pkt_len_min = taken.pkt_len_min.max(po),
                    CmpOp::Lt => taken.pkt_len_min = taken.pkt_len_min.max(po.saturating_sub(1)),
                    _ => {}
                }
            }
            Ok(vec![(tgt, taken), (next, fall)])
        }
        Insn::Call(helper) => {
            check_helper(pc, helper, &mut st, maps)?;
            // Calls clobber the caller-saved argument registers.
            for r in [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5] {
                st.regs[r.idx()] = AbsVal::Uninit;
            }
            Ok(vec![(next, st)])
        }
        Insn::Exit => match st.get(Reg::R0) {
            AbsVal::Scalar(_) => Ok(vec![]),
            _ => Err(VerifyError::BadReturn(pc)),
        },
    }
}

fn const_fd(st: &State, r: Reg, pc: usize, helper: Helper) -> Result<u32, VerifyError> {
    match st.get(r) {
        AbsVal::Scalar(Some(v)) if v >= 0 => Ok(v as u32),
        _ => Err(VerifyError::BadHelperArg {
            at: pc,
            helper,
            what: "map fd must be a known constant",
        }),
    }
}

fn stack_bytes_init(st: &State, off: i32, len: usize) -> bool {
    let lo = off + STACK_SIZE as i32;
    if lo < 0 || lo as usize + len > STACK_SIZE {
        return false;
    }
    (lo as usize..lo as usize + len).all(|i| st.stack_init[i])
}

fn check_helper(
    pc: usize,
    helper: Helper,
    st: &mut State,
    maps: &MapSet,
) -> Result<(), VerifyError> {
    use Helper::*;
    match helper {
        KtimeGetNs | GetSmpProcessorId | GetPrandomU32 => {
            st.regs[Reg::R0.idx()] = AbsVal::Scalar(None);
            Ok(())
        }
        MapLookup => {
            let fd = const_fd(st, Reg::R1, pc, helper)?;
            let map = maps
                .get(crate::maps::MapFd(fd))
                .ok_or(VerifyError::BadMapFd(pc))?;
            let (key_size, value_size) = match &map.kind {
                MapKind::Array { value_size, .. } | MapKind::PerCpuArray { value_size, .. } => {
                    (4usize, *value_size)
                }
                MapKind::Hash {
                    key_size,
                    value_size,
                    ..
                } => (*key_size, *value_size),
                MapKind::RingBuf { .. } => return Err(VerifyError::BadMapFd(pc)),
            };
            match st.get(Reg::R2) {
                AbsVal::StackPtr { off } if stack_bytes_init(st, off, key_size) => {}
                AbsVal::StackPtr { .. } => {
                    return Err(VerifyError::BadHelperArg {
                        at: pc,
                        helper,
                        what: "key bytes not fully initialized",
                    })
                }
                _ => {
                    return Err(VerifyError::BadHelperArg {
                        at: pc,
                        helper,
                        what: "key must be a stack pointer",
                    })
                }
            }
            st.regs[Reg::R0.idx()] = AbsVal::MapValuePtr {
                size: value_size as u32,
                nullable: true,
            };
            Ok(())
        }
        MapUpdate => {
            let fd = const_fd(st, Reg::R1, pc, helper)?;
            let map = maps
                .get(crate::maps::MapFd(fd))
                .ok_or(VerifyError::BadMapFd(pc))?;
            let (key_size, value_size) = match &map.kind {
                MapKind::Array { value_size, .. } | MapKind::PerCpuArray { value_size, .. } => {
                    (4usize, *value_size)
                }
                MapKind::Hash {
                    key_size,
                    value_size,
                    ..
                } => (*key_size, *value_size),
                MapKind::RingBuf { .. } => return Err(VerifyError::BadMapFd(pc)),
            };
            for (r, len, what) in [
                (Reg::R2, key_size, "key bytes not fully initialized"),
                (Reg::R3, value_size, "value bytes not fully initialized"),
            ] {
                match st.get(r) {
                    AbsVal::StackPtr { off } if stack_bytes_init(st, off, len) => {}
                    _ => {
                        return Err(VerifyError::BadHelperArg {
                            at: pc,
                            helper,
                            what,
                        })
                    }
                }
            }
            st.regs[Reg::R0.idx()] = AbsVal::Scalar(None);
            Ok(())
        }
        RingbufOutput => {
            let fd = const_fd(st, Reg::R1, pc, helper)?;
            let map = maps
                .get(crate::maps::MapFd(fd))
                .ok_or(VerifyError::BadMapFd(pc))?;
            if !matches!(map.kind, MapKind::RingBuf { .. }) {
                return Err(VerifyError::BadMapFd(pc));
            }
            let len = match st.get(Reg::R3) {
                AbsVal::Scalar(Some(v)) if v > 0 => v as usize,
                _ => {
                    return Err(VerifyError::BadHelperArg {
                        at: pc,
                        helper,
                        what: "length must be a known positive constant",
                    })
                }
            };
            match st.get(Reg::R2) {
                AbsVal::StackPtr { off } if stack_bytes_init(st, off, len) => {}
                AbsVal::PktPtr { off } if (off as usize + len) as u32 <= st.pkt_len_min => {}
                _ => {
                    return Err(VerifyError::BadHelperArg {
                        at: pc,
                        helper,
                        what: "data must be initialized stack or bounded packet bytes",
                    })
                }
            }
            st.regs[Reg::R0.idx()] = AbsVal::Scalar(None);
            Ok(())
        }
        RingbufReserve => {
            let fd = const_fd(st, Reg::R1, pc, helper)?;
            let map = maps
                .get(crate::maps::MapFd(fd))
                .ok_or(VerifyError::BadMapFd(pc))?;
            if !matches!(map.kind, MapKind::RingBuf { .. }) {
                return Err(VerifyError::BadMapFd(pc));
            }
            let len = match st.get(Reg::R2) {
                AbsVal::Scalar(Some(v)) if v > 0 => v as u32,
                _ => {
                    return Err(VerifyError::BadHelperArg {
                        at: pc,
                        helper,
                        what: "length must be a known positive constant",
                    })
                }
            };
            st.regs[Reg::R0.idx()] = AbsVal::RingBufPtr {
                size: len,
                nullable: true,
            };
            Ok(())
        }
        RingbufSubmit => {
            match st.get(Reg::R1) {
                AbsVal::RingBufPtr {
                    nullable: false, ..
                } => {}
                AbsVal::RingBufPtr { nullable: true, .. } => {
                    return Err(VerifyError::PossibleNullDeref(pc, Reg::R1))
                }
                _ => {
                    return Err(VerifyError::BadHelperArg {
                        at: pc,
                        helper,
                        what: "argument must be a reserved ringbuf record",
                    })
                }
            }
            st.regs[Reg::R0.idx()] = AbsVal::Scalar(Some(0));
            Ok(())
        }
        XdpAdjustHead => {
            if !matches!(st.get(Reg::R1), AbsVal::CtxPtr) {
                return Err(VerifyError::BadHelperArg {
                    at: pc,
                    helper,
                    what: "first argument must be the context",
                });
            }
            match st.get(Reg::R2) {
                AbsVal::Scalar(_) => {}
                _ => {
                    return Err(VerifyError::BadHelperArg {
                        at: pc,
                        helper,
                        what: "delta must be a scalar",
                    })
                }
            }
            // All packet pointers are invalidated.
            for i in 0..11 {
                if matches!(
                    st.regs[i],
                    AbsVal::PktPtr { .. } | AbsVal::PktPtrUnknown | AbsVal::PktEnd
                ) {
                    st.regs[i] = AbsVal::Uninit;
                }
            }
            st.pkt_len_min = 0;
            st.regs[Reg::R0.idx()] = AbsVal::Scalar(None);
            Ok(())
        }
        CsumDiff => {
            // Loose checking: all five args must be initialized.
            for r in [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5] {
                require_init(st, r, pc)?;
            }
            st.regs[Reg::R0.idx()] = AbsVal::Scalar(None);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::ProgramBuilder;

    fn empty_maps() -> MapSet {
        MapSet::new()
    }

    /// r0 = XDP_PASS; exit
    fn trivial() -> Program {
        let mut b = ProgramBuilder::new("trivial");
        b.mov_imm(Reg::R0, 2).exit();
        b.build()
    }

    #[test]
    fn trivial_program_verifies() {
        assert!(verify(&trivial(), &empty_maps()).is_ok());
    }

    /// Backward jumps must be rejected *statically* — before any path
    /// exploration — and the rejection must name the offending
    /// instruction index. [`ProgramBuilder`] only emits forward jumps,
    /// so build the instruction stream by hand.
    #[test]
    fn back_edge_rejected_with_instruction_index() {
        // 0: r0 = 2
        // 1: ja -2        <- loops back to insn 0
        // 2: exit
        let p = Program {
            name: "loop".into(),
            insns: vec![Insn::MovImm(Reg::R0, 2), Insn::Ja(-2), Insn::Exit],
        };
        let err = verify(&p, &empty_maps()).unwrap_err();
        assert_eq!(err, VerifyError::BackEdge(1));
        assert_eq!(err.to_string(), "insn 1: backward jump");
    }

    /// Conditional back-edges are back-edges too: a `jeq` with a
    /// negative offset is rejected with the same static check, again
    /// naming the instruction.
    #[test]
    fn conditional_back_edge_rejected() {
        // 0: r0 = 0
        // 1: r0 += 1
        // 2: if r0 == 10 { pc += -2 }   <- loops back to insn 1
        // 3: exit
        let p = Program {
            name: "cond-loop".into(),
            insns: vec![
                Insn::MovImm(Reg::R0, 0),
                Insn::AluImm(AluOp::Add, Reg::R0, 1),
                Insn::JmpImm(CmpOp::Eq, Reg::R0, 10, -2),
                Insn::Exit,
            ],
        };
        assert_eq!(
            verify(&p, &empty_maps()),
            Err(VerifyError::BackEdge(2))
        );
    }

    #[test]
    fn empty_program_rejected() {
        let p = Program {
            name: "e".into(),
            insns: vec![],
        };
        assert_eq!(verify(&p, &empty_maps()), Err(VerifyError::Empty));
    }

    #[test]
    fn uninit_read_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R0, Reg::R5).exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()),
            Err(VerifyError::UninitRead(0, Reg::R5))
        );
    }

    #[test]
    fn fall_off_end_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        assert_eq!(
            verify(&b.build(), &empty_maps()),
            Err(VerifyError::FallOffEnd(0))
        );
    }

    #[test]
    fn div_by_zero_imm_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 4).alu_imm(AluOp::Div, Reg::R0, 0).exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()),
            Err(VerifyError::DivByZero(1))
        );
    }

    #[test]
    fn frame_pointer_write_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R10, 0).exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()),
            Err(VerifyError::FramePointerWrite)
        );
    }

    #[test]
    fn packet_access_without_bounds_check_rejected() {
        // r2 = ctx->data; r0 = *(u8*)(r2+0)  — no bounds check.
        let mut b = ProgramBuilder::new("t");
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::B, Reg::R0, Reg::R2, 0)
            .exit();
        match verify(&b.build(), &empty_maps()) {
            Err(VerifyError::PktOutOfBounds {
                at: 1,
                need: 1,
                have: 0,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn packet_access_with_bounds_check_accepted() {
        // Standard idiom: check pkt+14 <= data_end before reading 14 bytes.
        let mut b = ProgramBuilder::new("t");
        let fail = b.label();
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 14)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
            .load(Size::W, Reg::R0, Reg::R2, 10) // bytes 10..14: ok
            .exit()
            .bind(fail)
            .mov_imm(Reg::R0, 1)
            .exit();
        verify(&b.build(), &empty_maps()).expect("should verify");
    }

    #[test]
    fn packet_overread_after_bounds_check_rejected() {
        let mut b = ProgramBuilder::new("t");
        let fail = b.label();
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 14)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
            .load(Size::W, Reg::R0, Reg::R2, 12) // bytes 12..16: 2 too far
            .exit()
            .bind(fail)
            .mov_imm(Reg::R0, 1)
            .exit();
        match verify(&b.build(), &empty_maps()) {
            Err(VerifyError::PktOutOfBounds {
                need: 16, have: 14, ..
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn stack_uninit_read_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.load(Size::DW, Reg::R0, Reg::R10, -8).exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()),
            Err(VerifyError::StackUninitRead(0, -8))
        );
    }

    #[test]
    fn stack_write_then_read_ok() {
        let mut b = ProgramBuilder::new("t");
        b.store_imm(Size::DW, Reg::R10, -8, 42)
            .load(Size::DW, Reg::R0, Reg::R10, -8)
            .exit();
        verify(&b.build(), &empty_maps()).expect("should verify");
    }

    #[test]
    fn stack_out_of_frame_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.store_imm(Size::DW, Reg::R10, -513, 0)
            .mov_imm(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build(), &empty_maps()),
            Err(VerifyError::StackOutOfBounds(0, _))
        ));
    }

    #[test]
    fn map_lookup_requires_null_check() {
        let mut maps = MapSet::new();
        let fd = maps.create(MapKind::Array {
            value_size: 8,
            max_entries: 1,
        });
        let mut b = ProgramBuilder::new("t");
        b.store_imm(Size::W, Reg::R10, -4, 0)
            .mov_imm(Reg::R1, fd.0 as i64)
            .mov(Reg::R2, Reg::R10)
            .add_imm(Reg::R2, -4)
            .call(Helper::MapLookup)
            .load(Size::DW, Reg::R0, Reg::R0, 0) // no null check!
            .exit();
        assert_eq!(
            verify(&b.build(), &maps),
            Err(VerifyError::PossibleNullDeref(5, Reg::R0))
        );
    }

    #[test]
    fn map_lookup_with_null_check_ok() {
        let mut maps = MapSet::new();
        let fd = maps.create(MapKind::Array {
            value_size: 8,
            max_entries: 1,
        });
        let mut b = ProgramBuilder::new("t");
        let isnull = b.label();
        b.store_imm(Size::W, Reg::R10, -4, 0)
            .mov_imm(Reg::R1, fd.0 as i64)
            .mov(Reg::R2, Reg::R10)
            .add_imm(Reg::R2, -4)
            .call(Helper::MapLookup)
            .jmp_imm(CmpOp::Eq, Reg::R0, 0, isnull)
            .load(Size::DW, Reg::R0, Reg::R0, 0)
            .exit()
            .bind(isnull)
            .mov_imm(Reg::R0, 1)
            .exit();
        verify(&b.build(), &maps).expect("should verify");
    }

    #[test]
    fn ctx_write_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R2, 0)
            .store(Size::W, Reg::R1, 16, Reg::R2)
            .mov_imm(Reg::R0, 0)
            .exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()),
            Err(VerifyError::CtxWrite(1))
        );
    }

    #[test]
    fn bad_ctx_offset_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.load(Size::DW, Reg::R2, Reg::R1, 4)
            .mov_imm(Reg::R0, 0)
            .exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()),
            Err(VerifyError::BadCtxAccess(0, 4))
        );
    }

    #[test]
    fn helper_clobbers_arg_regs() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R3, 7)
            .call(Helper::KtimeGetNs)
            .mov(Reg::R0, Reg::R3) // R3 was clobbered by the call
            .exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()),
            Err(VerifyError::UninitRead(2, Reg::R3))
        );
    }

    #[test]
    fn callee_saved_survive_calls() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R6, 7)
            .call(Helper::KtimeGetNs)
            .mov(Reg::R0, Reg::R6)
            .exit();
        verify(&b.build(), &empty_maps()).expect("R6 survives calls");
    }

    #[test]
    fn ringbuf_reserve_submit_flow() {
        let mut maps = MapSet::new();
        let rb = maps.create(MapKind::RingBuf { capacity: 4096 });
        let mut b = ProgramBuilder::new("t");
        let full = b.label();
        b.mov_imm(Reg::R1, rb.0 as i64)
            .mov_imm(Reg::R2, 16)
            .call(Helper::RingbufReserve)
            .jmp_imm(CmpOp::Eq, Reg::R0, 0, full)
            .mov(Reg::R6, Reg::R0)
            .store_imm(Size::DW, Reg::R6, 0, 1)
            .store_imm(Size::DW, Reg::R6, 8, 2)
            .mov(Reg::R1, Reg::R6)
            .call(Helper::RingbufSubmit)
            .mov_imm(Reg::R0, 3)
            .exit()
            .bind(full)
            .mov_imm(Reg::R0, 1)
            .exit();
        verify(&b.build(), &maps).expect("ringbuf flow verifies");
    }

    #[test]
    fn ringbuf_write_past_reservation_rejected() {
        let mut maps = MapSet::new();
        let rb = maps.create(MapKind::RingBuf { capacity: 4096 });
        let mut b = ProgramBuilder::new("t");
        let full = b.label();
        b.mov_imm(Reg::R1, rb.0 as i64)
            .mov_imm(Reg::R2, 8)
            .call(Helper::RingbufReserve)
            .jmp_imm(CmpOp::Eq, Reg::R0, 0, full)
            .store_imm(Size::DW, Reg::R0, 8, 1) // past the 8-byte record
            .mov_imm(Reg::R0, 3)
            .exit()
            .bind(full)
            .mov_imm(Reg::R0, 1)
            .exit();
        assert_eq!(
            verify(&b.build(), &maps),
            Err(VerifyError::MapValueOutOfBounds(4))
        );
    }

    #[test]
    fn exit_without_r0_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.exit();
        assert_eq!(
            verify(&b.build(), &empty_maps()),
            Err(VerifyError::BadReturn(0))
        );
    }

    #[test]
    fn merge_keeps_weaker_knowledge() {
        // Two paths: one checks 14 bytes, one checks 20; after the join
        // only 14 are proven, so reading byte 15 must fail.
        let mut b = ProgramBuilder::new("t");
        let fail = b.label();
        let join = b.label();
        let path2 = b.label();
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
            .load(Size::W, Reg::R5, Reg::R1, ctx_layout::INGRESS_IFINDEX)
            .jmp_imm(CmpOp::Eq, Reg::R5, 0, path2)
            // path 1: check 20 bytes
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 20)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
            .ja(join)
            // path 2: check 14 bytes
            .bind(path2)
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 14)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
            .bind(join)
            .load(Size::W, Reg::R0, Reg::R2, 12) // needs 16 > 14
            .exit()
            .bind(fail)
            .mov_imm(Reg::R0, 1)
            .exit();
        match verify(&b.build(), &empty_maps()) {
            Err(VerifyError::PktOutOfBounds {
                need: 16, have: 14, ..
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
