//! Verifier-informed lowering: the compiled engine for verified
//! programs.
//!
//! [`lower`] translates a program into a direct-threaded form — one
//! pre-resolved [`Op`] per instruction, grouped into basic blocks with
//! jump targets resolved to block indices — consuming the
//! [`crate::verifier::Proof`] artifact so that the per-step work the
//! interpreter repeats on every instruction is done once at load time:
//!
//! - **No decode.** Register numbers, immediates, and context fields
//!   are pre-extracted; the executor never re-inspects an [`Insn`].
//! - **Proof-elided checks.** Every load/store is specialized to the
//!   memory region the verifier proved it hits, so the runtime region
//!   dispatch and bounds comparison disappear. Each elision cites the
//!   proven [`AccessFact`] (see [`LoweredProgram::dump`]); in debug
//!   builds the elided comparisons remain as `debug_assert!`s.
//! - **Per-block fuel and cost.** Retired-instruction fuel is prepaid
//!   per block through the shared [`crate::vm::Fuel`] helper, and pure
//!   ALU blocks charge the cost model in one batch — the exact f64
//!   addition sequence the interpreter performs, so totals stay
//!   bit-identical (including mid-run `KtimeGetNs` reads).
//!
//! The trust story is explicit: [`lower`] takes a [`Proof`], and a
//! `Proof` only comes from [`crate::verifier::verify_with_proof`] —
//! unverified programs cannot be lowered. Stack accesses compile to
//! static frame slots (the verifier keeps stack-pointer offsets
//! concrete), packet accesses rely on `off.hi + disp + width <=
//! pkt_len_min` from the interval domain, and map/ring accesses rely
//! on the proven value size and non-nullness. Rust's own slice indexing
//! still backstops a (hypothetical) verifier bug with a panic rather
//! than memory unsafety — the crate forbids `unsafe`.
//!
//! One deliberate divergence from the interpreter: fuel exhaustion
//! traps at the *block* boundary (before any of the block's effects)
//! rather than mid-block. Programs run with their verifier-derived
//! fuel never trap, so both engines agree on every verified workload;
//! see the boundary tests below.

use crate::cost::{BlockPlan, CostModel, MemClass};
use crate::insn::{alu_sym, cmp_sym, sz_sym, AluOp, CmpOp, Helper, Insn, Size};
use crate::maps::MapSet;
use crate::prog::Program;
use crate::verifier::{ctx_layout, AccessFact, Proof, STACK_SIZE};
use crate::vm::{
    alu, cmp, finish, Machine, RunResult, Trap, XdpContext, MAPVAL_BASE, MAPVAL_STRIDE, PKT_BASE,
    RING_BASE,
};
use std::collections::BTreeMap;
use steelworks_netsim::rng::SimRng;

/// Why a (verified) program could not be lowered. Every variant is an
/// internal inconsistency — a proof from a different program, or a
/// fact pattern the verifier can't actually emit — so callers treat
/// this as "fall back to the interpreter", not as user error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// The proof does not cover this program (length mismatch).
    ProofMismatch,
    /// A reachable memory access has no region fact.
    MissingFact(usize),
    /// A context access with an offset/width pair outside the layout.
    BadCtxField(usize),
    /// A stack fact outside the frame.
    BadStackSlot(usize),
    /// A store through the read-only context.
    CtxStore(usize),
    /// Block partition disagrees with the interpreter's
    /// [`BlockPlan`] (would break bit-identical charging).
    PlanMismatch(usize),
    /// A branch target that is not a block leader.
    BadTarget(usize),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::ProofMismatch => write!(f, "proof artifact does not match the program"),
            LowerError::MissingFact(pc) => write!(f, "no region fact for memory access at {pc}"),
            LowerError::BadCtxField(pc) => write!(f, "unmodelled ctx field at {pc}"),
            LowerError::BadStackSlot(pc) => write!(f, "stack fact outside the frame at {pc}"),
            LowerError::CtxStore(pc) => write!(f, "store through ctx pointer at {pc}"),
            LowerError::PlanMismatch(pc) => write!(f, "block plan disagreement at {pc}"),
            LowerError::BadTarget(pc) => write!(f, "branch target at {pc} is not a leader"),
        }
    }
}

/// Pre-resolved context field (offset/width validated at lowering).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CtxField {
    /// Packet data pointer.
    Data,
    /// Packet end pointer.
    DataEnd,
    /// Ingress interface index.
    Ifindex,
    /// RX queue index.
    RxQueue,
}

impl CtxField {
    fn name(self) -> &'static str {
        match self {
            CtxField::Data => "data",
            CtxField::DataEnd => "data_end",
            CtxField::Ifindex => "ingress_ifindex",
            CtxField::RxQueue => "rx_queue",
        }
    }
}

/// One pre-resolved operation. Register fields are raw indices into
/// the machine's register file; memory ops are specialized to their
/// proven region with the bounds check elided.
#[derive(Clone, Copy, Debug)]
enum Op {
    MovImm { dst: u8, imm: u64 },
    MovReg { dst: u8, src: u8 },
    Neg { dst: u8 },
    AluImm { op: AluOp, dst: u8, imm: u64 },
    AluReg { op: AluOp, dst: u8, src: u8 },
    LdCtx { dst: u8, field: CtxField },
    LdPkt { sz: Size, dst: u8, base: u8, off: i64 },
    StPkt { sz: Size, base: u8, off: i64, src: u8 },
    StPktImm { sz: Size, base: u8, off: i64, imm: u64 },
    LdStack { sz: Size, dst: u8, slot: u16 },
    StStack { sz: Size, slot: u16, src: u8 },
    StStackImm { sz: Size, slot: u16, imm: u64 },
    LdMap { sz: Size, dst: u8, base: u8, off: i64 },
    StMap { sz: Size, base: u8, off: i64, src: u8 },
    StMapImm { sz: Size, base: u8, off: i64, imm: u64 },
    LdRing { sz: Size, dst: u8, base: u8, off: i64 },
    StRing { sz: Size, base: u8, off: i64, src: u8 },
    StRingImm { sz: Size, base: u8, off: i64, imm: u64 },
    Call { helper: Helper },
}

/// Block terminator with targets resolved to block indices.
#[derive(Clone, Copy, Debug)]
enum Term {
    /// Return R0.
    Exit,
    /// Unconditional jump.
    Ja { to: u32 },
    /// Conditional branch against an immediate.
    BrImm { op: CmpOp, reg: u8, imm: u64, yes: u32, no: u32 },
    /// Conditional branch against a register.
    BrReg { op: CmpOp, a: u8, b: u8, yes: u32, no: u32 },
    /// Fall through into the next block (its leader is a jump target).
    Fall { to: u32 },
    /// Verifier-unreachable block; executing it is a lowering bug and
    /// traps defensively.
    Poison,
}

/// One basic block: straight-line ops plus a terminator.
#[derive(Clone, Debug)]
struct Block {
    /// Leader's pc in the source program (diagnostics only).
    start_pc: u32,
    /// Instructions this block retires (ops + real terminator).
    retires: u64,
    /// All-ALU block: fuel and cost are charged as one batch at entry,
    /// mirroring the interpreter's [`BlockPlan`] fusing.
    fused: bool,
    ops: Vec<Op>,
    term: Term,
}

/// A verified program compiled for direct-threaded execution.
///
/// Obtain via [`lower`]; execute via [`run_lowered`]. The embedded
/// fuel is the verifier's `max_insns` bound from the consumed proof.
#[derive(Clone, Debug)]
pub struct LoweredProgram {
    name: String,
    blocks: Vec<Block>,
    fuel: u64,
    /// The proof fact behind every elided check, keyed by source pc —
    /// the audit trail [`Self::dump`] renders.
    notes: BTreeMap<u32, AccessFact>,
    insns: usize,
}

impl LoweredProgram {
    /// Program name (as in [`Program::name`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The verifier-derived retired-instruction budget baked in at
    /// lowering time.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of runtime checks elided against a proof fact.
    pub fn elided_checks(&self) -> usize {
        self.notes.len()
    }

    /// Human-readable per-block listing: resolved ops, each elided
    /// check with its proving fact, and per-block fuel (retires).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "; lowered {}: {} blocks, {} insns, fuel {}, {} checks elided\n",
            self.name,
            self.blocks.len(),
            self.insns,
            self.fuel,
            self.notes.len()
        ));
        for (bi, b) in self.blocks.iter().enumerate() {
            out.push_str(&format!(
                "block {bi:>2} @{:<3} retires={}{}\n",
                b.start_pc,
                b.retires,
                if b.fused { " fused" } else { "" }
            ));
            for (i, op) in b.ops.iter().enumerate() {
                let pc = b.start_pc + i as u32;
                let note = self
                    .notes
                    .get(&pc)
                    .map(|f| format!("  ; elided: {}", fact_text(f)))
                    .unwrap_or_default();
                out.push_str(&format!("  {pc:>3}: {}{note}\n", op_text(op)));
            }
            out.push_str(&format!("  -> {}\n", term_text(&b.term)));
        }
        out
    }
}

fn fact_text(f: &AccessFact) -> String {
    match f {
        AccessFact::Ctx => "typed ctx field".into(),
        AccessFact::Packet { off, len_min } => {
            format!("pkt off {off} within proven len {len_min}")
        }
        AccessFact::Stack { off } => format!("stack fp{off:+} within frame"),
        AccessFact::MapValue { size } => format!("non-null map value, {size}B"),
        AccessFact::RingBuf { size } => format!("non-null ringbuf record, {size}B"),
    }
}

fn op_text(op: &Op) -> String {
    match *op {
        Op::MovImm { dst, imm } => format!("r{dst} = {}", imm as i64),
        Op::MovReg { dst, src } => format!("r{dst} = r{src}"),
        Op::Neg { dst } => format!("r{dst} = -r{dst}"),
        Op::AluImm { op, dst, imm } => format!("r{dst} {} {}", alu_sym(op), imm as i64),
        Op::AluReg { op, dst, src } => format!("r{dst} {} r{src}", alu_sym(op)),
        Op::LdCtx { dst, field } => format!("r{dst} = ctx.{}", field.name()),
        Op::LdPkt { sz, dst, base, off } => {
            format!("r{dst} = pkt.{}[r{base}{off:+}]", sz_sym(sz))
        }
        Op::StPkt { sz, base, off, src } => {
            format!("pkt.{}[r{base}{off:+}] = r{src}", sz_sym(sz))
        }
        Op::StPktImm { sz, base, off, imm } => {
            format!("pkt.{}[r{base}{off:+}] = {}", sz_sym(sz), imm as i64)
        }
        Op::LdStack { sz, dst, slot } => {
            format!("r{dst} = stack.{}[fp{:+}]", sz_sym(sz), slot as i32 - STACK_SIZE as i32)
        }
        Op::StStack { sz, slot, src } => {
            format!("stack.{}[fp{:+}] = r{src}", sz_sym(sz), slot as i32 - STACK_SIZE as i32)
        }
        Op::StStackImm { sz, slot, imm } => {
            format!(
                "stack.{}[fp{:+}] = {}",
                sz_sym(sz),
                slot as i32 - STACK_SIZE as i32,
                imm as i64
            )
        }
        Op::LdMap { sz, dst, base, off } => {
            format!("r{dst} = map.{}[r{base}{off:+}]", sz_sym(sz))
        }
        Op::StMap { sz, base, off, src } => {
            format!("map.{}[r{base}{off:+}] = r{src}", sz_sym(sz))
        }
        Op::StMapImm { sz, base, off, imm } => {
            format!("map.{}[r{base}{off:+}] = {}", sz_sym(sz), imm as i64)
        }
        Op::LdRing { sz, dst, base, off } => {
            format!("r{dst} = ring.{}[r{base}{off:+}]", sz_sym(sz))
        }
        Op::StRing { sz, base, off, src } => {
            format!("ring.{}[r{base}{off:+}] = r{src}", sz_sym(sz))
        }
        Op::StRingImm { sz, base, off, imm } => {
            format!("ring.{}[r{base}{off:+}] = {}", sz_sym(sz), imm as i64)
        }
        Op::Call { helper } => format!("call {helper:?}"),
    }
}

fn term_text(t: &Term) -> String {
    match *t {
        Term::Exit => "exit".into(),
        Term::Ja { to } => format!("b{to}"),
        Term::BrImm { op, reg, imm, yes, no } => {
            format!("if r{reg} {} {} ? b{yes} : b{no}", cmp_sym(op), imm as i64)
        }
        Term::BrReg { op, a, b, yes, no } => {
            format!("if r{a} {} r{b} ? b{yes} : b{no}", cmp_sym(op))
        }
        Term::Fall { to } => format!("b{to}"),
        Term::Poison => "poison (verifier-unreachable)".into(),
    }
}

/// Offset/width pair → context field, as the interpreter's typed read
/// accepts them (anything else would trap there, and the verifier
/// rejects it statically).
fn ctx_field(off: i16, sz: Size) -> Option<CtxField> {
    match (off, sz) {
        (ctx_layout::DATA, Size::DW) => Some(CtxField::Data),
        (ctx_layout::DATA_END, Size::DW) => Some(CtxField::DataEnd),
        (ctx_layout::INGRESS_IFINDEX, Size::W) => Some(CtxField::Ifindex),
        (ctx_layout::RX_QUEUE, Size::W) => Some(CtxField::RxQueue),
        _ => None,
    }
}

/// Frame-relative offset → static stack slot index (low byte).
fn stack_slot(pc: usize, off: i32, sz: Size) -> Result<u16, LowerError> {
    let slot = off + STACK_SIZE as i32;
    if slot < 0 || slot + sz.bytes() as i32 > STACK_SIZE as i32 {
        return Err(LowerError::BadStackSlot(pc));
    }
    Ok(slot as u16)
}

fn is_terminal(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Ja(_) | Insn::JmpImm(..) | Insn::JmpReg(..) | Insn::Exit
    )
}

/// Compile a verified program into its direct-threaded form.
///
/// `proof` must come from [`crate::verifier::verify_with_proof`] on the
/// same program — it is what licenses every elided check. Errors mean
/// the proof and program disagree; callers fall back to the
/// interpreter.
pub fn lower(prog: &Program, proof: &Proof) -> Result<LoweredProgram, LowerError> {
    let n = prog.insns.len();
    if n == 0 || proof.insns() != n {
        return Err(LowerError::ProofMismatch);
    }
    let plan = BlockPlan::new(prog);
    let mut block_idx = vec![u32::MAX; n];
    let leaders: Vec<usize> = (0..n).filter(|&pc| plan.is_leader(pc)).collect();
    for (bi, &l) in leaders.iter().enumerate() {
        block_idx[l] = bi as u32;
    }
    let resolve = |pc: usize, tgt: usize| -> Result<u32, LowerError> {
        match block_idx.get(tgt).copied() {
            Some(bi) if bi != u32::MAX => Ok(bi),
            _ => Err(LowerError::BadTarget(pc)),
        }
    };

    let mut blocks = Vec::with_capacity(leaders.len());
    let mut notes = BTreeMap::new();
    for &l in &leaders {
        let mut end = l;
        while !is_terminal(&prog.insns[end]) && end + 1 < n && !plan.is_leader(end + 1) {
            end += 1;
        }
        if !proof.is_reachable(l) {
            // Dead-edge pruning left this block without any incoming
            // path; branches may still name it, but never take it.
            blocks.push(Block {
                start_pc: l as u32,
                retires: 0,
                fused: false,
                ops: Vec::new(),
                term: Term::Poison,
            });
            continue;
        }
        let term_is_insn = is_terminal(&prog.insns[end]);
        let op_end = if term_is_insn { end } else { end + 1 };
        let mut ops = Vec::with_capacity(op_end - l);
        for pc in l..op_end {
            ops.push(lower_op(pc, &prog.insns[pc], proof, &mut notes)?);
        }
        let term = if term_is_insn {
            match prog.insns[end] {
                Insn::Exit => Term::Exit,
                Insn::Ja(off) => Term::Ja {
                    to: resolve(end, (end as i64 + 1 + off as i64) as usize)?,
                },
                Insn::JmpImm(op, r, imm, off) => Term::BrImm {
                    op,
                    reg: r.idx() as u8,
                    imm: imm as u64,
                    yes: resolve(end, (end as i64 + 1 + off as i64) as usize)?,
                    no: resolve(end, end + 1)?,
                },
                Insn::JmpReg(op, a, b, off) => Term::BrReg {
                    op,
                    a: a.idx() as u8,
                    b: b.idx() as u8,
                    yes: resolve(end, (end as i64 + 1 + off as i64) as usize)?,
                    no: resolve(end, end + 1)?,
                },
                // is_terminal() covers exactly the four arms above.
                _ => return Err(LowerError::PlanMismatch(end)),
            }
        } else {
            Term::Fall {
                to: resolve(end, end + 1)?,
            }
        };
        let retires = (end - l + 1) as u64;
        let flen = plan.fused_len(l);
        if flen > 0 && flen as u64 != retires {
            return Err(LowerError::PlanMismatch(l));
        }
        blocks.push(Block {
            start_pc: l as u32,
            retires,
            fused: flen > 0,
            ops,
            term,
        });
    }

    Ok(LoweredProgram {
        name: prog.name.clone(),
        blocks,
        fuel: proof.max_insns(),
        notes,
        insns: n,
    })
}

fn lower_op(
    pc: usize,
    insn: &Insn,
    proof: &Proof,
    notes: &mut BTreeMap<u32, AccessFact>,
) -> Result<Op, LowerError> {
    let fact_for = |notes: &mut BTreeMap<u32, AccessFact>| -> Result<AccessFact, LowerError> {
        let f = proof.fact(pc).ok_or(LowerError::MissingFact(pc))?;
        notes.insert(pc as u32, f);
        Ok(f)
    };
    Ok(match *insn {
        Insn::MovImm(d, imm) => Op::MovImm {
            dst: d.idx() as u8,
            imm: imm as u64,
        },
        Insn::MovReg(d, s) => Op::MovReg {
            dst: d.idx() as u8,
            src: s.idx() as u8,
        },
        Insn::Neg(d) => Op::Neg { dst: d.idx() as u8 },
        Insn::AluImm(op, d, imm) => Op::AluImm {
            op,
            dst: d.idx() as u8,
            imm: imm as u64,
        },
        Insn::AluReg(op, d, s) => Op::AluReg {
            op,
            dst: d.idx() as u8,
            src: s.idx() as u8,
        },
        Insn::Load(sz, d, b, off) => {
            let dst = d.idx() as u8;
            let base = b.idx() as u8;
            match fact_for(notes)? {
                AccessFact::Ctx => Op::LdCtx {
                    dst,
                    field: ctx_field(off, sz).ok_or(LowerError::BadCtxField(pc))?,
                },
                AccessFact::Packet { .. } => Op::LdPkt {
                    sz,
                    dst,
                    base,
                    off: off as i64,
                },
                AccessFact::Stack { off: so } => Op::LdStack {
                    sz,
                    dst,
                    slot: stack_slot(pc, so, sz)?,
                },
                AccessFact::MapValue { .. } => Op::LdMap {
                    sz,
                    dst,
                    base,
                    off: off as i64,
                },
                AccessFact::RingBuf { .. } => Op::LdRing {
                    sz,
                    dst,
                    base,
                    off: off as i64,
                },
            }
        }
        Insn::Store(sz, b, off, s) => {
            let base = b.idx() as u8;
            let src = s.idx() as u8;
            match fact_for(notes)? {
                AccessFact::Ctx => return Err(LowerError::CtxStore(pc)),
                AccessFact::Packet { .. } => Op::StPkt {
                    sz,
                    base,
                    off: off as i64,
                    src,
                },
                AccessFact::Stack { off: so } => Op::StStack {
                    sz,
                    slot: stack_slot(pc, so, sz)?,
                    src,
                },
                AccessFact::MapValue { .. } => Op::StMap {
                    sz,
                    base,
                    off: off as i64,
                    src,
                },
                AccessFact::RingBuf { .. } => Op::StRing {
                    sz,
                    base,
                    off: off as i64,
                    src,
                },
            }
        }
        Insn::StoreImm(sz, b, off, imm) => {
            let base = b.idx() as u8;
            let imm = imm as u64;
            match fact_for(notes)? {
                AccessFact::Ctx => return Err(LowerError::CtxStore(pc)),
                AccessFact::Packet { .. } => Op::StPktImm {
                    sz,
                    base,
                    off: off as i64,
                    imm,
                },
                AccessFact::Stack { off: so } => Op::StStackImm {
                    sz,
                    slot: stack_slot(pc, so, sz)?,
                    imm,
                },
                AccessFact::MapValue { .. } => Op::StMapImm {
                    sz,
                    base,
                    off: off as i64,
                    imm,
                },
                AccessFact::RingBuf { .. } => Op::StRingImm {
                    sz,
                    base,
                    off: off as i64,
                    imm,
                },
            }
        }
        Insn::Call(h) => Op::Call { helper: h },
        // Terminators are lowered by the block builder, never here.
        Insn::Ja(_) | Insn::JmpImm(..) | Insn::JmpReg(..) | Insn::Exit => {
            return Err(LowerError::PlanMismatch(pc))
        }
    })
}

/// Execute a lowered program.
///
/// Mirrors [`crate::vm::run_with`] exactly — same `RunResult`, same
/// bit-identical cost totals, same trap classification on verified
/// workloads — but runs the pre-resolved ops with proof-elided checks.
/// Fuel is the bound baked in by [`lower`].
#[allow(clippy::too_many_arguments)]
pub fn run_lowered(
    lp: &LoweredProgram,
    packet: &mut Vec<u8>,
    ctx: XdpContext,
    maps: &mut MapSet,
    cost_model: &CostModel,
    host_time_ns: u64,
    cpu_id: u32,
    rng: &mut SimRng,
) -> RunResult {
    let mut m = Machine::new(
        packet,
        ctx,
        maps,
        cost_model,
        None,
        lp.fuel,
        host_time_ns,
        cpu_id,
        rng,
    );
    let outcome = exec_lowered(&mut m, lp);
    finish(m, outcome)
}

/// Width-specialized little-endian load: each arm is a fixed-size read
/// the compiler turns into a single (or pairwise) machine load, unlike
/// the interpreter's generic runtime-length copy.
#[inline(always)]
fn load_sz(buf: &[u8], o: usize, sz: Size) -> u64 {
    match sz {
        Size::B => buf[o] as u64,
        Size::H => {
            let s = &buf[o..o + 2];
            u16::from_le_bytes([s[0], s[1]]) as u64
        }
        Size::W => {
            let s = &buf[o..o + 4];
            u32::from_le_bytes([s[0], s[1], s[2], s[3]]) as u64
        }
        Size::DW => {
            let s = &buf[o..o + 8];
            u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
        }
    }
}

/// Width-specialized little-endian store (see [`load_sz`]).
#[inline(always)]
fn store_sz(buf: &mut [u8], o: usize, sz: Size, v: u64) {
    let b = v.to_le_bytes();
    match sz {
        Size::B => buf[o] = b[0],
        Size::H => buf[o..o + 2].copy_from_slice(&b[..2]),
        Size::W => buf[o..o + 4].copy_from_slice(&b[..4]),
        Size::DW => buf[o..o + 8].copy_from_slice(&b[..8]),
    }
}

fn exec_lowered(m: &mut Machine<'_>, lp: &LoweredProgram) -> Result<u64, Trap> {
    let alu_ns = m.cost_model.alu_ns;
    let mut bi = 0usize;
    loop {
        let b = &lp.blocks[bi];
        m.fuel.take(b.retires)?;
        if b.fused {
            // Pure ALU block: batch the charges exactly as the
            // interpreter's fused path does (repeated addition, never
            // multiplication), then run the ops uncharged.
            for _ in 0..b.retires {
                m.cost.retire();
                m.cost.charge(alu_ns);
            }
            for op in &b.ops {
                exec_op(m, op, true)?;
            }
        } else {
            for op in &b.ops {
                m.cost.retire();
                exec_op(m, op, false)?;
            }
        }
        bi = match b.term {
            Term::Fall { to } => to as usize,
            Term::Exit => {
                if !b.fused {
                    m.cost.retire();
                    m.cost.charge(alu_ns);
                }
                return Ok(m.regs[0]);
            }
            Term::Ja { to } => {
                if !b.fused {
                    m.cost.retire();
                    m.cost.charge(alu_ns);
                }
                to as usize
            }
            Term::BrImm { op, reg, imm, yes, no } => {
                if !b.fused {
                    m.cost.retire();
                    m.cost.charge(alu_ns);
                }
                if cmp(op, m.regs[reg as usize], imm) {
                    yes as usize
                } else {
                    no as usize
                }
            }
            Term::BrReg { op, a, b: rb, yes, no } => {
                if !b.fused {
                    m.cost.retire();
                    m.cost.charge(alu_ns);
                }
                if cmp(op, m.regs[a as usize], m.regs[rb as usize]) {
                    yes as usize
                } else {
                    no as usize
                }
            }
            Term::Poison => return Err(Trap::BadAddress(b.start_pc as u64)),
        };
    }
}

/// Execute one op. `fused` marks ops inside a batch-charged pure
/// block: their ALU charge already happened at block entry. Memory and
/// call ops never appear fused; their sub-charges (cold miss, region
/// cost, helper cost) happen here in the interpreter's exact order.
#[inline(always)]
fn exec_op(m: &mut Machine<'_>, op: &Op, fused: bool) -> Result<(), Trap> {
    match *op {
        Op::MovImm { dst, imm } => {
            if !fused {
                m.cost.charge(m.cost_model.alu_ns);
            }
            m.regs[dst as usize] = imm;
        }
        Op::MovReg { dst, src } => {
            if !fused {
                m.cost.charge(m.cost_model.alu_ns);
            }
            m.regs[dst as usize] = m.regs[src as usize];
        }
        Op::Neg { dst } => {
            if !fused {
                m.cost.charge(m.cost_model.alu_ns);
            }
            m.regs[dst as usize] = (m.regs[dst as usize] as i64).wrapping_neg() as u64;
        }
        Op::AluImm { op, dst, imm } => {
            if !fused {
                m.cost.charge(m.cost_model.alu_ns);
            }
            m.regs[dst as usize] = alu(op, m.regs[dst as usize], imm);
        }
        Op::AluReg { op, dst, src } => {
            if !fused {
                m.cost.charge(m.cost_model.alu_ns);
            }
            m.regs[dst as usize] = alu(op, m.regs[dst as usize], m.regs[src as usize]);
        }
        Op::LdCtx { dst, field } => {
            m.charge_mem(MemClass::Ctx);
            m.regs[dst as usize] = match field {
                CtxField::Data => PKT_BASE,
                CtxField::DataEnd => PKT_BASE + m.packet.len() as u64,
                CtxField::Ifindex => m.ctx.ingress_ifindex as u64,
                CtxField::RxQueue => m.ctx.rx_queue as u64,
            };
        }
        Op::LdPkt { sz, dst, base, off } => {
            m.charge_mem(MemClass::Packet);
            let o = pkt_off(m, base, off, sz.bytes());
            m.regs[dst as usize] = load_sz(&m.packet, o, sz);
        }
        Op::StPkt { sz, base, off, src } => {
            let v = m.regs[src as usize];
            st_pkt(m, sz, base, off, v);
        }
        Op::StPktImm { sz, base, off, imm } => {
            st_pkt(m, sz, base, off, imm);
        }
        Op::LdStack { sz, dst, slot } => {
            m.charge_mem(MemClass::Stack);
            m.regs[dst as usize] = load_sz(&m.stack, slot as usize, sz);
        }
        Op::StStack { sz, slot, src } => {
            let v = m.regs[src as usize];
            st_stack(m, sz, slot, v);
        }
        Op::StStackImm { sz, slot, imm } => {
            st_stack(m, sz, slot, imm);
        }
        Op::LdMap { sz, dst, base, off } => {
            m.charge_mem(MemClass::MapValue);
            let n = sz.bytes();
            let addr = m.regs[base as usize].wrapping_add(off as u64);
            let (slot, o) = map_slot(addr);
            let val = m.deref_slot(slot).ok_or(Trap::BadAddress(addr))?;
            debug_assert!(o + n <= val.len(), "verifier-proven map bounds");
            m.regs[dst as usize] = load_sz(val, o, sz);
        }
        Op::StMap { sz, base, off, src } => {
            let v = m.regs[src as usize];
            st_map(m, sz, base, off, v)?;
        }
        Op::StMapImm { sz, base, off, imm } => {
            st_map(m, sz, base, off, imm)?;
        }
        Op::LdRing { sz, dst, base, off } => {
            m.charge_mem(MemClass::MapValue);
            let n = sz.bytes();
            let addr = m.regs[base as usize].wrapping_add(off as u64);
            let Some((_, buf)) = m.reservation.as_ref() else {
                return Err(Trap::BadAddress(addr));
            };
            let o = (addr - RING_BASE) as usize;
            debug_assert!(o + n <= buf.len(), "verifier-proven ring bounds");
            m.regs[dst as usize] = load_sz(buf, o, sz);
        }
        Op::StRing { sz, base, off, src } => {
            let v = m.regs[src as usize];
            st_ring(m, sz, base, off, v)?;
        }
        Op::StRingImm { sz, base, off, imm } => {
            st_ring(m, sz, base, off, imm)?;
        }
        Op::Call { helper } => {
            m.call(helper)?;
        }
    }
    Ok(())
}

/// Resolve a proven-in-bounds packet access to a buffer offset. The
/// elided range comparison survives as a debug assertion; release
/// builds still hit Rust's slice check, never UB.
#[inline(always)]
fn pkt_off(m: &Machine<'_>, base: u8, off: i64, n: usize) -> usize {
    let addr = m.regs[base as usize].wrapping_add(off as u64);
    debug_assert!(
        addr >= PKT_BASE && (addr - PKT_BASE) as usize + n <= m.packet.len(),
        "verifier-proven packet bounds"
    );
    (addr.wrapping_sub(PKT_BASE)) as usize
}

#[inline(always)]
fn st_pkt(m: &mut Machine<'_>, sz: Size, base: u8, off: i64, v: u64) {
    m.charge_mem(MemClass::Packet);
    m.pkt_writes += 1;
    let o = pkt_off(m, base, off, sz.bytes());
    store_sz(&mut m.packet, o, sz, v);
}

#[inline(always)]
fn st_stack(m: &mut Machine<'_>, sz: Size, slot: u16, v: u64) {
    m.charge_mem(MemClass::Stack);
    store_sz(&mut m.stack, slot as usize, sz, v);
}

/// Map-value virtual address → (deref slot, value offset).
#[inline(always)]
fn map_slot(addr: u64) -> (usize, usize) {
    let rel = addr.wrapping_sub(MAPVAL_BASE);
    ((rel / MAPVAL_STRIDE) as usize, (rel % MAPVAL_STRIDE) as usize)
}

#[inline(always)]
fn st_map(m: &mut Machine<'_>, sz: Size, base: u8, off: i64, v: u64) -> Result<(), Trap> {
    m.charge_mem(MemClass::MapValue);
    let n = sz.bytes();
    let addr = m.regs[base as usize].wrapping_add(off as u64);
    let (slot, o) = map_slot(addr);
    let val = m.deref_slot_mut(slot).ok_or(Trap::BadAddress(addr))?;
    debug_assert!(o + n <= val.len(), "verifier-proven map bounds");
    store_sz(val, o, sz, v);
    Ok(())
}

#[inline(always)]
fn st_ring(m: &mut Machine<'_>, sz: Size, base: u8, off: i64, v: u64) -> Result<(), Trap> {
    // The interpreter charges a ring *write* after the copy (reads
    // charge before) — preserved exactly for bit-identical totals.
    let n = sz.bytes();
    let addr = m.regs[base as usize].wrapping_add(off as u64);
    let Some((_, buf)) = m.reservation.as_mut() else {
        return Err(Trap::BadAddress(addr));
    };
    let o = (addr - RING_BASE) as usize;
    debug_assert!(o + n <= buf.len(), "verifier-proven ring bounds");
    store_sz(buf, o, sz, v);
    m.cost.charge(m.cost_model.mem_cost(MemClass::MapValue));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::insn::{Reg, XdpAction};
    use crate::programs::{loop_variant, reflect_variant, standard_maps, LoopVariant, ReflectVariant};
    use crate::prog::ProgramBuilder;
    use crate::verifier::verify_with_proof;
    use crate::vm::run_with;

    fn lowered(prog: &Program, maps: &MapSet) -> LoweredProgram {
        let (_, proof) = verify_with_proof(prog, maps).expect("verifies");
        lower(prog, &proof).expect("lowers")
    }

    #[test]
    fn corpus_lowers_with_elisions() {
        let (maps, rb) = standard_maps();
        for v in ReflectVariant::ALL {
            let p = reflect_variant(v, rb);
            let lp = lowered(&p, &maps);
            assert!(lp.elided_checks() > 0, "{}", v.name());
            assert!(lp.block_count() >= 2, "{}", v.name());
            assert!(lp.fuel() >= p.insns.len() as u64, "{}", v.name());
        }
        for v in LoopVariant::ALL {
            let p = loop_variant(v);
            let lp = lowered(&p, &maps);
            assert!(lp.elided_checks() > 0, "{}", v.name());
        }
    }

    #[test]
    fn lowered_matches_interpreter_bitwise() {
        // One self-contained spot check (the full seeded-sweep oracle
        // lives in tests/lowered_oracle.rs).
        let (mut maps, rb) = standard_maps();
        let p = reflect_variant(ReflectVariant::TsDRb, rb);
        let (stats, proof) = verify_with_proof(&p, &maps).expect("verifies");
        let lp = lower(&p, &proof).expect("lowers");
        let plan = BlockPlan::new(&p);
        let cm = CostModel::default();
        let mk_pkt = || {
            let mut pkt = vec![0u8; 64];
            pkt[..6].copy_from_slice(&[1; 6]);
            pkt[6..12].copy_from_slice(&[2; 6]);
            pkt
        };
        let mut rng_a = SimRng::seed_from_u64(42);
        let mut rng_b = SimRng::seed_from_u64(42);
        let mut pkt_a = mk_pkt();
        let mut pkt_b = mk_pkt();
        let a = run_with(
            &p,
            Some(&plan),
            stats.max_insns,
            &mut pkt_a,
            XdpContext::default(),
            &mut maps,
            &cm,
            1_000,
            0,
            &mut rng_a,
        );
        let b = run_lowered(
            &lp,
            &mut pkt_b,
            XdpContext::default(),
            &mut maps,
            &cm,
            1_000,
            0,
            &mut rng_b,
        );
        assert_eq!(a.action, b.action);
        assert_eq!(a.trap, b.trap);
        assert_eq!(a.cost.insns, b.cost.insns);
        assert_eq!(a.cost.ns.to_bits(), b.cost.ns.to_bits());
        assert_eq!(a.ringbuf_events, b.ringbuf_events);
        assert_eq!(a.pkt_writes, b.pkt_writes);
        assert_eq!(pkt_a, pkt_b);
    }

    #[test]
    fn fuel_boundary_exact_and_plus_one() {
        // r0 = 0; head: r0 += 1; if r0 < 1000 goto head; exit
        // Retires exactly 2 + 2*1000 instructions (see the twin
        // interpreter test in vm.rs) — the lowered engine must agree
        // at the boundary through the shared Fuel helper.
        let mut b = ProgramBuilder::new("fuel");
        b.mov_imm(Reg::R0, 0);
        let head = b.here();
        b.alu_imm(AluOp::Add, Reg::R0, 1)
            .jmp_imm(CmpOp::Lt, Reg::R0, 1000, head)
            .exit();
        let prog = b.build();
        let maps = MapSet::new();
        let (_, proof) = verify_with_proof(&prog, &maps).expect("verifies");
        let mut lp = lower(&prog, &proof).expect("lowers");
        let cm = CostModel::default();
        let mut go = |fuel: u64| {
            lp.fuel = fuel;
            let mut rng = SimRng::seed_from_u64(1);
            let mut maps = MapSet::new();
            run_lowered(
                &lp,
                &mut vec![0; 64],
                XdpContext::default(),
                &mut maps,
                &cm,
                0,
                0,
                &mut rng,
            )
        };
        let exact = go(2 + 2 * 1000);
        assert!(exact.trap.is_none(), "exactly-at-limit run must pass");
        assert_eq!(exact.cost.insns, 2 + 2 * 1000);
        let starved = go(2 + 2 * 1000 - 1);
        assert_eq!(starved.trap, Some(Trap::InsnLimit));
        assert_eq!(starved.action, XdpAction::Aborted);
    }

    #[test]
    fn unverified_program_cannot_lower() {
        // A proof from one program must not license another.
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("ok");
        b.mov_imm(Reg::R0, 2).exit();
        let small = b.build();
        let (_, proof) = verify_with_proof(&small, &maps).expect("verifies");
        let mut b2 = ProgramBuilder::new("other");
        b2.mov_imm(Reg::R0, 2).mov_imm(Reg::R1, 1).exit();
        assert_eq!(
            lower(&b2.build(), &proof).err(),
            Some(LowerError::ProofMismatch)
        );
    }

    #[test]
    fn dump_cites_proofs() {
        let (maps, _) = standard_maps();
        let p = loop_variant(LoopVariant::PayloadScan);
        let lp = lowered(&p, &maps);
        let d = lp.dump();
        assert!(d.contains("; lowered L-SCAN:"), "{d}");
        assert!(d.contains("elided: pkt off"), "{d}");
        assert!(d.contains("elided: stack fp-8"), "{d}");
        assert!(d.contains("fused"), "{d}");
    }
}
