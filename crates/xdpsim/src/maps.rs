//! BPF maps: the state shared between programs and userspace.
//!
//! Four of the kernel's map types are modelled — the ones the paper's
//! measurement programs touch: array, hash, per-CPU array, and the ring
//! buffer whose submit path turns out to dominate eBPF timing variance
//! in Fig. 4.

use std::collections::BTreeMap;

/// Handle to a map within a [`MapSet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MapFd(pub u32);

/// Map behaviours.
#[derive(Clone, Debug)]
pub enum MapKind {
    /// Fixed-size array of fixed-size values, keyed by u32 index.
    Array {
        /// Value size in bytes.
        value_size: usize,
        /// Number of slots.
        max_entries: usize,
    },
    /// Hash map with fixed-size keys and values.
    Hash {
        /// Key size in bytes.
        key_size: usize,
        /// Value size in bytes.
        value_size: usize,
        /// Capacity; inserts beyond it fail (E2BIG in the kernel).
        max_entries: usize,
    },
    /// Per-CPU array: one value slot per CPU per index.
    PerCpuArray {
        /// Value size in bytes.
        value_size: usize,
        /// Number of slots.
        max_entries: usize,
        /// Number of CPUs.
        cpus: usize,
    },
    /// Ring buffer of variable-size records, drained by userspace.
    RingBuf {
        /// Capacity in bytes (power of two in the kernel; we only
        /// require it to be positive).
        capacity: usize,
    },
}

/// A map instance.
#[derive(Clone, Debug)]
pub struct BpfMap {
    /// Behaviour and geometry.
    pub kind: MapKind,
    array: Vec<Vec<u8>>,
    hash: BTreeMap<Vec<u8>, Vec<u8>>,
    ring: RingState,
}

#[derive(Clone, Debug, Default)]
struct RingState {
    used: usize,
    records: Vec<Vec<u8>>,
    dropped: u64,
    reserved: Option<usize>, // pending reservation length
}

/// Result codes mirroring kernel errno conventions (negated).
pub const ENOENT: i64 = -2;
/// Out of space.
pub const E2BIG: i64 = -7;
/// Invalid argument.
pub const EINVAL: i64 = -22;

impl BpfMap {
    /// Create a map of the given kind.
    pub fn new(kind: MapKind) -> Self {
        let array = match &kind {
            MapKind::Array {
                value_size,
                max_entries,
            } => vec![vec![0u8; *value_size]; *max_entries],
            MapKind::PerCpuArray {
                value_size,
                max_entries,
                cpus,
            } => vec![vec![0u8; *value_size]; *max_entries * *cpus],
            _ => Vec::new(),
        };
        BpfMap {
            kind,
            array,
            hash: BTreeMap::new(),
            ring: RingState::default(),
        }
    }

    /// Array/per-CPU lookup; returns the value slice.
    pub fn array_lookup(&self, index: u32, cpu: usize) -> Option<&[u8]> {
        match &self.kind {
            MapKind::Array { max_entries, .. } => {
                if (index as usize) < *max_entries {
                    Some(&self.array[index as usize])
                } else {
                    None
                }
            }
            MapKind::PerCpuArray {
                max_entries, cpus, ..
            } => {
                if (index as usize) < *max_entries && cpu < *cpus {
                    Some(&self.array[index as usize * *cpus + cpu])
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Mutable array/per-CPU slot.
    pub fn array_lookup_mut(&mut self, index: u32, cpu: usize) -> Option<&mut Vec<u8>> {
        match &self.kind {
            MapKind::Array { max_entries, .. } => {
                if (index as usize) < *max_entries {
                    Some(&mut self.array[index as usize])
                } else {
                    None
                }
            }
            MapKind::PerCpuArray {
                max_entries, cpus, ..
            } => {
                let (m, c) = (*max_entries, *cpus);
                if (index as usize) < m && cpu < c {
                    Some(&mut self.array[index as usize * c + cpu])
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Hash lookup.
    pub fn hash_lookup(&self, key: &[u8]) -> Option<&[u8]> {
        match &self.kind {
            MapKind::Hash { key_size, .. } if key.len() == *key_size => {
                self.hash.get(key).map(|v| v.as_slice())
            }
            _ => None,
        }
    }

    /// Hash insert/update. Returns 0 or a negative errno.
    pub fn hash_update(&mut self, key: &[u8], value: &[u8]) -> i64 {
        match &self.kind {
            MapKind::Hash {
                key_size,
                value_size,
                max_entries,
            } => {
                if key.len() != *key_size || value.len() != *value_size {
                    return EINVAL;
                }
                if !self.hash.contains_key(key) && self.hash.len() >= *max_entries {
                    return E2BIG;
                }
                self.hash.insert(key.to_vec(), value.to_vec());
                0
            }
            _ => EINVAL,
        }
    }

    /// Mutable access to an existing hash value (used by the VM to make
    /// lookup pointers writable, as in the kernel).
    pub fn hash_value_mut(&mut self, key: &[u8]) -> Option<&mut [u8]> {
        self.hash.get_mut(key).map(|v| v.as_mut_slice())
    }

    /// Hash delete. Returns 0 or -ENOENT.
    pub fn hash_delete(&mut self, key: &[u8]) -> i64 {
        if self.hash.remove(key).is_some() {
            0
        } else {
            ENOENT
        }
    }

    /// Number of live hash entries.
    pub fn hash_len(&self) -> usize {
        self.hash.len()
    }

    /// Ring buffer: reserve `len` bytes. Returns false when full (the
    /// kernel returns NULL and the event is lost).
    pub fn ring_reserve(&mut self, len: usize) -> bool {
        let MapKind::RingBuf { capacity } = self.kind else {
            return false;
        };
        // Kernel charges a small header per record.
        let charged = len + 8;
        if self.ring.reserved.is_some() || self.ring.used + charged > capacity {
            self.ring.dropped += 1;
            return false;
        }
        self.ring.reserved = Some(len);
        self.ring.used += charged;
        true
    }

    /// Ring buffer: submit the pending reservation with its payload.
    pub fn ring_submit(&mut self, data: Vec<u8>) -> i64 {
        match self.ring.reserved.take() {
            Some(len) if data.len() == len => {
                self.ring.records.push(data);
                0
            }
            _ => EINVAL,
        }
    }

    /// Ring buffer: one-shot reserve+submit (`bpf_ringbuf_output`).
    pub fn ring_output(&mut self, data: &[u8]) -> i64 {
        if self.ring_reserve(data.len()) {
            self.ring_submit(data.to_vec())
        } else {
            E2BIG
        }
    }

    /// Userspace side: drain all submitted records, freeing space.
    pub fn ring_drain(&mut self) -> Vec<Vec<u8>> {
        self.ring.used = self.ring.reserved.map(|l| l + 8).unwrap_or(0);
        std::mem::take(&mut self.ring.records)
    }

    /// Records currently submitted and undrained.
    pub fn ring_len(&self) -> usize {
        self.ring.records.len()
    }

    /// Events lost to a full ring.
    pub fn ring_dropped(&self) -> u64 {
        self.ring.dropped
    }
}

/// All maps visible to one program/host.
#[derive(Clone, Debug, Default)]
pub struct MapSet {
    maps: Vec<BpfMap>,
}

impl MapSet {
    /// Empty set.
    pub fn new() -> Self {
        MapSet::default()
    }

    /// Create a map, returning its fd.
    pub fn create(&mut self, kind: MapKind) -> MapFd {
        let fd = MapFd(self.maps.len() as u32);
        self.maps.push(BpfMap::new(kind));
        fd
    }

    /// Borrow a map.
    pub fn get(&self, fd: MapFd) -> Option<&BpfMap> {
        self.maps.get(fd.0 as usize)
    }

    /// Borrow a map mutably.
    pub fn get_mut(&mut self, fd: MapFd) -> Option<&mut BpfMap> {
        self.maps.get_mut(fd.0 as usize)
    }

    /// Number of maps.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// True when no maps exist.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_lookup_bounds() {
        let m = BpfMap::new(MapKind::Array {
            value_size: 8,
            max_entries: 4,
        });
        assert!(m.array_lookup(3, 0).is_some());
        assert!(m.array_lookup(4, 0).is_none());
        assert_eq!(m.array_lookup(0, 0).unwrap().len(), 8);
    }

    #[test]
    fn per_cpu_slots_independent() {
        let mut m = BpfMap::new(MapKind::PerCpuArray {
            value_size: 4,
            max_entries: 2,
            cpus: 2,
        });
        m.array_lookup_mut(0, 0).unwrap()[0] = 0xAA;
        m.array_lookup_mut(0, 1).unwrap()[0] = 0xBB;
        assert_eq!(m.array_lookup(0, 0).unwrap()[0], 0xAA);
        assert_eq!(m.array_lookup(0, 1).unwrap()[0], 0xBB);
        assert!(m.array_lookup(0, 2).is_none());
    }

    #[test]
    fn hash_update_lookup_delete() {
        let mut m = BpfMap::new(MapKind::Hash {
            key_size: 4,
            value_size: 2,
            max_entries: 2,
        });
        assert_eq!(m.hash_update(&[1, 2, 3, 4], &[9, 9]), 0);
        assert_eq!(m.hash_lookup(&[1, 2, 3, 4]), Some(&[9u8, 9][..]));
        assert_eq!(m.hash_update(&[1, 2, 3], &[9, 9]), EINVAL);
        assert_eq!(m.hash_update(&[0, 0, 0, 1], &[1, 1]), 0);
        // Capacity 2 reached; a third distinct key fails.
        assert_eq!(m.hash_update(&[0, 0, 0, 2], &[1, 1]), E2BIG);
        // Updating an existing key still succeeds.
        assert_eq!(m.hash_update(&[1, 2, 3, 4], &[7, 7]), 0);
        assert_eq!(m.hash_delete(&[1, 2, 3, 4]), 0);
        assert_eq!(m.hash_delete(&[1, 2, 3, 4]), ENOENT);
    }

    #[test]
    fn ringbuf_reserve_submit_drain() {
        let mut m = BpfMap::new(MapKind::RingBuf { capacity: 64 });
        assert!(m.ring_reserve(8));
        assert_eq!(m.ring_submit(vec![1; 8]), 0);
        assert_eq!(m.ring_len(), 1);
        let drained = m.ring_drain();
        assert_eq!(drained, vec![vec![1; 8]]);
        assert_eq!(m.ring_len(), 0);
    }

    #[test]
    fn ringbuf_overflow_drops() {
        let mut m = BpfMap::new(MapKind::RingBuf { capacity: 32 });
        assert_eq!(m.ring_output(&[0; 8]), 0); // 16 charged
        assert_eq!(m.ring_output(&[0; 8]), 0); // 32 charged
        assert_eq!(m.ring_output(&[0; 8]), E2BIG);
        assert_eq!(m.ring_dropped(), 1);
        m.ring_drain();
        assert_eq!(m.ring_output(&[0; 8]), 0);
    }

    #[test]
    fn ringbuf_double_reserve_fails() {
        let mut m = BpfMap::new(MapKind::RingBuf { capacity: 1024 });
        assert!(m.ring_reserve(8));
        assert!(!m.ring_reserve(8), "one outstanding reservation max");
        assert_eq!(m.ring_submit(vec![0; 8]), 0);
        assert!(m.ring_reserve(8));
    }

    #[test]
    fn submit_wrong_len_einval() {
        let mut m = BpfMap::new(MapKind::RingBuf { capacity: 1024 });
        assert!(m.ring_reserve(8));
        assert_eq!(m.ring_submit(vec![0; 4]), EINVAL);
    }

    #[test]
    fn mapset_fds_stable() {
        let mut s = MapSet::new();
        let a = s.create(MapKind::Array {
            value_size: 8,
            max_entries: 1,
        });
        let b = s.create(MapKind::RingBuf { capacity: 64 });
        assert_ne!(a, b);
        assert!(s.get(a).is_some());
        assert!(s.get(b).is_some());
        assert!(s.get(MapFd(99)).is_none());
        assert_eq!(s.len(), 2);
    }
}
