//! Host system noise and clock models.
//!
//! §2.1 of the paper catalogues why commodity hosts cannot promise
//! microsecond jitter: scheduler and IRQ interference, processor/memory
//! /peripheral contention, and per-flow resource sharing that degrades
//! per-core behaviour as flow counts rise. This module turns those
//! findings into a parameterized stochastic model layered on top of the
//! deterministic instruction cost of [`crate::vm`].

use steelworks_netsim::rng::SimRng;
use steelworks_netsim::time::{NanoDur, Nanos};

/// Which kernel flavour the host runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelKind {
    /// Mainline Linux with the PREEMPT_RT patch: bounded but not hard
    /// real-time; rare multi-microsecond excursions remain.
    PreemptRt,
    /// Vanilla Linux: heavier tails, frequent excursions.
    Vanilla,
}

/// Stochastic host-noise profile.
///
/// Per processed packet the host adds:
///
/// 1. a log-normal base term (scheduler/cache baseline),
/// 2. with small probability, an IRQ/housekeeping spike,
/// 3. a contention term that grows with the number of concurrently
///    active real-time flows (per Cai et al.'s host-stack findings the
///    paper cites: mixing flows on shared cores/NICs/NUMA nodes costs
///    throughput and adds latency variance),
/// 4. a wakeup penalty for every ring-buffer submission (IPI + consumer
///    scheduling + cache pollution),
/// 5. a DMA-cacheline flush penalty for packet writes.
#[derive(Clone, Debug)]
pub struct HostProfile {
    /// Kernel flavour (affects defaults only; kept for reporting).
    pub kernel: KernelKind,
    /// μ of the log-normal base noise (ln ns).
    pub base_mu: f64,
    /// σ of the log-normal base noise.
    pub base_sigma: f64,
    /// Probability a housekeeping IRQ lands in the processing window.
    pub irq_prob: f64,
    /// Mean IRQ service cost in ns (exponential).
    pub irq_cost_ns: f64,
    /// Mean extra noise per additional concurrent flow (ns).
    pub contention_ns_per_flow: f64,
    /// σ of the per-flow contention log-normal.
    pub contention_sigma: f64,
    /// Mean ring-buffer wakeup penalty (ns, log-normal body).
    pub ringbuf_wakeup_mu: f64,
    /// σ of the ring-buffer wakeup penalty.
    pub ringbuf_wakeup_sigma: f64,
    /// Cost per dirtied packet cacheline write (ns).
    pub pkt_write_flush_ns: f64,
    /// Probability of a rare long excursion (Pareto tail).
    pub spike_prob: f64,
    /// Pareto scale of excursions (ns).
    pub spike_scale_ns: f64,
    /// Pareto shape of excursions (higher = lighter tail).
    pub spike_alpha: f64,
}

impl HostProfile {
    /// A tuned PREEMPT_RT host as used in the paper's testbed: tight
    /// base noise, rare bounded excursions.
    pub fn preempt_rt() -> Self {
        HostProfile {
            kernel: KernelKind::PreemptRt,
            base_mu: (120.0f64).ln(),
            base_sigma: 0.25,
            irq_prob: 0.002,
            irq_cost_ns: 1_800.0,
            contention_ns_per_flow: 26.0,
            contention_sigma: 0.5,
            ringbuf_wakeup_mu: (4_200.0f64).ln(),
            ringbuf_wakeup_sigma: 0.18,
            pkt_write_flush_ns: 30.0,
            spike_prob: 0.0005,
            spike_scale_ns: 2_000.0,
            spike_alpha: 2.5,
        }
    }

    /// A vanilla (non-RT) kernel: same structure, heavier everything.
    pub fn vanilla() -> Self {
        HostProfile {
            kernel: KernelKind::Vanilla,
            base_mu: (260.0f64).ln(),
            base_sigma: 0.45,
            irq_prob: 0.01,
            irq_cost_ns: 6_000.0,
            contention_ns_per_flow: 55.0,
            contention_sigma: 0.7,
            ringbuf_wakeup_mu: (5_200.0f64).ln(),
            ringbuf_wakeup_sigma: 0.35,
            pkt_write_flush_ns: 45.0,
            spike_prob: 0.004,
            spike_scale_ns: 12_000.0,
            spike_alpha: 1.8,
        }
    }

    /// Draw the noise added to one packet's processing.
    ///
    /// `active_flows` is the number of concurrently live real-time
    /// flows on this host; `ringbuf_events` and `pkt_writes` come from
    /// the VM's [`crate::vm::RunResult`].
    pub fn sample_noise(
        &self,
        rng: &mut SimRng,
        active_flows: u32,
        ringbuf_events: u32,
        pkt_writes: u32,
    ) -> NanoDur {
        let mut ns = rng.log_normal(self.base_mu, self.base_sigma);
        if rng.chance(self.irq_prob) {
            ns += rng.exponential(self.irq_cost_ns);
        }
        if active_flows > 1 {
            let extra_flows = (active_flows - 1) as f64;
            let mu = (self.contention_ns_per_flow * extra_flows).max(1.0).ln();
            ns += rng.log_normal(mu, self.contention_sigma);
        }
        for _ in 0..ringbuf_events {
            ns += rng.log_normal(self.ringbuf_wakeup_mu, self.ringbuf_wakeup_sigma);
        }
        ns += self.pkt_write_flush_ns * pkt_writes as f64;
        if rng.chance(self.spike_prob) {
            ns += rng.pareto(self.spike_scale_ns, self.spike_alpha);
        }
        NanoDur(ns.max(0.0).round() as u64)
    }
}

/// A host's local clock: offset + drift relative to simulated time.
///
/// Taps do not need this — that is their entire advantage (§3) — but
/// any measurement comparing timestamps from *two* hosts inherits the
/// combined offset error, which is how we reproduce the paper's
/// tap-vs-PTP argument.
#[derive(Clone, Copy, Debug)]
pub struct HostClock {
    /// Fixed offset from simulated time (may be negative).
    pub offset_ns: i64,
    /// Drift in parts per million.
    pub drift_ppm: f64,
}

impl HostClock {
    /// A perfect clock.
    pub fn perfect() -> Self {
        HostClock {
            offset_ns: 0,
            drift_ppm: 0.0,
        }
    }

    /// A clock disciplined by PTP: residual offset in the hundreds of
    /// nanoseconds (asymmetric path delays) plus small drift.
    pub fn ptp_synced(residual_offset_ns: i64) -> Self {
        HostClock {
            offset_ns: residual_offset_ns,
            drift_ppm: 0.02,
        }
    }

    /// Read this clock at simulated instant `now`.
    pub fn read(&self, now: Nanos) -> u64 {
        // steelcheck: allow(float-hygiene): drift model applies ppm scaling then rounds back to integer ns
        let drift = (now.as_nanos() as f64 * self.drift_ppm / 1e6).round() as i64;
        (now.as_nanos() as i64 + self.offset_ns + drift).max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rt_quieter_than_vanilla() {
        let rt = HostProfile::preempt_rt();
        let va = HostProfile::vanilla();
        let mut rng1 = SimRng::seed_from_u64(1);
        let mut rng2 = SimRng::seed_from_u64(1);
        let n = 20_000;
        let mean = |p: &HostProfile, rng: &mut SimRng| {
            (0..n)
                .map(|_| p.sample_noise(rng, 1, 0, 0).as_nanos())
                .sum::<u64>() as f64
                / n as f64
        };
        let m_rt = mean(&rt, &mut rng1);
        let m_va = mean(&va, &mut rng2);
        assert!(m_va > 1.5 * m_rt, "vanilla {m_va} vs rt {m_rt}");
    }

    #[test]
    fn flows_increase_noise() {
        let p = HostProfile::preempt_rt();
        let n = 20_000;
        let mean_for = |flows: u32| {
            let mut rng = SimRng::seed_from_u64(7);
            (0..n)
                .map(|_| p.sample_noise(&mut rng, flows, 0, 0).as_nanos())
                .sum::<u64>() as f64
                / n as f64
        };
        let one = mean_for(1);
        let many = mean_for(25);
        assert!(
            many > one + 300.0,
            "25 flows {many} should exceed 1 flow {one} by ~24*26ns"
        );
    }

    #[test]
    fn ringbuf_events_add_microseconds() {
        let p = HostProfile::preempt_rt();
        let n = 5_000;
        let mean_for = |events: u32| {
            let mut rng = SimRng::seed_from_u64(9);
            (0..n)
                .map(|_| p.sample_noise(&mut rng, 1, events, 0).as_nanos())
                .sum::<u64>() as f64
                / n as f64
        };
        let without = mean_for(0);
        let with = mean_for(1);
        assert!(
            with - without > 3_000.0,
            "ringbuf penalty too small: {} vs {}",
            with,
            without
        );
    }

    #[test]
    fn clock_offset_and_drift() {
        let c = HostClock {
            offset_ns: 500,
            drift_ppm: 1.0,
        };
        // At t = 1 s: +500 offset +1000 drift.
        assert_eq!(c.read(Nanos::from_secs(1)), 1_000_001_500);
        assert_eq!(HostClock::perfect().read(Nanos(123)), 123);
    }

    #[test]
    fn noise_nonnegative_and_deterministic() {
        let p = HostProfile::vanilla();
        let sample = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            (0..100)
                .map(|_| p.sample_noise(&mut rng, 3, 1, 2).as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(5), sample(5));
    }
}
