//! The instruction/helper timing model.
//!
//! Real eBPF gives no latency guarantees; the cost of a program is the
//! sum of very unequal parts — raw ALU work is sub-nanosecond while a
//! ring-buffer submit triggers cross-core wakeup machinery three orders
//! of magnitude more expensive. This module prices each operation; the
//! host model (see [`crate::host`]) layers stochastic system noise on
//! top. All values are calibration knobs with defaults anchored to a
//! ~3 GHz x86 server running XDP in native driver mode.

use crate::insn::{Helper, Insn};
use crate::prog::Program;
use steelworks_netsim::time::NanoDur;

/// Deterministic per-operation costs, in nanoseconds.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Register-to-register ALU / mov / jump.
    pub alu_ns: f64,
    /// Stack load/store.
    pub stack_mem_ns: f64,
    /// Packet data load/store (DMA-resident cacheline).
    pub pkt_mem_ns: f64,
    /// Map-value load/store through a lookup pointer.
    pub map_mem_ns: f64,
    /// One-time cold-access charge on the first packet byte touched.
    pub pkt_cold_miss_ns: f64,
    /// `bpf_ktime_get_ns` (reads the clocksource).
    pub ktime_ns: f64,
    /// Array map lookup.
    pub map_lookup_array_ns: f64,
    /// Hash map lookup.
    pub map_lookup_hash_ns: f64,
    /// Map update.
    pub map_update_ns: f64,
    /// Ring buffer reserve.
    pub ringbuf_reserve_ns: f64,
    /// Ring buffer submit (commit + consumer notification setup).
    pub ringbuf_submit_ns: f64,
    /// Ring buffer one-shot output (reserve + copy + submit).
    pub ringbuf_output_ns: f64,
    /// `bpf_xdp_adjust_head`.
    pub adjust_head_ns: f64,
    /// `bpf_get_smp_processor_id`.
    pub smp_id_ns: f64,
    /// `bpf_get_prandom_u32`.
    pub prandom_ns: f64,
    /// `bpf_csum_diff` fixed part.
    pub csum_base_ns: f64,
    /// `bpf_csum_diff` per byte.
    pub csum_per_byte_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu_ns: 0.35,
            stack_mem_ns: 0.7,
            pkt_mem_ns: 1.4,
            map_mem_ns: 1.8,
            pkt_cold_miss_ns: 18.0,
            ktime_ns: 22.0,
            map_lookup_array_ns: 7.0,
            map_lookup_hash_ns: 32.0,
            map_update_ns: 41.0,
            ringbuf_reserve_ns: 48.0,
            ringbuf_submit_ns: 140.0,
            ringbuf_output_ns: 175.0,
            adjust_head_ns: 9.0,
            smp_id_ns: 2.5,
            prandom_ns: 14.0,
            csum_base_ns: 12.0,
            csum_per_byte_ns: 0.4,
        }
    }
}

/// Which memory region an access touched (priced differently).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemClass {
    /// Program stack.
    Stack,
    /// Packet bytes.
    Packet,
    /// Map value / ring buffer record.
    MapValue,
    /// Context struct.
    Ctx,
}

impl CostModel {
    /// Cost of one non-memory, non-call instruction.
    pub fn insn_cost(&self, insn: &Insn) -> f64 {
        match insn {
            Insn::Load(..) | Insn::Store(..) | Insn::StoreImm(..) => 0.0, // priced via mem_cost
            Insn::Call(_) => 0.0,                                         // priced via helper_cost
            _ => self.alu_ns,
        }
    }

    /// Cost of one memory access.
    pub fn mem_cost(&self, class: MemClass) -> f64 {
        match class {
            MemClass::Stack => self.stack_mem_ns,
            MemClass::Packet => self.pkt_mem_ns,
            MemClass::MapValue => self.map_mem_ns,
            MemClass::Ctx => self.stack_mem_ns,
        }
    }

    /// Cost of one helper invocation. `arg_bytes` parameterizes
    /// byte-proportional helpers (csum, ringbuf copies).
    pub fn helper_cost(&self, helper: Helper, arg_bytes: usize, hash_map: bool) -> f64 {
        match helper {
            Helper::KtimeGetNs => self.ktime_ns,
            Helper::MapLookup => {
                if hash_map {
                    self.map_lookup_hash_ns
                } else {
                    self.map_lookup_array_ns
                }
            }
            Helper::MapUpdate => self.map_update_ns,
            Helper::RingbufReserve => self.ringbuf_reserve_ns,
            Helper::RingbufSubmit => self.ringbuf_submit_ns,
            Helper::RingbufOutput => self.ringbuf_output_ns + 0.25 * arg_bytes as f64,
            Helper::XdpAdjustHead => self.adjust_head_ns,
            Helper::GetSmpProcessorId => self.smp_id_ns,
            Helper::GetPrandomU32 => self.prandom_ns,
            Helper::CsumDiff => self.csum_base_ns + self.csum_per_byte_ns * arg_bytes as f64,
        }
    }
}

/// Per-program basic-block cost plan.
///
/// A block is a maximal straight-line run starting at a leader (entry,
/// jump target, or fall-through of a branch). Blocks whose instructions
/// are all uniformly `alu_ns`-priced ("pure" — no loads, stores, or
/// calls) can have their per-instruction charges fused into one batch
/// at block entry. Totals stay bit-identical by construction: the fused
/// path performs the exact same sequence of f64 additions the
/// per-instruction path would, because nothing interleaves inside a
/// pure block.
#[derive(Clone, Debug, Default)]
pub struct BlockPlan {
    /// `pure_len[pc]` is the block length when `pc` leads a pure block,
    /// else 0.
    pure_len: Vec<u32>,
    /// `leader[pc]` marks block leaders (entry, jump targets, and the
    /// instruction after any jump/exit). [`crate::lower`] partitions on
    /// exactly these so its fused-charging boundaries can never drift
    /// from the interpreter's.
    leader: Vec<bool>,
}

impl BlockPlan {
    /// Partition `prog` into basic blocks and mark the pure ones.
    pub fn new(prog: &Program) -> Self {
        let n = prog.insns.len();
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (i, insn) in prog.insns.iter().enumerate() {
            match *insn {
                Insn::Ja(off) | Insn::JmpImm(_, _, _, off) | Insn::JmpReg(_, _, _, off) => {
                    let t = (i as i64 + 1 + off as i64) as usize;
                    if t < n {
                        leader[t] = true;
                    }
                    if i + 1 < n {
                        leader[i + 1] = true;
                    }
                }
                Insn::Exit => {
                    if i + 1 < n {
                        leader[i + 1] = true;
                    }
                }
                _ => {}
            }
        }
        let mut pure_len = vec![0u32; n];
        let mut i = 0;
        while i < n {
            let mut end = i;
            loop {
                let terminal = matches!(
                    prog.insns[end],
                    Insn::Ja(_) | Insn::JmpImm(..) | Insn::JmpReg(..) | Insn::Exit
                );
                if terminal || end + 1 >= n || leader[end + 1] {
                    break;
                }
                end += 1;
            }
            let pure = prog.insns[i..=end].iter().all(|ins| {
                !matches!(
                    ins,
                    Insn::Load(..) | Insn::Store(..) | Insn::StoreImm(..) | Insn::Call(_)
                )
            });
            if pure {
                pure_len[i] = (end - i + 1) as u32;
            }
            i = end + 1;
        }
        BlockPlan { pure_len, leader }
    }

    /// Length of the pure block led by `pc`, or 0 when `pc` does not
    /// lead one (interior instruction, or block touches memory/helpers).
    pub fn fused_len(&self, pc: usize) -> u32 {
        self.pure_len.get(pc).copied().unwrap_or(0)
    }

    /// Whether `pc` leads a basic block (pure or not).
    pub fn is_leader(&self, pc: usize) -> bool {
        self.leader.get(pc).copied().unwrap_or(false)
    }
}

/// Accumulated execution cost of one program run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExecCost {
    /// Instructions retired.
    pub insns: u64,
    /// Deterministic execution time in ns (cost model only, no noise).
    pub ns: f64,
}

impl ExecCost {
    /// Add a cost component.
    pub fn charge(&mut self, ns: f64) {
        self.ns += ns;
    }

    /// Count one retired instruction.
    pub fn retire(&mut self) {
        self.insns += 1;
    }

    /// The accumulated time as a duration (rounded).
    pub fn as_dur(&self) -> NanoDur {
        NanoDur(self.ns.round().max(0.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Reg;

    #[test]
    fn ringbuf_dominates_alu() {
        let c = CostModel::default();
        let alu = c.insn_cost(&Insn::MovImm(Reg::R0, 1));
        let rb = c.helper_cost(Helper::RingbufSubmit, 0, false);
        assert!(rb > 100.0 * alu, "ringbuf {rb} vs alu {alu}");
    }

    #[test]
    fn hash_lookup_costs_more_than_array() {
        let c = CostModel::default();
        assert!(
            c.helper_cost(Helper::MapLookup, 0, true) > c.helper_cost(Helper::MapLookup, 0, false)
        );
    }

    #[test]
    fn csum_scales_with_bytes() {
        let c = CostModel::default();
        let small = c.helper_cost(Helper::CsumDiff, 4, false);
        let big = c.helper_cost(Helper::CsumDiff, 1400, false);
        assert!(big > small + 500.0);
    }

    #[test]
    fn block_plan_marks_pure_blocks() {
        use crate::insn::{AluOp, CmpOp, Size};
        use crate::prog::ProgramBuilder;
        let mut b = ProgramBuilder::new("bp");
        let out = b.label();
        b.mov_imm(Reg::R0, 2)
            .alu_imm(AluOp::Add, Reg::R0, 1)
            .jmp_imm(CmpOp::Eq, Reg::R0, 3, out)
            .load(Size::DW, Reg::R2, Reg::R1, 0)
            .alu_imm(AluOp::Add, Reg::R0, 0)
            .bind(out)
            .exit();
        let plan = BlockPlan::new(&b.build());
        // [0..=2] is all-ALU: fused with length 3.
        assert_eq!(plan.fused_len(0), 3);
        // Interior instructions never lead a block.
        assert_eq!(plan.fused_len(1), 0);
        // [3..=4] contains a load: not fused.
        assert_eq!(plan.fused_len(3), 0);
        // The jump-target exit forms its own single-insn pure block.
        assert_eq!(plan.fused_len(5), 1);
        assert_eq!(plan.fused_len(99), 0);
    }

    #[test]
    fn exec_cost_rounds_to_duration() {
        let mut e = ExecCost::default();
        e.charge(10.4);
        e.charge(0.3);
        assert_eq!(e.as_dur(), NanoDur(11));
    }
}
