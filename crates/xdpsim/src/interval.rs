//! The interval abstract domain backing the verifier.
//!
//! A value is tracked as an unsigned 64-bit interval `[lo, hi]`
//! (`lo <= hi` always; the empty interval is represented by callers as
//! "path unreachable" rather than as a value). The domain is the
//! classic one from abstract interpretation, specialised to what the
//! verifier needs:
//!
//! - **join** is the interval hull (used at control-flow merge points),
//! - **widen** jumps a bound that is still growing after `K` joins at a
//!   loop head straight to `0` / `u64::MAX`, guaranteeing the fixpoint
//!   terminates (the lattice has infinite ascending chains otherwise),
//! - **transfer** functions mirror the VM's wrapping `u64` ALU, going
//!   to ⊤ whenever a bound cannot be tracked exactly,
//! - **refine** narrows both operands of a conditional jump on each
//!   outgoing edge, which is how a loop guard like `if i >= k goto out`
//!   re-bounds the counter inside the body even after widening.
//!
//! Negative constants are representable (two's complement: `-4` is the
//! exact point interval `[2^64-4, 2^64-4]`); only the *unsigned* order
//! is tracked, so the signed compares (`SGt`/`SLt`) refine only when
//! both operands provably fit in `[0, i64::MAX]`, where the two orders
//! agree.

use crate::insn::CmpOp;
use std::fmt;

/// An unsigned 64-bit interval `[lo, hi]`, `lo <= hi`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u64,
    /// Largest possible value.
    pub hi: u64,
}

impl Interval {
    /// The full range (⊤): nothing is known.
    pub const TOP: Interval = Interval { lo: 0, hi: u64::MAX };

    /// The exact (point) interval `[v, v]`.
    pub const fn exact(v: u64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// A signed immediate as its two's-complement point interval.
    pub const fn of_imm(imm: i64) -> Interval {
        Interval::exact(imm as u64)
    }

    /// `[lo, hi]`, clamping a reversed pair to ⊤ (caller bug guard).
    pub fn new(lo: u64, hi: u64) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval::TOP
        }
    }

    /// The single value, if this is a point interval.
    pub fn as_const(&self) -> Option<u64> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Is this the full range?
    pub fn is_top(&self) -> bool {
        self.lo == 0 && self.hi == u64::MAX
    }

    /// Does the interval contain `v`?
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Is every value of `self` also in `other`?
    pub fn subset_of(&self, other: &Interval) -> bool {
        other.lo <= self.lo && self.hi <= other.hi
    }

    /// Least upper bound: the interval hull.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Classic interval widening: `joined` must be the join of the old
    /// state (`self`) with an incoming one; any bound that moved is
    /// sent straight to its extreme so the chain stabilises.
    pub fn widen(&self, joined: &Interval) -> Interval {
        Interval {
            lo: if joined.lo < self.lo { 0 } else { self.lo },
            hi: if joined.hi > self.hi { u64::MAX } else { self.hi },
        }
    }

    /// Greatest lower bound, or `None` when the intersection is empty
    /// (the path assuming both is unreachable).
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// `self + other`; ⊤ on possible wrap-around.
    pub fn add(&self, other: &Interval) -> Interval {
        match (self.lo.checked_add(other.lo), self.hi.checked_add(other.hi)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }

    /// `self - other`; ⊤ on possible wrap-around (underflow).
    pub fn sub(&self, other: &Interval) -> Interval {
        if self.lo >= other.hi {
            Interval {
                lo: self.lo - other.hi,
                hi: self.hi - other.lo,
            }
        } else {
            Interval::TOP
        }
    }

    /// `self * other`; ⊤ on possible wrap-around.
    pub fn mul(&self, other: &Interval) -> Interval {
        match (self.lo.checked_mul(other.lo), self.hi.checked_mul(other.hi)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }

    /// Unsigned division; the caller must have proven `other.lo >= 1`.
    pub fn udiv(&self, other: &Interval) -> Interval {
        debug_assert!(other.lo >= 1);
        Interval {
            lo: self.lo / other.hi,
            hi: self.hi / other.lo,
        }
    }

    /// Unsigned remainder; the caller must have proven `other.lo >= 1`.
    pub fn urem(&self, other: &Interval) -> Interval {
        debug_assert!(other.lo >= 1);
        if self.hi < other.lo {
            // The whole dividend range is below every divisor.
            *self
        } else {
            Interval { lo: 0, hi: other.hi - 1 }
        }
    }

    /// Bitwise AND. `x & y <= min(x, y)` for unsigned values.
    pub fn and(&self, other: &Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_const(), other.as_const()) {
            return Interval::exact(a & b);
        }
        Interval { lo: 0, hi: self.hi.min(other.hi) }
    }

    /// Bitwise OR. Bounded by the smallest all-ones mask covering both.
    pub fn or(&self, other: &Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_const(), other.as_const()) {
            return Interval::exact(a | b);
        }
        Interval {
            lo: self.lo.max(other.lo),
            hi: ones_mask(self.hi | other.hi),
        }
    }

    /// Bitwise XOR. Bounded by the smallest all-ones mask covering both.
    pub fn xor(&self, other: &Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_const(), other.as_const()) {
            return Interval::exact(a ^ b);
        }
        Interval { lo: 0, hi: ones_mask(self.hi | other.hi) }
    }

    /// Left shift by `other & 63` (the VM masks shift amounts).
    pub fn lsh(&self, other: &Interval) -> Interval {
        let Some(s) = other.as_const() else { return Interval::TOP };
        let s = s & 63;
        if self.hi <= u64::MAX >> s {
            Interval { lo: self.lo << s, hi: self.hi << s }
        } else {
            Interval::TOP
        }
    }

    /// Logical right shift by `other & 63`.
    pub fn rsh(&self, other: &Interval) -> Interval {
        match other.as_const() {
            Some(s) => {
                let s = s & 63;
                Interval { lo: self.lo >> s, hi: self.hi >> s }
            }
            // Shifting right never grows an unsigned value.
            None => Interval { lo: 0, hi: self.hi },
        }
    }

    /// Arithmetic right shift: exact only for point intervals (the
    /// sign bit makes the unsigned order useless otherwise).
    pub fn arsh(&self, other: &Interval) -> Interval {
        match (self.as_const(), other.as_const()) {
            (Some(v), Some(s)) => Interval::exact(((v as i64) >> (s & 63)) as u64),
            _ => Interval::TOP,
        }
    }

    /// Two's-complement negation: exact only for point intervals.
    pub fn neg(&self) -> Interval {
        match self.as_const() {
            Some(v) => Interval::exact(v.wrapping_neg()),
            None => Interval::TOP,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_top() {
            write!(f, "[0,MAX]")
        } else if let Some(v) = self.as_const() {
            write!(f, "[{v}]")
        } else if self.hi == u64::MAX {
            write!(f, "[{},MAX]", self.lo)
        } else {
            write!(f, "[{},{}]", self.lo, self.hi)
        }
    }
}

/// Smallest `2^k - 1` mask with `mask >= v`.
fn ones_mask(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        u64::MAX >> v.leading_zeros()
    }
}

/// Refine `(a, b)` under the assumption that `a <op> b` evaluated to
/// `truth`. Returns `None` when the assumption is unsatisfiable (the
/// edge is dead), otherwise the narrowed pair. Signed compares refine
/// only when both operands fit in `[0, i64::MAX]`, where the signed
/// and unsigned orders coincide; otherwise they pass through unchanged.
pub fn refine(op: CmpOp, truth: bool, a: Interval, b: Interval) -> Option<(Interval, Interval)> {
    // Reduce to an unsigned relation, or bail for unrefinable cases.
    let signed_ok = a.hi <= i64::MAX as u64 && b.hi <= i64::MAX as u64;
    let rel = match (op, truth) {
        (CmpOp::Eq, true) | (CmpOp::Ne, false) => Rel::Eq,
        (CmpOp::Eq, false) | (CmpOp::Ne, true) => Rel::Ne,
        (CmpOp::Lt, true) | (CmpOp::Ge, false) => Rel::Lt,
        (CmpOp::Le, true) | (CmpOp::Gt, false) => Rel::Le,
        (CmpOp::Gt, true) | (CmpOp::Le, false) => Rel::Gt,
        (CmpOp::Ge, true) | (CmpOp::Lt, false) => Rel::Ge,
        (CmpOp::SGt, true) if signed_ok => Rel::Gt,
        (CmpOp::SGt, false) if signed_ok => Rel::Le,
        (CmpOp::SLt, true) if signed_ok => Rel::Lt,
        (CmpOp::SLt, false) if signed_ok => Rel::Ge,
        (CmpOp::SGt | CmpOp::SLt, _) => return Some((a, b)),
    };
    match rel {
        Rel::Eq => {
            let i = a.intersect(&b)?;
            Some((i, i))
        }
        Rel::Ne => {
            // Only endpoint exclusion against a point operand is exact.
            let mut a = a;
            let mut b = b;
            if let Some(k) = b.as_const() {
                if a.as_const() == Some(k) {
                    return None;
                }
                if a.lo == k {
                    a.lo += 1;
                } else if a.hi == k {
                    a.hi -= 1;
                }
            }
            if let Some(k) = a.as_const() {
                if b.as_const() == Some(k) {
                    return None;
                }
                if b.lo == k {
                    b.lo += 1;
                } else if b.hi == k {
                    b.hi -= 1;
                }
            }
            Some((a, b))
        }
        Rel::Lt => {
            // a < b  =>  a <= b.hi - 1,  b >= a.lo + 1.
            if b.hi == 0 || a.lo == u64::MAX {
                return None;
            }
            let na = a.intersect(&Interval { lo: 0, hi: b.hi - 1 })?;
            let nb = b.intersect(&Interval { lo: na.lo + 1, hi: u64::MAX })?;
            Some((na, nb))
        }
        Rel::Le => {
            let na = a.intersect(&Interval { lo: 0, hi: b.hi })?;
            let nb = b.intersect(&Interval { lo: na.lo, hi: u64::MAX })?;
            Some((na, nb))
        }
        Rel::Gt => {
            let (nb, na) = refine(CmpOp::Lt, true, b, a)?;
            Some((na, nb))
        }
        Rel::Ge => {
            let (nb, na) = refine(CmpOp::Le, true, b, a)?;
            Some((na, nb))
        }
    }
}

/// The reduced unsigned relation a comparison refines through.
enum Rel {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[cfg(test)]
mod tests {
    use super::*;
    use steelworks_netsim::rng::SimRng;

    fn rand_iv(rng: &mut SimRng) -> Interval {
        // Mix small and large magnitudes so edge cases get sampled.
        let scale = [0xFFu64, 0xFFFF, u64::MAX][rng.range(0, 3) as usize];
        let a = rng.next_u64() & scale;
        let b = rng.next_u64() & scale;
        Interval::new(a.min(b), a.max(b))
    }

    /// Lattice laws, checked over a seeded sample: join is commutative
    /// and associative, both arguments are below the join
    /// (monotonicity of the hull), and ⊤ absorbs.
    #[test]
    fn join_lattice_laws_hold() {
        let mut rng = SimRng::seed_from_u64(0x1A77);
        for _ in 0..500 {
            let (a, b, c) = (rand_iv(&mut rng), rand_iv(&mut rng), rand_iv(&mut rng));
            assert_eq!(a.join(&b), b.join(&a), "join commutes");
            assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)), "join associates");
            assert!(a.subset_of(&a.join(&b)), "a <= a v b");
            assert!(b.subset_of(&a.join(&b)), "b <= a v b");
            assert_eq!(a.join(&Interval::TOP), Interval::TOP, "top absorbs");
            assert_eq!(a.join(&a), a, "join is idempotent");
        }
    }

    /// Widening stabilises: iterating `x = widen(x, join(x, r_i))`
    /// against any sequence of inputs changes `x` at most twice (once
    /// per bound), so every chain reaches a fixpoint.
    #[test]
    fn widening_stabilizes() {
        let mut rng = SimRng::seed_from_u64(0x51DE);
        for _ in 0..200 {
            let mut x = rand_iv(&mut rng);
            let mut changes = 0;
            for _ in 0..64 {
                let next = x.widen(&x.join(&rand_iv(&mut rng)));
                assert!(x.subset_of(&next), "widening only grows");
                if next != x {
                    changes += 1;
                    x = next;
                }
            }
            assert!(changes <= 2, "widening changed {changes} times");
        }
    }

    /// Transfer functions are sound: any concrete pair drawn from the
    /// operand intervals lands inside the abstract result.
    #[test]
    fn transfer_soundness_sampled() {
        let mut rng = SimRng::seed_from_u64(0xAB5);
        for _ in 0..400 {
            let a = rand_iv(&mut rng);
            let b = rand_iv(&mut rng);
            let x = a.lo + rng.next_u64() % (a.hi - a.lo).wrapping_add(1).max(1);
            let y = b.lo + rng.next_u64() % (b.hi - b.lo).wrapping_add(1).max(1);
            assert!(a.add(&b).contains(x.wrapping_add(y)));
            assert!(a.sub(&b).contains(x.wrapping_sub(y)));
            assert!(a.mul(&b).contains(x.wrapping_mul(y)));
            assert!(a.and(&b).contains(x & y));
            assert!(a.or(&b).contains(x | y));
            assert!(a.xor(&b).contains(x ^ y));
            assert!(a.rsh(&b).contains(x >> (y & 63)));
            if b.lo >= 1 {
                assert!(a.udiv(&b).contains(x / y));
                assert!(a.urem(&b).contains(x % y));
            }
        }
    }

    /// Branch refinement is sound: concrete pairs satisfying the
    /// assumed relation stay inside the refined intervals, and a
    /// `None` result really means no pair satisfies it.
    #[test]
    fn refine_soundness_sampled() {
        let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        let mut rng = SimRng::seed_from_u64(0x5EED_0F1E);
        for _ in 0..400 {
            let a = rand_iv(&mut rng);
            let b = rand_iv(&mut rng);
            let op = ops[rng.range(0, ops.len() as u64) as usize];
            let truth = rng.range(0, 2) == 0;
            let x = a.lo + rng.next_u64() % (a.hi - a.lo).wrapping_add(1).max(1);
            let y = b.lo + rng.next_u64() % (b.hi - b.lo).wrapping_add(1).max(1);
            let holds = match (op, truth) {
                (CmpOp::Eq, t) => (x == y) == t,
                (CmpOp::Ne, t) => (x != y) == t,
                (CmpOp::Lt, t) => (x < y) == t,
                (CmpOp::Le, t) => (x <= y) == t,
                (CmpOp::Gt, t) => (x > y) == t,
                (CmpOp::Ge, t) => (x >= y) == t,
                _ => unreachable!(),
            };
            match refine(op, truth, a, b) {
                Some((na, nb)) => {
                    assert!(na.subset_of(&a) && nb.subset_of(&b), "refine only narrows");
                    if holds {
                        assert!(na.contains(x), "{op:?}/{truth}: {x} left {na}");
                        assert!(nb.contains(y), "{op:?}/{truth}: {y} left {nb}");
                    }
                }
                None => assert!(!holds, "{op:?}/{truth} satisfiable by ({x},{y})"),
            }
        }
    }

    /// Signed compares refine only in the shared-positive range.
    #[test]
    fn signed_refine_is_guarded() {
        let small = Interval::new(0, 100);
        let big = Interval::new(0, u64::MAX);
        // In-range: behaves like the unsigned compare.
        let (a, _) = refine(CmpOp::SLt, true, small, Interval::exact(10)).unwrap();
        assert_eq!(a, Interval::new(0, 9));
        // Out of range: passes through untouched.
        let (a, b) = refine(CmpOp::SLt, true, big, Interval::exact(10)).unwrap();
        assert_eq!((a, b), (big, Interval::exact(10)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Interval::TOP.to_string(), "[0,MAX]");
        assert_eq!(Interval::exact(7).to_string(), "[7]");
        assert_eq!(Interval::new(2, 5).to_string(), "[2,5]");
        assert_eq!(Interval::new(3, u64::MAX).to_string(), "[3,MAX]");
    }
}
