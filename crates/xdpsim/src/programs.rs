//! The six Traffic Reflection program variants of §3 / Fig. 4.
//!
//! Every variant builds on the Base reflector (bounds-check, swap MACs,
//! `XDP_TX`), adding a small amount of observability code:
//!
//! | Variant  | Added code                                           |
//! |----------|------------------------------------------------------|
//! | `Base`   | nothing                                              |
//! | `TS`     | one `ktime_get_ns`, stored to the stack              |
//! | `TS-TS`  | two timestamps                                       |
//! | `TS-RB`  | one timestamp submitted to a ring buffer             |
//! | `TS-OW`  | one timestamp overwritten into the packet payload    |
//! | `TS-D-RB`| difference of two timestamps into the ring buffer    |
//!
//! The paper's finding — that these seemingly trivial additions shift
//! the delay distribution measurably — reproduces here because the
//! helpers have very different prices (see [`crate::cost`]) and the
//! ring-buffer variants additionally wake a userspace consumer (see
//! [`crate::host`]).

use crate::insn::{AluOp, CmpOp, Helper, Reg, Size, XdpAction};
use crate::maps::{MapFd, MapKind, MapSet};
use crate::prog::{Program, ProgramBuilder};
use crate::verifier::ctx_layout;

/// The six measurement program variants evaluated in Fig. 4.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReflectVariant {
    /// Reflect only.
    Base,
    /// One timestamp to stack.
    Ts,
    /// Two timestamps to stack.
    TsTs,
    /// Timestamp into ring buffer (reserve + submit).
    TsRb,
    /// Timestamp overwritten into the packet payload.
    TsOw,
    /// Difference of two timestamps into ring buffer (output).
    TsDRb,
}

impl ReflectVariant {
    /// Paper name of the variant.
    pub fn name(self) -> &'static str {
        match self {
            ReflectVariant::Base => "Base",
            ReflectVariant::Ts => "TS",
            ReflectVariant::TsTs => "TS-TS",
            ReflectVariant::TsRb => "TS-RB",
            ReflectVariant::TsOw => "TS-OW",
            ReflectVariant::TsDRb => "TS-D-RB",
        }
    }

    /// All variants in the paper's order.
    pub const ALL: [ReflectVariant; 6] = [
        ReflectVariant::Base,
        ReflectVariant::Ts,
        ReflectVariant::TsTs,
        ReflectVariant::TsRb,
        ReflectVariant::TsOw,
        ReflectVariant::TsDRb,
    ];
}

/// The map set the variants expect: one ring buffer at fd 0.
pub fn standard_maps() -> (MapSet, MapFd) {
    let mut maps = MapSet::new();
    let rb = maps.create(MapKind::RingBuf { capacity: 1 << 20 });
    (maps, rb)
}

/// Emit the shared prologue: load data/data_end, bounds-check
/// `ETH_HLEN + extra` bytes (branching to `fail`), leaving:
/// R6 = packet data, R7 = data_end.
fn prologue(b: &mut ProgramBuilder, extra: i64, fail: crate::prog::Label) {
    b.load(Size::DW, Reg::R6, Reg::R1, ctx_layout::DATA)
        .load(Size::DW, Reg::R7, Reg::R1, ctx_layout::DATA_END)
        .mov(Reg::R2, Reg::R6)
        .add_imm(Reg::R2, 14 + extra)
        .jmp_reg(CmpOp::Gt, Reg::R2, Reg::R7, fail);
}

/// Emit the MAC swap over R6 (12 verified bytes), byte-wise.
fn mac_swap(b: &mut ProgramBuilder) {
    for i in 0..6i16 {
        b.load(Size::B, Reg::R3, Reg::R6, i)
            .load(Size::B, Reg::R4, Reg::R6, i + 6)
            .store(Size::B, Reg::R6, i, Reg::R4)
            .store(Size::B, Reg::R6, i + 6, Reg::R3);
    }
}

/// Emit the epilogue: `return XDP_TX`, plus the shared fail path
/// (`return XDP_DROP`).
fn epilogue(b: &mut ProgramBuilder, fail: crate::prog::Label) {
    b.mov_imm(Reg::R0, XdpAction::Tx.code())
        .exit()
        .bind(fail)
        .mov_imm(Reg::R0, XdpAction::Drop.code())
        .exit();
}

/// Build one reflection variant. `rb` is the ring buffer fd from
/// [`standard_maps`] (unused by non-RB variants but kept uniform).
pub fn reflect_variant(variant: ReflectVariant, rb: MapFd) -> Program {
    let mut b = ProgramBuilder::new(variant.name());
    let fail = b.label();
    match variant {
        ReflectVariant::Base => {
            prologue(&mut b, 0, fail);
            mac_swap(&mut b);
            epilogue(&mut b, fail);
        }
        ReflectVariant::Ts => {
            prologue(&mut b, 0, fail);
            b.call(Helper::KtimeGetNs)
                .store(Size::DW, Reg::R10, -8, Reg::R0);
            mac_swap(&mut b);
            epilogue(&mut b, fail);
        }
        ReflectVariant::TsTs => {
            prologue(&mut b, 0, fail);
            b.call(Helper::KtimeGetNs)
                .store(Size::DW, Reg::R10, -8, Reg::R0);
            mac_swap(&mut b);
            b.call(Helper::KtimeGetNs)
                .store(Size::DW, Reg::R10, -16, Reg::R0);
            epilogue(&mut b, fail);
        }
        ReflectVariant::TsRb => {
            prologue(&mut b, 0, fail);
            b.call(Helper::KtimeGetNs).mov(Reg::R8, Reg::R0);
            mac_swap(&mut b);
            // reserve(8) -> write ts -> submit; on full ring, skip.
            let full = b.label();
            b.mov_imm(Reg::R1, rb.0 as i64)
                .mov_imm(Reg::R2, 8)
                .call(Helper::RingbufReserve)
                .jmp_imm(CmpOp::Eq, Reg::R0, 0, full)
                .store(Size::DW, Reg::R0, 0, Reg::R8)
                .mov(Reg::R1, Reg::R0)
                .call(Helper::RingbufSubmit)
                .bind(full);
            epilogue(&mut b, fail);
        }
        ReflectVariant::TsOw => {
            // Needs 8 payload bytes after the Ethernet header.
            prologue(&mut b, 8, fail);
            b.call(Helper::KtimeGetNs)
                .store(Size::DW, Reg::R6, 14, Reg::R0);
            mac_swap(&mut b);
            epilogue(&mut b, fail);
        }
        ReflectVariant::TsDRb => {
            prologue(&mut b, 0, fail);
            b.call(Helper::KtimeGetNs).mov(Reg::R8, Reg::R0);
            mac_swap(&mut b);
            b.call(Helper::KtimeGetNs)
                .alu(AluOp::Sub, Reg::R0, Reg::R8)
                .store(Size::DW, Reg::R10, -8, Reg::R0)
                .mov_imm(Reg::R1, rb.0 as i64)
                .mov(Reg::R2, Reg::R10)
                .add_imm(Reg::R2, -8)
                .mov_imm(Reg::R3, 8)
                .call(Helper::RingbufOutput);
            epilogue(&mut b, fail);
        }
    }
    b.build()
}

/// The bounded-loop measurement variants the interval verifier admits:
/// reflection programs whose added work is a verified counter loop over
/// the payload, exercising exactly the program class straight-line XDP
/// rules out (in-network scanning/checksumming of industrial frames).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopVariant {
    /// Byte-wise scan of 32 payload bytes (while-form loop).
    PayloadScan,
    /// 16-bit ones-complement checksum over 40 payload bytes
    /// (do-while-form loop, stride 2).
    Csum16,
    /// Bounded walk over up to 8 TLV records in 48 payload bytes
    /// (while-form loop with a data-dependent cursor).
    TlvWalk,
}

impl LoopVariant {
    /// Display name of the variant (figure labels).
    pub fn name(self) -> &'static str {
        match self {
            LoopVariant::PayloadScan => "L-SCAN",
            LoopVariant::Csum16 => "L-CSUM",
            LoopVariant::TlvWalk => "L-TLV",
        }
    }

    /// All loop variants in corpus order.
    pub const ALL: [LoopVariant; 3] = [
        LoopVariant::PayloadScan,
        LoopVariant::Csum16,
        LoopVariant::TlvWalk,
    ];

    /// Bytes past the Ethernet header the program bounds-checks before
    /// entering its loop. All windows fit the default 50 B RT payload,
    /// so every Fig. 4 frame takes the loop path.
    pub fn window(self) -> usize {
        match self {
            LoopVariant::PayloadScan => 32,
            LoopVariant::Csum16 => 40,
            LoopVariant::TlvWalk => 48,
        }
    }
}

/// Build one bounded-loop reflection program: bounds-check the window,
/// run the loop work, swap MACs, `XDP_TX` (fail path: `XDP_DROP`).
pub fn loop_variant(v: LoopVariant) -> Program {
    let mut b = ProgramBuilder::new(v.name());
    let fail = b.label();
    prologue(&mut b, v.window() as i64, fail);
    match v {
        LoopVariant::PayloadScan => {
            // while (r8 < 32) { r9 += payload[r8]; r8 += 1 }
            let done = b.label();
            b.mov_imm(Reg::R8, 0).mov_imm(Reg::R9, 0);
            let head = b.here();
            b.jmp_imm(CmpOp::Ge, Reg::R8, 32, done)
                .mov(Reg::R2, Reg::R6)
                .alu(AluOp::Add, Reg::R2, Reg::R8)
                .load(Size::B, Reg::R3, Reg::R2, 14)
                .alu(AluOp::Add, Reg::R9, Reg::R3)
                .alu_imm(AluOp::Add, Reg::R8, 1)
                .ja(head)
                .bind(done)
                .store(Size::DW, Reg::R10, -8, Reg::R9);
        }
        LoopVariant::Csum16 => {
            // do { sum += be16(payload[r8]); r8 += 2 } while (r8 < 40),
            // then fold twice and complement.
            let fold = b.label();
            b.mov_imm(Reg::R8, 0).mov_imm(Reg::R9, 0);
            let head = b.here();
            // Clamp at the head: concretely dead (r8 peaks at 38), but
            // it is what re-bounds the interval after the join at the
            // loop head, keeping the loads below the proven 54 bytes.
            b.jmp_imm(CmpOp::Gt, Reg::R8, 38, fold)
                .mov(Reg::R2, Reg::R6)
                .alu(AluOp::Add, Reg::R2, Reg::R8)
                .load(Size::B, Reg::R3, Reg::R2, 14)
                .alu_imm(AluOp::Lsh, Reg::R3, 8)
                .load(Size::B, Reg::R4, Reg::R2, 15)
                .alu(AluOp::Or, Reg::R3, Reg::R4)
                .alu(AluOp::Add, Reg::R9, Reg::R3)
                .alu_imm(AluOp::Add, Reg::R8, 2)
                .jmp_imm(CmpOp::Lt, Reg::R8, 40, head)
                .bind(fold);
            for _ in 0..2 {
                b.mov(Reg::R2, Reg::R9)
                    .alu_imm(AluOp::Rsh, Reg::R2, 16)
                    .alu_imm(AluOp::And, Reg::R9, 0xffff)
                    .alu(AluOp::Add, Reg::R9, Reg::R2);
            }
            b.alu_imm(AluOp::Xor, Reg::R9, 0xffff)
                .alu_imm(AluOp::And, Reg::R9, 0xffff)
                .store(Size::DW, Reg::R10, -8, Reg::R9);
        }
        LoopVariant::TlvWalk => {
            // Up to 8 records of (type, len, value[len]): r8 is the
            // data-dependent cursor, r9 the verified trip counter.
            let done = b.label();
            b.mov_imm(Reg::R8, 0)
                .mov_imm(Reg::R9, 0)
                .mov_imm(Reg::R5, 0);
            let head = b.here();
            b.jmp_imm(CmpOp::Ge, Reg::R9, 8, done)
                // Cursor clamp: keeps type/len loads inside the proven
                // 62-byte window whatever the packet claims.
                .jmp_imm(CmpOp::Gt, Reg::R8, 44, done)
                .mov(Reg::R2, Reg::R6)
                .alu(AluOp::Add, Reg::R2, Reg::R8)
                .load(Size::B, Reg::R3, Reg::R2, 14)
                .load(Size::B, Reg::R4, Reg::R2, 15)
                .alu(AluOp::Add, Reg::R5, Reg::R3)
                .alu(AluOp::Add, Reg::R8, Reg::R4)
                .alu_imm(AluOp::Add, Reg::R8, 2)
                .alu_imm(AluOp::Add, Reg::R9, 1)
                .ja(head)
                .bind(done)
                .store(Size::DW, Reg::R10, -8, Reg::R5);
        }
    }
    mac_swap(&mut b);
    epilogue(&mut b, fail);
    b.build()
}

/// Build an RT-traffic **filter**: pass only industrial-RT frames whose
/// FrameID is present in an allowlist hash map, dropping everything
/// else and counting both outcomes in a per-CPU array — the packet
/// filtering use of XDP the paper's §3 context cites. Returns the
/// program; `maps` gains the allowlist (key u16-as-4B, value 1B) and
/// the counter array (index 0 = passed, 1 = dropped).
pub fn rt_filter(maps: &mut MapSet) -> (Program, MapFd, MapFd) {
    let allow = maps.create(MapKind::Hash {
        key_size: 4,
        value_size: 1,
        max_entries: 1024,
    });
    let counters = maps.create(MapKind::PerCpuArray {
        value_size: 8,
        max_entries: 2,
        cpus: 8,
    });
    let mut b = ProgramBuilder::new("rt-filter");
    let drop_l = b.label();
    // Bounds-check the Ethernet header + 2 bytes of FrameID.
    prologue(&mut b, 2, drop_l);
    // Ethertype must be 0x8892 (industrial RT): bytes 12..14.
    b.load(Size::B, Reg::R2, Reg::R6, 12)
        .alu_imm(AluOp::Lsh, Reg::R2, 8)
        .load(Size::B, Reg::R3, Reg::R6, 13)
        .alu(AluOp::Or, Reg::R2, Reg::R3)
        .jmp_imm(CmpOp::Ne, Reg::R2, 0x8892, drop_l);
    // FrameID (big-endian at payload offset 0 = frame offset 14).
    b.load(Size::B, Reg::R2, Reg::R6, 14)
        .alu_imm(AluOp::Lsh, Reg::R2, 8)
        .load(Size::B, Reg::R3, Reg::R6, 15)
        .alu(AluOp::Or, Reg::R2, Reg::R3)
        // Key on the stack (u32 LE).
        .store(Size::W, Reg::R10, -4, Reg::R2)
        .mov_imm(Reg::R1, allow.0 as i64)
        .mov(Reg::R2, Reg::R10)
        .add_imm(Reg::R2, -4)
        .call(Helper::MapLookup)
        .jmp_imm(CmpOp::Eq, Reg::R0, 0, drop_l);
    // Passed: count[0] += 1.
    count_bump(&mut b, counters, 0);
    b.mov_imm(Reg::R0, XdpAction::Pass.code()).exit();
    // Dropped: count[1] += 1.
    b.bind(drop_l);
    count_bump(&mut b, counters, 1);
    b.mov_imm(Reg::R0, XdpAction::Drop.code()).exit();
    (b.build(), allow, counters)
}

/// Emit `counters[idx] += 1` (per-CPU array, load-modify-store through
/// a null-checked lookup pointer).
fn count_bump(b: &mut ProgramBuilder, counters: MapFd, idx: i64) {
    let skip = b.label();
    b.store_imm(Size::W, Reg::R10, -8, idx)
        .mov_imm(Reg::R1, counters.0 as i64)
        .mov(Reg::R2, Reg::R10)
        .add_imm(Reg::R2, -8)
        .call(Helper::MapLookup)
        .jmp_imm(CmpOp::Eq, Reg::R0, 0, skip)
        .load(Size::DW, Reg::R3, Reg::R0, 0)
        .alu_imm(AluOp::Add, Reg::R3, 1)
        .store(Size::DW, Reg::R0, 0, Reg::R3)
        .bind(skip);
}

/// Install a FrameID into an `rt_filter` allowlist (userspace side).
pub fn rt_filter_allow(maps: &mut MapSet, allow: MapFd, frame_id: u16) {
    let key = (frame_id as u32).to_le_bytes();
    maps.get_mut(allow)
        // steelcheck: allow(unwrap-in-lib): fd comes from the MapSet populated in the paired builder above
        .expect("allowlist exists")
        .hash_update(&key, &[1]);
}

/// Read an `rt_filter` counter summed over CPUs: idx 0 = passed,
/// idx 1 = dropped.
pub fn rt_filter_count(maps: &MapSet, counters: MapFd, idx: u32) -> u64 {
    // steelcheck: allow(unwrap-in-lib): fd comes from the MapSet populated in the paired builder above
    let m = maps.get(counters).expect("counters exist");
    (0..8)
        .filter_map(|cpu| m.array_lookup(idx, cpu))
        // steelcheck: allow(unwrap-in-lib): per-CPU counter values are fixed 8-byte cells by map construction
        .map(|v| u64::from_le_bytes(v.try_into().expect("8B value")))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::verifier::verify;
    use crate::vm::{run, XdpContext};
    use steelworks_netsim::rng::SimRng;

    #[test]
    fn all_variants_verify() {
        let (maps, rb) = standard_maps();
        for v in ReflectVariant::ALL {
            let p = reflect_variant(v, rb);
            verify(&p, &maps).unwrap_or_else(|e| panic!("{} failed: {e}", v.name()));
        }
    }

    fn exec(v: ReflectVariant, payload: usize) -> (crate::vm::RunResult, MapSet, MapFd, Vec<u8>) {
        let (mut maps, rb) = standard_maps();
        let p = reflect_variant(v, rb);
        let mut pkt = vec![0u8; 14 + payload];
        pkt[0..6].copy_from_slice(&[0xAA; 6]);
        pkt[6..12].copy_from_slice(&[0xBB; 6]);
        let cm = CostModel::default();
        let mut rng = SimRng::seed_from_u64(3);
        let r = run(
            &p,
            &mut pkt,
            XdpContext::default(),
            &mut maps,
            &cm,
            5_000_000,
            0,
            &mut rng,
        );
        (r, maps, rb, pkt)
    }

    #[test]
    fn all_variants_tx_and_swap() {
        for v in ReflectVariant::ALL {
            let (r, _, _, pkt) = exec(v, 50);
            assert_eq!(r.action, XdpAction::Tx, "{}", v.name());
            assert!(r.trap.is_none(), "{}: {:?}", v.name(), r.trap);
            assert_eq!(&pkt[0..6], &[0xBB; 6], "{}", v.name());
            assert_eq!(&pkt[6..12], &[0xAA; 6], "{}", v.name());
        }
    }

    #[test]
    fn rb_variants_emit_records() {
        for v in [ReflectVariant::TsRb, ReflectVariant::TsDRb] {
            let (r, mut maps, rb, _) = exec(v, 50);
            assert_eq!(r.ringbuf_events, 1, "{}", v.name());
            assert_eq!(maps.get_mut(rb).unwrap().ring_drain().len(), 1);
        }
        for v in [
            ReflectVariant::Base,
            ReflectVariant::Ts,
            ReflectVariant::TsOw,
        ] {
            let (r, _, _, _) = exec(v, 50);
            assert_eq!(r.ringbuf_events, 0, "{}", v.name());
        }
    }

    #[test]
    fn ow_variant_writes_timestamp_into_payload() {
        let (_, _, _, pkt) = exec(ReflectVariant::TsOw, 50);
        let ts = u64::from_le_bytes(pkt[14..22].try_into().unwrap());
        assert!(ts >= 5_000_000, "timestamp {ts} written into payload");
    }

    #[test]
    fn ow_variant_drops_tiny_packets() {
        // 4-byte payload < 8 needed: program takes the fail branch.
        let (r, _, _, _) = exec(ReflectVariant::TsOw, 4);
        assert_eq!(r.action, XdpAction::Drop);
    }

    #[test]
    fn ts_d_rb_records_nonzero_delta() {
        let (_, mut maps, rb, _) = exec(ReflectVariant::TsDRb, 50);
        let recs = maps.get_mut(rb).unwrap().ring_drain();
        let delta = u64::from_le_bytes(recs[0][..8].try_into().unwrap());
        assert!(delta > 0, "two timestamps must differ (delta={delta})");
        assert!(delta < 1_000, "delta {delta} implausibly large");
    }

    #[test]
    fn rt_filter_verifies_and_filters() {
        let mut maps = MapSet::new();
        let (prog, allow, counters) = rt_filter(&mut maps);
        verify(&prog, &maps).expect("rt-filter verifies");
        rt_filter_allow(&mut maps, allow, 0x8001);

        let cm = CostModel::default();
        let mut rng = SimRng::seed_from_u64(1);
        let mut run_one = |fid: u16, ethertype: u16| {
            let mut pkt = vec![0u8; 64];
            pkt[12..14].copy_from_slice(&ethertype.to_be_bytes());
            pkt[14..16].copy_from_slice(&fid.to_be_bytes());
            run(
                &prog,
                &mut pkt,
                XdpContext::default(),
                &mut maps,
                &cm,
                0,
                0,
                &mut rng,
            )
        };
        assert_eq!(run_one(0x8001, 0x8892).action, XdpAction::Pass);
        assert_eq!(run_one(0x8002, 0x8892).action, XdpAction::Drop);
        assert_eq!(run_one(0x8001, 0x0800).action, XdpAction::Drop, "non-RT");
        assert_eq!(rt_filter_count(&maps, counters, 0), 1);
        assert_eq!(rt_filter_count(&maps, counters, 1), 2);
    }

    #[test]
    fn rt_filter_short_frame_dropped() {
        let mut maps = MapSet::new();
        let (prog, _, counters) = rt_filter(&mut maps);
        let cm = CostModel::default();
        let mut rng = SimRng::seed_from_u64(2);
        let mut pkt = vec![0u8; 10]; // shorter than eth header
        let r = run(
            &prog,
            &mut pkt,
            XdpContext::default(),
            &mut maps,
            &cm,
            0,
            0,
            &mut rng,
        );
        assert_eq!(r.action, XdpAction::Drop);
        assert!(r.trap.is_none());
        assert_eq!(rt_filter_count(&maps, counters, 1), 1);
    }

    #[test]
    fn loop_corpus_verifies_with_loop_stats() {
        let (maps, _) = standard_maps();
        for v in LoopVariant::ALL {
            let p = loop_variant(v);
            let stats =
                verify(&p, &maps).unwrap_or_else(|e| panic!("{} rejected: {e}", v.name()));
            assert_eq!(stats.loops, 1, "{}", v.name());
            assert!(
                stats.max_insns > stats.insns as u64,
                "{}: fuel {} should exceed straight-line length {}",
                v.name(),
                stats.max_insns,
                stats.insns
            );
        }
    }

    #[test]
    fn loop_corpus_reflects_and_computes() {
        let (mut maps, _) = standard_maps();
        let cm = CostModel::default();
        for v in LoopVariant::ALL {
            let p = loop_variant(v);
            let mut pkt = vec![0u8; 64];
            pkt[0..6].copy_from_slice(&[0xAA; 6]);
            pkt[6..12].copy_from_slice(&[0xBB; 6]);
            for (i, byte) in pkt.iter_mut().enumerate().skip(14) {
                *byte = i as u8;
            }
            let mut rng = SimRng::seed_from_u64(9);
            let r = run(
                &p,
                &mut pkt,
                XdpContext::default(),
                &mut maps,
                &cm,
                0,
                0,
                &mut rng,
            );
            assert_eq!(r.action, XdpAction::Tx, "{}", v.name());
            assert!(r.trap.is_none(), "{}: {:?}", v.name(), r.trap);
            assert_eq!(&pkt[0..6], &[0xBB; 6], "{}", v.name());
        }
    }

    /// The differential fuel oracle: across a seeded packet corpus,
    /// every accepted program must terminate within the
    /// verifier-computed `max_insns` — enforced for real by running
    /// with exactly that much fuel (and the fused block plan).
    #[test]
    fn fuel_oracle_bounds_every_accepted_program() {
        use crate::cost::BlockPlan;
        use crate::vm::run_with;
        let mut rng = SimRng::seed_from_u64(0x5EED_F0E1);
        let (mut maps, rb) = standard_maps();
        let cm = CostModel::default();
        let mut programs: Vec<Program> =
            LoopVariant::ALL.iter().map(|&v| loop_variant(v)).collect();
        programs.extend(ReflectVariant::ALL.iter().map(|&v| reflect_variant(v, rb)));
        for p in &programs {
            let stats = verify(p, &maps).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            let plan = BlockPlan::new(p);
            for _ in 0..32 {
                let len = rng.range(10, 128) as usize;
                let mut pkt: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
                let r = run_with(
                    p,
                    Some(&plan),
                    stats.max_insns,
                    &mut pkt,
                    XdpContext::default(),
                    &mut maps,
                    &cm,
                    1_000,
                    0,
                    &mut rng,
                );
                assert!(r.trap.is_none(), "{} len={len}: {:?}", p.name, r.trap);
                assert!(
                    r.cost.insns <= stats.max_insns,
                    "{} len={len}: retired {} > fuel {}",
                    p.name,
                    r.cost.insns,
                    stats.max_insns
                );
            }
        }
    }

    /// Broken siblings of the corpus stay rejected: non-monotonic
    /// counter, counter clobbered in the body, and a bound the domain
    /// can only widen to top.
    #[test]
    fn broken_loop_variants_stay_rejected() {
        use crate::verifier::VerifyKind;
        let (maps, _) = standard_maps();
        let scan_with_body = |body: &dyn Fn(&mut ProgramBuilder)| {
            let mut b = ProgramBuilder::new("broken");
            let fail = b.label();
            prologue(&mut b, 32, fail);
            let done = b.label();
            b.mov_imm(Reg::R8, 0).mov_imm(Reg::R9, 0);
            let head = b.here();
            b.jmp_imm(CmpOp::Ge, Reg::R8, 32, done)
                .mov(Reg::R2, Reg::R6)
                .alu(AluOp::Add, Reg::R2, Reg::R8)
                .load(Size::B, Reg::R3, Reg::R2, 14)
                .alu(AluOp::Add, Reg::R9, Reg::R3);
            body(&mut b);
            b.ja(head).bind(done);
            mac_swap(&mut b);
            epilogue(&mut b, fail);
            b.build()
        };

        // Counter advanced by zero: never makes progress.
        let p = scan_with_body(&|b| {
            b.alu_imm(AluOp::Add, Reg::R8, 0);
        });
        let e = verify(&p, &maps).unwrap_err();
        assert!(
            matches!(e.kind, VerifyKind::LoopNotMonotonic(_, Reg::R8)),
            "{e}"
        );

        // Counter reset inside the body.
        let p = scan_with_body(&|b| {
            b.alu_imm(AluOp::Add, Reg::R8, 1).mov_imm(Reg::R8, 0);
        });
        let e = verify(&p, &maps).unwrap_err();
        assert!(
            matches!(e.kind, VerifyKind::LoopCounterClobbered(_, Reg::R8)),
            "{e}"
        );

        // Register bound with no proven upper range: `data_end - data`
        // only has a lower bound, so its interval widens to top.
        let mut b = ProgramBuilder::new("widened-bound");
        let fail = b.label();
        prologue(&mut b, 32, fail);
        let done = b.label();
        b.mov(Reg::R3, Reg::R7)
            .alu(AluOp::Sub, Reg::R3, Reg::R6)
            .mov_imm(Reg::R8, 0);
        let head = b.here();
        b.jmp_reg(CmpOp::Ge, Reg::R8, Reg::R3, done)
            .alu_imm(AluOp::Add, Reg::R8, 1)
            .ja(head)
            .bind(done);
        mac_swap(&mut b);
        epilogue(&mut b, fail);
        let e = verify(&b.build(), &maps).unwrap_err();
        assert!(
            matches!(e.kind, VerifyKind::LoopBoundUnknown(_, Reg::R3)),
            "{e}"
        );
    }

    #[test]
    fn cost_ordering_matches_added_code() {
        let cost = |v| {
            let (r, _, _, _) = exec(v, 50);
            r.cost.ns
        };
        let base = cost(ReflectVariant::Base);
        let ts = cost(ReflectVariant::Ts);
        let ts_ts = cost(ReflectVariant::TsTs);
        let ts_rb = cost(ReflectVariant::TsRb);
        assert!(ts > base);
        assert!(ts_ts > ts);
        assert!(ts_rb > ts_ts);
    }
}
