//! The XDP host: a [`Device`] that runs a verified program on every
//! received frame, in native driver mode.
//!
//! Per frame the host charges: NIC RX (MAC + PCIe DMA), program
//! execution (deterministic cost model), host noise (stochastic
//! profile, scaled by concurrently active flows), and — for `XDP_TX` —
//! NIC TX before the frame re-enters the wire.

use crate::cost::{BlockPlan, CostModel};
use crate::host::{HostClock, HostProfile};
use crate::insn::XdpAction;
use crate::lower::{lower, run_lowered, LoweredProgram};
use crate::maps::MapSet;
use crate::nic::NicModel;
use crate::prog::Program;
use crate::verifier::{verify_with_proof, VerifyError, VerifyStats};
use crate::vm::{self, XdpContext};
use steelworks_netsim::bytes::Bytes;
use std::collections::BTreeMap;
use steelworks_netsim::frame::{EthFrame, MacAddr};
use steelworks_netsim::node::{Ctx, Device, PortId};
use steelworks_netsim::stats::SampleSet;
use steelworks_netsim::time::{NanoDur, Nanos};

/// Window within which a flow counts as concurrently active.
const FLOW_WINDOW: NanoDur = NanoDur(100_000_000); // 100 ms

/// Counters exported by an [`XdpHost`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XdpStats {
    /// Frames processed.
    pub runs: u64,
    /// `XDP_TX` verdicts.
    pub tx: u64,
    /// `XDP_DROP` verdicts.
    pub drop: u64,
    /// `XDP_PASS` verdicts.
    pub pass: u64,
    /// Aborts (runtime traps).
    pub aborted: u64,
    /// Redirects (unsupported; counted then dropped).
    pub redirect: u64,
}

/// A host NIC with an attached XDP program.
#[derive(Debug)]
pub struct XdpHost {
    name: String,
    prog: Program,
    /// Verifier facts captured at load time (fuel bound, loop count).
    verify_stats: VerifyStats,
    /// Basic-block cost plan derived at load time.
    plan: BlockPlan,
    /// The compiled form of the program, built from the verifier's
    /// proof artifact at load time. `None` when lowering was declined
    /// (`XDPSIM_FORCE_INTERP=1`) or failed — then every frame runs the
    /// interpreter. Both engines are bit-identical on verified
    /// programs, so the choice is invisible to results.
    lowered: Option<LoweredProgram>,
    /// Reused packet-serialization buffer (one live frame at a time).
    pkt_scratch: Vec<u8>,
    /// The host's maps — inspect after a run to drain ring buffers.
    pub maps: MapSet,
    cost: CostModel,
    profile: HostProfile,
    clock: HostClock,
    nic: NicModel,
    /// RSS: flows hash onto this many RX queues, each pinned to a CPU.
    pub rx_queues: u32,
    stats: XdpStats,
    flow_last_seen: BTreeMap<MacAddr, Nanos>,
    /// Deferred TX frames (processing delay in flight).
    pending: Vec<(Nanos, PortId, EthFrame)>,
    /// Spare buffer swapped with `pending` on each timer fire, so the
    /// hot path never reallocates.
    pending_swap: Vec<(Nanos, PortId, EthFrame)>,
    /// Per-frame total processing times (ns), for direct inspection.
    pub proc_times: SampleSet,
    forced_flows: Option<u32>,
}

impl XdpHost {
    /// Create a host; the program is verified against `maps` at load
    /// time, exactly like `bpf(BPF_PROG_LOAD)`, and — on success —
    /// compiled into its lowered form from the verifier's proof
    /// artifact (JIT-on-load). Set `XDPSIM_FORCE_INTERP=1` to pin the
    /// interpreter instead; results are bit-identical either way.
    pub fn new(
        name: impl Into<String>,
        prog: Program,
        maps: MapSet,
        profile: HostProfile,
    ) -> Result<Self, VerifyError> {
        let (verify_stats, proof) = verify_with_proof(&prog, &maps)?;
        let plan = BlockPlan::new(&prog);
        let force_interp = std::env::var("XDPSIM_FORCE_INTERP")
            .map(|v| v == "1")
            .unwrap_or(false);
        let lowered = if force_interp {
            None
        } else {
            // A lowering failure is an internal inconsistency; the
            // interpreter remains a complete fallback.
            lower(&prog, &proof).ok()
        };
        Ok(XdpHost {
            name: name.into(),
            prog,
            verify_stats,
            plan,
            lowered,
            pkt_scratch: Vec::new(),
            maps,
            cost: CostModel::default(),
            profile,
            clock: HostClock::perfect(),
            nic: NicModel::default(),
            rx_queues: 1,
            stats: XdpStats::default(),
            flow_last_seen: BTreeMap::new(),
            pending: Vec::new(),
            pending_swap: Vec::new(),
            proc_times: SampleSet::new(),
            forced_flows: None,
        })
    }

    /// Override the host clock (builder style).
    pub fn with_clock(mut self, clock: HostClock) -> Self {
        self.clock = clock;
        self
    }

    /// Override the NIC model (builder style).
    pub fn with_nic(mut self, nic: NicModel) -> Self {
        self.nic = nic;
        self
    }

    /// Override the cost model (builder style).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Pin the active-flow count instead of tracking it from traffic
    /// (useful for controlled experiments).
    pub fn with_forced_flows(mut self, flows: u32) -> Self {
        self.forced_flows = Some(flows);
        self
    }

    /// Enable RSS across `queues` RX queues (each pinned to one CPU):
    /// flows hash to queues by source MAC, so per-CPU maps see a stable
    /// per-flow CPU — and the program's `rx_queue` context field is
    /// populated accordingly.
    pub fn with_rx_queues(mut self, queues: u32) -> Self {
        assert!(queues >= 1);
        self.rx_queues = queues;
        self
    }

    /// RSS hash: which queue/CPU a source MAC lands on.
    pub fn rss_queue(&self, src: MacAddr) -> u32 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in src.0 {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h % self.rx_queues as u64) as u32
    }

    /// Verdict counters.
    pub fn stats(&self) -> XdpStats {
        self.stats
    }

    /// Which execution engine this host selected at load time:
    /// `"lowered"` (default) or `"interp"` (`XDPSIM_FORCE_INTERP=1`,
    /// or a lowering failure).
    pub fn engine(&self) -> &'static str {
        if self.lowered.is_some() {
            "lowered"
        } else {
            "interp"
        }
    }

    /// The verifier facts captured at load time (notably `max_insns`,
    /// the fuel bound the VM enforces on every frame).
    pub fn verify_stats(&self) -> VerifyStats {
        self.verify_stats
    }

    /// Flows seen within the activity window as of the last frame.
    pub fn tracked_flows(&self) -> u32 {
        self.flow_last_seen.len() as u32
    }

    fn active_flows(&mut self, now: Nanos) -> u32 {
        if let Some(f) = self.forced_flows {
            return f;
        }
        self.flow_last_seen
            .retain(|_, last| now.saturating_since(*last) <= FLOW_WINDOW);
        (self.flow_last_seen.len() as u32).max(1)
    }
}

/// Serialize a frame into the raw bytes an XDP program sees, reusing
/// the caller's buffer (cleared first) to avoid a per-frame allocation.
fn frame_to_bytes(frame: &EthFrame, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(14 + frame.payload.len());
    out.extend_from_slice(&frame.dst.0);
    out.extend_from_slice(&frame.src.0);
    out.extend_from_slice(&frame.ethertype.to_be_bytes());
    out.extend_from_slice(&frame.payload);
}

/// Rebuild a frame from (possibly modified) raw bytes, preserving the
/// original frame identity so taps can correlate request/response.
fn bytes_to_frame(bytes: &[u8], original: &EthFrame) -> Option<EthFrame> {
    if bytes.len() < 14 {
        return None;
    }
    let mut f = original.clone();
    // steelcheck: allow(unwrap-in-lib): slice is exactly 6 bytes: frame buffers are length-checked on entry
    f.dst = MacAddr(bytes[0..6].try_into().expect("slice len 6"));
    // steelcheck: allow(unwrap-in-lib): slice is exactly 6 bytes: frame buffers are length-checked on entry
    f.src = MacAddr(bytes[6..12].try_into().expect("slice len 6"));
    f.ethertype = u16::from_be_bytes([bytes[12], bytes[13]]);
    f.payload = Bytes::from(bytes[14..].to_vec());
    Some(f)
}

impl Device for XdpHost {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: EthFrame) {
        let now = ctx.now();
        self.flow_last_seen.insert(frame.src, now);
        let flows = self.active_flows(now);

        let host_time = self.clock.read(now);
        let queue = self.rss_queue(frame.src);
        let mut packet = std::mem::take(&mut self.pkt_scratch);
        frame_to_bytes(&frame, &mut packet);
        let xctx = XdpContext {
            ingress_ifindex: port.0 as u32,
            rx_queue: queue,
        };
        // queue N is pinned to CPU N.
        let result = match &self.lowered {
            Some(lp) => run_lowered(
                lp,
                &mut packet,
                xctx,
                &mut self.maps,
                &self.cost,
                host_time,
                queue,
                ctx.rng(),
            ),
            None => vm::run_with(
                &self.prog,
                Some(&self.plan),
                self.verify_stats.max_insns,
                &mut packet,
                xctx,
                &mut self.maps,
                &self.cost,
                host_time,
                queue,
                ctx.rng(),
            ),
        };

        let noise =
            self.profile
                .sample_noise(ctx.rng(), flows, result.ringbuf_events, result.pkt_writes);
        let rx = self.nic.rx_latency(frame.frame_len());
        self.stats.runs += 1;

        match result.action {
            XdpAction::Tx => {
                self.stats.tx += 1;
                let tx = self.nic.tx_latency(packet.len().max(60));
                let total = rx + result.cost.as_dur() + noise + tx;
                self.proc_times.push(total.as_nanos() as f64);
                if let Some(out) = bytes_to_frame(&packet, &frame) {
                    let at = now + total;
                    self.pending.push((at, port, out));
                    ctx.timer_at(at, 0);
                }
            }
            XdpAction::Drop => {
                self.stats.drop += 1;
                self.proc_times
                    .push((rx + result.cost.as_dur() + noise).as_nanos() as f64);
            }
            XdpAction::Pass => {
                self.stats.pass += 1;
                self.proc_times
                    .push((rx + result.cost.as_dur() + noise).as_nanos() as f64);
            }
            XdpAction::Redirect => {
                self.stats.redirect += 1;
            }
            XdpAction::Aborted => {
                self.stats.aborted += 1;
            }
        }
        self.pkt_scratch = packet;
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let now = ctx.now();
        let mut rest = std::mem::take(&mut self.pending_swap);
        for (at, port, frame) in self.pending.drain(..) {
            if at <= now {
                ctx.send(port, frame);
            } else {
                rest.push((at, port, frame));
            }
        }
        // The drained buffer becomes next fire's scratch (keeps its
        // capacity); the survivors become the new queue.
        self.pending_swap = std::mem::replace(&mut self.pending, rest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{reflect_variant, standard_maps, ReflectVariant};
    use steelworks_netsim::prelude::*;

    fn reflect_world(variant: ReflectVariant) -> (Simulator, NodeId, NodeId, TapId) {
        let mut sim = Simulator::new(11);
        let src = sim.add_node(
            PeriodicSource::new(
                "sender",
                MacAddr::local(1),
                MacAddr::local(100),
                50,
                NanoDur::from_millis(1),
            )
            .with_limit(200),
        );
        let (maps, rb) = standard_maps();
        let prog = reflect_variant(variant, rb);
        let host = sim.add_node(
            XdpHost::new("xdp", prog, maps, HostProfile::preempt_rt()).expect("verifies"),
        );
        let link = sim.connect(src, PortId(0), host, PortId(0), LinkSpec::gigabit());
        let tap = sim.attach_tap(link, Tap::hardware_default());
        (sim, src, host, tap)
    }

    #[test]
    fn base_variant_reflects_all_frames() {
        let (mut sim, _src, host, tap) = reflect_world(ReflectVariant::Base);
        sim.run_until(Nanos::from_millis(300));
        let stats = sim.node_ref::<XdpHost>(host).stats();
        assert_eq!(stats.runs, 200);
        assert_eq!(stats.tx, 200);
        assert_eq!(stats.aborted, 0);
        // Tap saw 200 in + 200 out.
        assert_eq!(sim.tap(tap).records().len(), 400);
        assert_eq!(sim.tap(tap).reflection_rtts().len(), 200);
    }

    #[test]
    fn host_selects_lowered_engine_by_default() {
        // The env escape hatch is exercised by the dedicated
        // tests/force_interp_env.rs binary (env vars are process-wide).
        let (maps, rb) = standard_maps();
        let prog = reflect_variant(ReflectVariant::TsRb, rb);
        let host = XdpHost::new("xdp", prog, maps, HostProfile::preempt_rt()).expect("verifies");
        assert_eq!(host.engine(), "lowered");
    }

    #[test]
    fn reflection_swaps_macs() {
        let (mut sim, _src, _host, tap) = reflect_world(ReflectVariant::Base);
        sim.run_until(Nanos::from_millis(10));
        let recs = sim.tap(tap).records();
        let inbound = recs.iter().find(|r| r.dir == TapDir::AToB).unwrap();
        let outbound = recs.iter().find(|r| r.dir == TapDir::BToA).unwrap();
        assert_eq!(inbound.src, outbound.dst);
        assert_eq!(inbound.dst, outbound.src);
    }

    #[test]
    fn ringbuf_variant_slower_than_base() {
        let (mut sim_b, _, host_b, tap_b) = reflect_world(ReflectVariant::Base);
        sim_b.run_until(Nanos::from_millis(300));
        let (mut sim_r, _, host_r, tap_r) = reflect_world(ReflectVariant::TsRb);
        sim_r.run_until(Nanos::from_millis(300));
        let med = |tap: &Tap| {
            let mut s = SampleSet::new();
            for d in tap.reflection_rtts() {
                s.push(d.as_nanos() as f64);
            }
            s.median().unwrap()
        };
        let base_med = med(sim_b.tap(tap_b));
        let rb_med = med(sim_r.tap(tap_r));
        assert!(
            rb_med > base_med + 2_000.0,
            "ringbuf median {rb_med} vs base {base_med}"
        );
        let _ = (host_b, host_r);
    }

    #[test]
    fn ringbuf_records_collected() {
        let (mut sim, _, host, _) = reflect_world(ReflectVariant::TsRb);
        sim.run_until(Nanos::from_millis(100));
        let host = sim.node_mut::<XdpHost>(host);
        // Drain the ring buffer like a userspace consumer would.
        let rb = crate::maps::MapFd(0);
        let records = host.maps.get_mut(rb).unwrap().ring_drain();
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.len() == 8));
    }

    #[test]
    fn rss_spreads_flows_over_cpus() {
        // An rt_filter host with 4 RX queues: per-CPU counters must
        // accumulate on more than one CPU when many flows arrive.
        let mut sim = Simulator::new(21);
        let mut maps = crate::maps::MapSet::new();
        let (prog, allow, counters) = crate::programs::rt_filter(&mut maps);
        crate::programs::rt_filter_allow(&mut maps, allow, 0x8001);
        let host = sim.add_node(
            XdpHost::new("xdp", prog, maps, HostProfile::preempt_rt())
                .expect("verifies")
                .with_rx_queues(4),
        );
        let sw = sim.add_node(LearningSwitch::new(
            "agg",
            SwitchConfig {
                ports: 9,
                forwarding_latency: NanoDur(1_000),
                queue_capacity: 256,
            },
        ));
        for i in 0..8u32 {
            let payload = vec![0u8; 50];
            let _ = payload;
            let src = sim.add_node(
                PeriodicSource::new(
                    format!("f{i}"),
                    MacAddr::local(10 + i as u16),
                    MacAddr::local(0x0100),
                    50,
                    NanoDur::from_millis(1),
                )
                .with_limit(50),
            );
            sim.connect(src, PortId(0), sw, PortId(i as usize), LinkSpec::gigabit());
        }
        sim.connect(sw, PortId(8), host, PortId(0), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(100));
        let host_ref = sim.node_ref::<XdpHost>(host);
        // Frames are SIM_TEST ethertype → all dropped by the filter;
        // what matters here is the per-CPU spread of counter index 1.
        let m = host_ref.maps.get(counters).unwrap();
        let cpus_used = (0..4)
            .filter(|&cpu| {
                m.array_lookup(1, cpu)
                    .map(|v| u64::from_le_bytes(v.try_into().unwrap()) > 0)
                    .unwrap_or(false)
            })
            .count();
        assert!(cpus_used >= 2, "RSS used {cpus_used} CPUs");
        // And nothing was lost.
        assert_eq!(host_ref.stats().drop, 400);
    }

    #[test]
    fn more_flows_more_jitter() {
        let jitter_p99 = |flows: u32| {
            let mut sim = Simulator::new(5);
            let src = sim.add_node(
                PeriodicSource::new(
                    "sender",
                    MacAddr::local(1),
                    MacAddr::local(100),
                    50,
                    NanoDur::from_millis(1),
                )
                .with_limit(500),
            );
            let (maps, rb) = standard_maps();
            let prog = reflect_variant(ReflectVariant::Ts, rb);
            let host = sim.add_node(
                XdpHost::new("xdp", prog, maps, HostProfile::preempt_rt())
                    .expect("verifies")
                    .with_forced_flows(flows),
            );
            let link = sim.connect(src, PortId(0), host, PortId(0), LinkSpec::gigabit());
            let tap = sim.attach_tap(link, Tap::hardware_default());
            sim.run_until(Nanos::from_secs(1));
            let rtts = sim.tap(tap).reflection_rtts();
            let mut jit = SampleSet::new();
            for w in rtts.windows(2) {
                jit.push((w[1].as_nanos() as f64 - w[0].as_nanos() as f64).abs());
            }
            jit.quantile(0.99).unwrap()
        };
        let j1 = jitter_p99(1);
        let j25 = jitter_p99(25);
        assert!(j25 > 1.5 * j1, "25-flow jitter {j25} vs 1-flow {j1}");
    }
}
