//! Program construction: a tiny assembler with labels.
//!
//! Programs are written in builder style and resolved to a flat
//! instruction vector. Ordinary labels ([`ProgramBuilder::label`] +
//! [`ProgramBuilder::bind`]) are forward-only; loop heads are spelled
//! with [`ProgramBuilder::here`], which binds at the current position
//! and is the only label kind a backward jump may target — keeping
//! accidental back-edges a construction-time panic while the verifier
//! decides whether the intentional ones are bounded.

use crate::insn::{cmp_sym, AluOp, CmpOp, Helper, Insn, Reg, Size};
use std::collections::{BTreeMap, BTreeSet};

/// A compiled program plus metadata.
#[derive(Clone, Debug)]
pub struct Program {
    /// Name for traces and reports (e.g. `"TS-RB"`).
    pub name: String,
    /// Flat instruction stream.
    pub insns: Vec<Insn>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True for the (never-valid) empty program.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Disassemble to bpftool-flavoured text (one insn per line,
    /// absolute jump targets).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, insn) in self.insns.iter().enumerate() {
            // Jumps resolve to absolute targets here; every other form
            // is the instruction's own `Display`.
            let line = match insn {
                Insn::Ja(off) => format!("goto {}", i as i64 + 1 + *off as i64),
                Insn::JmpImm(op, r, v, off) => format!(
                    "if {r:?} {} {v} goto {}",
                    cmp_sym(*op),
                    i as i64 + 1 + *off as i64
                ),
                Insn::JmpReg(op, a, b, off) => format!(
                    "if {a:?} {} {b:?} goto {}",
                    cmp_sym(*op),
                    i as i64 + 1 + *off as i64
                ),
                other => other.to_string(),
            };
            out.push_str(&format!("{i:4}: {line}\n"));
        }
        out
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "; program {} ({} insns)", self.name, self.insns.len())?;
        f.write_str(&self.disassemble())
    }
}

/// Forward-reference label.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Label(usize);

#[derive(Debug)]
enum Pending {
    Ja(usize, Label),
    JmpImm(usize, CmpOp, Reg, i64, Label),
    JmpReg(usize, CmpOp, Reg, Reg, Label),
}

/// Assembler for [`Program`]s.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    insns: Vec<Insn>,
    labels: BTreeMap<Label, usize>,
    /// Labels created by [`Self::here`]: the only valid backward targets.
    loop_heads: BTreeSet<Label>,
    next_label: usize,
    pending: Vec<Pending>,
}

impl ProgramBuilder {
    /// Start a program called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            insns: Vec::new(),
            labels: BTreeMap::new(),
            loop_heads: BTreeSet::new(),
            next_label: 0,
            pending: Vec::new(),
        }
    }

    /// Allocate a label to be placed later with [`Self::bind`].
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Bind a label to the *next* emitted instruction.
    pub fn bind(&mut self, l: Label) -> &mut Self {
        let prev = self.labels.insert(l, self.insns.len());
        assert!(prev.is_none(), "label bound twice");
        self
    }

    /// Bind and return a label at the *current* position — a loop head.
    ///
    /// This is the only label kind that jumps may target backward; the
    /// verifier then decides whether the resulting back-edge carries a
    /// provably bounded induction. Ordinary [`Self::label`]s remain
    /// forward-only so an accidental back-reference still panics in
    /// [`Self::build`].
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.labels.insert(l, self.insns.len());
        self.loop_heads.insert(l);
        l
    }

    /// `dst = imm`
    pub fn mov_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.insns.push(Insn::MovImm(dst, imm));
        self
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.insns.push(Insn::MovReg(dst, src));
        self
    }

    /// `dst = dst <op> imm`
    pub fn alu_imm(&mut self, op: AluOp, dst: Reg, imm: i64) -> &mut Self {
        self.insns.push(Insn::AluImm(op, dst, imm));
        self
    }

    /// `dst = dst <op> src`
    pub fn alu(&mut self, op: AluOp, dst: Reg, src: Reg) -> &mut Self {
        self.insns.push(Insn::AluReg(op, dst, src));
        self
    }

    /// `dst += imm`
    pub fn add_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Add, dst, imm)
    }

    /// `dst = *(size*)(base + off)`
    pub fn load(&mut self, size: Size, dst: Reg, base: Reg, off: i16) -> &mut Self {
        self.insns.push(Insn::Load(size, dst, base, off));
        self
    }

    /// `*(size*)(base + off) = src`
    pub fn store(&mut self, size: Size, base: Reg, off: i16, src: Reg) -> &mut Self {
        self.insns.push(Insn::Store(size, base, off, src));
        self
    }

    /// `*(size*)(base + off) = imm`
    pub fn store_imm(&mut self, size: Size, base: Reg, off: i16, imm: i64) -> &mut Self {
        self.insns.push(Insn::StoreImm(size, base, off, imm));
        self
    }

    /// Unconditional jump to a (forward) label.
    pub fn ja(&mut self, target: Label) -> &mut Self {
        self.pending.push(Pending::Ja(self.insns.len(), target));
        self.insns.push(Insn::Ja(0));
        self
    }

    /// `if dst <op> imm goto target`
    pub fn jmp_imm(&mut self, op: CmpOp, dst: Reg, imm: i64, target: Label) -> &mut Self {
        self.pending
            .push(Pending::JmpImm(self.insns.len(), op, dst, imm, target));
        self.insns.push(Insn::JmpImm(op, dst, imm, 0));
        self
    }

    /// `if dst <op> src goto target`
    pub fn jmp_reg(&mut self, op: CmpOp, dst: Reg, src: Reg, target: Label) -> &mut Self {
        self.pending
            .push(Pending::JmpReg(self.insns.len(), op, dst, src, target));
        self.insns.push(Insn::JmpReg(op, dst, src, 0));
        self
    }

    /// Call a helper.
    pub fn call(&mut self, h: Helper) -> &mut Self {
        self.insns.push(Insn::Call(h));
        self
    }

    /// Return from the program.
    pub fn exit(&mut self) -> &mut Self {
        self.insns.push(Insn::Exit);
        self
    }

    /// Resolve labels and produce the program.
    ///
    /// Panics on unbound labels or non-forward jumps: both are
    /// construction bugs, not runtime conditions.
    pub fn build(self) -> Program {
        let mut insns = self.insns;
        for p in self.pending {
            let (at, target) = match &p {
                Pending::Ja(at, l)
                | Pending::JmpImm(at, _, _, _, l)
                | Pending::JmpReg(at, _, _, _, l) => (*at, *l),
            };
            let to = *self
                .labels
                .get(&target)
                // steelcheck: allow(panic-reachable): builder misuse is a programming error, caught by the prog tests
                .unwrap_or_else(|| panic!("unbound label {target:?}"));
            if !self.loop_heads.contains(&target) {
                assert!(to > at, "only forward jumps are allowed (at {at} -> {to})");
            }
            let off = (to as i64 - at as i64 - 1) as i16;
            insns[at] = match p {
                Pending::Ja(..) => Insn::Ja(off),
                Pending::JmpImm(_, op, r, imm, _) => Insn::JmpImm(op, r, imm, off),
                Pending::JmpReg(_, op, a, b, _) => Insn::JmpReg(op, a, b, off),
            };
        }
        Program {
            name: self.name,
            insns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward() {
        let mut b = ProgramBuilder::new("t");
        let done = b.label();
        b.mov_imm(Reg::R0, 1)
            .jmp_imm(CmpOp::Eq, Reg::R0, 1, done)
            .mov_imm(Reg::R0, 2)
            .bind(done)
            .exit();
        let p = b.build();
        assert_eq!(p.len(), 4);
        match p.insns[1] {
            Insn::JmpImm(CmpOp::Eq, Reg::R0, 1, off) => assert_eq!(off, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.ja(l).exit();
        b.build();
    }

    #[test]
    #[should_panic(expected = "forward jumps")]
    fn backward_jump_panics() {
        let mut b = ProgramBuilder::new("t");
        let top = b.label();
        b.bind(top).mov_imm(Reg::R0, 0).ja(top);
        b.build();
    }

    #[test]
    fn here_labels_allow_backward_jumps() {
        // r0 = 0; head: if r0 >= 3 goto done; r0 += 1; ja head; done: exit
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        let head = b.here();
        let done = b.label();
        b.jmp_imm(CmpOp::Ge, Reg::R0, 3, done)
            .add_imm(Reg::R0, 1)
            .ja(head)
            .bind(done)
            .exit();
        let p = b.build();
        // The ja at index 3 must point back to the guard at index 1.
        match p.insns[3] {
            Insn::Ja(off) => assert_eq!(off, -3),
            other => panic!("unexpected {other:?}"),
        }
        let text = p.disassemble();
        assert!(text.contains("   3: goto 1"), "{text}");
    }

    #[test]
    fn here_conditional_backward_jump_resolves() {
        // do-while shape: head is the first body insn.
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        let head = b.here();
        b.add_imm(Reg::R0, 1)
            .jmp_imm(CmpOp::Lt, Reg::R0, 5, head)
            .exit();
        let p = b.build();
        match p.insns[2] {
            Insn::JmpImm(CmpOp::Lt, Reg::R0, 5, off) => assert_eq!(off, -2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.bind(l).mov_imm(Reg::R0, 0);
        b.bind(l);
    }

    #[test]
    fn disassembly_readable() {
        let mut b = ProgramBuilder::new("d");
        let end = b.label();
        b.mov_imm(Reg::R0, 2)
            .jmp_imm(CmpOp::Eq, Reg::R0, 2, end)
            .call(Helper::KtimeGetNs)
            .bind(end)
            .exit();
        let p = b.build();
        let text = p.to_string();
        assert!(text.contains("; program d (4 insns)"), "{text}");
        assert!(text.contains("R0 = 2"), "{text}");
        assert!(text.contains("if R0 == 2 goto 3"), "{text}");
        assert!(text.contains("call KtimeGetNs"), "{text}");
        assert!(text.trim_end().ends_with("exit"), "{text}");
    }

    #[test]
    fn disassembly_memory_forms() {
        let mut b = ProgramBuilder::new("m");
        b.load(Size::W, Reg::R0, Reg::R10, -8)
            .store_imm(Size::DW, Reg::R10, -16, 7)
            .exit();
        let text = b.build().disassemble();
        assert!(text.contains("R0 = *(u32*)(R10 -8)"), "{text}");
        assert!(text.contains("*(u64*)(R10 -16) = 7"), "{text}");
    }

    #[test]
    fn ja_offset_resolution() {
        let mut b = ProgramBuilder::new("t");
        let end = b.label();
        b.ja(end)
            .mov_imm(Reg::R0, 1)
            .mov_imm(Reg::R0, 2)
            .bind(end)
            .exit();
        let p = b.build();
        match p.insns[0] {
            Insn::Ja(off) => assert_eq!(off, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
