//! The interpreter.
//!
//! Executes verified programs against a real packet buffer and map set,
//! charging the cost model as it goes. Runtime safety does not depend
//! on the verifier: every memory access goes through address
//! translation with bounds checks, and violations trap the program to
//! `XDP_ABORTED` — mirroring how a verifier bug in the kernel would
//! still be caught by nothing, which is precisely why we double-check
//! here (a simulator can afford belt and braces).

use crate::cost::{BlockPlan, CostModel, ExecCost, MemClass};
use crate::insn::{AluOp, CmpOp, Helper, Insn, Reg, Size, XdpAction};
use crate::maps::{MapFd, MapKind, MapSet};
use crate::prog::Program;
use crate::verifier::{ctx_layout, STACK_SIZE};
use steelworks_netsim::rng::SimRng;

/// Virtual base address of the packet buffer.
pub const PKT_BASE: u64 = 0x1000_0000;
/// Virtual address of the top of the stack (R10 at entry).
pub const STACK_TOP: u64 = 0x2000_0000;
/// Virtual base address of the context struct.
pub const CTX_BASE: u64 = 0x3000_0000;
/// Virtual base of map-value dereference slots.
pub const MAPVAL_BASE: u64 = 0x4000_0000;
/// Stride between map-value slots (max value size).
pub const MAPVAL_STRIDE: u64 = 0x1_0000;
/// Virtual address of the current ring buffer reservation.
pub const RING_BASE: u64 = 0x5000_0000;

/// Metadata fields of the simulated `xdp_md`.
#[derive(Clone, Copy, Debug, Default)]
pub struct XdpContext {
    /// Ingress interface index.
    pub ingress_ifindex: u32,
    /// RX queue the packet arrived on.
    pub rx_queue: u32,
}

/// Runtime faults (all map to `XDP_ABORTED`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trap {
    /// Address outside any mapped region.
    BadAddress(u64),
    /// Instruction budget exhausted.
    InsnLimit,
    /// Helper misuse at runtime.
    HelperFault(Helper),
    /// Packet adjustment failed.
    AdjustFault,
}

/// Result of executing one program over one packet.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// The program's verdict.
    pub action: XdpAction,
    /// Deterministic execution cost.
    pub cost: ExecCost,
    /// Ring buffer submissions (each wakes a userspace consumer — the
    /// host model charges these separately).
    pub ringbuf_events: u32,
    /// Stores into packet memory (dirty DMA cachelines).
    pub pkt_writes: u32,
    /// Runtime fault, if any.
    pub trap: Option<Trap>,
}

/// Hard runtime step budget, used when the caller supplies no
/// verifier-derived fuel. Matches the verifier's `FUEL_CAP`: any
/// accepted program proves a bound at or below this.
const STEP_LIMIT: u64 = 1_000_000;

/// Retired-instruction budget, shared by both engines so the
/// exactly-at-limit boundary cannot drift between them: a budget of
/// `n` admits exactly `n` retired instructions, and the `n+1`th (or
/// the block that would contain it) traps [`Trap::InsnLimit`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fuel {
    remaining: u64,
}

impl Fuel {
    /// A budget of `limit` retires, clamped to the hard step limit.
    pub(crate) fn new(limit: u64) -> Fuel {
        Fuel {
            remaining: limit.min(STEP_LIMIT),
        }
    }

    /// Prepay `n` retires (a basic block), trapping without consuming
    /// when the budget cannot cover all of them.
    #[inline]
    pub(crate) fn take(&mut self, n: u64) -> Result<(), Trap> {
        if n > self.remaining {
            return Err(Trap::InsnLimit);
        }
        self.remaining -= n;
        Ok(())
    }

    /// Pay for one retired instruction (the interpreter's per-step path).
    #[inline]
    pub(crate) fn tick(&mut self) -> Result<(), Trap> {
        self.take(1)
    }
}

enum DerefTarget {
    Array(MapFd, u32, usize),
    Hash(MapFd, Vec<u8>),
}

pub(crate) struct Machine<'a> {
    pub(crate) regs: [u64; 11],
    pub(crate) stack: [u8; STACK_SIZE],
    pub(crate) packet: &'a mut Vec<u8>,
    pub(crate) ctx: XdpContext,
    maps: &'a mut MapSet,
    pub(crate) cost_model: &'a CostModel,
    plan: Option<&'a BlockPlan>,
    pub(crate) fuel: Fuel,
    prepaid: u64,
    pub(crate) cost: ExecCost,
    derefs: Vec<DerefTarget>,
    pub(crate) reservation: Option<(MapFd, Vec<u8>)>,
    host_time_ns: u64,
    cpu_id: u32,
    rng: &'a mut SimRng,
    ringbuf_events: u32,
    pub(crate) pkt_writes: u32,
    pkt_touched: bool,
}

/// Execute `prog` over `packet`.
///
/// `host_time_ns` is the host clock at packet-processing start; the
/// value `bpf_ktime_get_ns` returns advances with accumulated execution
/// cost, so two timestamps inside one run measure the code between them
/// — the effect the TS-TS / TS-D-RB reflection variants exist to expose.
#[allow(clippy::too_many_arguments)]
pub fn run(
    prog: &Program,
    packet: &mut Vec<u8>,
    ctx: XdpContext,
    maps: &mut MapSet,
    cost_model: &CostModel,
    host_time_ns: u64,
    cpu_id: u32,
    rng: &mut SimRng,
) -> RunResult {
    run_with(
        prog,
        None,
        STEP_LIMIT,
        packet,
        ctx,
        maps,
        cost_model,
        host_time_ns,
        cpu_id,
        rng,
    )
}

/// Execute `prog` with a verifier-derived instruction budget and an
/// optional basic-block cost plan.
///
/// `fuel` caps retired instructions: exceeding it traps to
/// [`Trap::InsnLimit`], the belt-and-braces bailout backing the
/// verifier's loop-bound proof. `plan` fuses per-instruction charges of
/// pure ALU blocks into one batch at block entry; totals are
/// bit-identical to the per-instruction path (see
/// [`crate::cost::BlockPlan`]).
#[allow(clippy::too_many_arguments)]
pub fn run_with(
    prog: &Program,
    plan: Option<&BlockPlan>,
    fuel: u64,
    packet: &mut Vec<u8>,
    ctx: XdpContext,
    maps: &mut MapSet,
    cost_model: &CostModel,
    host_time_ns: u64,
    cpu_id: u32,
    rng: &mut SimRng,
) -> RunResult {
    let mut m = Machine::new(
        packet,
        ctx,
        maps,
        cost_model,
        plan,
        fuel,
        host_time_ns,
        cpu_id,
        rng,
    );
    let outcome = m.exec(prog);
    finish(m, outcome)
}

/// Package an execution outcome into a [`RunResult`] (shared by the
/// interpreter and [`crate::lower`]'s lowered engine).
pub(crate) fn finish(m: Machine<'_>, outcome: Result<u64, Trap>) -> RunResult {
    let (action, trap) = match outcome {
        Ok(ret) => (XdpAction::from_ret(ret), None),
        Err(t) => (XdpAction::Aborted, Some(t)),
    };
    RunResult {
        action,
        cost: m.cost,
        ringbuf_events: m.ringbuf_events,
        pkt_writes: m.pkt_writes,
        trap,
    }
}

impl<'a> Machine<'a> {
    /// Fresh machine state for one packet, R1/R10 initialized per the
    /// XDP calling convention.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        packet: &'a mut Vec<u8>,
        ctx: XdpContext,
        maps: &'a mut MapSet,
        cost_model: &'a CostModel,
        plan: Option<&'a BlockPlan>,
        fuel: u64,
        host_time_ns: u64,
        cpu_id: u32,
        rng: &'a mut SimRng,
    ) -> Machine<'a> {
        let mut m = Machine {
            regs: [0; 11],
            stack: [0; STACK_SIZE],
            packet,
            ctx,
            maps,
            cost_model,
            plan,
            fuel: Fuel::new(fuel),
            prepaid: 0,
            cost: ExecCost::default(),
            derefs: Vec::new(),
            reservation: None,
            host_time_ns,
            cpu_id,
            rng,
            ringbuf_events: 0,
            pkt_writes: 0,
            pkt_touched: false,
        };
        m.regs[Reg::R1.idx()] = CTX_BASE;
        m.regs[Reg::R10.idx()] = STACK_TOP;
        m
    }

    fn exec(&mut self, prog: &Program) -> Result<u64, Trap> {
        let mut pc = 0usize;
        loop {
            self.fuel.tick()?;
            let insn = prog.insns.get(pc).ok_or(Trap::BadAddress(pc as u64))?;
            if self.prepaid > 0 {
                // Charged in bulk when this block was entered.
                self.prepaid -= 1;
            } else {
                let fused = self.plan.map(|p| p.fused_len(pc)).unwrap_or(0);
                if fused > 1 {
                    // Pure ALU block: batch the whole block's charges
                    // here. Repeated addition (never multiplication)
                    // keeps the f64 total bit-identical to the
                    // per-instruction path.
                    for _ in 0..fused {
                        self.cost.retire();
                        self.cost.charge(self.cost_model.alu_ns);
                    }
                    self.prepaid = fused as u64 - 1;
                } else {
                    self.cost.retire();
                    self.cost.charge(self.cost_model.insn_cost(insn));
                }
            }
            match *insn {
                Insn::MovImm(dst, imm) => {
                    self.regs[dst.idx()] = imm as u64;
                    pc += 1;
                }
                Insn::MovReg(dst, src) => {
                    self.regs[dst.idx()] = self.regs[src.idx()];
                    pc += 1;
                }
                Insn::Neg(dst) => {
                    self.regs[dst.idx()] = (self.regs[dst.idx()] as i64).wrapping_neg() as u64;
                    pc += 1;
                }
                Insn::AluImm(op, dst, imm) => {
                    self.regs[dst.idx()] = alu(op, self.regs[dst.idx()], imm as u64);
                    pc += 1;
                }
                Insn::AluReg(op, dst, src) => {
                    self.regs[dst.idx()] = alu(op, self.regs[dst.idx()], self.regs[src.idx()]);
                    pc += 1;
                }
                Insn::Load(size, dst, base, off) => {
                    let addr = self.regs[base.idx()].wrapping_add(off as i64 as u64);
                    self.regs[dst.idx()] = self.read(addr, size)?;
                    pc += 1;
                }
                Insn::Store(size, base, off, src) => {
                    let addr = self.regs[base.idx()].wrapping_add(off as i64 as u64);
                    let v = self.regs[src.idx()];
                    self.write(addr, size, v)?;
                    pc += 1;
                }
                Insn::StoreImm(size, base, off, imm) => {
                    let addr = self.regs[base.idx()].wrapping_add(off as i64 as u64);
                    self.write(addr, size, imm as u64)?;
                    pc += 1;
                }
                Insn::Ja(off) => {
                    // i64 math: verified back-edges have negative offsets.
                    pc = (pc as i64 + 1 + off as i64) as usize;
                }
                Insn::JmpImm(op, r, imm, off) => {
                    if cmp(op, self.regs[r.idx()], imm as u64) {
                        pc = (pc as i64 + 1 + off as i64) as usize;
                    } else {
                        pc += 1;
                    }
                }
                Insn::JmpReg(op, a, b, off) => {
                    if cmp(op, self.regs[a.idx()], self.regs[b.idx()]) {
                        pc = (pc as i64 + 1 + off as i64) as usize;
                    } else {
                        pc += 1;
                    }
                }
                Insn::Call(helper) => {
                    self.call(helper)?;
                    pc += 1;
                }
                Insn::Exit => return Ok(self.regs[Reg::R0.idx()]),
            }
        }
    }

    pub(crate) fn charge_mem(&mut self, class: MemClass) {
        if class == MemClass::Packet && !self.pkt_touched {
            self.pkt_touched = true;
            self.cost.charge(self.cost_model.pkt_cold_miss_ns);
        }
        self.cost.charge(self.cost_model.mem_cost(class));
    }

    fn read(&mut self, addr: u64, size: Size) -> Result<u64, Trap> {
        let n = size.bytes();
        // Hostile pointers can sit near u64::MAX; all range checks use
        // checked arithmetic (found by fuzzing, kept by this comment).
        let end = addr.checked_add(n as u64).ok_or(Trap::BadAddress(addr))?;
        // Context: typed pseudo-loads.
        if (CTX_BASE..CTX_BASE + 24).contains(&addr) {
            self.charge_mem(MemClass::Ctx);
            let off = (addr - CTX_BASE) as i16;
            return Ok(match (off, size) {
                (ctx_layout::DATA, Size::DW) => PKT_BASE,
                (ctx_layout::DATA_END, Size::DW) => PKT_BASE + self.packet.len() as u64,
                (ctx_layout::INGRESS_IFINDEX, Size::W) => self.ctx.ingress_ifindex as u64,
                (ctx_layout::RX_QUEUE, Size::W) => self.ctx.rx_queue as u64,
                _ => return Err(Trap::BadAddress(addr)),
            });
        }
        let mut buf = [0u8; 8];
        let src: &[u8] = if addr >= PKT_BASE && end <= PKT_BASE + self.packet.len() as u64 {
            self.charge_mem(MemClass::Packet);
            let o = (addr - PKT_BASE) as usize;
            &self.packet[o..o + n]
        } else if addr >= STACK_TOP - STACK_SIZE as u64 && end <= STACK_TOP {
            self.charge_mem(MemClass::Stack);
            let o = (addr - (STACK_TOP - STACK_SIZE as u64)) as usize;
            &self.stack[o..o + n]
        } else if addr >= RING_BASE && self.reservation.is_some() {
            self.charge_mem(MemClass::MapValue);
            let Some((_, buf_ref)) = self.reservation.as_ref() else {
                return Err(Trap::BadAddress(addr));
            };
            let o = (addr - RING_BASE) as usize;
            if o + n > buf_ref.len() {
                return Err(Trap::BadAddress(addr));
            }
            &buf_ref[o..o + n]
        } else if (MAPVAL_BASE..RING_BASE).contains(&addr) {
            self.charge_mem(MemClass::MapValue);
            let slot = ((addr - MAPVAL_BASE) / MAPVAL_STRIDE) as usize;
            let o = ((addr - MAPVAL_BASE) % MAPVAL_STRIDE) as usize;
            let val = self.deref_slot(slot).ok_or(Trap::BadAddress(addr))?;
            if o + n > val.len() {
                return Err(Trap::BadAddress(addr));
            }
            &val[o..o + n]
        } else {
            return Err(Trap::BadAddress(addr));
        };
        buf[..n].copy_from_slice(src);
        Ok(u64::from_le_bytes(buf))
    }

    fn write(&mut self, addr: u64, size: Size, v: u64) -> Result<(), Trap> {
        let n = size.bytes();
        let end = addr.checked_add(n as u64).ok_or(Trap::BadAddress(addr))?;
        let bytes = v.to_le_bytes();
        if addr >= PKT_BASE && end <= PKT_BASE + self.packet.len() as u64 {
            self.charge_mem(MemClass::Packet);
            self.pkt_writes += 1;
            let o = (addr - PKT_BASE) as usize;
            self.packet[o..o + n].copy_from_slice(&bytes[..n]);
            return Ok(());
        }
        if addr >= STACK_TOP - STACK_SIZE as u64 && end <= STACK_TOP {
            self.charge_mem(MemClass::Stack);
            let o = (addr - (STACK_TOP - STACK_SIZE as u64)) as usize;
            self.stack[o..o + n].copy_from_slice(&bytes[..n]);
            return Ok(());
        }
        if addr >= RING_BASE {
            if let Some((_, buf)) = &mut self.reservation {
                let o = (addr - RING_BASE) as usize;
                if o + n > buf.len() {
                    return Err(Trap::BadAddress(addr));
                }
                buf[o..o + n].copy_from_slice(&bytes[..n]);
                self.cost
                    .charge(self.cost_model.mem_cost(MemClass::MapValue));
                return Ok(());
            }
            return Err(Trap::BadAddress(addr));
        }
        if (MAPVAL_BASE..RING_BASE).contains(&addr) {
            self.charge_mem(MemClass::MapValue);
            let slot = ((addr - MAPVAL_BASE) / MAPVAL_STRIDE) as usize;
            let o = ((addr - MAPVAL_BASE) % MAPVAL_STRIDE) as usize;
            let val = self.deref_slot_mut(slot).ok_or(Trap::BadAddress(addr))?;
            if o + n > val.len() {
                return Err(Trap::BadAddress(addr));
            }
            val[o..o + n].copy_from_slice(&bytes[..n]);
            return Ok(());
        }
        Err(Trap::BadAddress(addr))
    }

    pub(crate) fn deref_slot(&self, slot: usize) -> Option<&[u8]> {
        match self.derefs.get(slot)? {
            DerefTarget::Array(fd, idx, cpu) => self.maps.get(*fd)?.array_lookup(*idx, *cpu),
            DerefTarget::Hash(fd, key) => self.maps.get(*fd)?.hash_lookup(key),
        }
    }

    pub(crate) fn deref_slot_mut(&mut self, slot: usize) -> Option<&mut [u8]> {
        match self.derefs.get(slot)? {
            DerefTarget::Array(fd, idx, cpu) => self
                .maps
                .get_mut(*fd)?
                .array_lookup_mut(*idx, *cpu)
                .map(|v| v.as_mut_slice()),
            DerefTarget::Hash(fd, key) => {
                let key = key.clone();
                let map = self.maps.get_mut(*fd)?;
                // No hash_lookup_mut on the public API; emulate via
                // re-insert-free interior access.
                map.hash_value_mut(&key)
            }
        }
    }

    /// Read `len` bytes from a virtual address (for helper data args).
    fn read_bytes(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, Trap> {
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let a = addr.checked_add(i as u64).ok_or(Trap::BadAddress(addr))?;
            let b = self.read(a, Size::B)?;
            out.push(b as u8);
        }
        Ok(out)
    }

    pub(crate) fn call(&mut self, helper: Helper) -> Result<(), Trap> {
        let r1 = self.regs[Reg::R1.idx()];
        let r2 = self.regs[Reg::R2.idx()];
        let r3 = self.regs[Reg::R3.idx()];
        match helper {
            Helper::KtimeGetNs => {
                self.cost
                    .charge(self.cost_model.helper_cost(helper, 0, false));
                // The clock a program reads advances with its own cost.
                self.regs[Reg::R0.idx()] = self.host_time_ns + self.cost.ns.round() as u64;
            }
            Helper::GetSmpProcessorId => {
                self.cost
                    .charge(self.cost_model.helper_cost(helper, 0, false));
                self.regs[Reg::R0.idx()] = self.cpu_id as u64;
            }
            Helper::GetPrandomU32 => {
                self.cost
                    .charge(self.cost_model.helper_cost(helper, 0, false));
                self.regs[Reg::R0.idx()] = self.rng.below(u32::MAX as u64 + 1);
            }
            Helper::MapLookup => {
                let fd = MapFd(r1 as u32);
                let kind = self
                    .maps
                    .get(fd)
                    .map(|m| m.kind.clone())
                    .ok_or(Trap::HelperFault(helper))?;
                let is_hash = matches!(kind, MapKind::Hash { .. });
                self.cost
                    .charge(self.cost_model.helper_cost(helper, 0, is_hash));
                let slot = self.derefs.len() as u64;
                let result = match kind {
                    MapKind::Array { max_entries, .. } => {
                        let idx = self.read(r2, Size::W)? as u32;
                        if (idx as usize) < max_entries {
                            self.derefs.push(DerefTarget::Array(fd, idx, 0));
                            MAPVAL_BASE + slot * MAPVAL_STRIDE
                        } else {
                            0
                        }
                    }
                    MapKind::PerCpuArray {
                        max_entries, cpus, ..
                    } => {
                        let idx = self.read(r2, Size::W)? as u32;
                        if (idx as usize) < max_entries && (self.cpu_id as usize) < cpus {
                            self.derefs
                                .push(DerefTarget::Array(fd, idx, self.cpu_id as usize));
                            MAPVAL_BASE + slot * MAPVAL_STRIDE
                        } else {
                            0
                        }
                    }
                    MapKind::Hash { key_size, .. } => {
                        let key = self.read_bytes(r2, key_size)?;
                        let present = self
                            .maps
                            .get(fd)
                            .map(|m| m.hash_lookup(&key).is_some())
                            .unwrap_or(false);
                        if present {
                            self.derefs.push(DerefTarget::Hash(fd, key));
                            MAPVAL_BASE + slot * MAPVAL_STRIDE
                        } else {
                            0
                        }
                    }
                    MapKind::RingBuf { .. } => return Err(Trap::HelperFault(helper)),
                };
                self.regs[Reg::R0.idx()] = result;
            }
            Helper::MapUpdate => {
                self.cost
                    .charge(self.cost_model.helper_cost(helper, 0, false));
                let fd = MapFd(r1 as u32);
                let kind = self
                    .maps
                    .get(fd)
                    .map(|m| m.kind.clone())
                    .ok_or(Trap::HelperFault(helper))?;
                let ret = match kind {
                    MapKind::Hash {
                        key_size,
                        value_size,
                        ..
                    } => {
                        let key = self.read_bytes(r2, key_size)?;
                        let value = self.read_bytes(r3, value_size)?;
                        self.maps
                            .get_mut(fd)
                            .map(|m| m.hash_update(&key, &value))
                            .unwrap_or(crate::maps::EINVAL)
                    }
                    MapKind::Array { value_size, .. } | MapKind::PerCpuArray { value_size, .. } => {
                        let idx = self.read(r2, Size::W)? as u32;
                        let value = self.read_bytes(r3, value_size)?;
                        let cpu = self.cpu_id as usize;
                        match self
                            .maps
                            .get_mut(fd)
                            .and_then(|m| m.array_lookup_mut(idx, cpu))
                        {
                            Some(v) => {
                                v.copy_from_slice(&value);
                                0
                            }
                            None => crate::maps::ENOENT,
                        }
                    }
                    MapKind::RingBuf { .. } => crate::maps::EINVAL,
                };
                self.regs[Reg::R0.idx()] = ret as u64;
            }
            Helper::RingbufReserve => {
                self.cost
                    .charge(self.cost_model.helper_cost(helper, 0, false));
                let fd = MapFd(r1 as u32);
                let len = r2 as usize;
                let ok = self
                    .maps
                    .get_mut(fd)
                    .map(|m| m.ring_reserve(len))
                    .unwrap_or(false);
                self.regs[Reg::R0.idx()] = if ok {
                    self.reservation = Some((fd, vec![0u8; len]));
                    RING_BASE
                } else {
                    0
                };
            }
            Helper::RingbufSubmit => {
                self.cost
                    .charge(self.cost_model.helper_cost(helper, 0, false));
                let Some((fd, buf)) = self.reservation.take() else {
                    return Err(Trap::HelperFault(helper));
                };
                if r1 != RING_BASE {
                    return Err(Trap::HelperFault(helper));
                }
                self.maps
                    .get_mut(fd)
                    .map(|m| m.ring_submit(buf))
                    .ok_or(Trap::HelperFault(helper))?;
                self.ringbuf_events += 1;
                self.regs[Reg::R0.idx()] = 0;
            }
            Helper::RingbufOutput => {
                let fd = MapFd(r1 as u32);
                let len = r3 as usize;
                self.cost
                    .charge(self.cost_model.helper_cost(helper, len, false));
                let data = self.read_bytes(r2, len)?;
                let ret = self
                    .maps
                    .get_mut(fd)
                    .map(|m| m.ring_output(&data))
                    .unwrap_or(crate::maps::EINVAL);
                if ret == 0 {
                    self.ringbuf_events += 1;
                }
                self.regs[Reg::R0.idx()] = ret as u64;
            }
            Helper::XdpAdjustHead => {
                self.cost
                    .charge(self.cost_model.helper_cost(helper, 0, false));
                let delta = r2 as i64;
                if delta < 0 {
                    let grow = (-delta) as usize;
                    if grow > 256 {
                        self.regs[Reg::R0.idx()] = -1i64 as u64;
                    } else {
                        let mut np = vec![0u8; grow];
                        np.extend_from_slice(self.packet);
                        *self.packet = np;
                        self.regs[Reg::R0.idx()] = 0;
                    }
                } else if (delta as usize) < self.packet.len() {
                    self.packet.drain(..delta as usize);
                    self.regs[Reg::R0.idx()] = 0;
                } else {
                    self.regs[Reg::R0.idx()] = -1i64 as u64;
                }
            }
            Helper::CsumDiff => {
                let len = (self.regs[Reg::R4.idx()] as usize).min(2048);
                self.cost
                    .charge(self.cost_model.helper_cost(helper, len, false));
                let to = self.regs[Reg::R3.idx()];
                let data = self.read_bytes(to, len)?;
                let mut sum: u32 = self.regs[Reg::R5.idx()] as u32;
                for chunk in data.chunks(2) {
                    let v = if chunk.len() == 2 {
                        u16::from_be_bytes([chunk[0], chunk[1]]) as u32
                    } else {
                        (chunk[0] as u32) << 8
                    };
                    sum = sum.wrapping_add(v);
                }
                while sum >> 16 != 0 {
                    sum = (sum & 0xffff) + (sum >> 16);
                }
                self.regs[Reg::R0.idx()] = sum as u64;
            }
        }
        Ok(())
    }
}

pub(crate) fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b).unwrap_or(0),
        AluOp::Mod => a.checked_rem(b).unwrap_or(0),
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Xor => a ^ b,
        AluOp::Lsh => a << (b & 63),
        AluOp::Rsh => a >> (b & 63),
        AluOp::Arsh => ((a as i64) >> (b & 63)) as u64,
    }
}

pub(crate) fn cmp(op: CmpOp, a: u64, b: u64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::SGt => (a as i64) > (b as i64),
        CmpOp::SLt => (a as i64) < (b as i64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::ProgramBuilder;

    fn run_simple(prog: &Program, packet: &mut Vec<u8>, maps: &mut MapSet) -> RunResult {
        let cm = CostModel::default();
        let mut rng = SimRng::seed_from_u64(1);
        run(
            prog,
            packet,
            XdpContext::default(),
            maps,
            &cm,
            1_000_000,
            0,
            &mut rng,
        )
    }

    #[test]
    fn returns_action() {
        let mut b = ProgramBuilder::new("pass");
        b.mov_imm(Reg::R0, XdpAction::Pass.code()).exit();
        let r = run_simple(&b.build(), &mut vec![0; 64], &mut MapSet::new());
        assert_eq!(r.action, XdpAction::Pass);
        assert!(r.trap.is_none());
        assert_eq!(r.cost.insns, 2);
    }

    #[test]
    fn mac_swap_reflect() {
        // Swap dst/src MACs byte-wise and return XDP_TX.
        let mut b = ProgramBuilder::new("swap");
        let fail = b.label();
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 12)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail);
        for i in 0..6i16 {
            b.load(Size::B, Reg::R5, Reg::R2, i)
                .load(Size::B, Reg::R0, Reg::R2, i + 6)
                .store(Size::B, Reg::R2, i, Reg::R0)
                .store(Size::B, Reg::R2, i + 6, Reg::R5);
        }
        b.mov_imm(Reg::R0, XdpAction::Tx.code())
            .exit()
            .bind(fail)
            .mov_imm(Reg::R0, XdpAction::Drop.code())
            .exit();
        let prog = b.build();
        crate::verifier::verify(&prog, &MapSet::new()).expect("verifies");

        let mut pkt = vec![0u8; 64];
        pkt[..6].copy_from_slice(&[1, 1, 1, 1, 1, 1]);
        pkt[6..12].copy_from_slice(&[2, 2, 2, 2, 2, 2]);
        let r = run_simple(&prog, &mut pkt, &mut MapSet::new());
        assert_eq!(r.action, XdpAction::Tx);
        assert_eq!(&pkt[..6], &[2, 2, 2, 2, 2, 2]);
        assert_eq!(&pkt[6..12], &[1, 1, 1, 1, 1, 1]);
        assert!(r.pkt_writes >= 12);
    }

    #[test]
    fn short_packet_takes_fail_branch() {
        let mut b = ProgramBuilder::new("bounds");
        let fail = b.label();
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 100)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail)
            .mov_imm(Reg::R0, XdpAction::Tx.code())
            .exit()
            .bind(fail)
            .mov_imm(Reg::R0, XdpAction::Drop.code())
            .exit();
        let r = run_simple(&b.build(), &mut vec![0; 64], &mut MapSet::new());
        assert_eq!(r.action, XdpAction::Drop);
    }

    #[test]
    fn ktime_advances_with_cost() {
        // r6 = time; <work>; r7 = time; r0 = r7 - r6  → must be > 0.
        let mut b = ProgramBuilder::new("tstd");
        b.call(Helper::KtimeGetNs).mov(Reg::R6, Reg::R0);
        for _ in 0..200 {
            b.alu_imm(AluOp::Add, Reg::R6, 0);
        }
        b.alu_imm(AluOp::Sub, Reg::R6, 0); // keep r6 = first ts
        b.call(Helper::KtimeGetNs)
            .mov(Reg::R0, Reg::R0)
            .alu(AluOp::Sub, Reg::R0, Reg::R6)
            .exit();
        let r = run_simple(&b.build(), &mut vec![0; 64], &mut MapSet::new());
        assert!(r.trap.is_none());
        // Result (in R0) is the measured delta; we can't read R0 from
        // outside, but the run must be costed more than two bare calls.
        let two_calls = CostModel::default().ktime_ns * 2.0;
        assert!(r.cost.ns > two_calls + 60.0, "cost.ns = {}", r.cost.ns);
    }

    #[test]
    fn ringbuf_reserve_submit_records() {
        let mut maps = MapSet::new();
        let rb = maps.create(MapKind::RingBuf { capacity: 4096 });
        let mut b = ProgramBuilder::new("rb");
        let full = b.label();
        b.mov_imm(Reg::R1, rb.0 as i64)
            .mov_imm(Reg::R2, 8)
            .call(Helper::RingbufReserve)
            .jmp_imm(CmpOp::Eq, Reg::R0, 0, full)
            .mov(Reg::R6, Reg::R0)
            .store_imm(Size::DW, Reg::R6, 0, 0x1122334455667788)
            .mov(Reg::R1, Reg::R6)
            .call(Helper::RingbufSubmit)
            .mov_imm(Reg::R0, XdpAction::Tx.code())
            .exit()
            .bind(full)
            .mov_imm(Reg::R0, XdpAction::Drop.code())
            .exit();
        let prog = b.build();
        crate::verifier::verify(&prog, &maps).expect("verifies");
        let r = run_simple(&prog, &mut vec![0; 64], &mut maps);
        assert_eq!(r.action, XdpAction::Tx);
        assert_eq!(r.ringbuf_events, 1);
        let recs = maps.get_mut(rb).unwrap().ring_drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(
            u64::from_le_bytes(recs[0][..8].try_into().unwrap()),
            0x1122334455667788
        );
    }

    #[test]
    fn array_map_lookup_and_write() {
        let mut maps = MapSet::new();
        let arr = maps.create(MapKind::Array {
            value_size: 8,
            max_entries: 4,
        });
        let mut b = ProgramBuilder::new("arr");
        let isnull = b.label();
        b.store_imm(Size::W, Reg::R10, -4, 2) // key = 2
            .mov_imm(Reg::R1, arr.0 as i64)
            .mov(Reg::R2, Reg::R10)
            .add_imm(Reg::R2, -4)
            .call(Helper::MapLookup)
            .jmp_imm(CmpOp::Eq, Reg::R0, 0, isnull)
            .store_imm(Size::DW, Reg::R0, 0, 777)
            .mov_imm(Reg::R0, XdpAction::Pass.code())
            .exit()
            .bind(isnull)
            .mov_imm(Reg::R0, XdpAction::Aborted.code())
            .exit();
        let prog = b.build();
        crate::verifier::verify(&prog, &maps).expect("verifies");
        let r = run_simple(&prog, &mut vec![0; 64], &mut maps);
        assert_eq!(r.action, XdpAction::Pass);
        let v = maps.get(arr).unwrap().array_lookup(2, 0).unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 777);
    }

    #[test]
    fn bad_address_traps_to_aborted() {
        let mut b = ProgramBuilder::new("bad");
        b.mov_imm(Reg::R2, 0x7777_7777)
            .load(Size::DW, Reg::R0, Reg::R2, 0)
            .exit();
        // Note: this program would NOT pass the verifier; running it
        // directly shows the runtime belt-and-braces check.
        let r = run_simple(&b.build(), &mut vec![0; 64], &mut MapSet::new());
        assert_eq!(r.action, XdpAction::Aborted);
        assert!(matches!(r.trap, Some(Trap::BadAddress(_))));
    }

    #[test]
    fn adjust_head_grows_and_shrinks() {
        let mut b = ProgramBuilder::new("adj");
        b.mov_imm(Reg::R2, -4i64)
            .call(Helper::XdpAdjustHead)
            .mov_imm(Reg::R0, XdpAction::Pass.code())
            .exit();
        let mut pkt = vec![9u8; 60];
        let r = run_simple(&b.build(), &mut pkt, &mut MapSet::new());
        assert_eq!(r.action, XdpAction::Pass);
        assert_eq!(pkt.len(), 64);
        assert_eq!(&pkt[..4], &[0, 0, 0, 0]);

        let mut b2 = ProgramBuilder::new("adj2");
        b2.mov_imm(Reg::R2, 10)
            .call(Helper::XdpAdjustHead)
            .mov_imm(Reg::R0, XdpAction::Pass.code())
            .exit();
        let mut pkt2 = vec![9u8; 60];
        run_simple(&b2.build(), &mut pkt2, &mut MapSet::new());
        assert_eq!(pkt2.len(), 50);
    }

    #[test]
    fn per_cpu_map_isolated_by_cpu() {
        let mut maps = MapSet::new();
        let arr = maps.create(MapKind::PerCpuArray {
            value_size: 8,
            max_entries: 1,
            cpus: 4,
        });
        let mk = |val: i64| {
            let mut b = ProgramBuilder::new("pc");
            let isnull = b.label();
            b.store_imm(Size::W, Reg::R10, -4, 0)
                .mov_imm(Reg::R1, arr.0 as i64)
                .mov(Reg::R2, Reg::R10)
                .add_imm(Reg::R2, -4)
                .call(Helper::MapLookup)
                .jmp_imm(CmpOp::Eq, Reg::R0, 0, isnull)
                .store_imm(Size::DW, Reg::R0, 0, val)
                .mov_imm(Reg::R0, 2)
                .exit()
                .bind(isnull)
                .mov_imm(Reg::R0, 0)
                .exit();
            b.build()
        };
        let cm = CostModel::default();
        let mut rng = SimRng::seed_from_u64(1);
        for cpu in 0..2u32 {
            run(
                &mk(100 + cpu as i64),
                &mut vec![0; 64],
                XdpContext::default(),
                &mut maps,
                &cm,
                0,
                cpu,
                &mut rng,
            );
        }
        let m = maps.get(arr).unwrap();
        assert_eq!(
            u64::from_le_bytes(m.array_lookup(0, 0).unwrap().try_into().unwrap()),
            100
        );
        assert_eq!(
            u64::from_le_bytes(m.array_lookup(0, 1).unwrap().try_into().unwrap()),
            101
        );
    }

    #[test]
    fn fused_block_costs_bit_identical() {
        // Mixed program: pure ALU runs, packet loads, a branch, and a
        // helper call — the fused plan must reproduce the per-insn
        // totals exactly, down to the f64 bit pattern.
        let mut b = ProgramBuilder::new("fused");
        let fail = b.label();
        b.load(Size::DW, Reg::R2, Reg::R1, ctx_layout::DATA)
            .load(Size::DW, Reg::R3, Reg::R1, ctx_layout::DATA_END)
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, 14)
            .jmp_reg(CmpOp::Gt, Reg::R4, Reg::R3, fail);
        for _ in 0..37 {
            b.alu_imm(AluOp::Add, Reg::R6, 3);
        }
        b.load(Size::B, Reg::R5, Reg::R2, 7)
            .call(Helper::KtimeGetNs)
            .mov_imm(Reg::R0, XdpAction::Pass.code())
            .exit()
            .bind(fail)
            .mov_imm(Reg::R0, XdpAction::Drop.code())
            .exit();
        let prog = b.build();
        let plan = crate::cost::BlockPlan::new(&prog);
        let cm = CostModel::default();
        let mut rng_a = SimRng::seed_from_u64(7);
        let mut rng_b = SimRng::seed_from_u64(7);
        let mut pkt_a = vec![0xAB; 64];
        let mut pkt_b = vec![0xAB; 64];
        let a = run(
            &prog,
            &mut pkt_a,
            XdpContext::default(),
            &mut MapSet::new(),
            &cm,
            5,
            0,
            &mut rng_a,
        );
        let f = run_with(
            &prog,
            Some(&plan),
            STEP_LIMIT,
            &mut pkt_b,
            XdpContext::default(),
            &mut MapSet::new(),
            &cm,
            5,
            0,
            &mut rng_b,
        );
        assert_eq!(a.action, f.action);
        assert_eq!(a.cost.insns, f.cost.insns);
        assert_eq!(a.cost.ns.to_bits(), f.cost.ns.to_bits());
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let mut b = ProgramBuilder::new("fuel");
        b.mov_imm(Reg::R0, 0);
        let head = b.here();
        b.alu_imm(AluOp::Add, Reg::R0, 1)
            .jmp_imm(CmpOp::Lt, Reg::R0, 1000, head)
            .exit();
        let prog = b.build();
        let cm = CostModel::default();
        let go = |fuel: u64| {
            let mut rng = SimRng::seed_from_u64(1);
            run_with(
                &prog,
                None,
                fuel,
                &mut vec![0; 64],
                XdpContext::default(),
                &mut MapSet::new(),
                &cm,
                0,
                0,
                &mut rng,
            )
        };
        let ok = go(10_000);
        assert!(ok.trap.is_none());
        assert_eq!(ok.cost.insns, 2 + 2 * 1000);
        let starved = go(100);
        assert_eq!(starved.trap, Some(Trap::InsnLimit));
        assert_eq!(starved.action, XdpAction::Aborted);
        // Boundary contract of the shared Fuel helper: a budget of n
        // admits exactly n retired instructions; the (n+1)th traps.
        // The lowered engine's twin lives in lower.rs.
        let exact = go(2 + 2 * 1000);
        assert!(exact.trap.is_none(), "exactly-at-limit run must pass");
        assert_eq!(exact.cost.insns, 2 + 2 * 1000);
        let short = go(2 + 2 * 1000 - 1);
        assert_eq!(short.trap, Some(Trap::InsnLimit));
    }

    #[test]
    fn cost_grows_with_program_size() {
        let small = {
            let mut b = ProgramBuilder::new("s");
            b.mov_imm(Reg::R0, 2).exit();
            b.build()
        };
        let big = {
            let mut b = ProgramBuilder::new("b");
            b.mov_imm(Reg::R0, 2);
            for _ in 0..100 {
                b.alu_imm(AluOp::Add, Reg::R0, 0);
            }
            b.mov_imm(Reg::R0, 2).exit();
            b.build()
        };
        let rs = run_simple(&small, &mut vec![0; 64], &mut MapSet::new());
        let rb = run_simple(&big, &mut vec![0; 64], &mut MapSet::new());
        assert!(rb.cost.ns > rs.cost.ns + 30.0);
        assert!(rb.cost.insns > rs.cost.insns + 100);
    }
}
