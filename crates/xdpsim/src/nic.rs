//! NIC and PCIe latency models.
//!
//! §2.1 cites two host-side findings this module reproduces: PCIe
//! contributes **more than 90 % of total NIC latency for small
//! packets** (Neugebauer et al.), and I/O memory management (IOMMU)
//! adds further fixed cost per DMA. Industrial frames are 20–250 bytes,
//! squarely in the regime where the per-transaction cost dominates the
//! per-byte cost.

use steelworks_netsim::time::NanoDur;

/// PCIe interconnect model (per DMA transaction).
#[derive(Clone, Debug)]
pub struct PcieModel {
    /// Fixed transaction latency (TLP round trip, ordering, credits).
    pub base_ns: f64,
    /// Per-byte transfer cost at the effective link rate.
    pub per_byte_ns: f64,
    /// Doorbell write (posted, but serializing on the device).
    pub doorbell_ns: f64,
    /// IOMMU translation cost per mapped transaction.
    pub iommu_ns: f64,
}

impl Default for PcieModel {
    fn default() -> Self {
        // Anchored to published end-host measurements: the full
        // descriptor fetch + DMA + writeback round trip costs ~1.8 µs
        // on a Gen3 x8 NIC behind an IOMMU; ~0.16 ns/B payload cost.
        PcieModel {
            base_ns: 1_800.0,
            per_byte_ns: 0.16,
            doorbell_ns: 900.0,
            iommu_ns: 420.0,
        }
    }
}

impl PcieModel {
    /// One DMA of `bytes` payload, including translation.
    pub fn dma_ns(&self, bytes: usize) -> f64 {
        self.base_ns + self.iommu_ns + self.per_byte_ns * bytes as f64
    }
}

/// Whole-NIC latency model for the XDP native path.
#[derive(Clone, Debug)]
pub struct NicModel {
    /// MAC/PHY receive pipeline.
    pub mac_rx_ns: f64,
    /// MAC/PHY transmit pipeline.
    pub mac_tx_ns: f64,
    /// Descriptor fetch/writeback bookkeeping per packet.
    pub descriptor_ns: f64,
    /// The PCIe interconnect.
    pub pcie: PcieModel,
}

impl Default for NicModel {
    fn default() -> Self {
        NicModel {
            mac_rx_ns: 700.0,
            mac_tx_ns: 650.0,
            descriptor_ns: 300.0,
            pcie: PcieModel::default(),
        }
    }
}

impl NicModel {
    /// Wire-to-memory latency for a received frame of `len` bytes
    /// (MAC + descriptor + DMA write of payload + completion).
    pub fn rx_latency(&self, len: usize) -> NanoDur {
        let ns = self.mac_rx_ns + self.descriptor_ns + self.pcie.dma_ns(len);
        NanoDur(ns.round() as u64)
    }

    /// Memory-to-wire latency for a transmitted frame (doorbell + DMA
    /// read + MAC).
    pub fn tx_latency(&self, len: usize) -> NanoDur {
        let ns =
            self.pcie.doorbell_ns + self.pcie.dma_ns(len) + self.descriptor_ns + self.mac_tx_ns;
        NanoDur(ns.round() as u64)
    }

    /// Fraction of one-way RX latency attributable to PCIe (the §2.1
    /// ">90 % for small packets" claim is checked against this in the
    /// challenge bench).
    pub fn pcie_fraction_rx(&self, len: usize) -> f64 {
        let pcie = self.pcie.dma_ns(len);
        pcie / (self.mac_rx_ns + self.descriptor_ns + pcie)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_packets_dominated_by_pcie() {
        let nic = NicModel::default();
        // For a 64-byte industrial frame the per-transaction PCIe cost
        // must dominate the MAC pipeline.
        let frac = nic.pcie_fraction_rx(64);
        assert!(frac > 0.65, "pcie fraction {frac}");
        // And the fraction shrinks as payload grows only mildly (the
        // per-byte term is also PCIe), so it stays high.
        assert!(nic.pcie_fraction_rx(1500) > 0.6);
    }

    #[test]
    fn latency_increases_with_size() {
        let nic = NicModel::default();
        assert!(nic.rx_latency(1500) > nic.rx_latency(64));
        assert!(nic.tx_latency(1500) > nic.tx_latency(64));
    }

    #[test]
    fn small_frame_latency_order_micros() {
        let nic = NicModel::default();
        let rx = nic.rx_latency(64).as_nanos();
        let tx = nic.tx_latency(64).as_nanos();
        // One-way costs are in the 2.5–5 µs band for small frames.
        assert!((2_500..5_000).contains(&rx), "rx={rx}");
        assert!((2_500..5_000).contains(&tx), "tx={tx}");
    }

    #[test]
    fn dma_cost_linear_in_bytes() {
        let p = PcieModel::default();
        let d0 = p.dma_ns(0);
        let d1000 = p.dma_ns(1000);
        assert!((d1000 - d0 - 160.0).abs() < 1e-9);
    }
}
