//! The eBPF-like instruction set.
//!
//! A faithful subset of the eBPF ISA expressed as a typed IR instead of
//! a binary encoding: eleven registers, 64-bit ALU, sized loads/stores,
//! forward conditional jumps, helper calls and `Exit`. Floating point
//! does not exist — exactly like real eBPF, where the verifier bans it
//! and industrial users care because FP is a non-determinism source.

/// One of the eleven eBPF registers.
///
/// Conventions match the kernel: `R0` return value, `R1..R5` arguments
/// (scratch across calls), `R6..R9` callee-saved, `R10` read-only frame
/// pointer to the top of the 512-byte stack.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Reg {
    /// Return value / scratch.
    R0,
    /// Argument 1 — holds the context pointer on entry.
    R1,
    /// Argument 2.
    R2,
    /// Argument 3.
    R3,
    /// Argument 4.
    R4,
    /// Argument 5.
    R5,
    /// Callee-saved.
    R6,
    /// Callee-saved.
    R7,
    /// Callee-saved.
    R8,
    /// Callee-saved.
    R9,
    /// Frame pointer (read-only).
    R10,
}

impl Reg {
    /// Register index 0..=10.
    pub fn idx(self) -> usize {
        match self {
            Reg::R0 => 0,
            Reg::R1 => 1,
            Reg::R2 => 2,
            Reg::R3 => 3,
            Reg::R4 => 4,
            Reg::R5 => 5,
            Reg::R6 => 6,
            Reg::R7 => 7,
            Reg::R8 => 8,
            Reg::R9 => 9,
            Reg::R10 => 10,
        }
    }

    /// All registers in index order.
    pub const ALL: [Reg; 11] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
    ];
}

/// 64-bit ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (verifier requires a provably non-zero divisor).
    Div,
    /// Unsigned remainder (same divisor rule).
    Mod,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Lsh,
    /// Logical shift right.
    Rsh,
    /// Arithmetic shift right.
    Arsh,
}

/// Comparison predicates for conditional jumps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// unsigned `>`
    Gt,
    /// unsigned `>=`
    Ge,
    /// unsigned `<`
    Lt,
    /// unsigned `<=`
    Le,
    /// signed `>`
    SGt,
    /// signed `<`
    SLt,
}

/// Memory access width.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Size {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    DW,
}

impl Size {
    /// Width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Size::B => 1,
            Size::H => 2,
            Size::W => 4,
            Size::DW => 8,
        }
    }
}

/// Kernel helper functions callable from programs.
///
/// Each helper has a semantic implementation in [`crate::vm`] and a
/// latency entry in [`crate::cost::CostModel`] — the cost asymmetry
/// between helpers is exactly what the paper's Traffic Reflection
/// experiment (Fig. 4) surfaces.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Helper {
    /// `bpf_ktime_get_ns()` → R0 = current host-clock time.
    KtimeGetNs,
    /// `bpf_map_lookup_elem(map_fd: R1, key_ptr: R2)` → R0 = value ptr or 0.
    MapLookup,
    /// `bpf_map_update_elem(map_fd: R1, key_ptr: R2, value_ptr: R3)` → R0 = 0/err.
    MapUpdate,
    /// `bpf_ringbuf_output(map_fd: R1, data_ptr: R2, len: R3)` → R0 = 0/err.
    RingbufOutput,
    /// `bpf_ringbuf_reserve(map_fd: R1, len: R2)` → R0 = ptr or 0.
    RingbufReserve,
    /// `bpf_ringbuf_submit(ptr: R1)` → R0 = 0.
    RingbufSubmit,
    /// `bpf_xdp_adjust_head(ctx: R1, delta: R2)` → R0 = 0/err.
    XdpAdjustHead,
    /// `bpf_get_smp_processor_id()` → R0 = cpu id.
    GetSmpProcessorId,
    /// `bpf_csum_diff(from: R1, from_len: R2, to: R3, to_len: R4, seed: R5)` → R0.
    CsumDiff,
    /// `bpf_get_prandom_u32()` → R0.
    GetPrandomU32,
}

/// One instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Insn {
    /// `dst = imm`
    MovImm(Reg, i64),
    /// `dst = src`
    MovReg(Reg, Reg),
    /// `dst = dst <op> imm`
    AluImm(AluOp, Reg, i64),
    /// `dst = dst <op> src`
    AluReg(AluOp, Reg, Reg),
    /// `dst = -dst`
    Neg(Reg),
    /// `dst = *(size*)(base + off)`
    Load(Size, Reg, Reg, i16),
    /// `*(size*)(base + off) = src`
    Store(Size, Reg, i16, Reg),
    /// `*(size*)(base + off) = imm`
    StoreImm(Size, Reg, i16, i64),
    /// Unconditional forward jump by `off` instructions (relative to next).
    Ja(i16),
    /// `if dst <op> imm { pc += off }`
    JmpImm(CmpOp, Reg, i64, i16),
    /// `if dst <op> src { pc += off }`
    JmpReg(CmpOp, Reg, Reg, i16),
    /// Call a helper.
    Call(Helper),
    /// Return R0 to the runtime.
    Exit,
}

/// Assembly spelling of an ALU opcode (`+=`, `<<=`, ...).
pub(crate) fn alu_sym(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "+=",
        AluOp::Sub => "-=",
        AluOp::Mul => "*=",
        AluOp::Div => "/=",
        AluOp::Mod => "%=",
        AluOp::Or => "|=",
        AluOp::And => "&=",
        AluOp::Xor => "^=",
        AluOp::Lsh => "<<=",
        AluOp::Rsh => ">>=",
        AluOp::Arsh => "s>>=",
    }
}

/// C-style type name for a memory access width.
pub(crate) fn sz_sym(s: Size) -> &'static str {
    match s {
        Size::B => "u8",
        Size::H => "u16",
        Size::W => "u32",
        Size::DW => "u64",
    }
}

/// Assembly spelling of a comparison predicate.
pub(crate) fn cmp_sym(c: CmpOp) -> &'static str {
    match c {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::SGt => "s>",
        CmpOp::SLt => "s<",
    }
}

impl std::fmt::Display for Insn {
    /// One instruction in bpftool-flavoured assembly. Jump offsets are
    /// rendered *relative* (`goto +2`, `goto -3`) because a lone
    /// instruction has no program position; [`crate::prog::Program`]'s
    /// disassembly resolves them to absolute targets instead.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Insn::MovImm(d, v) => write!(f, "{d:?} = {v}"),
            Insn::MovReg(d, s) => write!(f, "{d:?} = {s:?}"),
            Insn::Neg(d) => write!(f, "{d:?} = -{d:?}"),
            Insn::AluImm(op, d, v) => write!(f, "{d:?} {} {v}", alu_sym(*op)),
            Insn::AluReg(op, d, s) => write!(f, "{d:?} {} {s:?}", alu_sym(*op)),
            Insn::Load(sz, d, b, off) => {
                write!(f, "{d:?} = *({}*)({b:?} {off:+})", sz_sym(*sz))
            }
            Insn::Store(sz, b, off, s) => {
                write!(f, "*({}*)({b:?} {off:+}) = {s:?}", sz_sym(*sz))
            }
            Insn::StoreImm(sz, b, off, v) => {
                write!(f, "*({}*)({b:?} {off:+}) = {v}", sz_sym(*sz))
            }
            Insn::Ja(off) => write!(f, "goto {off:+}"),
            Insn::JmpImm(op, r, v, off) => {
                write!(f, "if {r:?} {} {v} goto {off:+}", cmp_sym(*op))
            }
            Insn::JmpReg(op, a, b, off) => {
                write!(f, "if {a:?} {} {b:?} goto {off:+}", cmp_sym(*op))
            }
            Insn::Call(h) => write!(f, "call {h:?}"),
            Insn::Exit => f.write_str("exit"),
        }
    }
}

/// Hard limit on program length (mirrors the kernel's insn budget
/// for unprivileged programs).
pub const MAX_INSNS: usize = 4096;

/// XDP return codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum XdpAction {
    /// Error in the program; packet is dropped and the event counted.
    Aborted,
    /// Drop the packet.
    Drop,
    /// Pass up the regular stack.
    Pass,
    /// Bounce back out the ingress interface.
    Tx,
    /// Send out another interface (unsupported target ⇒ drop).
    Redirect,
}

impl XdpAction {
    /// Decode a program's R0 on exit; unknown values abort (as in the
    /// kernel, where an out-of-range action is treated as an error).
    pub fn from_ret(v: u64) -> XdpAction {
        match v {
            0 => XdpAction::Aborted,
            1 => XdpAction::Drop,
            2 => XdpAction::Pass,
            3 => XdpAction::Tx,
            4 => XdpAction::Redirect,
            _ => XdpAction::Aborted,
        }
    }

    /// The numeric return value a program must place in R0.
    pub fn code(self) -> i64 {
        match self {
            XdpAction::Aborted => 0,
            XdpAction::Drop => 1,
            XdpAction::Pass => 2,
            XdpAction::Tx => 3,
            XdpAction::Redirect => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_indices_dense() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.idx(), i);
        }
    }

    #[test]
    fn size_bytes() {
        assert_eq!(Size::B.bytes(), 1);
        assert_eq!(Size::H.bytes(), 2);
        assert_eq!(Size::W.bytes(), 4);
        assert_eq!(Size::DW.bytes(), 8);
    }

    #[test]
    fn display_relative_jumps() {
        assert_eq!(Insn::Ja(-2).to_string(), "goto -2");
        assert_eq!(
            Insn::JmpImm(CmpOp::Ge, Reg::R8, 10, 2).to_string(),
            "if R8 >= 10 goto +2"
        );
        assert_eq!(
            Insn::JmpReg(CmpOp::Lt, Reg::R8, Reg::R4, -5).to_string(),
            "if R8 < R4 goto -5"
        );
        assert_eq!(
            Insn::Load(Size::B, Reg::R0, Reg::R2, 0).to_string(),
            "R0 = *(u8*)(R2 +0)"
        );
        assert_eq!(Insn::AluImm(AluOp::Add, Reg::R8, 1).to_string(), "R8 += 1");
        assert_eq!(Insn::Exit.to_string(), "exit");
    }

    #[test]
    fn action_roundtrip() {
        for a in [
            XdpAction::Aborted,
            XdpAction::Drop,
            XdpAction::Pass,
            XdpAction::Tx,
            XdpAction::Redirect,
        ] {
            assert_eq!(XdpAction::from_ret(a.code() as u64), a);
        }
        assert_eq!(XdpAction::from_ret(99), XdpAction::Aborted);
    }
}
