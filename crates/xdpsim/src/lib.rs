//! # steelworks-xdpsim
//!
//! An eBPF/XDP substrate for timing studies: a typed eBPF-like ISA, a
//! kernel-style static verifier, array/hash/per-CPU/ring-buffer maps,
//! an interpreter that charges a per-operation cost model, and host /
//! NIC / PCIe latency models that together reproduce the timing
//! behaviour the paper's Traffic Reflection method (§3, Fig. 4)
//! measures on real hardware.
//!
//! ## Layers
//!
//! 1. [`insn`] / [`prog`] — the ISA and a label-resolving assembler.
//! 2. [`verifier`] — abstract interpretation enforcing the classic
//!    eBPF safety rules (bounds checks, null checks, init tracking).
//! 3. [`maps`] / [`vm`] / [`lower`] — program state, the costed
//!    interpreter, and the verifier-informed compiled engine.
//! 4. [`cost`] / [`host`] / [`nic`] — the timing stack: deterministic
//!    instruction costs, stochastic host noise, NIC+PCIe latency.
//! 5. [`xdp`] — an [`steelworks_netsim::node::Device`] wiring it all
//!    into the network simulator.
//! 6. [`programs`] — the paper's six reflection program variants.
//!
//! ```
//! use steelworks_xdpsim::programs::{reflect_variant, standard_maps, ReflectVariant};
//! use steelworks_xdpsim::verifier::verify;
//!
//! let (maps, rb) = standard_maps();
//! let prog = reflect_variant(ReflectVariant::TsRb, rb);
//! verify(&prog, &maps).expect("all shipped variants pass the verifier");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod host;
pub mod insn;
pub mod interval;
pub mod lower;
pub mod maps;
pub mod nic;
pub mod prog;
pub mod programs;
pub mod verifier;
pub mod vm;
pub mod xdp;

/// Convenient glob import.
pub mod prelude {
    pub use crate::cost::{CostModel, ExecCost};
    pub use crate::host::{HostClock, HostProfile, KernelKind};
    pub use crate::insn::{AluOp, CmpOp, Helper, Insn, Reg, Size, XdpAction};
    pub use crate::maps::{BpfMap, MapFd, MapKind, MapSet};
    pub use crate::nic::{NicModel, PcieModel};
    pub use crate::prog::{Program, ProgramBuilder};
    pub use crate::programs::{
        loop_variant, reflect_variant, rt_filter, rt_filter_allow, rt_filter_count, standard_maps,
        LoopVariant, ReflectVariant,
    };
    pub use crate::interval::Interval;
    pub use crate::lower::{lower, run_lowered, LowerError, LoweredProgram};
    pub use crate::verifier::{
        reject_info, verify, verify_with_proof, AccessFact, Proof, RejectInfo, VerifyError,
        VerifyKind, VerifyStats, REJECT_CODES,
    };
    pub use crate::vm::{run, RunResult, Trap, XdpContext};
    pub use crate::xdp::{XdpHost, XdpStats};
}
