//! The process image: the PLC's view of the world.
//!
//! Classic IEC 61131 addressing — `%I` input bits, `%Q` output bits,
//! `%M` memory (flag) bits — over byte arrays that map 1:1 onto the
//! cyclic protocol's data payloads: the input area is what arrives from
//! the I/O device each cycle, the output area is what the PLC sends.

/// Bit-addressable byte area.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitArea {
    bytes: Vec<u8>,
}

impl BitArea {
    /// A zeroed area of `len` bytes.
    pub fn new(len: usize) -> Self {
        BitArea {
            bytes: vec![0; len],
        }
    }

    /// Read bit `bit` (0..8) of byte `byte`. Out-of-range reads return
    /// false (fail-safe: absent inputs read as off).
    pub fn get(&self, byte: u16, bit: u8) -> bool {
        self.bytes
            .get(byte as usize)
            .map(|b| b & (1 << (bit & 7)) != 0)
            .unwrap_or(false)
    }

    /// Write a bit (out-of-range writes are ignored).
    pub fn set(&mut self, byte: u16, bit: u8, v: bool) {
        if let Some(b) = self.bytes.get_mut(byte as usize) {
            if v {
                *b |= 1 << (bit & 7);
            } else {
                *b &= !(1 << (bit & 7));
            }
        }
    }

    /// Raw bytes (for the cyclic frame payload).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Overwrite from a received payload (shorter payloads leave the
    /// tail untouched; longer ones are truncated).
    pub fn load(&mut self, data: &[u8]) {
        let n = data.len().min(self.bytes.len());
        self.bytes[..n].copy_from_slice(&data[..n]);
    }

    /// Force everything to zero — the safe state.
    pub fn clear(&mut self) {
        self.bytes.fill(0);
    }

    /// Area size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True for a zero-length area.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// The full process image of one PLC or I/O device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessImage {
    /// `%I` — inputs read from the field.
    pub inputs: BitArea,
    /// `%Q` — outputs driven to the field.
    pub outputs: BitArea,
    /// `%M` — internal flags.
    pub memory: BitArea,
}

impl ProcessImage {
    /// Image with the given area sizes (bytes).
    pub fn new(input_len: usize, output_len: usize, memory_len: usize) -> Self {
        ProcessImage {
            inputs: BitArea::new(input_len),
            outputs: BitArea::new(output_len),
            memory: BitArea::new(memory_len),
        }
    }

    /// Outputs to the safe state (all off), as on watchdog expiry.
    pub fn safe_state(&mut self) {
        self.outputs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_get_set() {
        let mut a = BitArea::new(2);
        a.set(0, 3, true);
        a.set(1, 7, true);
        assert!(a.get(0, 3));
        assert!(a.get(1, 7));
        assert!(!a.get(0, 2));
        a.set(0, 3, false);
        assert!(!a.get(0, 3));
    }

    #[test]
    fn out_of_range_is_fail_safe() {
        let mut a = BitArea::new(1);
        assert!(!a.get(5, 0));
        a.set(5, 0, true); // ignored
        assert_eq!(a.bytes(), &[0]);
    }

    #[test]
    fn load_partial_and_truncated() {
        let mut a = BitArea::new(4);
        a.load(&[1, 2]);
        assert_eq!(a.bytes(), &[1, 2, 0, 0]);
        a.load(&[9, 9, 9, 9, 9, 9]);
        assert_eq!(a.bytes(), &[9, 9, 9, 9]);
    }

    #[test]
    fn safe_state_clears_outputs_only() {
        let mut img = ProcessImage::new(2, 2, 2);
        img.inputs.set(0, 0, true);
        img.outputs.set(0, 0, true);
        img.memory.set(0, 0, true);
        img.safe_state();
        assert!(img.inputs.get(0, 0));
        assert!(!img.outputs.get(0, 0));
        assert!(img.memory.get(0, 0));
    }
}
