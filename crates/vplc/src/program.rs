//! PLC logic: an IEC 61131-3 Instruction List dialect.
//!
//! The accumulator-based IL subset every PLC programmer knows: load,
//! boolean combine, store, set/reset, plus on-delay timers and up
//! counters. Programs run to completion inside one scan — there are no
//! loops, matching the bounded-scan-time guarantee real PLCs give.

use crate::image::ProcessImage;
use steelworks_netsim::time::{NanoDur, Nanos};

/// A bit operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// `%Ix.y` input bit.
    I(u16, u8),
    /// `%Qx.y` output bit.
    Q(u16, u8),
    /// `%Mx.y` memory bit.
    M(u16, u8),
    /// A constant.
    Const(bool),
}

/// One IL instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IlInsn {
    /// Load operand into the accumulator.
    Ld(Operand),
    /// Load negated.
    LdN(Operand),
    /// AND the accumulator with the operand.
    And(Operand),
    /// AND with the negated operand.
    AndN(Operand),
    /// OR.
    Or(Operand),
    /// OR with negated operand.
    OrN(Operand),
    /// XOR.
    Xor(Operand),
    /// Negate the accumulator.
    Not,
    /// Store the accumulator to the operand.
    St(Operand),
    /// Store the negated accumulator.
    StN(Operand),
    /// Set (latch) if accumulator true.
    Set(Operand),
    /// Reset (unlatch) if accumulator true.
    Rst(Operand),
    /// On-delay timer: output becomes true once the accumulator has
    /// been continuously true for `preset`. Result replaces the
    /// accumulator (like `TON` followed by `LD T.Q`).
    Ton {
        /// Timer index.
        idx: u8,
        /// Delay preset.
        preset: NanoDur,
    },
    /// Count rising edges of the accumulator; accumulator becomes
    /// `count >= preset`.
    Ctu {
        /// Counter index.
        idx: u8,
        /// Target count.
        preset: u32,
    },
}

/// Timer/counter state carried across scans.
#[derive(Clone, Debug, Default)]
pub struct PlcState {
    timers: Vec<Option<Nanos>>, // when the input became true
    counters: Vec<(bool, u32)>, // (last input, count)
}

impl PlcState {
    /// State sized for `timers`/`counters` instances.
    pub fn new(timers: usize, counters: usize) -> Self {
        PlcState {
            timers: vec![None; timers],
            counters: vec![(false, 0); counters],
        }
    }

    /// Reset all dynamic state (warm restart).
    pub fn reset(&mut self) {
        self.timers.fill(None);
        self.counters.fill((false, 0));
    }

    /// Current count of counter `idx`.
    pub fn count(&self, idx: u8) -> u32 {
        self.counters
            .get(idx as usize)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }
}

/// A PLC program: a straight-line list of IL instructions.
#[derive(Clone, Debug, Default)]
pub struct PlcProgram {
    /// The instruction list.
    pub insns: Vec<IlInsn>,
}

impl PlcProgram {
    /// From an instruction list.
    pub fn new(insns: Vec<IlInsn>) -> Self {
        PlcProgram { insns }
    }

    /// A program that copies `n` input bytes' bit 0 to output bit 0 —
    /// the minimal "pass-through" logic used in connectivity tests.
    pub fn passthrough(n: u16) -> Self {
        let mut insns = Vec::new();
        for byte in 0..n {
            insns.push(IlInsn::Ld(Operand::I(byte, 0)));
            insns.push(IlInsn::St(Operand::Q(byte, 0)));
        }
        PlcProgram::new(insns)
    }

    /// Execute one scan over the image at time `now`.
    pub fn scan(&self, image: &mut ProcessImage, state: &mut PlcState, now: Nanos) {
        let mut acc = false;
        for insn in &self.insns {
            match *insn {
                IlInsn::Ld(op) => acc = read(image, op),
                IlInsn::LdN(op) => acc = !read(image, op),
                IlInsn::And(op) => acc &= read(image, op),
                IlInsn::AndN(op) => acc &= !read(image, op),
                IlInsn::Or(op) => acc |= read(image, op),
                IlInsn::OrN(op) => acc |= !read(image, op),
                IlInsn::Xor(op) => acc ^= read(image, op),
                IlInsn::Not => acc = !acc,
                IlInsn::St(op) => write(image, op, acc),
                IlInsn::StN(op) => write(image, op, !acc),
                IlInsn::Set(op) => {
                    if acc {
                        write(image, op, true);
                    }
                }
                IlInsn::Rst(op) => {
                    if acc {
                        write(image, op, false);
                    }
                }
                IlInsn::Ton { idx, preset } => {
                    // Instances allocate on demand (bounded by the u8
                    // index), so a program/state size mismatch cannot
                    // fault the scan.
                    if state.timers.len() <= idx as usize {
                        state.timers.resize(idx as usize + 1, None);
                    }
                    let slot = &mut state.timers[idx as usize];
                    if acc {
                        let started = slot.get_or_insert(now);
                        acc = now.saturating_since(*started) >= preset;
                    } else {
                        *slot = None;
                        acc = false;
                    }
                }
                IlInsn::Ctu { idx, preset } => {
                    if state.counters.len() <= idx as usize {
                        state.counters.resize(idx as usize + 1, (false, 0));
                    }
                    let slot = &mut state.counters[idx as usize];
                    if acc && !slot.0 {
                        slot.1 += 1;
                    }
                    slot.0 = acc;
                    acc = slot.1 >= preset;
                }
            }
        }
    }

    /// Number of instructions (drives the scan-time model).
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True for the empty program.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}

/// Scan-time model of a soft-PLC runtime: fixed overhead (I/O copy,
/// housekeeping) plus a per-instruction execution cost. Real vendors
/// publish exactly these two constants ("base scan time" and "µs per
/// 1K boolean instructions").
#[derive(Clone, Copy, Debug)]
pub struct ScanTimeModel {
    /// Fixed per-scan overhead.
    pub base: NanoDur,
    /// Cost per IL instruction.
    pub per_insn: NanoDur,
}

impl Default for ScanTimeModel {
    fn default() -> Self {
        // A containerized soft PLC on commodity x86.
        ScanTimeModel {
            base: NanoDur::from_micros(40),
            per_insn: NanoDur(150),
        }
    }
}

impl ScanTimeModel {
    /// Scan time of one program.
    pub fn scan_time(&self, program: &PlcProgram) -> NanoDur {
        self.base + self.per_insn * program.len() as u64
    }

    /// Largest program (instructions) that still fits a cycle budget,
    /// e.g. for commissioning checks against 2.1's cycle times.
    pub fn max_insns_for_cycle(&self, cycle: NanoDur) -> u64 {
        if cycle <= self.base {
            return 0;
        }
        (cycle - self.base).as_nanos() / self.per_insn.as_nanos().max(1)
    }
}

fn read(image: &ProcessImage, op: Operand) -> bool {
    match op {
        Operand::I(b, i) => image.inputs.get(b, i),
        Operand::Q(b, i) => image.outputs.get(b, i),
        Operand::M(b, i) => image.memory.get(b, i),
        Operand::Const(v) => v,
    }
}

fn write(image: &mut ProcessImage, op: Operand, v: bool) {
    match op {
        Operand::I(b, i) => image.inputs.set(b, i, v),
        Operand::Q(b, i) => image.outputs.set(b, i, v),
        Operand::M(b, i) => image.memory.set(b, i, v),
        Operand::Const(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use IlInsn::*;
    use Operand::*;

    fn scan_once(prog: &PlcProgram, image: &mut ProcessImage) {
        let mut st = PlcState::new(4, 4);
        prog.scan(image, &mut st, Nanos::ZERO);
    }

    #[test]
    fn and_or_logic() {
        // Q0.0 = (I0.0 AND I0.1) OR I0.2
        let prog = PlcProgram::new(vec![Ld(I(0, 0)), And(I(0, 1)), Or(I(0, 2)), St(Q(0, 0))]);
        let mut img = ProcessImage::new(1, 1, 1);
        img.inputs.set(0, 0, true);
        scan_once(&prog, &mut img);
        assert!(!img.outputs.get(0, 0));
        img.inputs.set(0, 1, true);
        scan_once(&prog, &mut img);
        assert!(img.outputs.get(0, 0));
        img.inputs.load(&[0]);
        img.inputs.set(0, 2, true);
        scan_once(&prog, &mut img);
        assert!(img.outputs.get(0, 0));
    }

    #[test]
    fn set_reset_latch() {
        // Start button I0.0 sets motor Q0.0; stop button I0.1 resets it.
        let prog = PlcProgram::new(vec![Ld(I(0, 0)), Set(Q(0, 0)), Ld(I(0, 1)), Rst(Q(0, 0))]);
        let mut img = ProcessImage::new(1, 1, 1);
        let mut st = PlcState::new(0, 0);
        img.inputs.set(0, 0, true);
        prog.scan(&mut img, &mut st, Nanos::ZERO);
        assert!(img.outputs.get(0, 0), "latched on");
        img.inputs.set(0, 0, false);
        prog.scan(&mut img, &mut st, Nanos::ZERO);
        assert!(img.outputs.get(0, 0), "stays on");
        img.inputs.set(0, 1, true);
        prog.scan(&mut img, &mut st, Nanos::ZERO);
        assert!(!img.outputs.get(0, 0), "reset");
    }

    #[test]
    fn ton_delays_activation() {
        // Q0.0 = TON(I0.0, 10ms)
        let prog = PlcProgram::new(vec![
            Ld(I(0, 0)),
            Ton {
                idx: 0,
                preset: NanoDur::from_millis(10),
            },
            St(Q(0, 0)),
        ]);
        let mut img = ProcessImage::new(1, 1, 1);
        let mut st = PlcState::new(1, 0);
        img.inputs.set(0, 0, true);
        prog.scan(&mut img, &mut st, Nanos::from_millis(0));
        assert!(!img.outputs.get(0, 0));
        prog.scan(&mut img, &mut st, Nanos::from_millis(5));
        assert!(!img.outputs.get(0, 0));
        prog.scan(&mut img, &mut st, Nanos::from_millis(10));
        assert!(img.outputs.get(0, 0));
        // Dropping the input resets the timer.
        img.inputs.set(0, 0, false);
        prog.scan(&mut img, &mut st, Nanos::from_millis(11));
        assert!(!img.outputs.get(0, 0));
        img.inputs.set(0, 0, true);
        prog.scan(&mut img, &mut st, Nanos::from_millis(12));
        assert!(!img.outputs.get(0, 0), "timer restarted");
    }

    #[test]
    fn ctu_counts_rising_edges() {
        // Q0.0 = CTU(I0.0) >= 3
        let prog = PlcProgram::new(vec![Ld(I(0, 0)), Ctu { idx: 0, preset: 3 }, St(Q(0, 0))]);
        let mut img = ProcessImage::new(1, 1, 1);
        let mut st = PlcState::new(0, 1);
        for i in 0..3 {
            img.inputs.set(0, 0, true);
            prog.scan(&mut img, &mut st, Nanos::ZERO);
            let expect = i == 2;
            assert_eq!(img.outputs.get(0, 0), expect, "pulse {i}");
            img.inputs.set(0, 0, false);
            prog.scan(&mut img, &mut st, Nanos::ZERO);
        }
        assert_eq!(st.count(0), 3);
        // Holding the input high does not count again.
        img.inputs.set(0, 0, true);
        prog.scan(&mut img, &mut st, Nanos::ZERO);
        prog.scan(&mut img, &mut st, Nanos::ZERO);
        assert_eq!(st.count(0), 4);
    }

    #[test]
    fn passthrough_copies_bits() {
        let prog = PlcProgram::passthrough(2);
        let mut img = ProcessImage::new(2, 2, 0);
        img.inputs.set(0, 0, true);
        img.inputs.set(1, 0, true);
        scan_once(&prog, &mut img);
        assert!(img.outputs.get(0, 0));
        assert!(img.outputs.get(1, 0));
    }

    #[test]
    fn scan_time_scales_with_program() {
        let m = ScanTimeModel::default();
        let small = PlcProgram::passthrough(2);
        let big = PlcProgram::passthrough(200);
        assert!(m.scan_time(&big) > m.scan_time(&small));
        assert_eq!(
            m.scan_time(&small),
            NanoDur::from_micros(40) + NanoDur(150) * 4
        );
    }

    #[test]
    fn max_insns_budget() {
        let m = ScanTimeModel::default();
        // 500 µs machine-tool cycle (§2.1): (500-40)µs / 150ns ≈ 3066.
        assert_eq!(m.max_insns_for_cycle(NanoDur::from_micros(500)), 3066);
        assert_eq!(m.max_insns_for_cycle(NanoDur::from_micros(10)), 0);
    }

    #[test]
    fn state_reset() {
        let mut st = PlcState::new(2, 2);
        st.counters[0] = (true, 5);
        st.timers[0] = Some(Nanos(100));
        st.reset();
        assert_eq!(st.count(0), 0);
        assert!(st.timers[0].is_none());
    }
}
