//! The virtual PLC device: scan cycle + cyclic protocol + failure
//! injection, runnable inside the network simulator.
//!
//! A vPLC is a controller CR endpoint driven by a cycle timer: each
//! cycle it scans its logic over the process image (inputs were updated
//! by arriving cyclic frames) and transmits its outputs. Crash/restore
//! timers model the VM/container failures InstaPLC exists to mask.

use crate::image::ProcessImage;
use crate::program::{PlcProgram, PlcState, ScanTimeModel};
use steelworks_netsim::bytes::Bytes;
use steelworks_netsim::frame::{ethertype, EthFrame, MacAddr, VlanTag};
use steelworks_netsim::node::{Ctx, Device, PortId};
use steelworks_netsim::stats::BinnedSeries;
use steelworks_netsim::time::{NanoDur, Nanos};
use steelworks_rtnet::connection::{ControllerCr, ControllerState, CrEvent};
use steelworks_rtnet::frame::{CrParams, DataStatus, FrameId, RtPayload};

/// Timer token: run one PLC cycle.
const TOKEN_CYCLE: u64 = 1;
/// Timer token: begin connection establishment.
const TOKEN_START: u64 = 2;
/// Timer token: transmit scan-delayed outputs.
const TOKEN_FLUSH: u64 = 3;
/// Injectable token: crash the vPLC (stops all transmission).
pub const VPLC_CRASH_TOKEN: u64 = 0xC0;
/// Injectable token: restore a crashed vPLC (reconnects).
pub const VPLC_RESTORE_TOKEN: u64 = 0xC1;

/// Counters exported by a [`VplcDevice`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VplcStats {
    /// Cyclic data frames transmitted.
    pub cyclic_sent: u64,
    /// Cyclic data frames received.
    pub cyclic_received: u64,
    /// Times our consumer watchdog expired.
    pub watchdog_expirations: u64,
    /// Times we (re-)entered the Running state.
    pub connects: u64,
    /// Alarms received from the device.
    pub alarms: u64,
}

/// A virtual PLC.
#[derive(Debug)]
pub struct VplcDevice {
    name: String,
    /// Our MAC.
    pub mac: MacAddr,
    /// The I/O device (or switch-presented twin) we control.
    pub target: MacAddr,
    cr: ControllerCr,
    program: PlcProgram,
    image: ProcessImage,
    plc_state: PlcState,
    /// Extra uniform jitter per cycle (virtualization stack quality).
    pub scan_jitter: NanoDur,
    /// Scan-time model: outputs leave one scan time after cycle start.
    pub scan_model: ScanTimeModel,
    /// Delay before the first connect attempt.
    pub start_delay: NanoDur,
    running: bool,
    crashed: bool,
    stats: VplcStats,
    pending_out: Vec<(Nanos, RtPayload)>,
    /// Cyclic frames sent per time bin (Fig. 5a's view from the vPLC).
    pub sent_series: BinnedSeries,
}

impl VplcDevice {
    /// A vPLC controlling `target` with the given CR parameters,
    /// running `program`.
    pub fn new(
        name: impl Into<String>,
        mac: MacAddr,
        target: MacAddr,
        frame_id: FrameId,
        params: CrParams,
        program: PlcProgram,
    ) -> Self {
        let image = ProcessImage::new(params.input_len as usize, params.output_len as usize, 16);
        VplcDevice {
            name: name.into(),
            mac,
            target,
            cr: ControllerCr::new(frame_id, params),
            program,
            image,
            plc_state: PlcState::new(16, 16),
            scan_jitter: NanoDur::ZERO,
            scan_model: ScanTimeModel::default(),
            start_delay: NanoDur::ZERO,
            running: true,
            crashed: false,
            stats: VplcStats::default(),
            pending_out: Vec::new(),
            sent_series: BinnedSeries::new(NanoDur::from_millis(50)),
        }
    }

    /// Delay the first connect (builder style) — lets a secondary come
    /// up after the primary.
    pub fn with_start_delay(mut self, d: NanoDur) -> Self {
        self.start_delay = d;
        self
    }

    /// Add per-cycle scan jitter (builder style).
    pub fn with_scan_jitter(mut self, j: NanoDur) -> Self {
        self.scan_jitter = j;
        self
    }

    /// Counters.
    pub fn stats(&self) -> VplcStats {
        self.stats
    }

    /// Connection state.
    pub fn cr_state(&self) -> ControllerState {
        self.cr.state()
    }

    /// The process image (inspect outputs/inputs in tests).
    pub fn image(&self) -> &ProcessImage {
        &self.image
    }

    /// Mutable image access (test stimulus).
    pub fn image_mut(&mut self) -> &mut ProcessImage {
        &mut self.image
    }

    /// Is the vPLC crashed?
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The scan time of this vPLC's program under its model.
    pub fn scan_time(&self) -> NanoDur {
        self.scan_model.scan_time(&self.program)
    }

    fn send_payload(&mut self, ctx: &mut Ctx<'_>, payload: &RtPayload) {
        if let RtPayload::CyclicData { .. } = payload {
            self.stats.cyclic_sent += 1;
            self.sent_series.record(ctx.now());
        }
        let frame = EthFrame::new(
            self.target,
            self.mac,
            ethertype::INDUSTRIAL_RT,
            payload.to_bytes(),
        )
        .with_vlan(VlanTag::RT);
        ctx.send(PortId(0), frame);
    }

    fn handle_events(&mut self, events: Vec<CrEvent>) {
        for ev in events {
            match ev {
                CrEvent::Connected => self.stats.connects += 1,
                CrEvent::Data { data, .. } => {
                    self.stats.cyclic_received += 1;
                    self.image.inputs.load(&data);
                }
                CrEvent::WatchdogExpired => self.stats.watchdog_expirations += 1,
                CrEvent::Alarm(_) => self.stats.alarms += 1,
                _ => {}
            }
        }
    }
}

impl Device for VplcDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.timer_in(self.start_delay, TOKEN_START);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: EthFrame) {
        if frame.ethertype != ethertype::INDUSTRIAL_RT || self.crashed {
            return;
        }
        let Ok(payload) = RtPayload::parse(&frame.payload) else {
            return;
        };
        let events = self.cr.on_payload(ctx.now(), &payload);
        self.handle_events(events);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_START => {
                if self.crashed {
                    return;
                }
                let req = self.cr.start(ctx.now());
                self.send_payload(ctx, &req);
                let cycle = self.cr.params.cycle_time;
                ctx.timer_in(cycle, TOKEN_CYCLE);
            }
            TOKEN_CYCLE => {
                if self.crashed || !self.running {
                    return;
                }
                let now = ctx.now();
                // Scan: inputs were loaded by arriving frames. The
                // scan time itself is bounded by the cycle — panic
                // loudly if commissioning got that wrong.
                let scan = self.scan_model.scan_time(&self.program);
                assert!(
                    scan < self.cr.params.cycle_time,
                    "{}: scan time {scan} exceeds cycle {}",
                    self.name,
                    self.cr.params.cycle_time
                );
                self.program.scan(&mut self.image, &mut self.plc_state, now);
                let outputs = self.image.outputs.bytes().to_vec();
                let (payloads, events) = self.cr.tick(now, &outputs, DataStatus::running_primary());
                self.handle_events(events);
                // Outputs leave the station one scan time into the
                // cycle (the classic read–execute–write phase shift).
                for p in payloads {
                    self.pending_out.push((now + scan, p));
                }
                ctx.timer_at(now + scan, TOKEN_FLUSH);
                let mut next = self.cr.params.cycle_time;
                if self.scan_jitter.as_nanos() > 0 {
                    next += NanoDur(ctx.rng().below(self.scan_jitter.as_nanos() + 1));
                }
                ctx.timer_in(next, TOKEN_CYCLE);
            }
            TOKEN_FLUSH => {
                if self.crashed {
                    self.pending_out.clear();
                    return;
                }
                let now = ctx.now();
                let mut rest = Vec::new();
                for (at, p) in std::mem::take(&mut self.pending_out) {
                    if at <= now {
                        self.send_payload(ctx, &p);
                    } else {
                        rest.push((at, p));
                    }
                }
                self.pending_out = rest;
            }
            VPLC_CRASH_TOKEN => {
                self.crashed = true;
                self.pending_out.clear();
            }
            VPLC_RESTORE_TOKEN if self.crashed => {
                self.crashed = false;
                self.plc_state.reset();
                // Re-establish from scratch, like a restarted pod.
                self.cr = ControllerCr::new(self.cr.frame_id, self.cr.params);
                let req = self.cr.start(ctx.now());
                self.send_payload(ctx, &req);
                ctx.timer_in(self.cr.params.cycle_time, TOKEN_CYCLE);
            }
            _ => {}
        }
    }
}

/// Build the cyclic frame a twin/monitor would expect from this CR —
/// exposed for tests and for InstaPLC's twin construction.
pub fn cyclic_frame(
    src: MacAddr,
    dst: MacAddr,
    frame_id: FrameId,
    cycle: u16,
    data: &[u8],
) -> EthFrame {
    let payload = RtPayload::CyclicData {
        frame_id,
        cycle,
        status: DataStatus::running_primary(),
        data: Bytes::from(data.to_vec()),
    };
    EthFrame::new(dst, src, ethertype::INDUSTRIAL_RT, payload.to_bytes()).with_vlan(VlanTag::RT)
}
