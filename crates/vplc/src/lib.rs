//! # steelworks-vplc
//!
//! The virtual-PLC substrate: IEC 61131-style logic over a process
//! image, a scan-cycle runtime speaking the `steelworks-rtnet` cyclic
//! protocol, I/O devices backed by physical process models, failure
//! injection, and the classical redundancy baselines (hardware pairs,
//! Kubernetes-orchestrated standbys) InstaPLC is compared against.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod image;
pub mod iodevice;
pub mod program;
pub mod redundancy;
pub mod runtime;

/// Convenient glob import.
pub mod prelude {
    pub use crate::image::{BitArea, ProcessImage};
    pub use crate::iodevice::{ConveyorProcess, IoDevice, IoStats, LoopbackProcess, ProcessModel};
    pub use crate::program::{IlInsn, Operand, PlcProgram, PlcState, ScanTimeModel};
    pub use crate::redundancy::{takeover, HeartbeatMonitor, PairCoordinator, Role};
    pub use crate::runtime::{
        cyclic_frame, VplcDevice, VplcStats, VPLC_CRASH_TOKEN, VPLC_RESTORE_TOKEN,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use steelworks_netsim::prelude::*;
    use steelworks_rtnet::connection::{ControllerState, DeviceState};
    use steelworks_rtnet::frame::{CrParams, FrameId};

    fn params() -> CrParams {
        CrParams {
            cycle_time: NanoDur::from_millis(2),
            watchdog_factor: 3,
            output_len: 2,
            input_len: 2,
        }
    }

    fn pair(seed: u64) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(seed);
        let plc_mac = MacAddr::local(1);
        let io_mac = MacAddr::local(2);
        let plc = sim.add_node(VplcDevice::new(
            "plc1",
            plc_mac,
            io_mac,
            FrameId(0x8001),
            params(),
            PlcProgram::passthrough(2),
        ));
        let io = sim.add_node(IoDevice::new(
            "io1",
            io_mac,
            (2, 2),
            Box::new(LoopbackProcess),
        ));
        sim.connect(plc, PortId(0), io, PortId(0), LinkSpec::industrial_100m());
        (sim, plc, io)
    }

    #[test]
    fn end_to_end_connect_and_cyclic() {
        let (mut sim, plc, io) = pair(1);
        sim.run_until(Nanos::from_millis(100));
        let p = sim.node_ref::<VplcDevice>(plc);
        let d = sim.node_ref::<IoDevice>(io);
        assert_eq!(p.cr_state(), ControllerState::Running);
        assert_eq!(d.cr_state(), DeviceState::Running);
        // ~50 cycles of 2 ms in 100 ms, minus connect setup.
        assert!(p.stats().cyclic_sent >= 45, "{:?}", p.stats());
        assert!(d.stats().cyclic_sent >= 45, "{:?}", d.stats());
        assert!(p.stats().cyclic_received >= 45);
        assert_eq!(d.stats().safe_state_entries, 0);
        assert_eq!(p.stats().watchdog_expirations, 0);
    }

    #[test]
    fn crash_halts_device_via_watchdog() {
        let (mut sim, plc, io) = pair(2);
        sim.inject_timer(plc, Nanos::from_millis(50), VPLC_CRASH_TOKEN);
        sim.run_until(Nanos::from_millis(100));
        let d = sim.node_ref::<IoDevice>(io);
        assert_eq!(d.cr_state(), DeviceState::SafeState);
        assert_eq!(d.stats().safe_state_entries, 1);
        // Device stopped at ~56 ms (3 missed 2 ms cycles), so it sent
        // far fewer frames than the full run would produce.
        assert!(d.stats().cyclic_sent < 35);
    }

    #[test]
    fn restore_reconnects_and_recovers() {
        let (mut sim, plc, io) = pair(3);
        sim.inject_timer(plc, Nanos::from_millis(50), VPLC_CRASH_TOKEN);
        sim.inject_timer(plc, Nanos::from_millis(150), VPLC_RESTORE_TOKEN);
        sim.run_until(Nanos::from_millis(300));
        let p = sim.node_ref::<VplcDevice>(plc);
        let d = sim.node_ref::<IoDevice>(io);
        assert_eq!(p.cr_state(), ControllerState::Running);
        assert_eq!(d.cr_state(), DeviceState::Running);
        assert!(p.stats().connects >= 2, "reconnected after restore");
    }

    #[test]
    fn loopback_process_reflects_outputs() {
        // Program drives Q1.0 high every scan; the loopback process
        // mirrors actuators to sensors, so I1.0 must come back high.
        let mut sim = Simulator::new(4);
        let plc_mac = MacAddr::local(1);
        let io_mac = MacAddr::local(2);
        let prog = PlcProgram::new(vec![
            IlInsn::Ld(Operand::Const(true)),
            IlInsn::St(Operand::Q(1, 0)),
        ]);
        let plc = sim.add_node(VplcDevice::new(
            "plc1",
            plc_mac,
            io_mac,
            FrameId(0x8001),
            params(),
            prog,
        ));
        let io = sim.add_node(IoDevice::new(
            "io1",
            io_mac,
            (2, 2),
            Box::new(LoopbackProcess),
        ));
        sim.connect(plc, PortId(0), io, PortId(0), LinkSpec::industrial_100m());
        sim.run_until(Nanos::from_millis(40));
        let p = sim.node_ref::<VplcDevice>(plc);
        // Q1.0 -> actuator -> loopback sensor -> input I1.0.
        assert!(p.image().inputs.get(1, 0), "bit travelled the loop");
    }

    #[test]
    fn conveyor_runs_while_controlled() {
        let mut sim = Simulator::new(5);
        let plc_mac = MacAddr::local(1);
        let io_mac = MacAddr::local(2);
        // Program: motor on (Q0.0 = 1) unconditionally.
        let prog = PlcProgram::new(vec![
            IlInsn::Ld(Operand::Const(true)),
            IlInsn::St(Operand::Q(0, 0)),
        ]);
        let plc = sim.add_node(VplcDevice::new(
            "plc1",
            plc_mac,
            io_mac,
            FrameId(0x8001),
            params(),
            prog,
        ));
        let io = sim.add_node(IoDevice::new(
            "io1",
            io_mac,
            (2, 2),
            Box::new(ConveyorProcess::new()),
        ));
        sim.connect(plc, PortId(0), io, PortId(0), LinkSpec::industrial_100m());
        sim.run_until(Nanos::from_secs(5));
        let d = sim.node_ref::<IoDevice>(io);
        let conveyor = d.process_ref::<ConveyorProcess>();
        // 5 s at 0.5 m/s = 2.5 m of belt; items every 0.4 m reaching
        // the photoeye at 1.0 m → ~(2.5-1.0)/0.4 ≈ 3-4 delivered.
        assert!(
            conveyor.delivered() >= 2 && conveyor.delivered() <= 6,
            "delivered = {}",
            conveyor.delivered()
        );
    }

    #[test]
    fn conveyor_stops_on_crash() {
        let mut sim = Simulator::new(6);
        let plc_mac = MacAddr::local(1);
        let io_mac = MacAddr::local(2);
        let prog = PlcProgram::new(vec![
            IlInsn::Ld(Operand::Const(true)),
            IlInsn::St(Operand::Q(0, 0)),
        ]);
        let plc = sim.add_node(VplcDevice::new(
            "plc1",
            plc_mac,
            io_mac,
            FrameId(0x8001),
            params(),
            prog,
        ));
        let io = sim.add_node(IoDevice::new(
            "io1",
            io_mac,
            (2, 2),
            Box::new(ConveyorProcess::new()),
        ));
        sim.connect(plc, PortId(0), io, PortId(0), LinkSpec::industrial_100m());
        sim.inject_timer(plc, Nanos::from_secs(2), VPLC_CRASH_TOKEN);
        sim.run_until(Nanos::from_secs(10));
        let d = sim.node_ref::<IoDevice>(io);
        assert_eq!(d.cr_state(), DeviceState::SafeState);
        let delivered = d.process_ref::<ConveyorProcess>().delivered();
        // Belt ran ~2 s: ≈1 m of travel → at most ~1 item delivered;
        // certainly not the ~11 a 10 s run would produce.
        assert!(delivered <= 2, "delivered = {delivered}");
    }

    #[test]
    fn lossy_link_survives_below_watchdog() {
        // 20% loss: with watchdog factor 3, P(3 consecutive losses) is
        // 0.8% per cycle — over 500 cycles expirations are likely but
        // recovery must follow; the connection stays usable overall.
        let mut sim = Simulator::new(7);
        let plc_mac = MacAddr::local(1);
        let io_mac = MacAddr::local(2);
        let plc = sim.add_node(VplcDevice::new(
            "plc1",
            plc_mac,
            io_mac,
            FrameId(0x8001),
            params(),
            PlcProgram::passthrough(2),
        ));
        let io = sim.add_node(IoDevice::new(
            "io1",
            io_mac,
            (2, 2),
            Box::new(LoopbackProcess),
        ));
        sim.connect(
            plc,
            PortId(0),
            io,
            PortId(0),
            LinkSpec::industrial_100m().with_faults(FaultSpec::lossy(0.2)),
        );
        sim.run_until(Nanos::from_secs(1));
        let p = sim.node_ref::<VplcDevice>(plc);
        let d = sim.node_ref::<IoDevice>(io);
        // Most cycles still flow.
        assert!(p.stats().cyclic_received > 300);
        assert!(d.stats().cyclic_received > 300);
    }
}
