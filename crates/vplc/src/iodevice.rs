//! I/O devices and the physical processes behind them.
//!
//! An I/O device terminates the cyclic protocol on the field side:
//! actuator bytes arrive from the controller, sensor bytes go back, and
//! a [`ProcessModel`] turns actuator state into sensor state with
//! physical dynamics. On watchdog expiry the device forces its
//! actuators to the safe state — the "STOP" the paper's Fig. 2 draws on
//! every production cell.

use crate::image::BitArea;
use steelworks_netsim::frame::{ethertype, EthFrame, MacAddr, VlanTag};
use steelworks_netsim::node::{Ctx, Device, PortId};
use steelworks_netsim::stats::BinnedSeries;
use steelworks_netsim::time::{NanoDur, Nanos};
use steelworks_rtnet::connection::{CrEvent, DeviceCr, DeviceState};
use steelworks_rtnet::frame::RtPayload;

/// A physical process driven by actuators, observed by sensors.
pub trait ProcessModel: steelworks_netsim::node::AsAny + 'static {
    /// Advance by `dt`; read actuator bits, write sensor bits.
    fn step(&mut self, now: Nanos, dt: NanoDur, actuators: &BitArea, sensors: &mut BitArea);

    /// Actuators were forced safe (process keeps evolving physically).
    fn on_safe_state(&mut self) {}
}

/// Sensors mirror actuators (loopback) — the standard conformance rig.
#[derive(Debug)]
pub struct LoopbackProcess;

impl ProcessModel for LoopbackProcess {
    fn step(&mut self, _now: Nanos, _dt: NanoDur, actuators: &BitArea, sensors: &mut BitArea) {
        sensors.load(actuators.bytes());
    }
}

/// A conveyor: actuator bit 0.0 runs the motor; items advance with the
/// belt and trip a photoeye (sensor bit 0.0) in front of the stopper.
/// Sensor byte 1 counts delivered items (low 8 bits).
#[derive(Debug)]
pub struct ConveyorProcess {
    /// Belt speed in metres/second while the motor runs.
    pub speed_m_s: f64,
    /// Photoeye window position (metres from item spawn).
    pub photoeye_at_m: f64,
    /// Items appear this far apart (metres of belt travel).
    pub item_spacing_m: f64,
    belt_pos_m: f64,
    next_item_at_m: f64,
    items: Vec<f64>,
    delivered: u64,
}

impl ConveyorProcess {
    /// A conveyor with typical cell dimensions.
    pub fn new() -> Self {
        ConveyorProcess {
            speed_m_s: 0.5,
            photoeye_at_m: 1.0,
            item_spacing_m: 0.4,
            belt_pos_m: 0.0,
            next_item_at_m: 0.0,
            items: Vec::new(),
            delivered: 0,
        }
    }

    /// Items that have passed the photoeye.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

impl Default for ConveyorProcess {
    fn default() -> Self {
        ConveyorProcess::new()
    }
}

impl ProcessModel for ConveyorProcess {
    fn step(&mut self, _now: Nanos, dt: NanoDur, actuators: &BitArea, sensors: &mut BitArea) {
        let motor_on = actuators.get(0, 0);
        if motor_on {
            let advance = self.speed_m_s * dt.as_secs_f64();
            self.belt_pos_m += advance;
            for item in &mut self.items {
                *item += advance;
            }
            while self.belt_pos_m >= self.next_item_at_m {
                self.items.push(self.belt_pos_m - self.next_item_at_m);
                self.next_item_at_m += self.item_spacing_m;
            }
        }
        // Photoeye: item within ±2 cm of the eye.
        let eye = self
            .items
            .iter()
            .any(|&p| (p - self.photoeye_at_m).abs() < 0.02);
        sensors.set(0, 0, eye);
        let before = self.items.len();
        self.items.retain(|&p| p <= self.photoeye_at_m + 0.02);
        self.delivered += (before - self.items.len()) as u64;
        sensors.set(1, 0, self.delivered & 1 != 0);
        // Expose the delivered count's low bits in sensor byte 1.
        let count = (self.delivered & 0xFF) as u8;
        for bit in 0..8 {
            sensors.set(1, bit, count & (1 << bit) != 0);
        }
    }
}

/// Counters exported by an [`IoDevice`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Cyclic frames received from the controller.
    pub cyclic_received: u64,
    /// Cyclic frames sent.
    pub cyclic_sent: u64,
    /// Safe-state entries (watchdog expirations).
    pub safe_state_entries: u64,
    /// Connects accepted.
    pub connects: u64,
}

impl std::fmt::Debug for IoDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoDevice")
            .field("name", &self.name)
            .field("mac", &self.mac)
            .field("controller_mac", &self.controller_mac)
            .finish_non_exhaustive()
    }
}

/// An I/O device on the factory network.
pub struct IoDevice {
    name: String,
    /// Device MAC.
    pub mac: MacAddr,
    cr: DeviceCr,
    process: Box<dyn ProcessModel>,
    actuators: BitArea,
    sensors: BitArea,
    controller_mac: Option<MacAddr>,
    last_step: Nanos,
    stats: IoStats,
    /// Cyclic frames received per 50 ms bin — Fig. 5b's "To I/O" view.
    pub received_series: BinnedSeries,
}

const TOKEN_CYCLE: u64 = 1;

impl IoDevice {
    /// An I/O device with the given process behind it.
    pub fn new(
        name: impl Into<String>,
        mac: MacAddr,
        io_len: (usize, usize),
        process: Box<dyn ProcessModel>,
    ) -> Self {
        IoDevice {
            name: name.into(),
            mac,
            cr: DeviceCr::new(),
            process,
            actuators: BitArea::new(io_len.0),
            sensors: BitArea::new(io_len.1),
            controller_mac: None,
            last_step: Nanos::ZERO,
            stats: IoStats::default(),
            received_series: BinnedSeries::new(NanoDur::from_millis(50)),
        }
    }

    /// Counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Protocol state.
    pub fn cr_state(&self) -> DeviceState {
        self.cr.state()
    }

    /// Borrow the process model downcast (test inspection).
    pub fn process_ref<T: ProcessModel>(&self) -> &T {
        (*self.process)
            .as_any()
            .downcast_ref::<T>()
            // steelcheck: allow(unwrap-in-lib): typed-accessor API: wrong T is a caller bug by documented contract
            .expect("process type mismatch")
    }

    fn send_payload(&mut self, ctx: &mut Ctx<'_>, payload: &RtPayload) {
        let Some(dst) = self.controller_mac else {
            return;
        };
        if let RtPayload::CyclicData { .. } = payload {
            self.stats.cyclic_sent += 1;
        }
        let frame = EthFrame::new(dst, self.mac, ethertype::INDUSTRIAL_RT, payload.to_bytes())
            .with_vlan(VlanTag::RT);
        ctx.send(PortId(0), frame);
    }
}

impl Device for IoDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: EthFrame) {
        if frame.ethertype != ethertype::INDUSTRIAL_RT {
            return;
        }
        let Ok(payload) = RtPayload::parse(&frame.payload) else {
            return;
        };
        let now = ctx.now();
        let was_listening = self.cr.state() == DeviceState::Listening;
        let (reply, events) = self.cr.on_payload(now, &payload);
        for ev in &events {
            match ev {
                CrEvent::Connected => {
                    self.stats.connects += 1;
                    self.controller_mac = Some(frame.src);
                    self.last_step = now;
                    if was_listening {
                        // steelcheck: allow(unwrap-in-lib): listening state is only entered after connect() stores the params
                        let cycle = self.cr.cycle_time().expect("connected implies params");
                        ctx.timer_in(cycle, TOKEN_CYCLE);
                    }
                }
                CrEvent::Data { data, .. } => {
                    self.stats.cyclic_received += 1;
                    self.received_series.record(now);
                    self.actuators.load(data);
                }
                _ => {}
            }
        }
        if let Some(reply) = reply {
            // Reply goes to whoever asked (reject messages included).
            let dst = frame.src;
            let out = EthFrame::new(dst, self.mac, ethertype::INDUSTRIAL_RT, reply.to_bytes())
                .with_vlan(VlanTag::RT);
            ctx.send(PortId(0), out);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_CYCLE {
            return;
        }
        let now = ctx.now();
        let dt = now.saturating_since(self.last_step);
        self.last_step = now;
        self.process
            .step(now, dt, &self.actuators, &mut self.sensors);
        let sensors = self.sensors.bytes().to_vec();
        let (outs, events) = self.cr.tick(now, &sensors);
        for ev in &events {
            if matches!(ev, CrEvent::WatchdogExpired) {
                self.stats.safe_state_entries += 1;
                self.actuators.clear();
                self.process.on_safe_state();
            }
        }
        for p in outs {
            self.send_payload(ctx, &p);
        }
        if let Some(cycle) = self.cr.cycle_time() {
            if self.cr.state() != DeviceState::Released {
                ctx.timer_in(cycle, TOKEN_CYCLE);
            }
        }
    }
}
