//! Classical PLC redundancy — the baselines InstaPLC competes with.
//!
//! §4 of the paper describes three generations of high availability:
//!
//! 1. **Hardware pairs** (S7-1500R/H class): active/standby PLCs with
//!    dedicated sync links; takeover in 50–300 ms depending on
//!    manufacturer and device.
//! 2. **vPLC replication as pods/VMs**: Kubernetes-style restart or
//!    standby promotion; published switchover delays span ≈110 ms to
//!    ≈55.4 s.
//! 3. **InstaPLC** (this workspace's `steelworks-core::instaplc`):
//!    in-network switchover bounded by a few I/O cycles.
//!
//! This module implements the heartbeat machinery of (1), samplers for
//! the published takeover distributions of (1) and (2), and a
//! role-coordination state machine usable by paired vPLC devices.

use steelworks_netsim::rng::SimRng;
use steelworks_netsim::time::{NanoDur, Nanos};

/// Role in a redundant pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Actively controlling.
    Primary,
    /// Hot standby.
    Secondary,
}

/// Heartbeat-based peer supervision over a dedicated sync link.
#[derive(Clone, Debug)]
pub struct HeartbeatMonitor {
    interval: NanoDur,
    miss_threshold: u32,
    last_heard: Option<Nanos>,
    declared_dead: bool,
}

impl HeartbeatMonitor {
    /// Expect a heartbeat every `interval`; declare the peer dead after
    /// `miss_threshold` consecutive misses.
    pub fn new(interval: NanoDur, miss_threshold: u32) -> Self {
        assert!(miss_threshold > 0);
        HeartbeatMonitor {
            interval,
            miss_threshold,
            last_heard: None,
            declared_dead: false,
        }
    }

    /// A heartbeat arrived.
    pub fn heard(&mut self, now: Nanos) {
        self.last_heard = Some(now);
        self.declared_dead = false;
    }

    /// Evaluate at `now`: returns true exactly on the transition to
    /// "peer dead".
    pub fn check(&mut self, now: Nanos) -> bool {
        let Some(last) = self.last_heard else {
            return false;
        };
        let deadline = self.interval * self.miss_threshold as u64;
        if !self.declared_dead && now.saturating_since(last) > deadline {
            self.declared_dead = true;
            return true;
        }
        false
    }

    /// Worst-case detection latency of this configuration.
    pub fn detection_bound(&self) -> NanoDur {
        self.interval * (self.miss_threshold as u64 + 1)
    }

    /// Is the peer currently considered dead?
    pub fn is_dead(&self) -> bool {
        self.declared_dead
    }
}

/// Pair coordinator: decides who is primary, driven by heartbeats.
#[derive(Clone, Debug)]
pub struct PairCoordinator {
    role: Role,
    monitor: HeartbeatMonitor,
    takeovers: u64,
}

impl PairCoordinator {
    /// Start in `role`, supervising the peer with `monitor`.
    pub fn new(role: Role, monitor: HeartbeatMonitor) -> Self {
        PairCoordinator {
            role,
            monitor,
            takeovers: 0,
        }
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Heartbeat from the peer.
    pub fn peer_heartbeat(&mut self, now: Nanos) {
        self.monitor.heard(now);
        // A primary hearing a primary-claim yields if configured as
        // secondary-preferred; we keep it simple: roles only change on
        // death detection (ties broken by initial configuration).
    }

    /// Periodic check; returns true when this node just promoted itself
    /// to primary.
    pub fn check(&mut self, now: Nanos) -> bool {
        if self.monitor.check(now) && self.role == Role::Secondary {
            self.role = Role::Primary;
            self.takeovers += 1;
            return true;
        }
        false
    }

    /// Times this node took over.
    pub fn takeovers(&self) -> u64 {
        self.takeovers
    }
}

/// Published takeover-time samplers.
pub mod takeover {
    use super::*;

    /// Hardware pair takeover: uniform over the 50–300 ms band the
    /// paper cites from redundant-PLC system manuals.
    pub fn hardware_pair(rng: &mut SimRng) -> NanoDur {
        NanoDur::from_micros(rng.range(50_000, 300_001))
    }

    /// Kubernetes-orchestrated vPLC takeover: the literature the paper
    /// cites reports ≈110 ms (pre-warmed standby) up to ≈55.4 s (full
    /// pod rescheduling). Modelled as a mixture: 60 % warm standby
    /// (log-normal around 300 ms), 40 % reschedule (log-normal around
    /// 15 s), clamped to the published extremes.
    pub fn kubernetes(rng: &mut SimRng) -> NanoDur {
        let ms = if rng.chance(0.6) {
            rng.log_normal((300.0f64).ln(), 0.5)
        } else {
            rng.log_normal((15_000.0f64).ln(), 0.6)
        };
        NanoDur::from_secs_f64((ms / 1e3).clamp(0.110, 55.4))
    }

    /// InstaPLC-style in-network switchover: detection after
    /// `watchdog_cycles` missed cycles plus one pipeline pass.
    pub fn in_network(cycle: NanoDur, watchdog_cycles: u32, pipeline_latency: NanoDur) -> NanoDur {
        cycle * watchdog_cycles as u64 + pipeline_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_detects_silence() {
        let mut m = HeartbeatMonitor::new(NanoDur::from_millis(10), 3);
        m.heard(Nanos::ZERO);
        assert!(!m.check(Nanos::from_millis(30)));
        assert!(m.check(Nanos::from_millis(31)));
        assert!(!m.check(Nanos::from_millis(40)), "only transition fires");
        assert!(m.is_dead());
    }

    #[test]
    fn monitor_recovers_on_heartbeat() {
        let mut m = HeartbeatMonitor::new(NanoDur::from_millis(10), 2);
        m.heard(Nanos::ZERO);
        assert!(m.check(Nanos::from_millis(25)));
        m.heard(Nanos::from_millis(25));
        assert!(!m.is_dead());
        assert!(!m.check(Nanos::from_millis(30)));
    }

    #[test]
    fn never_heard_never_dead() {
        let mut m = HeartbeatMonitor::new(NanoDur::from_millis(10), 2);
        assert!(!m.check(Nanos::from_secs(10)));
    }

    #[test]
    fn secondary_promotes_on_death() {
        let mut c = PairCoordinator::new(
            Role::Secondary,
            HeartbeatMonitor::new(NanoDur::from_millis(10), 3),
        );
        c.peer_heartbeat(Nanos::ZERO);
        c.peer_heartbeat(Nanos::from_millis(10));
        assert_eq!(c.role(), Role::Secondary);
        assert!(c.check(Nanos::from_millis(45)));
        assert_eq!(c.role(), Role::Primary);
        assert_eq!(c.takeovers(), 1);
    }

    #[test]
    fn primary_does_not_repromote() {
        let mut c = PairCoordinator::new(
            Role::Primary,
            HeartbeatMonitor::new(NanoDur::from_millis(10), 3),
        );
        c.peer_heartbeat(Nanos::ZERO);
        assert!(!c.check(Nanos::from_secs(1)));
        assert_eq!(c.takeovers(), 0);
    }

    #[test]
    fn hardware_takeover_in_band() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            let t = takeover::hardware_pair(&mut rng);
            assert!(t >= NanoDur::from_millis(50) && t <= NanoDur::from_millis(300));
        }
    }

    #[test]
    fn kubernetes_takeover_spans_published_range() {
        let mut rng = SimRng::seed_from_u64(2);
        let samples: Vec<NanoDur> = (0..2000).map(|_| takeover::kubernetes(&mut rng)).collect();
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        assert!(*min >= NanoDur::from_millis(110));
        assert!(*max <= NanoDur::from_secs_f64(55.4));
        // The slow mode must actually occur.
        assert!(samples.iter().any(|t| *t > NanoDur::from_secs(5)));
    }

    #[test]
    fn in_network_is_fastest() {
        let mut rng = SimRng::seed_from_u64(3);
        let inet = takeover::in_network(NanoDur::from_millis(2), 3, NanoDur::from_micros(4));
        assert_eq!(inet, NanoDur(6_004_000));
        for _ in 0..100 {
            assert!(inet < takeover::hardware_pair(&mut rng));
            assert!(inet < takeover::kubernetes(&mut rng));
        }
    }

    #[test]
    fn detection_bound() {
        let m = HeartbeatMonitor::new(NanoDur::from_millis(10), 3);
        assert_eq!(m.detection_bound(), NanoDur::from_millis(40));
    }
}
