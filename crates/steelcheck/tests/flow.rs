//! Integration tests for the CFG/dataflow layer (rules 11–13) over the
//! `ws_flow` fixture mini-workspace: a lock-order inversion, a guard
//! carried through a helper into a blocking `join`, an allocation in
//! the simulator's delivery loop, a float accumulation on a figure
//! path, and the `float_accum.allow` inventory audit — each pinned to
//! exact `file:line:rule` and, where a call path matters, to the exact
//! rendered flow.

use std::path::{Path, PathBuf};
use steelcheck::report::{Finding, Report};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_fixture(name: &str) -> Report {
    steelcheck::run(&fixture_root(name)).expect("fixture scan")
}

fn by_rule<'a>(r: &'a Report, rule: &str) -> Vec<&'a Finding> {
    r.findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn r11_lock_order_inversion_reports_both_edges_with_the_cycle() {
    let r = run_fixture("ws_flow");
    let cycles: Vec<_> = by_rule(&r, "lock-discipline")
        .into_iter()
        .filter(|f| f.message.contains("lock-order cycle"))
        .collect();
    assert_eq!(cycles.len(), 2, "{:?}", r.findings);
    // `drain` takes queue→results, `steal` results→queue: each edge is
    // reported at its own acquire site, rendering the full cycle.
    assert_eq!(
        (cycles[0].file.as_str(), cycles[0].line),
        ("crates/steelpar/src/lib.rs", 11)
    );
    assert!(
        cycles[0]
            .message
            .contains("`steelpar::queue` -> `steelpar::results` -> `steelpar::queue`"),
        "{}",
        cycles[0].message
    );
    assert_eq!(
        (cycles[1].file.as_str(), cycles[1].line),
        ("crates/steelpar/src/lib.rs", 18)
    );
    assert!(
        cycles[1]
            .message
            .contains("`steelpar::results` -> `steelpar::queue` -> `steelpar::results`"),
        "{}",
        cycles[1].message
    );
}

#[test]
fn r11_lock_held_across_join_carries_the_caller_chain() {
    let r = run_fixture("ws_flow");
    let f = by_rule(&r, "lock-discipline");
    let blocking = f
        .iter()
        .find(|f| f.message.contains("blocks while holding"))
        .unwrap_or_else(|| panic!("{:?}", r.findings));
    // The guard is taken in `shutdown` and smuggled into `finish`; the
    // finding lands on the join and names the chain that carried it.
    assert_eq!(
        (blocking.file.as_str(), blocking.line),
        ("crates/steelpar/src/lib.rs", 29)
    );
    assert!(
        blocking.message.contains("`steelpar::results`"),
        "{}",
        blocking.message
    );
    assert_eq!(
        blocking.flow_text(),
        "steelpar::Pool::shutdown -> steelpar::Pool::finish"
    );
    assert!(
        format!("{blocking}").contains("(via steelpar::Pool::shutdown -> steelpar::Pool::finish)"),
        "{blocking}"
    );
    // The scoped-guard variant releases before its join: line 38 is clean.
    assert!(r.findings.iter().all(|f| f.line != 38), "{:?}", r.findings);
}

#[test]
fn r12_alloc_in_delivery_loop_is_flagged_with_path_and_suppression_holds() {
    let r = run_fixture("ws_flow");
    let f = by_rule(&r, "hot-path-alloc");
    assert_eq!(f.len(), 1, "{:?}", r.findings);
    assert_eq!((f[0].file.as_str(), f[0].line), ("crates/netsim/src/lib.rs", 20));
    assert!(f[0].message.contains(".to_vec()"), "{}", f[0].message);
    assert_eq!(
        f[0].flow_text(),
        "netsim::Sim::run -> netsim::Sim::tick -> netsim::deliver"
    );
    // The justified Arc-refcount clone on line 22 is suppressed — and
    // because it is consumed, the audit stays quiet about it.
    assert!(r.findings.iter().all(|f| f.line != 22), "{:?}", r.findings);
}

#[test]
fn r13_bare_accum_is_flagged_and_names_its_inventory_key() {
    let r = run_fixture("ws_flow");
    let f = by_rule(&r, "float-accum-order");
    assert_eq!(f.len(), 1, "{:?}", r.findings);
    assert_eq!(
        (f[0].file.as_str(), f[0].line),
        ("crates/bench/src/bin/figy.rs", 13)
    );
    assert!(
        f[0].message
            .contains("add `crates/bench/src/bin/figy.rs:main:total: <why>` to float_accum.allow"),
        "the fix-it must spell the exact inventory line: {}",
        f[0].message
    );
    // `norm` (line 14) is carried by the fixture inventory, `span`
    // (line 15) is justified inline, `count` (line 16) is an integer.
    assert!(
        r.findings
            .iter()
            .all(|f| !(f.file.ends_with("figy.rs") && f.line != 13)),
        "{:?}",
        r.findings
    );
}

#[test]
fn inventory_audit_flags_stale_and_malformed_entries() {
    let r = run_fixture("ws_flow");
    let stale = by_rule(&r, "unused-suppression");
    assert_eq!(stale.len(), 1, "{:?}", r.findings);
    assert_eq!((stale[0].file.as_str(), stale[0].line), ("float_accum.allow", 3));
    assert!(
        stale[0]
            .message
            .contains("`crates/bench/src/bin/figy.rs:main:gone` matches no float accumulation"),
        "{}",
        stale[0].message
    );
    let bad = by_rule(&r, "bad-directive");
    assert_eq!(bad.len(), 1, "{:?}", r.findings);
    assert_eq!((bad[0].file.as_str(), bad[0].line), ("float_accum.allow", 4));
}

#[test]
fn ws_flow_full_finding_set_exactly() {
    let r = run_fixture("ws_flow");
    let got: Vec<(String, u32, String)> = r
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.clone()))
        .collect();
    assert_eq!(
        got,
        vec![
            ("crates/bench/src/bin/figy.rs".into(), 13, "float-accum-order".into()),
            ("crates/netsim/src/lib.rs".into(), 20, "hot-path-alloc".into()),
            ("crates/steelpar/src/lib.rs".into(), 11, "lock-discipline".into()),
            ("crates/steelpar/src/lib.rs".into(), 18, "lock-discipline".into()),
            ("crates/steelpar/src/lib.rs".into(), 29, "lock-discipline".into()),
            ("float_accum.allow".into(), 3, "unused-suppression".into()),
            ("float_accum.allow".into(), 4, "bad-directive".into()),
        ]
    );
}

#[test]
fn ws_flow_output_is_byte_deterministic() {
    let a = run_fixture("ws_flow");
    let b = run_fixture("ws_flow");
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_sarif(), b.to_sarif());
}
