//! The gate test: steelcheck over the real workspace must be clean,
//! and the binary's exit codes must match the contract (0 clean,
//! 1 findings, 2 usage errors) — these are what CI keys off.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

#[test]
fn real_workspace_has_zero_unsuppressed_findings() {
    let root = steelcheck::walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let report = steelcheck::run(&root).expect("scan");
    assert!(
        report.findings.is_empty(),
        "the workspace must stay lint-clean; fix or suppress:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually covered the workspace.
    assert!(report.rust_files > 50, "only {} files", report.rust_files);
    assert!(report.manifests > 10, "only {} manifests", report.manifests);
}

#[test]
fn report_is_deterministic() {
    let root = steelcheck::walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let a = steelcheck::run(&root).expect("scan");
    let b = steelcheck::run(&root).expect("scan");
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_sarif(), b.to_sarif());
}

/// Build a throwaway single-file workspace and run the real binary on
/// it, returning (exit code, stdout).
fn run_bin_on(violation: &str, args: &[&str]) -> (i32, String) {
    let dir = std::env::temp_dir().join(format!(
        "steelcheck-exit-{}-{:x}",
        std::process::id(),
        violation.len().wrapping_mul(31).wrapping_add(violation.as_bytes().iter().map(|&b| b as usize).sum::<usize>())
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("src")).expect("mkdir");
    fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = []\n\n[package]\nname = \"fixture-ws\"\nversion = \"0.0.0\"\nedition = \"2021\"\n",
    )
    .expect("write manifest");
    fs::write(dir.join("src/lib.rs"), violation).expect("write source");
    let bin = PathBuf::from(env!("CARGO_BIN_EXE_steelcheck"));
    let mut cmd = Command::new(bin);
    cmd.arg("--root").arg(&dir).args(args);
    let out = cmd.output().expect("spawn steelcheck");
    let code = out.status.code().unwrap_or(-1);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let _ = fs::remove_dir_all(&dir);
    (code, stdout)
}

#[test]
fn binary_exits_nonzero_on_each_rule() {
    let cases: &[(&str, &str)] = &[
        ("use std::collections::HashMap;\n", "nondet-collections"),
        ("pub fn f() -> std::time::Instant { std::time::Instant::now() }\n", "wall-clock"),
        ("pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n", "unwrap-in-lib"),
        ("pub fn f(x: f64) -> bool { x == 0.25 }\n", "float-hygiene"),
    ];
    for (src, rule) in cases {
        let (code, stdout) = run_bin_on(src, &[]);
        assert_eq!(code, 1, "expected failure for {rule}: {stdout}");
        assert!(stdout.contains(rule), "diagnostic names {rule}: {stdout}");
    }
}

#[test]
fn binary_exits_zero_on_clean_workspace_and_emits_json() {
    let clean = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
    let (code, _) = run_bin_on(clean, &[]);
    assert_eq!(code, 0);
    let (code, json) = run_bin_on(clean, &["--json"]);
    assert_eq!(code, 0);
    assert!(json.contains("\"findings\": []"), "{json}");
    assert!(json.contains("\"version\": 1"), "{json}");
}

#[test]
fn binary_reports_manifest_violations() {
    // The violation is in the workspace manifest itself, not the code.
    let dir = std::env::temp_dir().join(format!("steelcheck-manifest-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("src")).expect("mkdir");
    fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = []\n\n[package]\nname = \"w\"\nversion = \"0.0.0\"\n\n[dependencies]\nserde = \"1.0\"\n",
    )
    .expect("write");
    fs::write(dir.join("src/lib.rs"), "\n").expect("write");
    let out = Command::new(env!("CARGO_BIN_EXE_steelcheck"))
        .arg("--root")
        .arg(&dir)
        .output()
        .expect("spawn");
    let _ = fs::remove_dir_all(&dir);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("manifest-hygiene"));
}

#[test]
fn binary_usage_error_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_steelcheck"))
        .arg("--no-such-flag")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_steelcheck"))
        .args(["--format", "xml"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_steelcheck"))
        .args(["--explain", "no-such-rule"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn binary_emits_sarif_and_explains_rules() {
    let clean = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
    let (code, sarif) = run_bin_on(clean, &["--format", "sarif"]);
    assert_eq!(code, 0);
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"name\": \"steelcheck\""), "{sarif}");

    let out = Command::new(env!("CARGO_BIN_EXE_steelcheck"))
        .args(["--explain", "wallclock-reachable"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("wallclock-reachable"), "{text}");
    assert!(text.contains("allow(wallclock-reachable)"), "{text}");

    let out = Command::new(env!("CARGO_BIN_EXE_steelcheck"))
        .arg("--list-rules")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let listing = String::from_utf8_lossy(&out.stdout).into_owned();
    for rule in steelcheck::rules::RULES {
        assert!(listing.contains(rule.id), "--list-rules must show {}", rule.id);
    }
}
