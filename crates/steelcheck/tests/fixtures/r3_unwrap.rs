//! Fixture for R3 `unwrap-in-lib`.

pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // line 4: finding
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("x must be set") // line 8: finding
}

pub fn unwrap_or_is_fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // steelcheck: allow(unwrap-in-lib): index validated by the builder above
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
        Some(2u32).expect("fine here");
    }
}
