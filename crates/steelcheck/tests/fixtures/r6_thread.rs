//! R6 fixture: threading outside the execution layer.

use std::thread;
use std::sync::{Mutex, RwLock};
use std::sync::mpsc::channel;
use std::sync::atomic::AtomicUsize;

// steelcheck: allow(thread-outside-exec): deliberately justified site
use std::sync::atomic::AtomicU64;

pub fn not_a_path(thread: u32) -> u32 {
    thread + 1
}

pub fn spawns() {
    std::thread::spawn(|| {});
}

pub fn shares(data: std::sync::Arc<[u8]>) -> usize {
    data.len()
}

pub const DOC: &str = "thread::spawn here is just a string";
