//! Fixture: f64 accumulation order on a figure path — one bare site
//! (flagged, naming its inventory key), one excused by the fixture's
//! `float_accum.allow`, one justified inline, and an integer counter
//! the rule must ignore.

fn main() {
    let samples = load();
    let mut total = 0.0;
    let mut norm = 0.0;
    let mut span = 0.0;
    let mut count = 0;
    for s in &samples {
        total += *s as f64;
        norm += weight(*s);
        span += *s as f64; // steelcheck: allow(float-accum-order): sweep order is spec'd ascending
        count += 1;
    }
    emit(total, norm, span, count);
}
