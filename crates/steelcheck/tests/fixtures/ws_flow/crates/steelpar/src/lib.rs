//! Fixture: a lock-order inversion between two worker-pool paths, a
//! guard carried through a helper into a blocking `join`, and clean
//! shapes (scoped guard before the join) the analysis must not flag.

pub struct Pool;

impl Pool {
    /// Takes `queue` then `results` — one order...
    pub fn drain(&mut self) {
        let q = self.queue.lock();
        let r = self.results.lock();
        merge(&q, &r);
    }

    /// ...and `results` then `queue` — the inversion.
    pub fn steal(&mut self) {
        let r = self.results.lock();
        let q = self.queue.lock();
        merge(&q, &r);
    }

    /// Carries the `results` guard into `finish`, which blocks.
    pub fn shutdown(&mut self) {
        let r = self.results.lock();
        self.finish(&r);
    }

    fn finish(&mut self, r: &Guard) {
        self.handle.join();
    }

    /// Clean: the guard is scoped out before the join.
    pub fn shutdown_clean(&mut self) {
        {
            let r = self.results.lock();
            r.seal();
        }
        self.handle.join();
    }
}
