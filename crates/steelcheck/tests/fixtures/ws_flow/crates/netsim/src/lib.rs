//! Fixture: an allocation inside the delivery loop two calls below the
//! simulator's `run`, plus a justified Arc-refcount clone beside it.

pub struct Sim;

impl Sim {
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    fn tick(&mut self) {
        deliver(self);
    }
}

fn deliver(sim: &mut Sim) {
    while let Some(ev) = sim.pop() {
        let owned = ev.payload.to_vec();
        // The tag is Arc-backed, so the clone bumps a refcount.
        let tag = ev.tag.clone(); // steelcheck: allow(hot-path-alloc): Arc refcount bump, not an allocation
        sim.absorb(owned, tag);
    }
}
