//! Fixture for R1 `nondet-collections`. Lines matter: tests assert on
//! exact line numbers — append only.

use std::collections::HashMap; // line 4: finding

pub fn build() -> HashMap<u32, u32> {
    // line 6: finding
    HashMap::new() // line 8: finding
}

// steelcheck: allow(nondet-collections): lookup-only cache, never iterated
pub fn suppressed() -> std::collections::HashMap<u32, u32> {
    std::collections::HashMap::new() // line 13: finding (suppression covers line 12 only)
}

pub fn suppressed_trailing() {
    let _ = std::collections::HashSet::<u32>::new(); // steelcheck: allow(nondet-collections): ok
}

pub fn in_string_not_flagged() -> &'static str {
    "HashMap::new() inside a string literal"
}
