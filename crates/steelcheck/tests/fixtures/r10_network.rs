//! R10 fixture: raw sockets outside the serving layer.

use std::net::TcpListener;
use std::net::{TcpStream, UdpSocket};

// steelcheck: allow(network-outside-serve): deliberately justified site
use std::net::Shutdown;

pub fn not_a_path(net: u32) -> u32 {
    net + 1
}

pub fn binds() {
    let _ = std::net::TcpListener::bind("127.0.0.1:0");
}

pub struct Topo {
    pub net: u32,
}

pub const DOC: &str = "std::net::TcpStream here is just a string";
