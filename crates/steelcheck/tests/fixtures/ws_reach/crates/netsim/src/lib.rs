//! Fixture: a wall-clock read buried two calls below the simulation
//! entry point, plus a justified (suppressed) read beside it.

pub struct Sim;

impl Sim {
    pub fn run(&mut self, cycles: u64) -> u64 {
        let mut acc = 0;
        for _ in 0..cycles {
            acc += step_world();
        }
        acc
    }
}

fn step_world() -> u64 {
    sample_epoch() + poll_host_clock()
}

fn poll_host_clock() -> u64 {
    // steelcheck: allow(wall-clock): fixture isolates the reachability rule
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

fn sample_epoch() -> u64 {
    // steelcheck: allow(wall-clock, wallclock-reachable): fixture records a justified dual suppression
    match std::time::SystemTime::now().elapsed() {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
