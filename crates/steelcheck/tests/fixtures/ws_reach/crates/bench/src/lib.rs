//! Fixture: harness helpers. Reading the host clock here is legal —
//! bench owns wall-clock time — but the value must never become a
//! `SimRng` seed.

pub fn ambient_seed() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
