//! Fixture figure binary: a panic site two calls deep, ambient rng
//! seeds (direct and through a tainted helper), and suppressed
//! variants of each.

fn main() {
    let stage = load_stage();
    let _ok = SimRng::seed_from_u64(42);
    let _tainted = SimRng::seed_from_u64(steelworks_bench::ambient_seed());
    let _direct = SimRng::seed_from_u64(std::time::SystemTime::now());
    // steelcheck: allow(rng-entropy): fixture records a justified ambient seed
    let _excused = SimRng::seed_from_u64(steelworks_bench::ambient_seed());
    println!("{stage} {}", checked_stage());
}

fn load_stage() -> usize {
    parse_stage("12")
}

fn parse_stage(s: &str) -> usize {
    s.parse().unwrap()
}

fn checked_stage() -> usize {
    // steelcheck: allow(panic-reachable): fixture records a written invariant
    "7".parse::<usize>().unwrap()
}
