//! Fixture figure binary: a panic site two calls deep, ambient rng
//! seeds (direct and through a tainted helper), and suppressed
//! variants of each.

fn main() {
    let stage = load_stage();
    let _ok = SimRng::seed_from_u64(42);
    let _tainted = SimRng::seed_from_u64(steelworks_bench::ambient_seed());
    let _direct = SimRng::seed_from_u64(std::time::SystemTime::now());
    // steelcheck: allow(rng-entropy): fixture records a justified ambient seed
    let _excused = SimRng::seed_from_u64(steelworks_bench::ambient_seed());
    println!("{stage} {} {} {}", checked_stage(), walk_stage(), lowered_stage());
}

fn load_stage() -> usize {
    parse_stage("12")
}

fn parse_stage(s: &str) -> usize {
    s.parse().unwrap()
}

fn checked_stage() -> usize {
    // steelcheck: allow(panic-reachable): fixture records a written invariant
    "7".parse::<usize>().unwrap()
}

fn walk_stage() -> usize {
    // A bounded worklist fixpoint in the shape the xdpsim verifier
    // uses: a labeled loop over a while-let drain. R8/R9 must see
    // through both constructs — sites inside the loop body belong to
    // this fn, and calls made per-trip stay on the reachability path.
    let mut queue = vec![3usize, 2, 1];
    let mut fuel = 0usize;
    'drain: while let Some(n) = queue.pop() {
        let _per_trip = SimRng::seed_from_u64(steelworks_bench::ambient_seed());
        fuel += step_stage(n);
        if fuel > 10 {
            break 'drain;
        }
    }
    fuel
}

fn step_stage(n: usize) -> usize {
    n.to_string().parse().unwrap()
}

fn lowered_stage() -> usize {
    // The xdpsim lowered engine's dispatch shape: an `Option` engine
    // chosen at load time, matched once, then a per-block loop over
    // pre-resolved ops. R8/R9 must carry reachability through the
    // match arm into the block executor.
    let engine = Some(build_lowered());
    match engine {
        Some(blocks) => exec_lowered(blocks),
        None => walk_stage(),
    }
}

fn build_lowered() -> Vec<usize> {
    vec![4, 5, 6]
}

fn exec_lowered(blocks: Vec<usize>) -> usize {
    let mut total = 0;
    for b in blocks {
        let _block_rng = SimRng::seed_from_u64(steelworks_bench::ambient_seed());
        total += exec_block(b);
    }
    total
}

fn exec_block(b: usize) -> usize {
    b.to_string().parse().unwrap()
}
