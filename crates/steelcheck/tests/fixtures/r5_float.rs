//! Fixture for R5 `float-hygiene`.

pub fn exact_eq(x: f64) -> bool {
    x == 1.0 // line 4: finding
}

pub fn exact_ne(x: f32) -> bool {
    0.5 != x // line 8: finding
}

pub fn simtime_cast(d: std::time::Duration) -> f64 {
    d.as_nanos() as f64 // line 12: finding
}

pub fn tolerance_is_fine(x: f64) -> bool {
    (x - 1.0).abs() < 1e-9
}

pub fn integer_compare_is_fine(d: std::time::Duration) -> bool {
    d.as_nanos() == 1_000
}

pub fn suppressed(d: std::time::Duration) -> f64 {
    // steelcheck: allow(float-hygiene): final report value, not fed back into sim
    d.as_nanos() as f64
}
