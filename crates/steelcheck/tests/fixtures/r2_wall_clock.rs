//! Fixture for R2 `wall-clock`.

use std::time::Instant; // line 3: finding

pub fn now_nanos() -> u128 {
    let t = Instant::now(); // line 6: finding
    t.elapsed().as_nanos()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now() // line 11: finding
}

// steelcheck: allow(wall-clock): commissioning tool, runs on real hardware
pub fn suppressed() -> std::time::Instant {
    // the `Instant` on line 15 is shielded; this one is not:
    std::time::Instant::now() // line 17: finding
}

/// `Instant` in a doc comment is not a finding.
pub fn documented() {}
