//! Fixture: a suppression whose violation was removed — the directive
//! is stale and must be flagged so it cannot mask a future regression.

// steelcheck: allow(wall-clock): stale — the clock read below was refactored away
pub fn tick() -> u64 {
    7
}
