//! The rule table is closed under the fixtures and the docs: every
//! entry in [`steelcheck::rules::RULES`] must carry explain text, be
//! triggered by at least one committed fixture, and have a row (or a
//! backticked mention, for the meta-diagnostics) in the README's
//! "Static analysis & determinism contract" section. A rule that can't
//! be demonstrated or isn't documented is a contract hole — this one
//! table-driven test keeps the three surfaces in lockstep as rules are
//! added.

use std::collections::BTreeSet;
use std::path::Path;

#[test]
fn every_rule_has_explain_text_a_fixture_finding_and_a_readme_row() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let fixtures = manifest_dir.join("tests/fixtures");

    // Pool every finding the committed fixtures can produce: the three
    // mini-workspaces exercise the interprocedural layers (R7–R9,
    // R11–R13, the directive and inventory audits), the single-file
    // fixtures the lexical layer (R1–R3, R5–R6, R10), and the bad
    // manifests the manifest layer (R4).
    let mut triggered: BTreeSet<String> = BTreeSet::new();
    for ws in ["ws_reach", "ws_unused", "ws_flow"] {
        let r = steelcheck::run(&fixtures.join(ws)).expect("fixture scan");
        triggered.extend(r.findings.iter().map(|f| f.rule.clone()));
    }
    for fx in [
        "r1_nondet_collections.rs",
        "r2_wall_clock.rs",
        "r3_unwrap.rs",
        "r5_float.rs",
        "r6_thread.rs",
        "r10_network.rs",
    ] {
        let src = std::fs::read_to_string(fixtures.join(fx)).expect("fixture source");
        // A netsim lib path is in scope for every lexical rule.
        let findings = steelcheck::scan_source("crates/netsim/src/fixture.rs", &src);
        triggered.extend(findings.iter().map(|f| f.rule.clone()));
    }
    let mut manifest_findings = Vec::new();
    steelcheck::manifest::scan_cargo_toml(
        "Cargo.toml",
        &std::fs::read_to_string(fixtures.join("r4_bad_cargo.toml")).expect("fixture toml"),
        &mut manifest_findings,
    );
    steelcheck::manifest::scan_cargo_lock(
        "Cargo.lock",
        &std::fs::read_to_string(fixtures.join("r4_bad_cargo.lock")).expect("fixture lock"),
        &mut manifest_findings,
    );
    triggered.extend(manifest_findings.iter().map(|f| f.rule.clone()));

    let readme = std::fs::read_to_string(manifest_dir.join("../../README.md")).expect("README.md");

    for rule in steelcheck::rules::RULES {
        assert!(
            !rule.summary.trim().is_empty() && !rule.rationale.trim().is_empty(),
            "rule `{}` has no explain text",
            rule.id
        );
        assert!(
            triggered.contains(rule.id),
            "rule `{}` is triggered by no committed fixture; add one so the \
             rule stays demonstrably alive (triggered: {triggered:?})",
            rule.id
        );
        assert!(
            readme.contains(&format!("`{}`", rule.id)),
            "rule `{}` has no row or mention in README.md's contract section",
            rule.id
        );
    }
}
